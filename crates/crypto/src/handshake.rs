//! The 1-RTT secure handshake model (gQUIC crypto, CHLO → SHLO).
//!
//! gQUIC's crypto protocol [Lychev et al., S&P'15] lets a client with a
//! cached server config complete a secure handshake in a single round trip:
//! the client sends a CHLO (client hello, with its key share), the server
//! answers with an SHLO (server hello, with its key share), and both sides
//! derive the forward-secure session keys. The paper relies on this for
//! Fig. 9: "With QUIC, the secure handshake consumes a single
//! round-trip-time. With TLS/TCP, the TCP 3-way handshake and the TLS 1.2
//! handshake consume together 3 round-trip-times."
//!
//! We model the key exchange as a commutative mix of the two parties'
//! random contributions. The handshake bytes travel in CRYPTO frames over
//! the initial path only (the paper leaves multi-path handshakes to future
//! work).
//!
//! **Version negotiation** (paper §2: "During the secure handshake, hosts
//! negotiate the version of QUIC that will be used. The combination of
//! version negotiation and encryption allows QUIC to easily evolve
//! regardless of middleboxes.") — the CHLO carries the client's proposed
//! version; a server that does not support it answers with a
//! [`HandshakeMessage::VersionNegotiation`] listing its supported
//! versions, and the client retries with a mutually supported one (one
//! extra round trip, like gQUIC).

use bytes::{Buf, BufMut, Bytes, BytesMut};
use mpquic_util::DetRng;

use crate::aead::Key;

/// Derived directional session keys.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionKeys {
    /// Protects client → server packets.
    pub client_to_server: Key,
    /// Protects server → client packets.
    pub server_to_client: Key,
}

/// The protocol version this implementation speaks natively.
pub const SUPPORTED_VERSION: u32 = 1;

/// A handshake message on the crypto stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HandshakeMessage {
    /// Client hello: connection id, proposed version, client key share.
    ClientHello {
        /// Connection ID chosen by the client.
        connection_id: u64,
        /// Proposed protocol version.
        version: u32,
        /// Client's random key contribution.
        client_random: [u8; 32],
    },
    /// Server hello: echoed connection id + server key share.
    ServerHello {
        /// Echoed connection ID.
        connection_id: u64,
        /// The accepted version.
        version: u32,
        /// Server's random key contribution.
        server_random: [u8; 32],
    },
    /// The server does not speak the proposed version; here is what it
    /// does speak.
    VersionNegotiation {
        /// Echoed connection ID.
        connection_id: u64,
        /// Versions the server supports.
        supported: Vec<u32>,
    },
}

const TAG_CHLO: u8 = 1;
const TAG_SHLO: u8 = 2;
const TAG_VNEG: u8 = 3;

impl HandshakeMessage {
    /// Serializes the message for transport in CRYPTO frames.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(1 + 8 + 4 + 32);
        match self {
            HandshakeMessage::ClientHello {
                connection_id,
                version,
                client_random,
            } => {
                buf.put_u8(TAG_CHLO);
                buf.put_u64(*connection_id);
                buf.put_u32(*version);
                buf.put_slice(client_random);
            }
            HandshakeMessage::ServerHello {
                connection_id,
                version,
                server_random,
            } => {
                buf.put_u8(TAG_SHLO);
                buf.put_u64(*connection_id);
                buf.put_u32(*version);
                buf.put_slice(server_random);
            }
            HandshakeMessage::VersionNegotiation {
                connection_id,
                supported,
            } => {
                buf.put_u8(TAG_VNEG);
                buf.put_u64(*connection_id);
                buf.put_u8(supported.len() as u8);
                for v in supported {
                    buf.put_u32(*v);
                }
            }
        }
        buf.freeze()
    }

    /// Wire size of an encoded CHLO/SHLO (fixed-size).
    pub const WIRE_SIZE: usize = 1 + 8 + 4 + 32;

    /// Parses one message from the front of `buf`, if complete.
    pub fn decode<B: Buf>(buf: &mut B) -> Option<HandshakeMessage> {
        if buf.remaining() < 1 + 8 {
            return None;
        }
        let tag = buf.get_u8();
        let connection_id = buf.get_u64();
        match tag {
            TAG_CHLO | TAG_SHLO => {
                if buf.remaining() < 4 + 32 {
                    return None;
                }
                let version = buf.get_u32();
                let mut random = [0u8; 32];
                buf.copy_to_slice(&mut random);
                Some(if tag == TAG_CHLO {
                    HandshakeMessage::ClientHello {
                        connection_id,
                        version,
                        client_random: random,
                    }
                } else {
                    HandshakeMessage::ServerHello {
                        connection_id,
                        version,
                        server_random: random,
                    }
                })
            }
            TAG_VNEG => {
                if buf.remaining() < 1 {
                    return None;
                }
                let count = buf.get_u8() as usize;
                if buf.remaining() < count * 4 {
                    return None;
                }
                let supported = (0..count).map(|_| buf.get_u32()).collect();
                Some(HandshakeMessage::VersionNegotiation {
                    connection_id,
                    supported,
                })
            }
            _ => None,
        }
    }
}

/// Derives the initial (pre-handshake) packet-protection key from the
/// connection ID, like QUIC's initial secrets: both endpoints can compute
/// it before any key exchange, it only obscures, not secures.
pub fn initial_key(connection_id: u64) -> Key {
    derive(b"mpquic initial", connection_id, &[0u8; 32], &[0u8; 32])
}

/// Derives the forward-secure session keys from both parties' randoms.
pub fn session_keys(
    connection_id: u64,
    client_random: &[u8; 32],
    server_random: &[u8; 32],
) -> SessionKeys {
    SessionKeys {
        client_to_server: derive(b"mpquic c2s", connection_id, client_random, server_random),
        server_to_client: derive(b"mpquic s2c", connection_id, client_random, server_random),
    }
}

fn derive(label: &[u8], connection_id: u64, a: &[u8; 32], b: &[u8; 32]) -> Key {
    // Toy KDF: mix label, cid and both randoms through the deterministic
    // generator (see crate docs for the substitution rationale).
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &byte in label.iter().chain(a).chain(b) {
        h ^= u64::from(byte);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h ^= connection_id;
    let mut rng = DetRng::new(h);
    let mut key = [0u8; 32];
    rng.fill_bytes(&mut key);
    key
}

/// Events produced by the handshake state machines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HandshakeEvent {
    /// Bytes to send on the crypto stream.
    Send(Bytes),
    /// Handshake complete; session keys are available.
    Complete(SessionKeys),
}

/// Client side of the 1-RTT handshake.
#[derive(Debug)]
pub struct ClientHandshake {
    connection_id: u64,
    client_random: [u8; 32],
    /// Version proposed in the next CHLO.
    version: u32,
    chlo_sent: bool,
    keys: Option<SessionKeys>,
    /// Number of version-negotiation rounds taken (0 on the happy path).
    negotiation_rounds: u32,
}

impl ClientHandshake {
    /// Creates a client handshake for `connection_id`, drawing the key
    /// share from `rng` and proposing [`SUPPORTED_VERSION`].
    pub fn new(connection_id: u64, rng: &mut DetRng) -> ClientHandshake {
        Self::with_version(connection_id, rng, SUPPORTED_VERSION)
    }

    /// Like [`ClientHandshake::new`] but proposing a specific version
    /// (tests use an unsupported one to exercise negotiation).
    pub fn with_version(connection_id: u64, rng: &mut DetRng, version: u32) -> ClientHandshake {
        let mut client_random = [0u8; 32];
        rng.fill_bytes(&mut client_random);
        ClientHandshake {
            connection_id,
            client_random,
            version,
            chlo_sent: false,
            keys: None,
            negotiation_rounds: 0,
        }
    }

    /// Pulls the next action: the CHLO on first call (and again after a
    /// version-negotiation round), then nothing until the SHLO arrives.
    pub fn poll(&mut self) -> Option<HandshakeEvent> {
        if !self.chlo_sent {
            self.chlo_sent = true;
            let chlo = HandshakeMessage::ClientHello {
                connection_id: self.connection_id,
                version: self.version,
                client_random: self.client_random,
            };
            return Some(HandshakeEvent::Send(chlo.encode()));
        }
        None
    }

    /// Feeds crypto-stream bytes received from the server. Returns the
    /// completion event when the SHLO has been processed, or the next
    /// CHLO after a version-negotiation round.
    pub fn on_crypto_data(&mut self, mut data: &[u8]) -> Option<HandshakeEvent> {
        while let Some(msg) = HandshakeMessage::decode(&mut data) {
            match msg {
                HandshakeMessage::ServerHello {
                    connection_id,
                    version: _,
                    server_random,
                } => {
                    if connection_id != self.connection_id || self.keys.is_some() {
                        continue;
                    }
                    let keys =
                        session_keys(self.connection_id, &self.client_random, &server_random);
                    self.keys = Some(keys);
                    return Some(HandshakeEvent::Complete(keys));
                }
                HandshakeMessage::VersionNegotiation {
                    connection_id,
                    supported,
                } => {
                    if connection_id != self.connection_id
                        || self.keys.is_some()
                        || supported.contains(&self.version)
                    {
                        continue; // stale, spurious, or nothing to change
                    }
                    if supported.contains(&SUPPORTED_VERSION) {
                        // Retry with the mutually supported version.
                        self.version = SUPPORTED_VERSION;
                        self.negotiation_rounds += 1;
                        self.chlo_sent = false;
                        return self.poll();
                    }
                }
                HandshakeMessage::ClientHello { .. } => {}
            }
        }
        None
    }

    /// Session keys, once complete.
    pub fn keys(&self) -> Option<SessionKeys> {
        self.keys
    }

    /// True once the SHLO has been processed.
    pub fn is_complete(&self) -> bool {
        self.keys.is_some()
    }

    /// Version-negotiation rounds taken (0 on the happy path).
    pub fn negotiation_rounds(&self) -> u32 {
        self.negotiation_rounds
    }
}

/// Server side of the 1-RTT handshake.
#[derive(Debug)]
pub struct ServerHandshake {
    server_random: [u8; 32],
    /// SHLO queued for transmission after a CHLO arrived.
    pending_shlo: Option<Bytes>,
    keys: Option<SessionKeys>,
}

impl ServerHandshake {
    /// Creates a server handshake, drawing the key share from `rng`.
    pub fn new(rng: &mut DetRng) -> ServerHandshake {
        let mut server_random = [0u8; 32];
        rng.fill_bytes(&mut server_random);
        ServerHandshake {
            server_random,
            pending_shlo: None,
            keys: None,
        }
    }

    /// Feeds crypto-stream bytes received from the client. On a CHLO with
    /// a supported version the server derives keys immediately (it can
    /// send 1-RTT data right after the SHLO) and returns the completion
    /// event; on an unsupported version it queues a version-negotiation
    /// response instead.
    pub fn on_crypto_data(&mut self, mut data: &[u8]) -> Option<HandshakeEvent> {
        while let Some(msg) = HandshakeMessage::decode(&mut data) {
            if let HandshakeMessage::ClientHello {
                connection_id,
                version,
                client_random,
            } = msg
            {
                if self.keys.is_some() {
                    continue; // duplicate CHLO (retransmission)
                }
                if version != SUPPORTED_VERSION {
                    let vneg = HandshakeMessage::VersionNegotiation {
                        connection_id,
                        supported: vec![SUPPORTED_VERSION],
                    };
                    self.pending_shlo = Some(vneg.encode());
                    continue;
                }
                let keys = session_keys(connection_id, &client_random, &self.server_random);
                self.keys = Some(keys);
                let shlo = HandshakeMessage::ServerHello {
                    connection_id,
                    version,
                    server_random: self.server_random,
                };
                self.pending_shlo = Some(shlo.encode());
                return Some(HandshakeEvent::Complete(keys));
            }
        }
        None
    }

    /// Pulls the next action: the SHLO, once a CHLO has been processed.
    pub fn poll(&mut self) -> Option<HandshakeEvent> {
        self.pending_shlo.take().map(HandshakeEvent::Send)
    }

    /// Session keys, once complete.
    pub fn keys(&self) -> Option<SessionKeys> {
        self.keys
    }

    /// True once a CHLO has been processed.
    pub fn is_complete(&self) -> bool {
        self.keys.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn message_round_trip() {
        let chlo = HandshakeMessage::ClientHello {
            connection_id: 42,
            version: SUPPORTED_VERSION,
            client_random: [7; 32],
        };
        let bytes = chlo.encode();
        assert_eq!(bytes.len(), HandshakeMessage::WIRE_SIZE);
        let mut read = &bytes[..];
        assert_eq!(HandshakeMessage::decode(&mut read), Some(chlo));
    }

    #[test]
    fn full_handshake_agrees_on_keys() {
        let mut rng = DetRng::new(1);
        let mut client = ClientHandshake::new(99, &mut rng);
        let mut server = ServerHandshake::new(&mut rng);

        // Client sends CHLO.
        let Some(HandshakeEvent::Send(chlo)) = client.poll() else {
            panic!("client should send CHLO first");
        };
        assert!(client.poll().is_none(), "only one CHLO");
        assert!(!client.is_complete());

        // Server processes CHLO, completes, and queues SHLO.
        let Some(HandshakeEvent::Complete(server_keys)) = server.on_crypto_data(&chlo) else {
            panic!("server should complete on CHLO");
        };
        let Some(HandshakeEvent::Send(shlo)) = server.poll() else {
            panic!("server should send SHLO");
        };
        assert!(server.poll().is_none());

        // Client processes SHLO and completes with the same keys.
        let Some(HandshakeEvent::Complete(client_keys)) = client.on_crypto_data(&shlo) else {
            panic!("client should complete on SHLO");
        };
        assert_eq!(client_keys, server_keys);
        assert_ne!(client_keys.client_to_server, client_keys.server_to_client);
    }

    #[test]
    fn duplicate_chlo_ignored() {
        let mut rng = DetRng::new(2);
        let mut client = ClientHandshake::new(5, &mut rng);
        let mut server = ServerHandshake::new(&mut rng);
        let Some(HandshakeEvent::Send(chlo)) = client.poll() else {
            panic!()
        };
        assert!(server.on_crypto_data(&chlo).is_some());
        let _ = server.poll();
        // Retransmitted CHLO: no new completion, no second SHLO.
        assert!(server.on_crypto_data(&chlo).is_none());
        assert!(server.poll().is_none());
    }

    #[test]
    fn shlo_for_wrong_connection_ignored() {
        let mut rng = DetRng::new(3);
        let mut client = ClientHandshake::new(10, &mut rng);
        let _ = client.poll();
        let bogus = HandshakeMessage::ServerHello {
            connection_id: 11,
            version: SUPPORTED_VERSION,
            server_random: [1; 32],
        }
        .encode();
        assert!(client.on_crypto_data(&bogus).is_none());
        assert!(!client.is_complete());
    }

    #[test]
    fn initial_key_is_cid_dependent() {
        assert_eq!(initial_key(1), initial_key(1));
        assert_ne!(initial_key(1), initial_key(2));
    }

    #[test]
    fn different_randoms_different_keys() {
        let a = session_keys(1, &[1; 32], &[2; 32]);
        let b = session_keys(1, &[1; 32], &[3; 32]);
        assert_ne!(a.client_to_server, b.client_to_server);
    }

    #[test]
    fn garbage_crypto_data_never_panics_the_machines() {
        let mut rng = DetRng::new(77);
        let mut client = ClientHandshake::new(5, &mut rng);
        let mut server = ServerHandshake::new(&mut rng);
        let _ = client.poll();
        let mut junk_rng = DetRng::new(78);
        for len in [0usize, 1, 40, 41, 82, 123] {
            let mut junk = vec![0u8; len];
            junk_rng.fill_bytes(&mut junk);
            let _ = client.on_crypto_data(&junk);
            let _ = server.on_crypto_data(&junk);
        }
        assert!(!client.is_complete(), "junk must not complete a handshake");
    }

    #[test]
    fn version_negotiation_round_trip() {
        let vneg = HandshakeMessage::VersionNegotiation {
            connection_id: 9,
            supported: vec![1, 7, 42],
        };
        let bytes = vneg.encode();
        let mut read = &bytes[..];
        assert_eq!(HandshakeMessage::decode(&mut read), Some(vneg));
    }

    #[test]
    fn unsupported_version_negotiates_then_establishes() {
        let mut rng = DetRng::new(4);
        // Client proposes a future version the server does not speak.
        let mut client = ClientHandshake::with_version(77, &mut rng, 99);
        let mut server = ServerHandshake::new(&mut rng);
        let Some(HandshakeEvent::Send(chlo_v99)) = client.poll() else {
            panic!()
        };
        // Server answers with version negotiation, not an SHLO.
        assert!(server.on_crypto_data(&chlo_v99).is_none());
        assert!(!server.is_complete());
        let Some(HandshakeEvent::Send(vneg)) = server.poll() else {
            panic!("version negotiation expected")
        };
        // Client retries with the supported version (one extra RTT).
        let Some(HandshakeEvent::Send(chlo_v1)) = client.on_crypto_data(&vneg) else {
            panic!("client should re-CHLO")
        };
        assert_eq!(client.negotiation_rounds(), 1);
        let Some(HandshakeEvent::Complete(sk)) = server.on_crypto_data(&chlo_v1) else {
            panic!("server completes on supported CHLO")
        };
        let Some(HandshakeEvent::Send(shlo)) = server.poll() else {
            panic!()
        };
        let Some(HandshakeEvent::Complete(ck)) = client.on_crypto_data(&shlo) else {
            panic!()
        };
        assert_eq!(sk, ck);
    }

    #[test]
    fn partial_message_waits_for_more() {
        let chlo = HandshakeMessage::ClientHello {
            connection_id: 1,
            version: SUPPORTED_VERSION,
            client_random: [9; 32],
        }
        .encode();
        let mut partial = &chlo[..10];
        assert_eq!(HandshakeMessage::decode(&mut partial), None);
    }
}
