//! Nonce construction for packet protection.
//!
//! The paper (§3, *Reliable Data Transmission*) notes that giving every
//! path its own packet-number space means the same packet number can occur
//! on two paths, and "reusing the same sequence number over different paths
//! might have a detrimental impact on security, as the cryptographic nonce
//! will be reused". It proposes two mitigations:
//!
//! 1. restrict each sequence number to a single use across all paths
//!    ([`NonceMode::GlobalSequence`]), or
//! 2. involve the Path ID in the nonce computation so nonces can never
//!    collide across paths ([`NonceMode::PathIdMixed`] — the default used
//!    by `mpquic-core`).

/// How packet-protection nonces are derived.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum NonceMode {
    /// Nonce = `path_id (4 bytes BE) || packet_number (8 bytes BE)`.
    ///
    /// Distinct paths can never produce the same nonce, so per-path packet
    /// number spaces are safe. This is the construction mpquic uses.
    #[default]
    PathIdMixed,
    /// Nonce = `0x00000000 || packet_number (8 bytes BE)`.
    ///
    /// Only safe if the *sender* guarantees each packet number is used at
    /// most once across all paths (the paper's first mitigation). Exposed
    /// so tests can demonstrate the cross-path collision this invites when
    /// the guarantee is violated.
    GlobalSequence,
}

/// Computes the 96-bit nonce for a packet.
pub fn nonce_for(mode: NonceMode, path_id: u32, packet_number: u64) -> [u8; 12] {
    let mut nonce = [0u8; 12];
    match mode {
        NonceMode::PathIdMixed => {
            nonce[..4].copy_from_slice(&path_id.to_be_bytes());
        }
        NonceMode::GlobalSequence => {
            // Path ID intentionally not mixed in.
        }
    }
    nonce[4..].copy_from_slice(&packet_number.to_be_bytes());
    nonce
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn path_mixed_nonces_differ_across_paths() {
        let a = nonce_for(NonceMode::PathIdMixed, 0, 7);
        let b = nonce_for(NonceMode::PathIdMixed, 1, 7);
        assert_ne!(a, b);
    }

    #[test]
    fn global_sequence_collides_across_paths() {
        // The hazard the paper warns about: same PN on two paths, same nonce.
        let a = nonce_for(NonceMode::GlobalSequence, 0, 7);
        let b = nonce_for(NonceMode::GlobalSequence, 3, 7);
        assert_eq!(a, b);
    }

    #[test]
    fn nonce_encodes_packet_number() {
        let n = nonce_for(NonceMode::PathIdMixed, 2, 0x0102_0304_0506_0708);
        assert_eq!(&n[..4], &[0, 0, 0, 2]);
        assert_eq!(&n[4..], &[1, 2, 3, 4, 5, 6, 7, 8]);
    }

    proptest! {
        #[test]
        fn prop_path_mixed_injective(
            p1 in any::<u32>(), n1 in any::<u64>(),
            p2 in any::<u32>(), n2 in any::<u64>(),
        ) {
            let a = nonce_for(NonceMode::PathIdMixed, p1, n1);
            let b = nonce_for(NonceMode::PathIdMixed, p2, n2);
            prop_assert_eq!(a == b, (p1, n1) == (p2, n2));
        }
    }
}
