//! Packet protection and handshake for mpquic.
//!
//! The paper's evaluation uses real cryptography (QUIC crypto [31] /
//! TLS 1.2) because crypto costs CPU on their emulation platform; *this*
//! reproduction measures transport dynamics in a simulator where CPU time
//! is not the metric, so we substitute a **toy AEAD** (documented in
//! DESIGN.md §2/§8): a keyed xoshiro keystream cipher with a 64-bit keyed
//! MAC. It is *not* secure; it exists so that
//!
//! * the packet layout (header as associated data, sealed payload, tag) is
//!   faithful,
//! * tampering and key mismatches are actually detected in tests,
//! * and the paper's **nonce-reuse-across-paths** concern (§3, Reliable
//!   Data Transmission) is structurally real: the nonce is derived from the
//!   Path ID and per-path packet number, and [`nonce`] exposes both
//!   mitigations the paper discusses.
//!
//! The handshake model ([`handshake`]) reproduces gQUIC's 1-RTT secure
//! handshake (CHLO → SHLO) carried in CRYPTO frames over the initial path,
//! giving MPQUIC its 1-RTT connection establishment versus TCP+TLS 1.2's
//! 3 RTTs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aead;
pub mod handshake;
pub mod nonce;

pub use aead::{Aead, CryptoError, Key, TAG_SIZE};
pub use handshake::{
    ClientHandshake, HandshakeEvent, HandshakeMessage, ServerHandshake, SessionKeys,
};
pub use nonce::{nonce_for, NonceMode};
