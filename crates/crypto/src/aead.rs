//! A toy authenticated cipher.
//!
//! **This is not real cryptography** — see the crate docs. Structure is
//! that of a stream-cipher AEAD: `seal` XORs a key/nonce-derived keystream
//! into the plaintext and appends a 64-bit MAC computed over the
//! associated data (the packet's public header), the ciphertext and their
//! lengths. `open` verifies the MAC before decrypting.

use mpquic_util::DetRng;

/// Symmetric key.
pub type Key = [u8; 32];

/// MAC tag length in bytes (matches `mpquic_wire::AEAD_TAG_SIZE`).
pub const TAG_SIZE: usize = 8;

/// Errors from packet protection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CryptoError {
    /// MAC verification failed: wrong key, wrong nonce, or tampering.
    AuthenticationFailed,
    /// Ciphertext shorter than the MAC tag.
    Truncated,
}

impl std::fmt::Display for CryptoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CryptoError::AuthenticationFailed => write!(f, "packet authentication failed"),
            CryptoError::Truncated => write!(f, "ciphertext shorter than tag"),
        }
    }
}

impl std::error::Error for CryptoError {}

/// FNV-1a 64-bit over a byte slice, continuing from `state`.
fn fnv1a(mut state: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        state ^= u64::from(b);
        state = state.wrapping_mul(0x100_0000_01b3);
    }
    state
}

/// Mixes key material and a nonce into a 64-bit seed for the keystream.
fn stream_seed(key: &Key, nonce: &[u8; 12], domain: u64) -> u64 {
    let mut h = fnv1a(0xcbf2_9ce4_8422_2325 ^ domain, key);
    h = fnv1a(h, nonce);
    // Final avalanche (splitmix64 finalizer).
    let mut z = h;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// An AEAD context bound to one key.
#[derive(Debug, Clone)]
pub struct Aead {
    key: Key,
}

impl Aead {
    /// Creates a context for `key`.
    pub fn new(key: Key) -> Aead {
        Aead { key }
    }

    fn keystream_xor(&self, nonce: &[u8; 12], data: &mut [u8]) {
        let mut rng = DetRng::new(stream_seed(&self.key, nonce, 0x5EA1));
        // Fixed-size stack buffer: 64 is a multiple of the RNG's 8-byte
        // word, so chunking produces the same keystream as one big fill
        // — and the hot path never touches the allocator.
        let mut ks = [0u8; 64];
        for chunk in data.chunks_mut(64) {
            let ks = &mut ks[..chunk.len()];
            rng.fill_bytes(ks);
            // XOR a word at a time; the byte tail covers non-multiple-of-8
            // chunk lengths. Byte-for-byte identical to the scalar loop —
            // the keystream bytes are the same, only the XOR widens.
            let mut data_words = chunk.chunks_exact_mut(8);
            let mut ks_words = ks.chunks_exact(8);
            for (d, k) in data_words.by_ref().zip(ks_words.by_ref()) {
                let mut word = [0u8; 8];
                word.copy_from_slice(d);
                let mixed =
                    u64::from_ne_bytes(word) ^ u64::from_ne_bytes(k.try_into().unwrap_or([0; 8]));
                d.copy_from_slice(&mixed.to_ne_bytes());
            }
            for (d, k) in data_words
                .into_remainder()
                .iter_mut()
                .zip(ks_words.remainder())
            {
                *d ^= k;
            }
        }
    }

    fn mac(&self, nonce: &[u8; 12], aad: &[u8], ciphertext: &[u8]) -> [u8; TAG_SIZE] {
        let mut h = stream_seed(&self.key, nonce, 0x7A6);
        h = fnv1a(h, aad);
        h = fnv1a(h, &(aad.len() as u64).to_le_bytes());
        h = fnv1a(h, ciphertext);
        h = fnv1a(h, &(ciphertext.len() as u64).to_le_bytes());
        h.to_le_bytes()
    }

    /// Encrypts `plaintext`, authenticating it together with `aad`.
    /// Returns `ciphertext || tag`.
    pub fn seal(&self, nonce: &[u8; 12], aad: &[u8], plaintext: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(plaintext.len() + TAG_SIZE);
        self.seal_into(nonce, aad, plaintext, &mut out);
        out
    }

    /// Like [`Aead::seal`], but appends `ciphertext || tag` to `out` —
    /// the batched egress path uses this to seal straight into a pooled
    /// datagram buffer without intermediate allocation.
    pub fn seal_into(&self, nonce: &[u8; 12], aad: &[u8], plaintext: &[u8], out: &mut Vec<u8>) {
        let start = out.len();
        out.extend_from_slice(plaintext);
        let Some(ciphertext) = out.get_mut(start..) else {
            return;
        };
        self.keystream_xor(nonce, ciphertext);
        let tag = {
            let Some(ciphertext) = out.get(start..) else {
                return;
            };
            self.mac(nonce, aad, ciphertext)
        };
        out.extend_from_slice(&tag);
    }

    /// Verifies and decrypts `ciphertext || tag`. Returns the plaintext.
    pub fn open(
        &self,
        nonce: &[u8; 12],
        aad: &[u8],
        sealed: &[u8],
    ) -> Result<Vec<u8>, CryptoError> {
        if sealed.len() < TAG_SIZE {
            return Err(CryptoError::Truncated);
        }
        let (ciphertext, tag) = sealed.split_at(sealed.len() - TAG_SIZE);
        let expected = self.mac(nonce, aad, ciphertext);
        // Branch-free comparison; constant-time in spirit.
        let mut diff = 0u8;
        for (a, b) in expected.iter().zip(tag) {
            diff |= a ^ b;
        }
        if diff != 0 {
            return Err(CryptoError::AuthenticationFailed);
        }
        let mut out = ciphertext.to_vec();
        self.keystream_xor(nonce, &mut out);
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn key(b: u8) -> Key {
        [b; 32]
    }

    #[test]
    fn seal_open_round_trip() {
        let aead = Aead::new(key(1));
        let nonce = [7u8; 12];
        let sealed = aead.seal(&nonce, b"header", b"secret payload");
        assert_eq!(sealed.len(), 14 + TAG_SIZE);
        let opened = aead.open(&nonce, b"header", &sealed).unwrap();
        assert_eq!(opened, b"secret payload");
    }

    #[test]
    fn wrong_key_fails() {
        let sealed = Aead::new(key(1)).seal(&[0; 12], b"", b"data");
        assert_eq!(
            Aead::new(key(2)).open(&[0; 12], b"", &sealed),
            Err(CryptoError::AuthenticationFailed)
        );
    }

    #[test]
    fn wrong_nonce_fails() {
        let aead = Aead::new(key(3));
        let sealed = aead.seal(&[1; 12], b"", b"data");
        assert_eq!(
            aead.open(&[2; 12], b"", &sealed),
            Err(CryptoError::AuthenticationFailed)
        );
    }

    #[test]
    fn tampered_aad_fails() {
        let aead = Aead::new(key(4));
        let sealed = aead.seal(&[0; 12], b"header-v1", b"data");
        assert_eq!(
            aead.open(&[0; 12], b"header-v2", &sealed),
            Err(CryptoError::AuthenticationFailed)
        );
    }

    #[test]
    fn tampered_ciphertext_fails() {
        let aead = Aead::new(key(5));
        let mut sealed = aead.seal(&[0; 12], b"h", b"some data here");
        sealed[3] ^= 0x40;
        assert_eq!(
            aead.open(&[0; 12], b"h", &sealed),
            Err(CryptoError::AuthenticationFailed)
        );
    }

    #[test]
    fn truncated_rejected() {
        let aead = Aead::new(key(6));
        assert_eq!(
            aead.open(&[0; 12], b"", &[1, 2, 3]),
            Err(CryptoError::Truncated)
        );
    }

    #[test]
    fn empty_plaintext_works() {
        let aead = Aead::new(key(7));
        let sealed = aead.seal(&[9; 12], b"hdr", b"");
        assert_eq!(sealed.len(), TAG_SIZE);
        assert_eq!(aead.open(&[9; 12], b"hdr", &sealed).unwrap(), b"");
    }

    #[test]
    fn nonce_reuse_leaks_keystream_relation() {
        // Demonstrates WHY the paper worries about nonce reuse across
        // paths: two plaintexts sealed under the same (key, nonce) XOR to
        // the XOR of the plaintexts — a classic two-time pad.
        let aead = Aead::new(key(8));
        let nonce = [5u8; 12];
        let c1 = aead.seal(&nonce, b"", b"AAAAAAAA");
        let c2 = aead.seal(&nonce, b"", b"BBBBBBBB");
        let xored: Vec<u8> = c1.iter().zip(&c2).take(8).map(|(a, b)| a ^ b).collect();
        let expected: Vec<u8> = b"AAAAAAAA"
            .iter()
            .zip(b"BBBBBBBB")
            .map(|(a, b)| a ^ b)
            .collect();
        assert_eq!(xored, expected);
    }

    /// The original byte-at-a-time keystream XOR, kept verbatim as the
    /// compatibility oracle for the word-at-a-time rewrite.
    fn keystream_xor_bytewise(k: &Key, nonce: &[u8; 12], data: &mut [u8]) {
        let mut rng = mpquic_util::DetRng::new(stream_seed(k, nonce, 0x5EA1));
        let mut ks = [0u8; 64];
        for chunk in data.chunks_mut(64) {
            let ks = &mut ks[..chunk.len()];
            rng.fill_bytes(ks);
            for (d, k) in chunk.iter_mut().zip(ks.iter()) {
                *d ^= k;
            }
        }
    }

    #[test]
    fn word_xor_keystream_is_byte_exact_with_old_impl() {
        // Every length across several 64-byte chunk boundaries, including
        // the 1..7-byte tails the word loop leaves to the remainder path.
        let k = key(0x5A);
        let aead = Aead::new(k);
        let nonce = [0x42u8; 12];
        for len in 0..=200usize {
            let plain: Vec<u8> = (0..len).map(|i| (i as u8).wrapping_mul(31)).collect();
            let mut via_new = plain.clone();
            aead.keystream_xor(&nonce, &mut via_new);
            let mut via_old = plain.clone();
            keystream_xor_bytewise(&k, &nonce, &mut via_old);
            assert_eq!(via_new, via_old, "keystream diverged at len {len}");
        }
    }

    #[test]
    fn sealed_wire_bytes_unchanged_by_word_xor() {
        // Pin actual wire output: ciphertexts sealed before the rewrite
        // must still open, i.e. seal(open(x)) is stable across lengths.
        let aead = Aead::new(key(9));
        let nonce = [3u8; 12];
        let plaintext: Vec<u8> = (0..130u8).collect();
        let sealed = aead.seal(&nonce, b"hdr", &plaintext);
        let mut expected = plaintext.clone();
        keystream_xor_bytewise(&key(9), &nonce, &mut expected);
        assert_eq!(&sealed[..plaintext.len()], &expected[..]);
        assert_eq!(aead.open(&nonce, b"hdr", &sealed).unwrap(), plaintext);
    }

    proptest! {
        #[test]
        fn prop_word_xor_matches_bytewise(
            k in any::<[u8; 32]>(),
            nonce in any::<[u8; 12]>(),
            data in proptest::collection::vec(any::<u8>(), 0..300),
        ) {
            let mut data = data;
            let mut oracle = data.clone();
            Aead::new(k).keystream_xor(&nonce, &mut data);
            keystream_xor_bytewise(&k, &nonce, &mut oracle);
            prop_assert_eq!(data, oracle);
        }

        #[test]
        fn prop_round_trip(
            k in any::<[u8; 32]>(),
            nonce in any::<[u8; 12]>(),
            aad in proptest::collection::vec(any::<u8>(), 0..64),
            plaintext in proptest::collection::vec(any::<u8>(), 0..512),
        ) {
            let aead = Aead::new(k);
            let sealed = aead.seal(&nonce, &aad, &plaintext);
            prop_assert_eq!(sealed.len(), plaintext.len() + TAG_SIZE);
            let opened = aead.open(&nonce, &aad, &sealed).unwrap();
            prop_assert_eq!(opened, plaintext);
        }

        #[test]
        fn prop_bit_flip_detected(
            k in any::<[u8; 32]>(),
            plaintext in proptest::collection::vec(any::<u8>(), 1..64),
            flip_byte in 0usize..64,
            flip_bit in 0u8..8,
        ) {
            let aead = Aead::new(k);
            let mut sealed = aead.seal(&[0; 12], b"aad", &plaintext);
            let idx = flip_byte % sealed.len();
            sealed[idx] ^= 1 << flip_bit;
            prop_assert_eq!(
                aead.open(&[0; 12], b"aad", &sealed),
                Err(CryptoError::AuthenticationFailed)
            );
        }
    }
}
