//! Deterministic operation schedules.
//!
//! [`build_schedule`] expands a [`Scenario`] into a flat, time-sorted
//! list of [`Op`]s using only a seeded [`DetRng`]: the same scenario
//! and seed always yield byte-identical schedules, so two runs differ
//! only in how the system under test absorbs the load. Arrival times
//! are *scheduled* (open loop) — the runner charges any lag between
//! the scheduled instant and actual completion to the operation's
//! latency, which is what makes tail percentiles honest under
//! overload.

use crate::scenario::{Scenario, ScenarioKind};
use mpquic_util::DetRng;

/// One request/response exchange the runner must perform.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Op {
    /// Scheduled start, µs from run start.
    pub at_us: u64,
    /// Logical connection index the op rides on.
    pub conn: usize,
    /// Request payload bytes.
    pub req_bytes: usize,
    /// Response payload bytes the server must return.
    pub resp_bytes: usize,
    /// True on each connection's last op: the request carries
    /// `FLAG_FINAL` so the server records a clean completion before
    /// the client closes.
    pub last: bool,
    /// The client rebinds its local address (fresh ephemeral port)
    /// immediately before issuing this op — the mobility scenario's
    /// NAT-rebinding injection; always false elsewhere.
    pub rebind: bool,
}

/// A fully expanded scenario: the op timeline plus derived load
/// figures.
#[derive(Debug, Clone)]
pub struct Schedule {
    /// All ops, sorted by `at_us` (ties broken by conn index).
    pub ops: Vec<Op>,
    /// Number of distinct logical connections referenced.
    pub conns: usize,
    /// Offered operation rate over the schedule's span, per second.
    pub offered_rps: f64,
    /// Scheduled span, µs (last arrival time).
    pub span_us: u64,
}

/// Expands `scenario` into a deterministic schedule.
pub fn build_schedule(scenario: &Scenario, seed: u64) -> Schedule {
    let mut rng = DetRng::new(seed).fork(0x10ad);
    let mut ops: Vec<Op> = Vec::new();
    let conns;

    match scenario.kind {
        ScenarioKind::RequestResponse {
            conns: n,
            requests_per_conn,
        } => {
            conns = n;
            let mut start_us = 0u64;
            for conn in 0..n {
                // Sessions arrive per the arrival process; requests
                // within a session are separated by think time.
                start_us += scenario.arrivals.next_gap_us(&mut rng);
                let mut at = start_us;
                for req in 0..requests_per_conn {
                    ops.push(Op {
                        at_us: at,
                        conn,
                        req_bytes: scenario.req_size.sample(&mut rng),
                        resp_bytes: scenario.resp_size.sample(&mut rng).max(1),
                        last: req + 1 == requests_per_conn,
                        rebind: false,
                    });
                    at += scenario.think.sample(&mut rng);
                }
            }
        }
        ScenarioKind::Streaming {
            conns: n,
            chunks_per_conn,
        } => {
            conns = n;
            let mut start_us = 0u64;
            for conn in 0..n {
                start_us += scenario.arrivals.next_gap_us(&mut rng);
                let mut at = start_us;
                for chunk in 0..chunks_per_conn {
                    ops.push(Op {
                        at_us: at,
                        conn,
                        req_bytes: scenario.req_size.sample(&mut rng),
                        resp_bytes: scenario.resp_size.sample(&mut rng).max(1),
                        last: chunk + 1 == chunks_per_conn,
                        rebind: false,
                    });
                    at += scenario.think.sample(&mut rng);
                }
            }
        }
        ScenarioKind::Incast {
            fan_in,
            waves,
            wave_interval_us,
        } => {
            conns = fan_in;
            for wave in 0..waves {
                let at = wave as u64 * wave_interval_us;
                for conn in 0..fan_in {
                    // Every sender fires at the same scheduled
                    // instant — that synchrony is the point.
                    ops.push(Op {
                        at_us: at,
                        conn,
                        req_bytes: scenario.req_size.sample(&mut rng),
                        resp_bytes: scenario.resp_size.sample(&mut rng).max(1),
                        last: wave + 1 == waves,
                        rebind: false,
                    });
                }
            }
        }
        ScenarioKind::Mobility {
            conns: n,
            requests_per_conn,
            rebinds,
        } => {
            conns = n;
            let mut start_us = 0u64;
            for conn in 0..n {
                start_us += scenario.arrivals.next_gap_us(&mut rng);
                let mut at = start_us;
                for req in 0..requests_per_conn {
                    // Rebind markers sit at the evenly spaced interior
                    // points of the request sequence (thirds for two
                    // rebinds), so every migration happens with the
                    // transfer mid-flight rather than at the edges.
                    let rebind = (1..=rebinds)
                        .any(|k| req > 0 && req == k * requests_per_conn / (rebinds + 1));
                    ops.push(Op {
                        at_us: at,
                        conn,
                        req_bytes: scenario.req_size.sample(&mut rng),
                        resp_bytes: scenario.resp_size.sample(&mut rng).max(1),
                        last: req + 1 == requests_per_conn,
                        rebind,
                    });
                    at += scenario.think.sample(&mut rng);
                }
            }
        }
        ScenarioKind::Churn { conns: n } => {
            conns = n;
            let mut at = 0u64;
            for conn in 0..n {
                at += scenario.arrivals.next_gap_us(&mut rng);
                ops.push(Op {
                    at_us: at,
                    conn,
                    req_bytes: scenario.req_size.sample(&mut rng),
                    resp_bytes: scenario.resp_size.sample(&mut rng).max(1),
                    last: true,
                    rebind: false,
                });
            }
        }
    }

    ops.sort_by_key(|op| (op.at_us, op.conn));
    let span_us = ops.last().map(|op| op.at_us).unwrap_or(0);
    let offered_rps = if span_us > 0 {
        ops.len() as f64 / (span_us as f64 / 1e6)
    } else {
        ops.len() as f64
    };
    Schedule {
        ops,
        conns,
        offered_rps,
        span_us,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::catalog;

    #[test]
    fn schedules_are_deterministic_per_seed() {
        for scenario in catalog(true) {
            let a = build_schedule(&scenario, 42);
            let b = build_schedule(&scenario, 42);
            assert_eq!(a.ops, b.ops, "{}", scenario.name);
            // Scenarios with stochastic elements must vary with the
            // seed; streaming/incast are deliberately all-fixed.
            if matches!(scenario.name, "request_response" | "churn") {
                let c = build_schedule(&scenario, 43);
                assert_ne!(a.ops, c.ops, "{} should vary with seed", scenario.name);
            }
        }
    }

    #[test]
    fn schedules_are_sorted_and_sized() {
        for scenario in catalog(true) {
            let sched = build_schedule(&scenario, 7);
            assert!(!sched.ops.is_empty(), "{}", scenario.name);
            assert!(
                sched.ops.windows(2).all(|w| w[0].at_us <= w[1].at_us),
                "{} not time-sorted",
                scenario.name
            );
            assert!(
                sched.ops.iter().all(|op| op.conn < sched.conns),
                "{} conn index out of range",
                scenario.name
            );
        }
    }

    #[test]
    fn every_conn_has_exactly_one_final_op() {
        for scenario in catalog(true) {
            let sched = build_schedule(&scenario, 9);
            for conn in 0..sched.conns {
                let ops: Vec<&Op> = sched.ops.iter().filter(|op| op.conn == conn).collect();
                assert!(!ops.is_empty(), "{} conn {conn} has no ops", scenario.name);
                let finals = ops.iter().filter(|op| op.last).count();
                assert_eq!(finals, 1, "{} conn {conn}", scenario.name);
                // The final op is the conn's last in time order.
                let max_at = ops.iter().map(|op| op.at_us).max().unwrap();
                let last_op = ops.iter().find(|op| op.last).unwrap();
                assert_eq!(last_op.at_us, max_at, "{} conn {conn}", scenario.name);
            }
        }
    }

    #[test]
    fn mobility_plants_exactly_the_requested_rebinds() {
        let scenario = catalog(true)
            .into_iter()
            .find(|s| s.name == "mobility")
            .unwrap();
        let ScenarioKind::Mobility { rebinds, .. } = scenario.kind else {
            unreachable!();
        };
        let sched = build_schedule(&scenario, 11);
        for conn in 0..sched.conns {
            let ops: Vec<&Op> = sched.ops.iter().filter(|op| op.conn == conn).collect();
            let marked = ops.iter().filter(|op| op.rebind).count();
            assert_eq!(marked, rebinds, "conn {conn}");
            // Never on the first or last op: a migration needs traffic
            // on both sides to prove the path survived it.
            assert!(!ops.first().unwrap().rebind, "conn {conn}");
            assert!(!ops.last().unwrap().rebind, "conn {conn}");
        }
        // Every other scenario stays rebind-free.
        for scenario in catalog(true) {
            if scenario.name == "mobility" {
                continue;
            }
            let sched = build_schedule(&scenario, 11);
            assert!(
                sched.ops.iter().all(|op| !op.rebind),
                "{} must not rebind",
                scenario.name
            );
        }
    }

    #[test]
    fn incast_waves_share_an_instant() {
        let scenario = catalog(true)
            .into_iter()
            .find(|s| s.name == "incast")
            .unwrap();
        let sched = build_schedule(&scenario, 3);
        let mut instants: Vec<u64> = sched.ops.iter().map(|op| op.at_us).collect();
        instants.dedup();
        // One distinct instant per wave, each fully synchronized.
        if let ScenarioKind::Incast { fan_in, waves, .. } = scenario.kind {
            assert_eq!(instants.len(), waves);
            assert_eq!(sched.ops.len(), fan_in * waves);
        } else {
            unreachable!();
        }
    }
}
