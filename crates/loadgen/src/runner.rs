//! The load runner: executes a [`Schedule`] against a real
//! [`Endpoint`] over loopback.
//!
//! One server endpoint (the sharded demux from `mpquic-io`, running
//! [`RpcServerApp`] on every accepted connection) and a small pool of
//! client threads, each driving its partition of the logical
//! connections through non-blocking [`Driver`] loops. Arrivals are
//! **open loop**: an op whose scheduled instant has passed is issued
//! immediately regardless of what is still in flight, and its latency
//! is measured from the *scheduled* instant — queueing delay under
//! overload lands in the percentiles instead of silently throttling
//! the offered load.

use crate::scenario::Scenario;
use crate::schedule::{build_schedule, Op, Schedule};
use mpquic_core::{Config, PathId, SchedulerKind};
use mpquic_harness::QuicTransport;
use mpquic_io::rpc::{RpcCall, RpcServerApp};
use mpquic_io::{quic_client, Driver, Endpoint, EndpointReport, EndpointSnapshot, FlightKind};
use mpquic_telemetry::LogHistogram;
use mpquic_util::DetRng;
use std::net::SocketAddr;
use std::time::{Duration, Instant};

/// How the runner is wired, independent of the workload itself.
#[derive(Debug, Clone, Copy)]
pub struct RunOptions {
    /// Master seed: schedules, payload sizes, and connection seeds all
    /// derive from it, so a run is reproducible end to end.
    pub seed: u64,
    /// Endpoint worker shards (0 = auto; 1 selects the unified
    /// in-thread fast path).
    pub workers: usize,
    /// Client driver threads; logical connections are partitioned
    /// round-robin across them.
    pub client_threads: usize,
    /// Scheduler policy applied to both the server endpoint and every
    /// client connection; `None` keeps the config default.
    pub scheduler: Option<SchedulerKind>,
}

impl Default for RunOptions {
    fn default() -> RunOptions {
        RunOptions {
            seed: 1,
            workers: 0,
            client_threads: 2,
            scheduler: None,
        }
    }
}

/// Everything a scenario run produced, ready for reporting.
#[derive(Debug, Clone)]
pub struct ScenarioOutcome {
    /// Scenario name (report key prefix).
    pub name: &'static str,
    /// Logical connections the schedule referenced.
    pub conns: usize,
    /// Ops in the schedule.
    pub ops_total: usize,
    /// Ops that completed with an OK, intact response.
    pub ops_ok: usize,
    /// Ops that completed wrong (bad status, checksum mismatch,
    /// transport error) or were abandoned on a failed connection.
    pub errors: usize,
    /// Ops still outstanding past the scenario timeout.
    pub timeouts: usize,
    /// Connections that finished their session and closed cleanly.
    pub conns_completed: usize,
    /// Connections abandoned after a timeout or transport error.
    pub conns_failed: usize,
    /// Offered op rate from the schedule, per second.
    pub offered_rps: f64,
    /// Completed-OK op rate over the measured wall time, per second.
    pub achieved_rps: f64,
    /// Connection close rate the server observed, per second.
    pub conns_per_sec: f64,
    /// Wall time from first scheduled instant to last client-thread
    /// exit, seconds.
    pub elapsed_s: f64,
    /// Open-loop op latency distribution, µs.
    pub latency: LogHistogram,
    /// p50/p99/p99.9/max over `latency`, µs.
    pub p50_us: u64,
    /// 99th percentile latency, µs.
    pub p99_us: u64,
    /// 99.9th percentile latency, µs.
    pub p999_us: u64,
    /// Worst observed latency, µs.
    pub max_us: u64,
    /// The scenario's p99 SLO, µs.
    pub slo_p99_us: u64,
    /// SLO verdict: p99 within target and zero errors/timeouts.
    pub slo_pass: bool,
    /// Server-side counters at drain time.
    pub endpoint: EndpointSnapshot,
    /// What this scenario alone did to the server: counters at drain
    /// time minus counters at bind time. On a fresh endpoint the two
    /// agree; the delta is what reports embed so an SLO failure
    /// arrives with its own drop/backpressure context.
    pub delta: EndpointSnapshot,
    /// Full per-shard server report.
    pub report: EndpointReport,
    /// The server's flight-recorder dump (JSON lines) taken at
    /// shutdown — non-empty context for SLO failures and shed load.
    pub flight: String,
}

/// Per-connection client state inside a worker thread.
struct ConnState {
    driver: Option<Driver<QuicTransport>>,
    /// In-flight calls with their scheduled instants (µs).
    inflight: Vec<(RpcCall, u64)>,
    /// Ops issued so far (including abandoned ones).
    issued: usize,
    /// Total ops this connection owns.
    total: usize,
    /// Set once the connection is being abandoned; later ops count as
    /// errors without touching the wire.
    failed: bool,
    /// Clean or failure close initiated; waiting for it to land.
    closing: Option<Instant>,
}

/// What one client thread hands back.
struct ThreadTally {
    hist: LogHistogram,
    ops_ok: usize,
    errors: usize,
    timeouts: usize,
    conns_completed: usize,
    conns_failed: usize,
}

/// Grace given to a close handshake before the driver is dropped; the
/// server's idle timer reaps anything we abandon.
const CLOSE_GRACE: Duration = Duration::from_millis(250);

/// How long a rebind op will pump its connection waiting for the
/// handshake before giving up and condemning the connection (loopback
/// handshakes finish in microseconds; this only bites when the server
/// is wedged).
const REBIND_FLUSH_GRACE: Duration = Duration::from_secs(5);

/// How long after the last scheduled instant plus the op timeout the
/// whole run may take before the runner bails out.
const RUN_SLACK: Duration = Duration::from_secs(10);

/// Post-run drain: how long to wait for `closed == accepted` on the
/// server before shutting down anyway.
const DRAIN: Duration = Duration::from_secs(3);

/// Runs one scenario against a fresh loopback endpoint.
pub fn run_scenario(scenario: &Scenario, opts: &RunOptions) -> Result<ScenarioOutcome, String> {
    let schedule = build_schedule(scenario, opts.seed);
    let threads = opts.client_threads.max(1).min(schedule.conns.max(1));

    let mut builder = Config::builder()
        .single_path()
        .max_incoming_connections(schedule.conns + 8)
        .worker_shards(opts.workers);
    if let Some(kind) = opts.scheduler {
        builder = builder.scheduler(kind);
    }
    let config = builder.build().map_err(|e| format!("server config: {e}"))?;
    let listen: SocketAddr = "127.0.0.1:0".parse().expect("loopback literal");
    let endpoint = Endpoint::bind(
        &[listen],
        config,
        opts.seed ^ 0x5e7e_0e9d,
        Box::new(|_cid| Box::new(RpcServerApp::new())),
    )
    .map_err(|e| format!("endpoint bind: {e}"))?;
    let server = endpoint.local_addrs()[0];
    let plane = endpoint.plane();
    let before = endpoint.stats();

    let deadline = Duration::from_micros(schedule.span_us + scenario.timeout_us) + RUN_SLACK;
    let epoch = Instant::now();
    let mut handles = Vec::with_capacity(threads);
    for t in 0..threads {
        let ops: Vec<Op> = schedule
            .ops
            .iter()
            .copied()
            .filter(|op| op.conn % threads == t)
            .collect();
        let timeout_us = scenario.timeout_us;
        let seed = opts.seed;
        let scheduler = opts.scheduler;
        handles.push(std::thread::spawn(move || {
            run_client_thread(ops, server, epoch, deadline, timeout_us, seed, scheduler)
        }));
    }

    let mut tally = ThreadTally {
        hist: LogHistogram::default(),
        ops_ok: 0,
        errors: 0,
        timeouts: 0,
        conns_completed: 0,
        conns_failed: 0,
    };
    for handle in handles {
        let part = handle
            .join()
            .map_err(|_| "client thread panicked".to_string())?;
        tally.hist.merge(&part.hist);
        tally.ops_ok += part.ops_ok;
        tally.errors += part.errors;
        tally.timeouts += part.timeouts;
        tally.conns_completed += part.conns_completed;
        tally.conns_failed += part.conns_failed;
    }
    let elapsed_s = epoch.elapsed().as_secs_f64();

    // Drain: give the server time to retire every accepted connection
    // so `closed == accepted` holds in the report (the harness's
    // conns/sec cross-check).
    let drain_deadline = Instant::now() + DRAIN;
    loop {
        let stats = endpoint.stats();
        if stats.closed >= stats.accepted || Instant::now() >= drain_deadline {
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    let qs = tally.hist.quantiles(&[0.50, 0.99, 0.999]);
    let p99_us = qs[1];
    let slo_pass = p99_us <= scenario.slo_p99_us && tally.errors == 0 && tally.timeouts == 0;
    if !slo_pass {
        // The failure lands in the flight recorder before the dump is
        // taken, so the triage trail starts with the verdict itself.
        plane.recorder.record(FlightKind::SloFail, 0, 0, p99_us);
    }
    let report = endpoint.shutdown();
    let snapshot = report.totals;
    let flight = plane.recorder.dump_json_lines();

    Ok(ScenarioOutcome {
        name: scenario.name,
        conns: schedule.conns,
        ops_total: schedule.ops.len(),
        ops_ok: tally.ops_ok,
        errors: tally.errors,
        timeouts: tally.timeouts,
        conns_completed: tally.conns_completed,
        conns_failed: tally.conns_failed,
        offered_rps: schedule.offered_rps,
        achieved_rps: if elapsed_s > 0.0 {
            tally.ops_ok as f64 / elapsed_s
        } else {
            0.0
        },
        conns_per_sec: if elapsed_s > 0.0 {
            snapshot.closed as f64 / elapsed_s
        } else {
            0.0
        },
        elapsed_s,
        p50_us: qs[0],
        p99_us,
        p999_us: qs[2],
        max_us: tally.hist.max(),
        latency: tally.hist,
        slo_p99_us: scenario.slo_p99_us,
        slo_pass,
        endpoint: snapshot,
        delta: snapshot.delta(&before),
        report,
        flight,
    })
}

/// Builds and runs one scenario by way of [`run_scenario`], using the
/// schedule derived from `scenario` and `opts.seed`.
pub fn schedule_for(scenario: &Scenario, seed: u64) -> Schedule {
    build_schedule(scenario, seed)
}

fn run_client_thread(
    ops: Vec<Op>,
    server: SocketAddr,
    epoch: Instant,
    deadline: Duration,
    timeout_us: u64,
    seed: u64,
    scheduler: Option<SchedulerKind>,
) -> ThreadTally {
    let mut tally = ThreadTally {
        hist: LogHistogram::default(),
        ops_ok: 0,
        errors: 0,
        timeouts: 0,
        conns_completed: 0,
        conns_failed: 0,
    };
    if ops.is_empty() {
        return tally;
    }

    // Request payloads are slices of one deterministic pattern buffer;
    // content is irrelevant (the checksum echo is computed over
    // whatever we send) so sharing one allocation keeps the client
    // side quiet.
    let max_req = ops.iter().map(|op| op.req_bytes).max().unwrap_or(0).max(1);
    let payload_buf = mpquic_io::rpc::response_pattern(max_req, seed);

    let mut conns: std::collections::HashMap<usize, ConnState> = std::collections::HashMap::new();
    for op in &ops {
        conns
            .entry(op.conn)
            .or_insert_with(|| ConnState {
                driver: None,
                inflight: Vec::new(),
                issued: 0,
                total: 0,
                failed: false,
                closing: None,
            })
            .total += 1;
    }

    let mut next_op = 0usize;
    loop {
        let now = epoch.elapsed();
        let now_us = now.as_micros() as u64;
        let mut progressed = false;

        // 1. Issue every due op.
        while next_op < ops.len() && ops[next_op].at_us <= now_us {
            let op = ops[next_op];
            next_op += 1;
            let state = conns.get_mut(&op.conn).expect("conn state");
            state.issued += 1;
            if state.failed {
                tally.errors += 1;
                continue;
            }
            if state.driver.is_none() {
                let mut builder = Config::builder().single_path();
                if let Some(kind) = scheduler {
                    builder = builder.scheduler(kind);
                }
                let config = builder.build().expect("client config");
                let local: SocketAddr = "127.0.0.1:0".parse().expect("loopback literal");
                let conn_seed = DetRng::new(seed ^ 0x00c1_1e47)
                    .fork(op.conn as u64)
                    .next_u64();
                match quic_client(config, &[local], server, conn_seed) {
                    Ok(driver) => state.driver = Some(driver),
                    Err(_) => {
                        state.failed = true;
                        tally.errors += 1;
                        tally.conns_failed += 1;
                        continue;
                    }
                }
            }
            let driver = state.driver.as_mut().expect("driver just ensured");
            if op.rebind {
                // NAT-rebinding injection: drop the socket, bind a
                // fresh ephemeral port, and migrate the path onto it.
                // The server must re-validate the new address before
                // this op's response can flow — that quarantine is
                // exactly what the mobility SLO measures.
                //
                // A rebind the server never observes is not a
                // migration: when this worker falls behind the
                // open-loop schedule, rebind ops can land back to back
                // before the handshake's first flight (or the previous
                // migration's PING probe) ever left the current
                // socket. Pump until the connection is established — a
                // real client never migrates mid-handshake (RFC 9000
                // §9) — and give queued egress one flush from the
                // current address, so the server sees every address
                // the session visits.
                let flushed = driver
                    .run_until(REBIND_FLUSH_GRACE, |t| t.conn.is_established())
                    .unwrap_or(false)
                    && driver.step().is_ok();
                if !flushed || driver.rebind_path(PathId::INITIAL).is_err() {
                    state.failed = true;
                    tally.errors += 1 + state.inflight.len();
                    state.inflight.clear();
                    tally.conns_failed += 1;
                    state.driver = None;
                    continue;
                }
            }
            let call = RpcCall::start(
                driver.connection_mut(),
                &payload_buf[..op.req_bytes.min(payload_buf.len())],
                op.resp_bytes as u32,
                op.last,
            );
            state.inflight.push((call, op.at_us));
            progressed = true;
        }

        // 2. Pump every live connection.
        let mut all_done = next_op >= ops.len();
        for state in conns.values_mut() {
            let Some(driver) = state.driver.as_mut() else {
                if state.issued < state.total {
                    all_done = false;
                }
                continue;
            };
            all_done = false;

            let step_err = driver.step().is_err();
            let now_us = epoch.elapsed().as_micros() as u64;

            // Complete calls.
            let mut idx = 0;
            while idx < state.inflight.len() {
                let (call, at_us) = &mut state.inflight[idx];
                if let Some(verdict) = call.poll(driver.connection_mut()) {
                    let latency = now_us.saturating_sub(*at_us).max(1);
                    tally.hist.record(latency);
                    if verdict.ok && verdict.intact {
                        tally.ops_ok += 1;
                    } else {
                        tally.errors += 1;
                    }
                    state.inflight.swap_remove(idx);
                    progressed = true;
                } else if now_us.saturating_sub(*at_us) > timeout_us {
                    tally.timeouts += 1;
                    state.inflight.swap_remove(idx);
                    // The whole connection is condemned: remaining
                    // in-flight ops are errors, later scheduled ops
                    // will be counted as they come due.
                    tally.errors += state.inflight.len();
                    state.inflight.clear();
                    state.failed = true;
                    break;
                } else {
                    idx += 1;
                }
            }

            if step_err && !state.failed {
                tally.errors += state.inflight.len();
                state.inflight.clear();
                state.failed = true;
            }

            // Close when the session is over (cleanly) or condemned.
            if state.closing.is_none() && state.inflight.is_empty() {
                if state.failed {
                    driver.connection_mut().close(0x10ad, "loadgen abandoned");
                    state.closing = Some(Instant::now());
                } else if state.issued == state.total {
                    driver.connection_mut().close(0, "loadgen done");
                    state.closing = Some(Instant::now());
                }
            }
            if let Some(since) = state.closing {
                if driver.connection().is_closed() || since.elapsed() > CLOSE_GRACE {
                    state.driver = None;
                    if state.failed {
                        tally.conns_failed += 1;
                    } else {
                        tally.conns_completed += 1;
                    }
                    progressed = true;
                }
            }
        }

        if all_done {
            break;
        }
        if now >= deadline {
            // Bail out: everything still pending is a timeout.
            for state in conns.values_mut() {
                tally.timeouts += state.inflight.len();
                tally.errors += state.total.saturating_sub(state.issued);
                state.issued = state.total;
                state.inflight.clear();
                if state.driver.take().is_some() {
                    tally.conns_failed += 1;
                }
            }
            break;
        }
        if !progressed {
            // Sleep to the next scheduled instant, capped so in-flight
            // responses are still polled promptly.
            let until_next = if next_op < ops.len() {
                Duration::from_micros(ops[next_op].at_us.saturating_sub(now_us))
            } else {
                Duration::from_millis(1)
            };
            std::thread::sleep(
                until_next
                    .min(Duration::from_micros(500))
                    .max(Duration::from_micros(50)),
            );
        }
    }
    tally
}
