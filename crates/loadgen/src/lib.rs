//! `mpquic-loadgen`: a netbench-style workload harness for the
//! multipath QUIC endpoint.
//!
//! Where `mpquic-bench` measures datapath micro-costs and one bulk
//! transfer shape, this crate answers the deployment question: *what
//! latency do real request/response workloads see from the endpoint,
//! at what load, and does it hold an SLO?* It drives the actual
//! sharded [`mpquic_io::Endpoint`] over loopback sockets — no
//! simulator shortcuts — with declarative scenarios:
//!
//! * **request_response** — a population of long-lived connections,
//!   Poisson session arrivals, think-time-separated requests with
//!   bimodal sizes: the classic RPC mix.
//! * **streaming** — few connections pulling paced large chunks, the
//!   video-segment shape.
//! * **incast** — synchronized fan-in bursts that stress the demux
//!   queues and accept path.
//! * **churn** — many short-lived connections, one exchange each:
//!   connection setup/teardown rate.
//!
//! The pieces:
//!
//! * [`scenario`] — the declarative model: size/time distributions,
//!   arrival processes, the scenario catalog.
//! * [`schedule`] — expands a scenario + seed into a deterministic,
//!   time-sorted op list ([`schedule::build_schedule`]). Same seed,
//!   same schedule, byte for byte.
//! * [`runner`] — executes a schedule open-loop against a fresh
//!   loopback endpoint, measuring each op from its *scheduled*
//!   instant into a [`mpquic_telemetry::LogHistogram`].
//! * [`report`] — flat JSON reports whose keys feed
//!   [`mpquic_bench::gate`] for CI baselines, plus the SLO verdict.
//!
//! On the wire each op is one `mpq-rpc` exchange
//! ([`mpquic_io::rpc`]): a fresh bidirectional stream per request, a
//! checksum-echoing response of the requested size, and a FINAL flag
//! on each connection's last request so the server records a clean
//! completion before the client's close lands.

#![forbid(unsafe_code)]

pub mod report;
pub mod runner;
pub mod scenario;
pub mod schedule;

pub use report::render_report;
pub use runner::{run_scenario, RunOptions, ScenarioOutcome};
pub use scenario::{catalog, Arrivals, Scenario, ScenarioKind, SizeDist, TimeDist};
pub use schedule::{build_schedule, Op, Schedule};
