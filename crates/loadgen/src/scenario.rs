//! Declarative workload scenarios.
//!
//! A [`Scenario`] is a complete description of a workload — connection
//! population, arrival process, size and think-time distributions, SLO
//! target — from which [`crate::schedule::build_schedule`] derives a
//! deterministic operation timeline. The same scenario with the same
//! seed always produces the same schedule; what varies between runs is
//! only how fast the system under test absorbs it.

use mpquic_util::DetRng;

/// A discrete size distribution (bytes).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SizeDist {
    /// Every sample is the same size.
    Fixed(usize),
    /// Uniform over `[min, max]`.
    Uniform {
        /// Smallest sample.
        min: usize,
        /// Largest sample (inclusive).
        max: usize,
    },
    /// `small` with probability `1 - p_large`, else `large` — the
    /// classic RPC mix (mostly-small with a heavy tail).
    Bimodal {
        /// The common size.
        small: usize,
        /// The rare size.
        large: usize,
        /// Probability of drawing `large`, in `[0, 1]`.
        p_large: f64,
    },
}

impl SizeDist {
    /// Draws one sample.
    pub fn sample(&self, rng: &mut DetRng) -> usize {
        match *self {
            SizeDist::Fixed(n) => n,
            SizeDist::Uniform { min, max } => rng.range_u64(min as u64, max as u64) as usize,
            SizeDist::Bimodal {
                small,
                large,
                p_large,
            } => {
                if rng.bool(p_large) {
                    large
                } else {
                    small
                }
            }
        }
    }

    /// The distribution's mean, for offered-load arithmetic.
    pub fn mean(&self) -> f64 {
        match *self {
            SizeDist::Fixed(n) => n as f64,
            SizeDist::Uniform { min, max } => (min + max) as f64 / 2.0,
            SizeDist::Bimodal {
                small,
                large,
                p_large,
            } => small as f64 * (1.0 - p_large) + large as f64 * p_large,
        }
    }
}

/// A time distribution (microseconds) for think times and pacing gaps.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TimeDist {
    /// Always the same gap.
    Fixed {
        /// The gap, µs.
        us: u64,
    },
    /// Uniform over `[min_us, max_us]`.
    Uniform {
        /// Shortest gap, µs.
        min_us: u64,
        /// Longest gap, µs (inclusive).
        max_us: u64,
    },
    /// Exponential with the given mean — the memoryless think time of
    /// classic workload models.
    Exp {
        /// Mean gap, µs.
        mean_us: u64,
    },
}

impl TimeDist {
    /// Draws one gap.
    pub fn sample(&self, rng: &mut DetRng) -> u64 {
        match *self {
            TimeDist::Fixed { us } => us,
            TimeDist::Uniform { min_us, max_us } => rng.range_u64(min_us, max_us),
            TimeDist::Exp { mean_us } => {
                // Inverse transform; (1 - f64) keeps ln's argument
                // away from zero.
                let u = 1.0 - rng.f64();
                (-u.ln() * mean_us as f64) as u64
            }
        }
    }
}

/// The arrival process generating start times — open-loop: arrivals
/// come from the schedule, not from completions, so a slow system
/// accumulates queueing delay instead of silently throttling the load
/// (the property that makes latency percentiles honest).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Arrivals {
    /// Deterministic arrivals every `1/per_sec` seconds.
    FixedRate {
        /// Arrival rate, per second.
        per_sec: f64,
    },
    /// Poisson arrivals (exponential inter-arrival gaps) at the given
    /// mean rate.
    Poisson {
        /// Mean arrival rate, per second.
        per_sec: f64,
    },
}

impl Arrivals {
    /// Draws the gap to the next arrival, µs.
    pub fn next_gap_us(&self, rng: &mut DetRng) -> u64 {
        match *self {
            Arrivals::FixedRate { per_sec } => (1e6 / per_sec.max(1e-9)) as u64,
            Arrivals::Poisson { per_sec } => {
                let u = 1.0 - rng.f64();
                (-u.ln() / per_sec.max(1e-9) * 1e6) as u64
            }
        }
    }

    /// The mean rate, per second.
    pub fn per_sec(&self) -> f64 {
        match *self {
            Arrivals::FixedRate { per_sec } | Arrivals::Poisson { per_sec } => per_sec,
        }
    }
}

/// The workload shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScenarioKind {
    /// A population of long-lived connections, each issuing a session
    /// of requests separated by think time. Sizes come from the
    /// scenario's distributions.
    RequestResponse {
        /// Concurrent client connections.
        conns: usize,
        /// Requests per connection.
        requests_per_conn: usize,
    },
    /// Few connections, each pulling a paced sequence of large chunks
    /// — a video-segment / bulk-feed shape where per-chunk latency is
    /// the SLO.
    Streaming {
        /// Concurrent streaming connections.
        conns: usize,
        /// Chunks per connection.
        chunks_per_conn: usize,
    },
    /// `fan_in` connections fire one request at exactly the same
    /// instant, repeated every wave — the synchronized burst that
    /// stresses demux queues and accept paths.
    Incast {
        /// Synchronized senders.
        fan_in: usize,
        /// Number of bursts.
        waves: usize,
        /// Gap between bursts, µs.
        wave_interval_us: u64,
    },
    /// Many short-lived connections: one small exchange each, then
    /// close. Connection setup/teardown rate is the metric.
    Churn {
        /// Total connections over the run.
        conns: usize,
    },
    /// Mobile clients: a request/response session whose connection
    /// rebinds its local address mid-session (NAT rebinding / WiFi→LTE
    /// handover), `rebinds` times at evenly spaced points. The server
    /// must quarantine and validate each rebound path and rotate the
    /// connection ID without dropping the connection — zero lost
    /// connections and a bounded p99 across rebinds is the SLO.
    Mobility {
        /// Concurrent client connections.
        conns: usize,
        /// Requests per connection.
        requests_per_conn: usize,
        /// Address rebinds per connection over its session.
        rebinds: usize,
    },
}

impl ScenarioKind {
    /// Short stable name, used in reports and gate keys.
    pub fn name(&self) -> &'static str {
        match self {
            ScenarioKind::RequestResponse { .. } => "request_response",
            ScenarioKind::Streaming { .. } => "streaming",
            ScenarioKind::Incast { .. } => "incast",
            ScenarioKind::Churn { .. } => "churn",
            ScenarioKind::Mobility { .. } => "mobility",
        }
    }
}

/// One complete workload description.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Report name (defaults to the kind's name).
    pub name: &'static str,
    /// The workload shape.
    pub kind: ScenarioKind,
    /// Connection (or, for request/response, session) arrival process.
    pub arrivals: Arrivals,
    /// Request payload size distribution.
    pub req_size: SizeDist,
    /// Response payload size distribution.
    pub resp_size: SizeDist,
    /// Think time between a connection's consecutive requests
    /// (pacing gap for streaming; unused for incast and churn).
    pub think: TimeDist,
    /// The latency SLO: scenario passes when p99 stays at or below
    /// this, with zero errors and timeouts.
    pub slo_p99_us: u64,
    /// Per-operation timeout: an exchange outstanding longer than this
    /// past its scheduled start counts as a timeout and fails its
    /// connection.
    pub timeout_us: u64,
}

/// The built-in catalog: the five workload shapes at full or smoke
/// scale. Smoke keeps every shape but cuts the population so the whole
/// suite finishes in seconds on a 1-core CI runner.
pub fn catalog(smoke: bool) -> Vec<Scenario> {
    if smoke {
        vec![
            Scenario {
                name: "request_response",
                kind: ScenarioKind::RequestResponse {
                    conns: 4,
                    requests_per_conn: 16,
                },
                arrivals: Arrivals::Poisson { per_sec: 16.0 },
                req_size: SizeDist::Bimodal {
                    small: 256,
                    large: 4096,
                    p_large: 0.1,
                },
                resp_size: SizeDist::Uniform {
                    min: 256,
                    max: 2048,
                },
                think: TimeDist::Exp { mean_us: 2_000 },
                slo_p99_us: 250_000,
                timeout_us: 5_000_000,
            },
            Scenario {
                name: "streaming",
                kind: ScenarioKind::Streaming {
                    conns: 2,
                    chunks_per_conn: 8,
                },
                arrivals: Arrivals::FixedRate { per_sec: 4.0 },
                req_size: SizeDist::Fixed(64),
                resp_size: SizeDist::Fixed(16 << 10),
                think: TimeDist::Fixed { us: 5_000 },
                slo_p99_us: 500_000,
                timeout_us: 5_000_000,
            },
            Scenario {
                name: "incast",
                kind: ScenarioKind::Incast {
                    fan_in: 8,
                    waves: 2,
                    wave_interval_us: 100_000,
                },
                arrivals: Arrivals::FixedRate { per_sec: 1.0 },
                req_size: SizeDist::Fixed(128),
                resp_size: SizeDist::Fixed(8 << 10),
                think: TimeDist::Fixed { us: 0 },
                slo_p99_us: 250_000,
                timeout_us: 5_000_000,
            },
            Scenario {
                name: "churn",
                kind: ScenarioKind::Churn { conns: 24 },
                arrivals: Arrivals::Poisson { per_sec: 50.0 },
                req_size: SizeDist::Fixed(256),
                resp_size: SizeDist::Fixed(256),
                think: TimeDist::Fixed { us: 0 },
                slo_p99_us: 250_000,
                timeout_us: 5_000_000,
            },
            Scenario {
                name: "mobility",
                kind: ScenarioKind::Mobility {
                    conns: 4,
                    requests_per_conn: 12,
                    rebinds: 2,
                },
                arrivals: Arrivals::Poisson { per_sec: 16.0 },
                req_size: SizeDist::Fixed(512),
                resp_size: SizeDist::Fixed(4096),
                think: TimeDist::Exp { mean_us: 2_000 },
                slo_p99_us: 500_000,
                timeout_us: 5_000_000,
            },
        ]
    } else {
        vec![
            Scenario {
                name: "request_response",
                kind: ScenarioKind::RequestResponse {
                    conns: 8,
                    requests_per_conn: 64,
                },
                arrivals: Arrivals::Poisson { per_sec: 16.0 },
                req_size: SizeDist::Bimodal {
                    small: 256,
                    large: 4096,
                    p_large: 0.1,
                },
                resp_size: SizeDist::Uniform {
                    min: 256,
                    max: 2048,
                },
                think: TimeDist::Exp { mean_us: 2_000 },
                slo_p99_us: 100_000,
                timeout_us: 10_000_000,
            },
            Scenario {
                name: "streaming",
                kind: ScenarioKind::Streaming {
                    conns: 2,
                    chunks_per_conn: 32,
                },
                arrivals: Arrivals::FixedRate { per_sec: 4.0 },
                req_size: SizeDist::Fixed(64),
                resp_size: SizeDist::Fixed(64 << 10),
                think: TimeDist::Fixed { us: 5_000 },
                slo_p99_us: 250_000,
                timeout_us: 10_000_000,
            },
            Scenario {
                name: "incast",
                kind: ScenarioKind::Incast {
                    fan_in: 16,
                    waves: 4,
                    wave_interval_us: 100_000,
                },
                arrivals: Arrivals::FixedRate { per_sec: 1.0 },
                req_size: SizeDist::Fixed(128),
                resp_size: SizeDist::Fixed(8 << 10),
                think: TimeDist::Fixed { us: 0 },
                slo_p99_us: 150_000,
                timeout_us: 10_000_000,
            },
            Scenario {
                name: "churn",
                kind: ScenarioKind::Churn { conns: 96 },
                arrivals: Arrivals::Poisson { per_sec: 100.0 },
                req_size: SizeDist::Fixed(256),
                resp_size: SizeDist::Fixed(256),
                think: TimeDist::Fixed { us: 0 },
                slo_p99_us: 150_000,
                timeout_us: 10_000_000,
            },
            Scenario {
                name: "mobility",
                kind: ScenarioKind::Mobility {
                    conns: 16,
                    requests_per_conn: 24,
                    rebinds: 2,
                },
                arrivals: Arrivals::Poisson { per_sec: 32.0 },
                req_size: SizeDist::Fixed(512),
                resp_size: SizeDist::Fixed(4096),
                think: TimeDist::Exp { mean_us: 2_000 },
                slo_p99_us: 250_000,
                timeout_us: 10_000_000,
            },
        ]
    }
}

/// Looks a scenario up by name in the catalog.
pub fn by_name(name: &str, smoke: bool) -> Option<Scenario> {
    catalog(smoke).into_iter().find(|s| s.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_dists_sample_within_bounds() {
        let mut rng = DetRng::new(1);
        let u = SizeDist::Uniform { min: 10, max: 20 };
        for _ in 0..100 {
            let v = u.sample(&mut rng);
            assert!((10..=20).contains(&v));
        }
        let b = SizeDist::Bimodal {
            small: 1,
            large: 1000,
            p_large: 0.5,
        };
        let samples: Vec<usize> = (0..200).map(|_| b.sample(&mut rng)).collect();
        assert!(samples.contains(&1) && samples.contains(&1000));
        assert_eq!(SizeDist::Fixed(7).sample(&mut rng), 7);
    }

    #[test]
    fn poisson_gaps_have_roughly_the_right_mean() {
        let mut rng = DetRng::new(2);
        let arrivals = Arrivals::Poisson { per_sec: 100.0 };
        let n = 2000;
        let total: u64 = (0..n).map(|_| arrivals.next_gap_us(&mut rng)).sum();
        let mean = total as f64 / n as f64;
        // Expected 10_000 µs; 3-sigma of the sample mean is ~±670.
        assert!((9_000.0..11_000.0).contains(&mean), "mean gap {mean}");
    }

    #[test]
    fn catalog_has_all_five_kinds_in_both_scales() {
        for smoke in [false, true] {
            let names: Vec<&str> = catalog(smoke).iter().map(|s| s.name).collect();
            assert_eq!(
                names,
                [
                    "request_response",
                    "streaming",
                    "incast",
                    "churn",
                    "mobility"
                ],
                "smoke={smoke}"
            );
        }
        assert!(by_name("churn", true).is_some());
        assert!(by_name("mobility", true).is_some());
        assert!(by_name("nope", true).is_none());
    }
}
