//! JSON reports and SLO verdicts.
//!
//! Reports are flat, hand-formatted JSON — the same shape
//! `mpquic-bench` emits — so [`mpquic_bench::gate::parse_flat_key`]
//! can gate CI on any metric without a JSON dependency. Every gated
//! key is prefixed with its scenario name (`churn_p99_us`,
//! `request_response_achieved_rps`, …) so keys stay unique in the
//! file.

use crate::runner::ScenarioOutcome;

/// Renders the full-suite report: one flat block per scenario plus a
/// suite-level verdict.
pub fn render_report(
    outcomes: &[ScenarioOutcome],
    seed: u64,
    workers: usize,
    smoke: bool,
) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"loadgen\",\n");
    out.push_str(&format!("  \"smoke\": {smoke},\n"));
    out.push_str(&format!("  \"seed\": {seed},\n"));
    out.push_str(&format!("  \"workers\": {workers},\n"));
    for outcome in outcomes {
        out.push_str(&scenario_block(outcome));
    }
    let pass = outcomes.iter().all(|o| o.slo_pass);
    out.push_str(&format!("  \"slo_pass\": {pass}\n"));
    out.push_str("}\n");
    out
}

/// The flat keys one scenario contributes to the report.
fn scenario_block(o: &ScenarioOutcome) -> String {
    let n = o.name;
    let mut s = String::new();
    s.push_str(&format!("  \"{n}_conns\": {},\n", o.conns));
    s.push_str(&format!("  \"{n}_ops_total\": {},\n", o.ops_total));
    s.push_str(&format!("  \"{n}_ops_ok\": {},\n", o.ops_ok));
    s.push_str(&format!("  \"{n}_errors\": {},\n", o.errors));
    s.push_str(&format!("  \"{n}_timeouts\": {},\n", o.timeouts));
    s.push_str(&format!(
        "  \"{n}_conns_completed\": {},\n",
        o.conns_completed
    ));
    s.push_str(&format!("  \"{n}_conns_failed\": {},\n", o.conns_failed));
    s.push_str(&format!("  \"{n}_offered_rps\": {:.2},\n", o.offered_rps));
    s.push_str(&format!("  \"{n}_achieved_rps\": {:.2},\n", o.achieved_rps));
    s.push_str(&format!(
        "  \"{n}_conns_per_sec\": {:.2},\n",
        o.conns_per_sec
    ));
    s.push_str(&format!("  \"{n}_elapsed_s\": {:.3},\n", o.elapsed_s));
    s.push_str(&format!("  \"{n}_p50_us\": {},\n", o.p50_us));
    s.push_str(&format!("  \"{n}_p99_us\": {},\n", o.p99_us));
    s.push_str(&format!("  \"{n}_p999_us\": {},\n", o.p999_us));
    s.push_str(&format!("  \"{n}_max_us\": {},\n", o.max_us));
    s.push_str(&format!("  \"{n}_mean_us\": {},\n", o.latency.mean()));
    s.push_str(&format!("  \"{n}_slo_p99_us\": {},\n", o.slo_p99_us));
    s.push_str(&format!("  \"{n}_slo_pass\": {},\n", o.slo_pass));
    s.push_str(&format!("  \"{n}_accepted\": {},\n", o.endpoint.accepted));
    s.push_str(&format!("  \"{n}_closed\": {},\n", o.endpoint.closed));
    s.push_str(&format!(
        "  \"{n}_server_completed\": {},\n",
        o.endpoint.completed
    ));
    s.push_str(&format!(
        "  \"{n}_server_failed\": {},\n",
        o.endpoint.failed
    ));
    s.push_str(&format!(
        "  \"{n}_backpressure_drops\": {},\n",
        o.endpoint.backpressure_drops
    ));
    s.push_str(&format!("  \"{n}_malformed\": {},\n", o.endpoint.malformed));
    // What this scenario alone did to the server (after-minus-before
    // snapshot delta) plus the plane's loop telemetry, so an SLO
    // failure in the report carries its own context.
    s.push_str(&format!(
        "  \"{n}_delta_accepted\": {},\n",
        o.delta.accepted
    ));
    s.push_str(&format!("  \"{n}_delta_closed\": {},\n", o.delta.closed));
    s.push_str(&format!(
        "  \"{n}_delta_rejected\": {},\n",
        o.delta.rejected
    ));
    s.push_str(&format!(
        "  \"{n}_delta_backpressure_drops\": {},\n",
        o.delta.backpressure_drops
    ));
    s.push_str(&format!(
        "  \"{n}_delta_datagrams_in\": {},\n",
        o.delta.datagrams_in
    ));
    let plane = &o.report.plane;
    s.push_str(&format!("  \"{n}_wakeups\": {},\n", plane.wakeups));
    s.push_str(&format!(
        "  \"{n}_loop_p99_ns\": {},\n",
        plane.loop_ns.quantile(0.99)
    ));
    s.push_str(&format!(
        "  \"{n}_queue_depth_p99\": {},\n",
        plane.queue_depth.quantile(0.99)
    ));
    s.push_str(&format!(
        "  \"{n}_pool_outstanding_p99\": {},\n",
        plane.pool_outstanding.quantile(0.99)
    ));
    s.push_str(&format!(
        "  \"{n}_flight_recorded\": {},\n",
        plane.flight_recorded
    ));
    s
}

/// Human console summary for one scenario.
pub fn print_summary(o: &ScenarioOutcome) {
    println!(
        "  {}: {} conns, {} ops ({} ok, {} errors, {} timeouts) in {:.2} s",
        o.name, o.conns, o.ops_total, o.ops_ok, o.errors, o.timeouts, o.elapsed_s
    );
    println!(
        "    offered {:.1} rps, achieved {:.1} rps, {:.1} conns/s closed at the server",
        o.offered_rps, o.achieved_rps, o.conns_per_sec
    );
    println!(
        "    latency p50 {} µs, p99 {} µs, p99.9 {} µs, max {} µs (SLO p99 ≤ {} µs: {})",
        o.p50_us,
        o.p99_us,
        o.p999_us,
        o.max_us,
        o.slo_p99_us,
        if o.slo_pass { "pass" } else { "FAIL" }
    );
    println!(
        "    server: {} accepted, {} closed, {} completed, {} failed, {} drops",
        o.endpoint.accepted,
        o.endpoint.closed,
        o.endpoint.completed,
        o.endpoint.failed,
        o.endpoint.backpressure_drops
    );
    println!(
        "    plane: Δaccepted {}, Δdrops {}, {} wakeups, loop p99 {} ns, \
         queue depth p99 {}, {} flight events",
        o.delta.accepted,
        o.delta.backpressure_drops,
        o.report.plane.wakeups,
        o.report.plane.loop_ns.quantile(0.99),
        o.report.plane.queue_depth.quantile(0.99),
        o.report.plane.flight_recorded,
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpquic_bench::gate::parse_flat_key;
    use mpquic_io::{EndpointReport, EndpointSnapshot};
    use mpquic_telemetry::LogHistogram;

    fn outcome(name: &'static str) -> ScenarioOutcome {
        let mut latency = LogHistogram::default();
        for v in [100, 200, 400, 800] {
            latency.record(v);
        }
        ScenarioOutcome {
            name,
            conns: 4,
            ops_total: 64,
            ops_ok: 64,
            errors: 0,
            timeouts: 0,
            conns_completed: 4,
            conns_failed: 0,
            offered_rps: 100.0,
            achieved_rps: 98.5,
            conns_per_sec: 12.25,
            elapsed_s: 0.65,
            p50_us: 200,
            p99_us: 800,
            p999_us: 800,
            max_us: 800,
            latency,
            slo_p99_us: 100_000,
            slo_pass: true,
            endpoint: EndpointSnapshot {
                accepted: 4,
                closed: 4,
                completed: 4,
                ..EndpointSnapshot::default()
            },
            delta: EndpointSnapshot {
                accepted: 4,
                closed: 4,
                completed: 4,
                ..EndpointSnapshot::default()
            },
            report: EndpointReport::default(),
            flight: String::new(),
        }
    }

    #[test]
    fn report_keys_parse_back_through_the_gate() {
        let outcomes = [outcome("churn"), outcome("incast")];
        let text = render_report(&outcomes, 42, 1, true);
        assert_eq!(parse_flat_key(&text, "seed"), Some(42.0));
        assert_eq!(parse_flat_key(&text, "churn_p99_us"), Some(800.0));
        assert_eq!(parse_flat_key(&text, "incast_achieved_rps"), Some(98.5));
        assert_eq!(parse_flat_key(&text, "churn_conns_per_sec"), Some(12.25));
        assert_eq!(parse_flat_key(&text, "churn_errors"), Some(0.0));
        assert_eq!(parse_flat_key(&text, "churn_delta_accepted"), Some(4.0));
        assert_eq!(
            parse_flat_key(&text, "incast_delta_backpressure_drops"),
            Some(0.0)
        );
        assert_eq!(parse_flat_key(&text, "churn_wakeups"), Some(0.0));
        assert!(text.contains("\"slo_pass\": true"));
        // Keys are scenario-prefixed, hence unique.
        assert_eq!(text.matches("\"churn_p99_us\"").count(), 1);
    }

    #[test]
    fn suite_verdict_fails_when_any_scenario_fails() {
        let mut bad = outcome("streaming");
        bad.slo_pass = false;
        let text = render_report(&[outcome("churn"), bad], 1, 1, false);
        assert!(text.contains("\"slo_pass\": false"));
        assert!(text.contains("\"streaming_slo_pass\": false"));
    }
}
