//! `mpquic-loadgen` binary: run workload scenarios against the real
//! endpoint and emit a gateable JSON report.
//!
//! ```text
//! mpquic-loadgen [--smoke] [--scenario NAME] [--seed N] [--workers N]
//!                [--client-threads N] [--scheduler NAME]
//!                [--backend auto|uring|mmsg|portable] [--out FILE]
//!                [--baseline FILE] [--flight-dump FILE]
//! ```
//!
//! Without `--scenario` the whole catalog runs (request_response,
//! streaming, incast, churn, mobility). `--scheduler NAME` selects a
//! policy from the scheduler zoo (lowest-rtt, no-duplicate,
//! round-robin, redundant, blest) for the server endpoint and every
//! client connection. `--baseline FILE` gates each scenario's
//! p99 against the checked-in baseline (`LowerIsBetter`, 30%
//! tolerance) and churn's conns/sec (`HigherIsBetter`). Exit status is
//! non-zero on SLO failure or baseline regression.
//!
//! `--flight-dump FILE` writes each scenario's flight-recorder dump
//! (JSON lines, see DESIGN.md §15) to FILE. Even without the flag, a
//! dump is written to `loadgen-flight.jsonl` whenever the run sheds
//! load or misses an SLO, so a failing CI run always leaves the last
//! endpoint events behind for triage.

use mpquic_bench::gate::{enforce_baseline, Direction};
use mpquic_loadgen::report::{print_summary, render_report};
use mpquic_loadgen::runner::{run_scenario, RunOptions};
use mpquic_loadgen::scenario::{by_name, catalog};

fn usage() -> ! {
    eprintln!(
        "usage: mpquic-loadgen [--smoke] [--scenario NAME] [--seed N] [--workers N] \
         [--client-threads N] [--scheduler NAME] \
         [--backend auto|uring|mmsg|portable] [--out FILE] [--baseline FILE] \
         [--flight-dump FILE]\n\
         scenarios: request_response streaming incast churn mobility"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut smoke = false;
    let mut scenario_name: Option<String> = None;
    let mut out_path: Option<String> = None;
    let mut baseline_path: Option<String> = None;
    let mut flight_path: Option<String> = None;
    let mut opts = RunOptions::default();

    fn value(args: &[String], i: &mut usize, name: &str) -> String {
        *i += 1;
        match args.get(*i) {
            Some(v) => v.clone(),
            None => {
                eprintln!("mpquic-loadgen: {name} needs a value");
                std::process::exit(2);
            }
        }
    }

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--smoke" => smoke = true,
            "--scenario" => scenario_name = Some(value(&args, &mut i, "--scenario")),
            "--out" => out_path = Some(value(&args, &mut i, "--out")),
            "--baseline" => baseline_path = Some(value(&args, &mut i, "--baseline")),
            "--flight-dump" => flight_path = Some(value(&args, &mut i, "--flight-dump")),
            "--seed" => {
                opts.seed = value(&args, &mut i, "--seed")
                    .parse()
                    .unwrap_or_else(|_| usage());
            }
            "--workers" => {
                opts.workers = value(&args, &mut i, "--workers")
                    .parse()
                    .unwrap_or_else(|_| usage());
            }
            "--client-threads" => {
                opts.client_threads = value(&args, &mut i, "--client-threads")
                    .parse()
                    .unwrap_or_else(|_| usage());
            }
            "--scheduler" => {
                let raw = value(&args, &mut i, "--scheduler");
                opts.scheduler = match raw.parse() {
                    Ok(kind) => Some(kind),
                    Err(e) => {
                        eprintln!("mpquic-loadgen: --scheduler: {e}");
                        std::process::exit(2);
                    }
                };
            }
            "--backend" => {
                let raw = value(&args, &mut i, "--backend");
                match raw.parse() {
                    Ok(choice) => mpquic_io::backend::set_default_choice(choice),
                    Err(e) => {
                        eprintln!("mpquic-loadgen: --backend: {e}");
                        std::process::exit(2);
                    }
                }
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("mpquic-loadgen: unknown argument {other}");
                usage();
            }
        }
        i += 1;
    }

    let scenarios = match &scenario_name {
        Some(name) => match by_name(name, smoke) {
            Some(s) => vec![s],
            None => {
                eprintln!("mpquic-loadgen: unknown scenario {name}");
                usage();
            }
        },
        None => catalog(smoke),
    };

    println!(
        "mpquic-loadgen: {} scenario(s), seed {}, workers {} ({}), {} client thread(s)",
        scenarios.len(),
        opts.seed,
        opts.workers,
        if opts.workers == 0 { "auto" } else { "fixed" },
        opts.client_threads,
    );

    let mut outcomes = Vec::with_capacity(scenarios.len());
    for scenario in &scenarios {
        println!("running {} ...", scenario.name);
        match run_scenario(scenario, &opts) {
            Ok(outcome) => {
                print_summary(&outcome);
                outcomes.push(outcome);
            }
            Err(e) => {
                eprintln!("mpquic-loadgen: {}: {e}", scenario.name);
                std::process::exit(1);
            }
        }
    }

    // Dump the flight recorders before any failure exit below, so a
    // shedding or SLO-failing run always leaves its last endpoint
    // events behind (DESIGN.md §15).
    let shed = outcomes
        .iter()
        .any(|o| o.endpoint.backpressure_drops > 0 || o.endpoint.malformed > 0);
    let slo_failed = outcomes.iter().any(|o| !o.slo_pass);
    if flight_path.is_some() || shed || slo_failed {
        let path = flight_path.as_deref().unwrap_or("loadgen-flight.jsonl");
        let mut dump = String::new();
        for outcome in &outcomes {
            dump.push_str(&outcome.flight);
        }
        match std::fs::write(path, &dump) {
            Ok(()) => println!("flight recorder dumped to {path}"),
            Err(e) => {
                eprintln!("mpquic-loadgen: write {path}: {e}");
                std::process::exit(1);
            }
        }
    }

    // The endpoint must never shed load in these scenarios: every
    // population fits the accept limit and the shard queues.
    for outcome in &outcomes {
        if outcome.endpoint.backpressure_drops > 0 || outcome.endpoint.malformed > 0 {
            eprintln!(
                "mpquic-loadgen: {}: endpoint shed load ({} backpressure drops, {} malformed)",
                outcome.name, outcome.endpoint.backpressure_drops, outcome.endpoint.malformed
            );
            std::process::exit(1);
        }
    }

    let report = render_report(&outcomes, opts.seed, opts.workers, smoke);
    if let Some(path) = &out_path {
        if let Err(e) = std::fs::write(path, &report) {
            eprintln!("mpquic-loadgen: write {path}: {e}");
            std::process::exit(1);
        }
        println!("report written to {path}");
    } else {
        print!("{report}");
    }

    if let Some(path) = &baseline_path {
        for outcome in &outcomes {
            enforce_baseline(
                "mpquic-loadgen",
                path,
                &format!("{}_p99_us", outcome.name),
                outcome.p99_us as f64,
                Direction::LowerIsBetter,
            );
            if outcome.name == "churn" {
                enforce_baseline(
                    "mpquic-loadgen",
                    path,
                    "churn_conns_per_sec",
                    outcome.conns_per_sec,
                    Direction::HigherIsBetter,
                );
            }
        }
    }

    let failed: Vec<&str> = outcomes
        .iter()
        .filter(|o| !o.slo_pass)
        .map(|o| o.name)
        .collect();
    if !failed.is_empty() {
        eprintln!("mpquic-loadgen: SLO FAILED: {}", failed.join(", "));
        std::process::exit(1);
    }
    println!("mpquic-loadgen: all SLOs met");
}
