//! End-to-end: the mobility scenario against a real loopback endpoint.
//!
//! Every client rebinds its local address (fresh ephemeral port)
//! twice mid-session, so each connection arrives at the server from
//! three different 4-tuples. The server must quarantine each new
//! address, validate it with PATH_CHALLENGE/PATH_RESPONSE, and rotate
//! the connection ID — all without losing a single request or leaking
//! a connection in its accounting. That is the paper's connection-
//! migration story (Multipath QUIC, CoNEXT 2017 §1) made gateable.

use mpquic_loadgen::runner::{run_scenario, RunOptions};
use mpquic_loadgen::scenario::{by_name, ScenarioKind};

#[test]
fn mobility_survives_rebinds_without_losing_a_connection() {
    let scenario = by_name("mobility", true).expect("mobility in catalog");
    let ScenarioKind::Mobility { conns, rebinds, .. } = scenario.kind else {
        panic!("mobility scenario has the wrong kind");
    };
    let opts = RunOptions {
        seed: 7,
        workers: 1,
        client_threads: 2,
        ..RunOptions::default()
    };
    let outcome = run_scenario(&scenario, &opts).expect("mobility run");

    // Client side: every exchange completed despite the migrations.
    assert_eq!(outcome.ops_ok, outcome.ops_total, "all ops must succeed");
    assert_eq!(outcome.errors, 0, "no errors");
    assert_eq!(outcome.timeouts, 0, "no timeouts");
    assert_eq!(outcome.conns_failed, 0, "no lost connections");
    assert_eq!(outcome.conns_completed, conns);

    // Server side: migrations must not distort the endpoint's books.
    let ep = outcome.endpoint;
    assert_eq!(ep.accepted, conns as u64, "every conn accepted once");
    assert_eq!(ep.closed, ep.accepted, "every accepted conn retired");
    assert_eq!(ep.failed, 0, "no server-side failures");
    assert_eq!(ep.backpressure_drops, 0, "zero endpoint drops");
    assert_eq!(ep.malformed, 0, "no malformed datagrams");
    assert_eq!(ep.active, 0, "nothing left live after drain");

    // Path agility counters. Every rebind starts a validation; each
    // either completes or is superseded when the client moves again
    // before the challenge round trip finishes (open-loop think times
    // can be shorter than an RTT), so started must equal validated
    // plus abandoned. Each connection's final rebind must validate —
    // nothing could have flowed off the quarantine otherwise — and
    // rotations only begin on a validated migration (back-to-back
    // migrations coalesce while a rotation is still in flight).
    let started = (conns * rebinds) as u64;
    assert_eq!(
        ep.path_validations_started, started,
        "one validation per rebind"
    );
    assert_eq!(
        ep.path_validations_validated + ep.path_validations_abandoned,
        started,
        "every validation must resolve"
    );
    assert!(
        ep.path_validations_validated >= conns as u64,
        "each conn's final rebind must validate \
         (validated {} < conns {conns})",
        ep.path_validations_validated
    );
    assert!(
        (conns as u64..=ep.path_validations_validated).contains(&ep.cid_rotations_initiated),
        "rotations ({}) must track validated migrations ({})",
        ep.cid_rotations_initiated,
        ep.path_validations_validated
    );
    assert_eq!(
        ep.cid_rotations_completed, ep.cid_rotations_initiated,
        "every initiated rotation must retire the old CID"
    );
}
