//! End-to-end: the churn scenario against a real loopback endpoint.
//!
//! Churn is the harshest accounting test in the catalog — every
//! connection is accepted, serves exactly one exchange, and must be
//! retired cleanly — so it doubles as the endpoint's bookkeeping
//! audit: `accepted == closed == completed`, zero drops, zero
//! malformed datagrams, and the whole run reproducible from the seed.

use mpquic_loadgen::runner::{run_scenario, RunOptions};
use mpquic_loadgen::scenario::by_name;
use mpquic_loadgen::schedule::build_schedule;

#[test]
fn churn_schedule_is_deterministic_under_a_fixed_seed() {
    let scenario = by_name("churn", true).expect("churn in catalog");
    let a = build_schedule(&scenario, 11);
    let b = build_schedule(&scenario, 11);
    assert_eq!(a.ops, b.ops, "same seed must yield the same schedule");
    assert_eq!(a.conns, b.conns);

    let c = build_schedule(&scenario, 12);
    assert_ne!(a.ops, c.ops, "different seed must move the arrivals");
}

#[test]
fn churn_over_loopback_drops_nothing_and_retires_every_connection() {
    let scenario = by_name("churn", true).expect("churn in catalog");
    let opts = RunOptions {
        seed: 11,
        workers: 1,
        client_threads: 2,
        ..RunOptions::default()
    };
    let outcome = run_scenario(&scenario, &opts).expect("churn run");

    // Client side: every scheduled exchange completed, none timed out.
    assert_eq!(outcome.ops_ok, outcome.ops_total, "all ops must succeed");
    assert_eq!(outcome.errors, 0, "no errors");
    assert_eq!(outcome.timeouts, 0, "no timeouts");
    assert_eq!(outcome.conns_failed, 0, "no abandoned connections");
    assert_eq!(outcome.conns_completed, outcome.conns);

    // Server side: the endpoint saw every connection, shed no load,
    // and its retirement books balance.
    let ep = outcome.endpoint;
    assert_eq!(ep.accepted, outcome.conns as u64, "every conn accepted");
    assert_eq!(ep.closed, ep.accepted, "every accepted conn retired");
    assert_eq!(ep.completed, ep.accepted, "every conn completed cleanly");
    assert_eq!(ep.failed, 0, "no server-side failures");
    assert_eq!(ep.rejected, 0, "accept limit never hit");
    assert_eq!(ep.backpressure_drops, 0, "zero endpoint drops");
    assert_eq!(ep.malformed, 0, "no malformed datagrams");
    assert_eq!(ep.active, 0, "nothing left live after drain");
}
