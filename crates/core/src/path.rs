//! Per-path state: addresses, RTT, congestion control, recovery, and the
//! receive-side acknowledgement machinery.
//!
//! A path is the unit the paper adds to QUIC: its own 4-tuple, its own
//! packet-number space (send and receive), its own RTT estimator and its
//! own congestion window. Everything else (streams, flow control,
//! handshake) stays connection-wide.

use mpquic_cc::{CongestionController, PathSnapshot};
use mpquic_util::{RangeSet, SimTime};
use mpquic_wire::{AckFrame, PathId, PathStatus};
use std::net::SocketAddr;
use std::time::Duration;

use crate::recovery::Recovery;
use crate::rtt::RttEstimator;

/// Liveness state of a path, as the paper's handover logic uses it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PathState {
    /// Usable for scheduling.
    Active,
    /// The remote address changed (NAT rebinding / handover) and the new
    /// address has not proven it can return traffic: the path is
    /// quarantined — no new data is scheduled onto it — until the peer
    /// echoes our PATH_CHALLENGE token back in a PATH_RESPONSE.
    Validating,
    /// An RTO fired with no traffic acknowledged since: the scheduler
    /// ignores the path until data is acknowledged on it again (§4.3).
    PotentiallyFailed,
    /// Abandoned.
    Closed,
}

/// Maximum PATH_CHALLENGE (re)transmissions before a rebound path is
/// declared unreachable and abandoned.
pub const MAX_CHALLENGE_RETRIES: u32 = 3;

/// In-flight address-validation state for a quarantined path.
#[derive(Debug, Clone, Copy)]
pub struct PathChallenge {
    /// Random token the peer must echo in a PATH_RESPONSE.
    pub token: u64,
    /// Challenges sent so far (first transmission included).
    pub sent: u32,
    /// When to retransmit the challenge if no response arrived.
    pub retransmit_at: SimTime,
}

/// What the connection should do when a validation timer fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChallengeTimeout {
    /// Send the challenge again (token to put on the wire).
    Retransmit(u64),
    /// Retries exhausted: abandon the path.
    Abandon,
}

/// One network path of a connection.
#[derive(Debug)]
pub struct Path {
    /// The explicit path identifier carried in every public header.
    pub id: PathId,
    /// Local address the path sends from.
    pub local: SocketAddr,
    /// Remote address the path sends to (updated on NAT rebinding).
    pub remote: SocketAddr,
    /// Liveness state.
    pub state: PathState,
    /// RTT estimator.
    pub rtt: RttEstimator,
    /// Loss recovery / packet-number spaces (send side).
    pub recovery: Recovery,
    /// Congestion controller.
    pub cc: Box<dyn CongestionController>,
    // --- receive side ---
    /// Packet numbers received on this path.
    pub received: RangeSet,
    /// Arrival time of the largest received packet (for the ACK delay
    /// field).
    pub largest_recv_time: SimTime,
    /// True if an ack-eliciting packet arrived since the last ACK we sent.
    pub ack_pending: bool,
    /// Deadline by which a pending ACK must be flushed (delayed ACK).
    pub ack_deadline: Option<SimTime>,
    /// Ack-eliciting packets received since the last ACK was sent; an ACK
    /// is forced once this reaches 2 (standard every-other-packet acking).
    pub unacked_count: u32,
    /// When to probe a potentially-failed path next (PING with backoff).
    pub probe_at: Option<SimTime>,
    /// Address-validation state while the path is [`PathState::Validating`].
    pub challenge: Option<PathChallenge>,
    /// Bytes of application payload sent on this path (statistics).
    pub bytes_sent: u64,
    /// Bytes received on this path (statistics).
    pub bytes_received: u64,
}

impl Path {
    /// Creates an active path.
    pub fn new(
        id: PathId,
        local: SocketAddr,
        remote: SocketAddr,
        initial_rtt: Duration,
        cc: Box<dyn CongestionController>,
    ) -> Path {
        Path {
            id,
            local,
            remote,
            state: PathState::Active,
            rtt: RttEstimator::new(initial_rtt),
            recovery: Recovery::new(),
            cc,
            received: RangeSet::new(),
            largest_recv_time: SimTime::ZERO,
            ack_pending: false,
            ack_deadline: None,
            unacked_count: 0,
            probe_at: None,
            challenge: None,
            bytes_sent: 0,
            bytes_received: 0,
        }
    }

    /// Congestion window bytes still available.
    pub fn cwnd_available(&self) -> u64 {
        self.cc
            .window()
            .saturating_sub(self.recovery.bytes_in_flight())
    }

    /// True once at least one RTT sample exists (the paper's trigger for
    /// turning duplication off on this path).
    pub fn rtt_known(&self) -> bool {
        self.rtt.has_sample()
    }

    /// True if the scheduler may place data here.
    pub fn usable_for_data(&self) -> bool {
        self.state == PathState::Active
    }

    /// Records an incoming packet on this path's receive space.
    ///
    /// Returns `false` for duplicates (already-received packet numbers),
    /// which must not be processed again.
    pub fn on_packet_received(
        &mut self,
        pn: u64,
        now: SimTime,
        ack_eliciting: bool,
        max_ack_delay: Duration,
    ) -> bool {
        if !self.received.insert(pn) {
            return false;
        }
        if Some(pn) == self.received.max() {
            self.largest_recv_time = now;
        }
        if ack_eliciting {
            self.ack_pending = true;
            self.unacked_count += 1;
            let deadline = now + max_ack_delay;
            self.ack_deadline = Some(self.ack_deadline.map_or(deadline, |d| d.min(deadline)));
        }
        true
    }

    /// True when a pending ACK must go out now: either two ack-eliciting
    /// packets have accumulated or the delayed-ACK deadline passed.
    pub fn ack_due(&self, now: SimTime) -> bool {
        self.ack_pending && (self.unacked_count >= 2 || self.ack_deadline.is_some_and(|d| d <= now))
    }

    /// Builds the ACK frame for this path without clearing pending state
    /// (cleared via [`Path::note_ack_sent`] once the frame actually made
    /// it into a packet). `max_ranges` caps the reported ranges
    /// (`Config::max_ack_ranges`).
    pub fn peek_ack_frame(&self, now: SimTime, max_ranges: usize) -> Option<AckFrame> {
        let delay = now.saturating_duration_since(self.largest_recv_time);
        AckFrame::from_range_set_capped(
            self.id,
            &self.received,
            delay.as_micros() as u64,
            max_ranges,
        )
    }

    /// Clears pending-ACK state after an ACK frame was sent.
    pub fn note_ack_sent(&mut self) {
        self.ack_pending = false;
        self.ack_deadline = None;
        self.unacked_count = 0;
    }

    /// Builds the ACK frame for this path's receive space and clears the
    /// pending state. Returns `None` if nothing was received yet.
    pub fn make_ack_frame(&mut self, now: SimTime) -> Option<AckFrame> {
        let delay = now.saturating_duration_since(self.largest_recv_time);
        let ack = AckFrame::from_range_set(self.id, &self.received, delay.as_micros() as u64)?;
        self.note_ack_sent();
        Some(ack)
    }

    /// Snapshot for coupled congestion control.
    pub fn snapshot(&self) -> PathSnapshot {
        PathSnapshot {
            cwnd: self.cc.window(),
            srtt: self.rtt.srtt(),
            loss_interval_bytes: self.cc.loss_interval_bytes(),
        }
    }

    /// Wire status for PATHS frames. A validating path is reported as
    /// potentially failed: the wire format predates validation, and to
    /// the peer the distinction is the same — do not expect data here.
    pub fn status(&self) -> PathStatus {
        match self.state {
            PathState::Active => PathStatus::Active,
            PathState::Validating | PathState::PotentiallyFailed => PathStatus::PotentiallyFailed,
            PathState::Closed => PathStatus::Closed,
        }
    }

    /// Quarantines the path after an address change and arms the
    /// challenge timer. The caller supplies the random token (the
    /// connection owns the RNG) and queues the PATH_CHALLENGE frame.
    pub fn begin_validation(&mut self, token: u64, now: SimTime) {
        self.state = PathState::Validating;
        self.challenge = Some(PathChallenge {
            token,
            sent: 1,
            retransmit_at: now + self.rtt.rto(),
        });
        self.probe_at = None;
    }

    /// The pending challenge's retransmit deadline, if validating.
    pub fn challenge_timeout(&self) -> Option<SimTime> {
        self.challenge.map(|c| c.retransmit_at)
    }

    /// Handles an expired challenge timer: either re-arms for another
    /// transmission (doubling the timeout, like RTO backoff) or reports
    /// that the retry budget is spent.
    pub fn on_challenge_timeout(&mut self, now: SimTime) -> Option<ChallengeTimeout> {
        let c = self.challenge.as_mut()?;
        if c.retransmit_at > now {
            return None;
        }
        if c.sent >= MAX_CHALLENGE_RETRIES {
            return Some(ChallengeTimeout::Abandon);
        }
        c.sent += 1;
        c.retransmit_at = now + self.rtt.rto() * (1 << c.sent.min(6));
        Some(ChallengeTimeout::Retransmit(c.token))
    }

    /// Completes validation if `token` matches the outstanding
    /// challenge: the path returns to [`PathState::Active`]. Returns
    /// `false` (and changes nothing) on a stale or unsolicited token.
    pub fn complete_validation(&mut self, token: u64) -> bool {
        match self.challenge {
            Some(c) if c.token == token && self.state == PathState::Validating => {
                self.state = PathState::Active;
                self.challenge = None;
                true
            }
            _ => false,
        }
    }

    /// Abandons a path whose validation failed.
    pub fn abandon_validation(&mut self) {
        self.state = PathState::Closed;
        self.challenge = None;
        self.probe_at = None;
    }

    /// Marks the path potentially failed (after an RTO) and schedules the
    /// next liveness probe.
    pub fn mark_potentially_failed(&mut self, now: SimTime) {
        if self.state == PathState::Active {
            self.state = PathState::PotentiallyFailed;
        }
        let backoff = 1u32 << self.recovery.rto_count().min(6);
        self.probe_at = Some(now + self.rtt.rto() * backoff);
    }

    /// Restores the path after data was acknowledged on it.
    pub fn mark_recovered(&mut self) {
        if self.state == PathState::PotentiallyFailed {
            self.state = PathState::Active;
        }
        self.probe_at = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpquic_cc::CcAlgorithm;

    fn path() -> Path {
        Path::new(
            PathId(1),
            "10.0.0.1:4433".parse().unwrap(),
            "10.0.1.1:4433".parse().unwrap(),
            Duration::from_millis(100),
            CcAlgorithm::Olia.build(1250),
        )
    }

    #[test]
    fn receive_tracks_duplicates() {
        let mut p = path();
        assert!(p.on_packet_received(0, SimTime::from_millis(1), true, Duration::from_millis(25)));
        assert!(!p.on_packet_received(0, SimTime::from_millis(2), true, Duration::from_millis(25)));
        assert!(p.on_packet_received(2, SimTime::from_millis(3), true, Duration::from_millis(25)));
    }

    #[test]
    fn ack_frame_reports_ranges_and_delay() {
        let mut p = path();
        p.on_packet_received(0, SimTime::from_millis(10), true, Duration::from_millis(25));
        p.on_packet_received(2, SimTime::from_millis(20), true, Duration::from_millis(25));
        let ack = p.make_ack_frame(SimTime::from_millis(23)).unwrap();
        assert_eq!(ack.path_id, PathId(1));
        assert_eq!(ack.largest_acked, 2);
        assert_eq!(ack.ranges, vec![(2, 2), (0, 0)]);
        assert_eq!(ack.ack_delay_micros, 3_000);
        assert!(!p.ack_pending);
        assert!(p.ack_deadline.is_none());
    }

    #[test]
    fn non_ack_eliciting_does_not_arm_ack() {
        let mut p = path();
        p.on_packet_received(0, SimTime::from_millis(1), false, Duration::from_millis(25));
        assert!(!p.ack_pending);
        assert!(p.ack_deadline.is_none());
    }

    #[test]
    fn ack_deadline_keeps_earliest() {
        let mut p = path();
        p.on_packet_received(0, SimTime::from_millis(10), true, Duration::from_millis(25));
        let first = p.ack_deadline.unwrap();
        p.on_packet_received(1, SimTime::from_millis(20), true, Duration::from_millis(25));
        assert_eq!(p.ack_deadline.unwrap(), first);
    }

    #[test]
    fn potentially_failed_lifecycle() {
        let mut p = path();
        assert!(p.usable_for_data());
        p.mark_potentially_failed(SimTime::from_millis(100));
        assert_eq!(p.state, PathState::PotentiallyFailed);
        assert!(!p.usable_for_data());
        assert!(p.probe_at.is_some());
        p.mark_recovered();
        assert_eq!(p.state, PathState::Active);
        assert!(p.probe_at.is_none());
    }

    #[test]
    fn cwnd_available_subtracts_in_flight() {
        let mut p = path();
        let w = p.cc.window();
        assert_eq!(p.cwnd_available(), w);
        let pn = p.recovery.next_packet_number();
        p.recovery.on_packet_sent(crate::recovery::SentPacket {
            packet_number: pn,
            time_sent: SimTime::ZERO,
            size: 1000,
            ack_eliciting: true,
            frames: vec![],
        });
        assert_eq!(p.cwnd_available(), w - 1000);
    }

    #[test]
    fn ack_frame_respects_range_cap() {
        let mut p = path();
        // 10 disjoint singleton ranges.
        for i in 0..10u64 {
            p.on_packet_received(
                i * 3,
                SimTime::from_millis(i),
                true,
                Duration::from_millis(25),
            );
        }
        let full = p.peek_ack_frame(SimTime::from_millis(20), 256).unwrap();
        assert_eq!(full.ranges.len(), 10);
        // TCP-SACK-like cap: only the 3 newest ranges are reported.
        let capped = p.peek_ack_frame(SimTime::from_millis(20), 3).unwrap();
        assert_eq!(capped.ranges.len(), 3);
        assert_eq!(capped.largest_acked, 27);
        assert_eq!(capped.smallest_acked(), 21);
    }

    #[test]
    fn validation_quarantines_until_token_matches() {
        let mut p = path();
        p.begin_validation(0xfeed_beef, SimTime::from_millis(10));
        assert_eq!(p.state, PathState::Validating);
        assert!(!p.usable_for_data(), "quarantined while validating");
        assert_eq!(p.status(), PathStatus::PotentiallyFailed);
        assert!(p.challenge_timeout().is_some());
        // A wrong token changes nothing.
        assert!(!p.complete_validation(0xdead_beef));
        assert_eq!(p.state, PathState::Validating);
        // The right token restores the path.
        assert!(p.complete_validation(0xfeed_beef));
        assert_eq!(p.state, PathState::Active);
        assert!(p.usable_for_data());
        assert!(p.challenge.is_none());
        // A replayed response is rejected once validation completed.
        assert!(!p.complete_validation(0xfeed_beef));
    }

    #[test]
    fn challenge_retries_are_bounded() {
        let mut p = path();
        p.begin_validation(7, SimTime::from_millis(0));
        let mut retransmits = 0;
        loop {
            let now = p.challenge_timeout().unwrap();
            match p.on_challenge_timeout(now).unwrap() {
                ChallengeTimeout::Retransmit(token) => {
                    assert_eq!(token, 7);
                    retransmits += 1;
                    assert!(retransmits < 10, "retry budget never exhausted");
                }
                ChallengeTimeout::Abandon => break,
            }
        }
        assert_eq!(retransmits, MAX_CHALLENGE_RETRIES - 1);
        p.abandon_validation();
        assert_eq!(p.state, PathState::Closed);
        assert!(p.challenge.is_none());
    }

    #[test]
    fn challenge_timer_not_due_early() {
        let mut p = path();
        p.begin_validation(7, SimTime::from_millis(0));
        assert_eq!(p.on_challenge_timeout(SimTime::from_millis(1)), None);
    }

    #[test]
    fn rtt_known_flips_on_first_sample() {
        let mut p = path();
        assert!(!p.rtt_known());
        p.rtt
            .on_sample(SimTime::ZERO, SimTime::from_millis(30), Duration::ZERO);
        assert!(p.rtt_known());
    }
}
