//! Packet scheduling: choosing the path for each outgoing packet.
//!
//! The paper's scheduler (§3, *Packet Scheduling*) starts from the Linux
//! MPTCP default — prefer the lowest-smoothed-RTT path whose congestion
//! window has room — with two MPQUIC-specific twists:
//!
//! 1. frames (including control frames) may ride any path, so the
//!    scheduler decides per *packet*, not per byte-stream segment; and
//! 2. while a freshly opened path has **no RTT estimate yet**, traffic
//!    sent on it is **duplicated** onto another (known) path, so the new
//!    path is usable immediately without risking head-of-line blocking if
//!    it turns out slow.
//!
//! [`SchedulerKind::RoundRobin`] and
//! [`SchedulerKind::LowestRttNoDuplicate`] exist for the ablation benches
//! motivated by the design discussion in the paper (ping-first vs
//! round-robin vs duplicate).

use mpquic_wire::PathId;
use std::time::Duration;

pub use mpquic_telemetry::SchedulerReason;

/// A compact view of one path, extracted by the connection for the
/// scheduling decision.
#[derive(Debug, Clone, Copy)]
pub struct PathView {
    /// Path identifier.
    pub id: PathId,
    /// Smoothed RTT.
    pub srtt: Duration,
    /// True once an RTT sample exists.
    pub rtt_known: bool,
    /// Congestion window bytes still available.
    pub cwnd_available: u64,
    /// True if the path may carry data (active, not potentially failed).
    pub usable: bool,
}

/// The scheduling policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SchedulerKind {
    /// The paper's scheduler: lowest RTT with available window, with
    /// duplication while a path's RTT is unknown.
    #[default]
    LowestRtt,
    /// Lowest RTT without the duplication phase (ablation).
    LowestRttNoDuplicate,
    /// Round-robin over paths with available window (ablation; the paper
    /// rejects this because heterogeneous delays cause head-of-line
    /// blocking).
    RoundRobin,
}

/// The chosen path, plus an optional second path that data frames should
/// be duplicated onto.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Decision {
    /// Path to send the packet on.
    pub path: PathId,
    /// If set, stream frames in the packet should also be queued for this
    /// path (the duplicate-while-unknown phase).
    pub duplicate_on: Option<PathId>,
    /// Why this path won — recorded in the telemetry
    /// `scheduler_decision` event so traces explain the scheduler.
    pub reason: SchedulerReason,
}

/// Packet scheduler state.
#[derive(Debug, Default)]
pub struct Scheduler {
    kind: SchedulerKind,
    /// Rotation cursor for round-robin.
    rr_cursor: usize,
}

impl Scheduler {
    /// Creates a scheduler of the given kind.
    pub fn new(kind: SchedulerKind) -> Scheduler {
        Scheduler { kind, rr_cursor: 0 }
    }

    /// The policy in use.
    pub fn kind(&self) -> SchedulerKind {
        self.kind
    }

    /// Picks a path for a data-bearing packet, or `None` if no usable path
    /// has congestion window space.
    pub fn select_for_data(&mut self, paths: &[PathView], min_space: u64) -> Option<Decision> {
        let mut candidates: Vec<&PathView> = paths
            .iter()
            .filter(|p| p.usable && p.cwnd_available >= min_space)
            .collect();
        let mut fallback = false;
        if candidates.is_empty() {
            // Potentially-failed paths are only *temporarily ignored*: if
            // no active path remains, fall back to the least-bad option
            // rather than stalling the connection outright.
            candidates = paths
                .iter()
                .filter(|p| p.cwnd_available >= min_space)
                .collect();
            fallback = true;
        }
        if candidates.is_empty() {
            return None;
        }
        // "Only available" covers both the potentially-failed fallback and
        // the degenerate single-candidate pick: neither is a real ranking.
        let only = fallback || candidates.len() == 1;
        match self.kind {
            SchedulerKind::RoundRobin => {
                let pick = candidates.get(self.rr_cursor % candidates.len())?;
                self.rr_cursor = self.rr_cursor.wrapping_add(1);
                Some(Decision {
                    path: pick.id,
                    duplicate_on: None,
                    reason: if only {
                        SchedulerReason::OnlyAvailable
                    } else {
                        SchedulerReason::RoundRobin
                    },
                })
            }
            SchedulerKind::LowestRtt | SchedulerKind::LowestRttNoDuplicate => {
                let duplicate = self.kind == SchedulerKind::LowestRtt;
                // Unknown-RTT paths are used eagerly so the connection can
                // start exploiting them without waiting a probe RTT...
                if let Some(unknown) = candidates.iter().find(|p| !p.rtt_known) {
                    // ...while the same data is duplicated on the best
                    // *known* path to dodge head-of-line blocking.
                    let backup = candidates
                        .iter()
                        .filter(|p| p.rtt_known)
                        .min_by_key(|p| p.srtt)
                        .map(|p| p.id);
                    return Some(Decision {
                        path: unknown.id,
                        duplicate_on: if duplicate { backup } else { None },
                        reason: if only {
                            SchedulerReason::OnlyAvailable
                        } else {
                            SchedulerReason::RttUnknownDuplicate
                        },
                    });
                }
                let best = candidates.iter().min_by_key(|p| p.srtt)?;
                Some(Decision {
                    path: best.id,
                    duplicate_on: None,
                    reason: if only {
                        SchedulerReason::OnlyAvailable
                    } else {
                        SchedulerReason::LowestRtt
                    },
                })
            }
        }
    }

    /// Picks the best path for control traffic (ACKs for other paths,
    /// PATHS frames) when a specific path is not required: the lowest-RTT
    /// usable path, even without congestion window space (control packets
    /// are small and not congestion-controlled here).
    pub fn select_for_control(&self, paths: &[PathView]) -> Option<PathId> {
        paths
            .iter()
            .filter(|p| p.usable)
            .min_by_key(|p| p.srtt)
            .map(|p| p.id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn view(id: u32, srtt_ms: u64, known: bool, avail: u64, usable: bool) -> PathView {
        PathView {
            id: PathId(id),
            srtt: Duration::from_millis(srtt_ms),
            rtt_known: known,
            cwnd_available: avail,
            usable,
        }
    }

    #[test]
    fn picks_lowest_rtt_with_space() {
        let mut s = Scheduler::new(SchedulerKind::LowestRtt);
        let paths = [
            view(0, 50, true, 10_000, true),
            view(1, 20, true, 10_000, true),
        ];
        let d = s.select_for_data(&paths, 1350).unwrap();
        assert_eq!(d.path, PathId(1));
        assert_eq!(d.duplicate_on, None);
    }

    #[test]
    fn full_window_path_skipped() {
        let mut s = Scheduler::new(SchedulerKind::LowestRtt);
        let paths = [
            view(0, 50, true, 10_000, true),
            view(1, 20, true, 100, true), // fast but window-full
        ];
        let d = s.select_for_data(&paths, 1350).unwrap();
        assert_eq!(d.path, PathId(0));
    }

    #[test]
    fn nothing_available_returns_none() {
        let mut s = Scheduler::new(SchedulerKind::LowestRtt);
        let paths = [view(0, 50, true, 100, true), view(1, 20, true, 0, true)];
        assert!(s.select_for_data(&paths, 1350).is_none());
    }

    #[test]
    fn potentially_failed_paths_ignored() {
        let mut s = Scheduler::new(SchedulerKind::LowestRtt);
        let paths = [
            view(0, 10, true, 10_000, false), // potentially failed
            view(1, 99, true, 10_000, true),
        ];
        let d = s.select_for_data(&paths, 1350).unwrap();
        assert_eq!(d.path, PathId(1));
    }

    #[test]
    fn unknown_rtt_path_used_with_duplication() {
        let mut s = Scheduler::new(SchedulerKind::LowestRtt);
        let paths = [
            view(0, 30, true, 10_000, true),
            view(1, 100, false, 10_000, true), // fresh path, no RTT yet
        ];
        let d = s.select_for_data(&paths, 1350).unwrap();
        assert_eq!(d.path, PathId(1));
        assert_eq!(d.duplicate_on, Some(PathId(0)));
    }

    #[test]
    fn no_duplicate_variant_still_uses_unknown_path() {
        let mut s = Scheduler::new(SchedulerKind::LowestRttNoDuplicate);
        let paths = [
            view(0, 30, true, 10_000, true),
            view(1, 100, false, 10_000, true),
        ];
        let d = s.select_for_data(&paths, 1350).unwrap();
        assert_eq!(d.path, PathId(1));
        assert_eq!(d.duplicate_on, None);
    }

    #[test]
    fn unknown_path_without_known_backup_has_no_duplicate() {
        let mut s = Scheduler::new(SchedulerKind::LowestRtt);
        let paths = [view(0, 100, false, 10_000, true)];
        let d = s.select_for_data(&paths, 1350).unwrap();
        assert_eq!(d.path, PathId(0));
        assert_eq!(d.duplicate_on, None);
    }

    #[test]
    fn round_robin_rotates() {
        let mut s = Scheduler::new(SchedulerKind::RoundRobin);
        let paths = [
            view(0, 50, true, 10_000, true),
            view(1, 20, true, 10_000, true),
        ];
        let first = s.select_for_data(&paths, 1350).unwrap().path;
        let second = s.select_for_data(&paths, 1350).unwrap().path;
        let third = s.select_for_data(&paths, 1350).unwrap().path;
        assert_ne!(first, second);
        assert_eq!(first, third);
    }

    #[test]
    fn decision_reasons_explain_the_pick() {
        let mut s = Scheduler::new(SchedulerKind::LowestRtt);
        let two_known = [
            view(0, 50, true, 10_000, true),
            view(1, 20, true, 10_000, true),
        ];
        let d = s.select_for_data(&two_known, 1350).unwrap();
        assert_eq!(d.reason, SchedulerReason::LowestRtt);

        let fresh = [
            view(0, 30, true, 10_000, true),
            view(1, 100, false, 10_000, true),
        ];
        let d = s.select_for_data(&fresh, 1350).unwrap();
        assert_eq!(d.reason, SchedulerReason::RttUnknownDuplicate);

        // All paths potentially failed: the fallback pick is OnlyAvailable.
        let all_failed = [
            view(0, 10, true, 10_000, false),
            view(1, 99, true, 10_000, false),
        ];
        let d = s.select_for_data(&all_failed, 1350).unwrap();
        assert_eq!(d.reason, SchedulerReason::OnlyAvailable);

        // A single remaining candidate is OnlyAvailable, not a ranking.
        let single = [view(0, 50, true, 10_000, true)];
        let d = s.select_for_data(&single, 1350).unwrap();
        assert_eq!(d.reason, SchedulerReason::OnlyAvailable);
    }

    #[test]
    fn control_path_ignores_window() {
        let s = Scheduler::new(SchedulerKind::LowestRtt);
        let paths = [view(0, 10, true, 0, true), view(1, 99, true, 10_000, true)];
        assert_eq!(s.select_for_control(&paths), Some(PathId(0)));
    }
}
