//! Packet scheduling: choosing the path for each outgoing packet.
//!
//! The paper's scheduler (§3, *Packet Scheduling*) starts from the Linux
//! MPTCP default — prefer the lowest-smoothed-RTT path whose congestion
//! window has room — with two MPQUIC-specific twists:
//!
//! 1. frames (including control frames) may ride any path, so the
//!    scheduler decides per *packet*, not per byte-stream segment; and
//! 2. while a freshly opened path has **no RTT estimate yet**, traffic
//!    sent on it is **duplicated** onto another (known) path, so the new
//!    path is usable immediately without risking head-of-line blocking if
//!    it turns out slow.
//!
//! Scheduling is a *policy*: the [`SchedulePolicy`] trait is object-safe
//! so applications can plug their own
//! (`Config::builder().scheduler_policy(...)`), while the built-in zoo —
//! lowest-RTT, no-duplicate, round-robin, redundant and a BLEST/ECF-style
//! head-of-line-aware pick — stays constructible from the
//! [`SchedulerKind`] enum (and by name via `FromStr`, which is what the
//! `--scheduler` CLI flags parse).

use mpquic_wire::PathId;
use std::time::Duration;

pub use mpquic_telemetry::SchedulerReason;

/// A compact view of one path, extracted by the connection for the
/// scheduling decision.
#[derive(Debug, Clone, Copy)]
pub struct PathView {
    /// Path identifier.
    pub id: PathId,
    /// Smoothed RTT.
    pub srtt: Duration,
    /// True once an RTT sample exists.
    pub rtt_known: bool,
    /// Congestion window bytes still available.
    pub cwnd_available: u64,
    /// Bytes currently in flight (sent, not yet acked or lost) — what a
    /// head-of-line-aware policy weighs against `srtt`.
    pub bytes_in_flight: u64,
    /// True if the path may carry data (active: not quarantined for
    /// validation, not potentially failed).
    pub usable: bool,
}

/// The built-in scheduling policies, by name.
///
/// This stays the cheap, copyable constructor enum: `Scheduler::new(kind)`
/// builds the matching [`SchedulePolicy`]. Parse one from a CLI string
/// with [`FromStr`] (`"lowest-rtt"`, `"no-duplicate"`, `"round-robin"`,
/// `"redundant"`, `"blest"`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SchedulerKind {
    /// The paper's scheduler: lowest RTT with available window, with
    /// duplication while a path's RTT is unknown.
    #[default]
    LowestRtt,
    /// Lowest RTT without the duplication phase (ablation).
    LowestRttNoDuplicate,
    /// Round-robin over paths with available window (ablation; the paper
    /// rejects this because heterogeneous delays cause head-of-line
    /// blocking).
    RoundRobin,
    /// Duplicate every data frame onto every usable path: maximum
    /// reliability for latency-critical traffic at the cost of goodput.
    Redundant,
    /// BLEST/ECF-style head-of-line-aware pick: weighs srtt against the
    /// sender-side queue (bytes in flight vs window headroom) so a fast
    /// but saturated path does not stall a slower idle one.
    Blest,
}

/// All built-in kinds, in `FromStr` name order — the CLI error message
/// and the per-policy test matrix iterate this.
pub const SCHEDULER_KINDS: [SchedulerKind; 5] = [
    SchedulerKind::LowestRtt,
    SchedulerKind::LowestRttNoDuplicate,
    SchedulerKind::RoundRobin,
    SchedulerKind::Redundant,
    SchedulerKind::Blest,
];

impl SchedulerKind {
    /// The kind's CLI / report name.
    pub fn name(self) -> &'static str {
        match self {
            SchedulerKind::LowestRtt => "lowest-rtt",
            SchedulerKind::LowestRttNoDuplicate => "no-duplicate",
            SchedulerKind::RoundRobin => "round-robin",
            SchedulerKind::Redundant => "redundant",
            SchedulerKind::Blest => "blest",
        }
    }
}

impl std::fmt::Display for SchedulerKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Failed `SchedulerKind` parse: carries the offending input; the
/// message lists every valid name so `--scheduler typo` is self-healing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseSchedulerError {
    input: String,
}

impl std::fmt::Display for ParseSchedulerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "unknown scheduler \"{}\" (valid: ", self.input)?;
        for (i, kind) in SCHEDULER_KINDS.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            f.write_str(kind.name())?;
        }
        f.write_str(")")
    }
}

impl std::error::Error for ParseSchedulerError {}

impl std::str::FromStr for SchedulerKind {
    type Err = ParseSchedulerError;

    fn from_str(s: &str) -> Result<SchedulerKind, ParseSchedulerError> {
        SCHEDULER_KINDS
            .iter()
            .find(|kind| kind.name() == s)
            .copied()
            .ok_or_else(|| ParseSchedulerError {
                input: s.to_string(),
            })
    }
}

/// The chosen path, plus any paths that data frames should be
/// duplicated onto.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Decision {
    /// Path to send the packet on.
    pub path: PathId,
    /// Paths the stream frames in the packet should also be queued on
    /// (the duplicate-while-unknown phase, or the whole path set for the
    /// redundant policy). Empty when nothing is duplicated.
    pub duplicate_on: Vec<PathId>,
    /// Why this path won — recorded in the telemetry
    /// `scheduler_decision` event so traces explain the scheduler.
    pub reason: SchedulerReason,
}

/// An object-safe scheduling policy.
///
/// Implementations decide per packet; the connection extracts a
/// [`PathView`] per path and calls [`SchedulePolicy::select_for_data`]
/// for data-bearing packets, [`SchedulePolicy::select_for_control`] for
/// control traffic not pinned to a path. `Send` because connections are
/// driven from worker threads; `clone_box` because `Config` (which may
/// carry a custom policy) is `Clone`.
pub trait SchedulePolicy: Send + std::fmt::Debug {
    /// Policy name, for reports and `Debug` output.
    fn name(&self) -> &'static str;

    /// A boxed copy of this policy in its current state.
    fn clone_box(&self) -> Box<dyn SchedulePolicy>;

    /// Picks a path for a data-bearing packet, or `None` if no path
    /// (usable or not) has congestion window space.
    fn select_for_data(&mut self, paths: &[PathView], min_space: u64) -> Option<Decision>;

    /// Picks the best path for control traffic (ACKs for other paths,
    /// PATHS frames) when a specific path is not required: the
    /// lowest-RTT usable path, even without congestion window space
    /// (control packets are small and not congestion-controlled here).
    ///
    /// When *no* usable path exists the default falls back to the
    /// lowest-RTT path among everything offered — a potentially-failed
    /// path might still deliver, while refusing to pick one stalls
    /// control traffic (ACKs, PATHS, retransmitted handshake frames)
    /// outright. `None` only when `paths` is empty.
    fn select_for_control(&self, paths: &[PathView]) -> Option<PathId> {
        paths
            .iter()
            .filter(|p| p.usable)
            .min_by_key(|p| p.srtt)
            .or_else(|| paths.iter().min_by_key(|p| p.srtt))
            .map(|p| p.id)
    }
}

impl Clone for Box<dyn SchedulePolicy> {
    fn clone(&self) -> Box<dyn SchedulePolicy> {
        self.clone_box()
    }
}

/// Filters `paths` down to scheduling candidates: usable paths with at
/// least `min_space` window room, falling back to *any* path with room
/// (potentially-failed paths are only temporarily ignored — if no active
/// path remains, the least-bad option beats stalling outright). Returns
/// the candidates plus whether the fallback (or a degenerate single
/// candidate) made the pick "only available" rather than a real ranking.
fn candidates(paths: &[PathView], min_space: u64) -> (Vec<&PathView>, bool) {
    let mut list: Vec<&PathView> = paths
        .iter()
        .filter(|p| p.usable && p.cwnd_available >= min_space)
        .collect();
    let mut fallback = false;
    if list.is_empty() {
        list = paths
            .iter()
            .filter(|p| p.cwnd_available >= min_space)
            .collect();
        fallback = true;
    }
    let only = fallback || list.len() == 1;
    (list, only)
}

/// The paper's default: lowest smoothed RTT with window space, sending
/// eagerly on unknown-RTT paths with duplication onto the best known
/// path (duplication disabled for the `no-duplicate` ablation).
#[derive(Debug, Clone, Default)]
pub struct LowestRttPolicy {
    /// False for the `no-duplicate` ablation.
    pub duplicate: bool,
}

impl SchedulePolicy for LowestRttPolicy {
    fn name(&self) -> &'static str {
        if self.duplicate {
            "lowest-rtt"
        } else {
            "no-duplicate"
        }
    }

    fn clone_box(&self) -> Box<dyn SchedulePolicy> {
        Box::new(self.clone())
    }

    fn select_for_data(&mut self, paths: &[PathView], min_space: u64) -> Option<Decision> {
        let (candidates, only) = candidates(paths, min_space);
        if candidates.is_empty() {
            return None;
        }
        // Unknown-RTT paths are used eagerly so the connection can start
        // exploiting them without waiting a probe RTT...
        if let Some(unknown) = candidates.iter().find(|p| !p.rtt_known) {
            // ...while the same data is duplicated on the best *known*
            // path to dodge head-of-line blocking.
            let backup = candidates
                .iter()
                .filter(|p| p.rtt_known)
                .min_by_key(|p| p.srtt)
                .map(|p| p.id);
            return Some(Decision {
                path: unknown.id,
                duplicate_on: if self.duplicate {
                    backup.into_iter().collect()
                } else {
                    Vec::new()
                },
                reason: if only {
                    SchedulerReason::OnlyAvailable
                } else {
                    SchedulerReason::RttUnknownDuplicate
                },
            });
        }
        let best = candidates.iter().min_by_key(|p| p.srtt)?;
        Some(Decision {
            path: best.id,
            duplicate_on: Vec::new(),
            reason: if only {
                SchedulerReason::OnlyAvailable
            } else {
                SchedulerReason::LowestRtt
            },
        })
    }
}

/// Round-robin over candidates (ablation).
#[derive(Debug, Clone, Default)]
pub struct RoundRobinPolicy {
    cursor: usize,
}

impl SchedulePolicy for RoundRobinPolicy {
    fn name(&self) -> &'static str {
        "round-robin"
    }

    fn clone_box(&self) -> Box<dyn SchedulePolicy> {
        Box::new(self.clone())
    }

    fn select_for_data(&mut self, paths: &[PathView], min_space: u64) -> Option<Decision> {
        let (candidates, only) = candidates(paths, min_space);
        if candidates.is_empty() {
            return None;
        }
        let pick = candidates.get(self.cursor % candidates.len())?;
        self.cursor = self.cursor.wrapping_add(1);
        Some(Decision {
            path: pick.id,
            duplicate_on: Vec::new(),
            reason: if only {
                SchedulerReason::OnlyAvailable
            } else {
                SchedulerReason::RoundRobin
            },
        })
    }
}

/// Duplicate-on-all: the primary pick is the lowest-RTT candidate, and
/// every *other* usable path with window space carries a copy.
#[derive(Debug, Clone, Default)]
pub struct RedundantPolicy;

impl SchedulePolicy for RedundantPolicy {
    fn name(&self) -> &'static str {
        "redundant"
    }

    fn clone_box(&self) -> Box<dyn SchedulePolicy> {
        Box::new(self.clone())
    }

    fn select_for_data(&mut self, paths: &[PathView], min_space: u64) -> Option<Decision> {
        let (candidates, only) = candidates(paths, min_space);
        if candidates.is_empty() {
            return None;
        }
        let best = candidates.iter().min_by_key(|p| p.srtt)?;
        let duplicate_on: Vec<PathId> = candidates
            .iter()
            .filter(|p| p.id != best.id)
            .map(|p| p.id)
            .collect();
        Some(Decision {
            path: best.id,
            duplicate_on,
            reason: if only {
                SchedulerReason::OnlyAvailable
            } else {
                SchedulerReason::Redundant
            },
        })
    }
}

/// BLEST/ECF-style head-of-line-aware policy.
///
/// Ranks each candidate by an estimated delivery cost: the smoothed RTT
/// scaled up by how backed-up the path's sender queue is
/// (`bytes_in_flight` against the remaining window). A fast path that is
/// nearly window-full scores worse than a slightly slower idle path, so
/// a burst does not pile onto one path and block behind it — the
/// blocking-estimation insight of BLEST and the completion-first pick of
/// ECF, in one deterministic integer score.
#[derive(Debug, Clone, Default)]
pub struct BlestPolicy;

impl BlestPolicy {
    /// Estimated cost of sending the next packet on `p`, microseconds
    /// (scaled): srtt × (1 + in_flight / headroom). Unknown-RTT paths
    /// rank by queue alone (srtt treated as the initial default).
    fn cost(p: &PathView) -> u128 {
        let srtt_us = p.srtt.as_micros().max(1);
        let headroom = u128::from(p.cwnd_available).max(1);
        let queued = u128::from(p.bytes_in_flight);
        srtt_us.saturating_mul(headroom + queued) / headroom
    }
}

impl SchedulePolicy for BlestPolicy {
    fn name(&self) -> &'static str {
        "blest"
    }

    fn clone_box(&self) -> Box<dyn SchedulePolicy> {
        Box::new(self.clone())
    }

    fn select_for_data(&mut self, paths: &[PathView], min_space: u64) -> Option<Decision> {
        let (candidates, only) = candidates(paths, min_space);
        if candidates.is_empty() {
            return None;
        }
        let best = candidates.iter().min_by_key(|p| Self::cost(p))?;
        Some(Decision {
            path: best.id,
            duplicate_on: Vec::new(),
            reason: if only {
                SchedulerReason::OnlyAvailable
            } else {
                SchedulerReason::HolAware
            },
        })
    }
}

/// Packet scheduler state: a boxed [`SchedulePolicy`] plus the kind it
/// was built from (when it was a built-in).
#[derive(Debug)]
pub struct Scheduler {
    kind: Option<SchedulerKind>,
    policy: Box<dyn SchedulePolicy>,
}

impl Default for Scheduler {
    fn default() -> Scheduler {
        Scheduler::new(SchedulerKind::default())
    }
}

impl Scheduler {
    /// Creates a scheduler running the named built-in policy.
    pub fn new(kind: SchedulerKind) -> Scheduler {
        let policy: Box<dyn SchedulePolicy> = match kind {
            SchedulerKind::LowestRtt => Box::new(LowestRttPolicy { duplicate: true }),
            SchedulerKind::LowestRttNoDuplicate => Box::new(LowestRttPolicy { duplicate: false }),
            SchedulerKind::RoundRobin => Box::new(RoundRobinPolicy::default()),
            SchedulerKind::Redundant => Box::new(RedundantPolicy),
            SchedulerKind::Blest => Box::new(BlestPolicy),
        };
        Scheduler {
            kind: Some(kind),
            policy,
        }
    }

    /// Creates a scheduler running a custom policy.
    pub fn from_policy(policy: Box<dyn SchedulePolicy>) -> Scheduler {
        Scheduler { kind: None, policy }
    }

    /// The built-in kind, if the policy was constructed from one
    /// (`None` for custom policies).
    pub fn kind(&self) -> Option<SchedulerKind> {
        self.kind
    }

    /// The active policy's name.
    pub fn name(&self) -> &'static str {
        self.policy.name()
    }

    /// Picks a path for a data-bearing packet, or `None` if no usable path
    /// has congestion window space.
    pub fn select_for_data(&mut self, paths: &[PathView], min_space: u64) -> Option<Decision> {
        self.policy.select_for_data(paths, min_space)
    }

    /// Picks the best path for control traffic; see
    /// [`SchedulePolicy::select_for_control`].
    pub fn select_for_control(&self, paths: &[PathView]) -> Option<PathId> {
        self.policy.select_for_control(paths)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::str::FromStr;

    fn view(id: u32, srtt_ms: u64, known: bool, avail: u64, usable: bool) -> PathView {
        PathView {
            id: PathId(id),
            srtt: Duration::from_millis(srtt_ms),
            rtt_known: known,
            cwnd_available: avail,
            bytes_in_flight: 0,
            usable,
        }
    }

    #[test]
    fn picks_lowest_rtt_with_space() {
        let mut s = Scheduler::new(SchedulerKind::LowestRtt);
        let paths = [
            view(0, 50, true, 10_000, true),
            view(1, 20, true, 10_000, true),
        ];
        let d = s.select_for_data(&paths, 1350).unwrap();
        assert_eq!(d.path, PathId(1));
        assert!(d.duplicate_on.is_empty());
    }

    #[test]
    fn full_window_path_skipped() {
        let mut s = Scheduler::new(SchedulerKind::LowestRtt);
        let paths = [
            view(0, 50, true, 10_000, true),
            view(1, 20, true, 100, true), // fast but window-full
        ];
        let d = s.select_for_data(&paths, 1350).unwrap();
        assert_eq!(d.path, PathId(0));
    }

    #[test]
    fn nothing_available_returns_none() {
        let mut s = Scheduler::new(SchedulerKind::LowestRtt);
        let paths = [view(0, 50, true, 100, true), view(1, 20, true, 0, true)];
        assert!(s.select_for_data(&paths, 1350).is_none());
    }

    #[test]
    fn potentially_failed_paths_ignored() {
        let mut s = Scheduler::new(SchedulerKind::LowestRtt);
        let paths = [
            view(0, 10, true, 10_000, false), // potentially failed
            view(1, 99, true, 10_000, true),
        ];
        let d = s.select_for_data(&paths, 1350).unwrap();
        assert_eq!(d.path, PathId(1));
    }

    #[test]
    fn unknown_rtt_path_used_with_duplication() {
        let mut s = Scheduler::new(SchedulerKind::LowestRtt);
        let paths = [
            view(0, 30, true, 10_000, true),
            view(1, 100, false, 10_000, true), // fresh path, no RTT yet
        ];
        let d = s.select_for_data(&paths, 1350).unwrap();
        assert_eq!(d.path, PathId(1));
        assert_eq!(d.duplicate_on, vec![PathId(0)]);
    }

    #[test]
    fn no_duplicate_variant_still_uses_unknown_path() {
        let mut s = Scheduler::new(SchedulerKind::LowestRttNoDuplicate);
        let paths = [
            view(0, 30, true, 10_000, true),
            view(1, 100, false, 10_000, true),
        ];
        let d = s.select_for_data(&paths, 1350).unwrap();
        assert_eq!(d.path, PathId(1));
        assert!(d.duplicate_on.is_empty());
    }

    #[test]
    fn unknown_path_without_known_backup_has_no_duplicate() {
        let mut s = Scheduler::new(SchedulerKind::LowestRtt);
        let paths = [view(0, 100, false, 10_000, true)];
        let d = s.select_for_data(&paths, 1350).unwrap();
        assert_eq!(d.path, PathId(0));
        assert!(d.duplicate_on.is_empty());
    }

    #[test]
    fn round_robin_rotates() {
        let mut s = Scheduler::new(SchedulerKind::RoundRobin);
        let paths = [
            view(0, 50, true, 10_000, true),
            view(1, 20, true, 10_000, true),
        ];
        let first = s.select_for_data(&paths, 1350).unwrap().path;
        let second = s.select_for_data(&paths, 1350).unwrap().path;
        let third = s.select_for_data(&paths, 1350).unwrap().path;
        assert_ne!(first, second);
        assert_eq!(first, third);
    }

    #[test]
    fn redundant_duplicates_on_every_other_usable_path() {
        let mut s = Scheduler::new(SchedulerKind::Redundant);
        let paths = [
            view(0, 50, true, 10_000, true),
            view(1, 20, true, 10_000, true),
            view(2, 80, true, 10_000, true),
            view(3, 10, true, 100, true), // window-full: not a copy target
            view(4, 10, true, 10_000, false), // failed: not a copy target
        ];
        let d = s.select_for_data(&paths, 1350).unwrap();
        assert_eq!(d.path, PathId(1), "primary is lowest RTT");
        assert_eq!(d.duplicate_on, vec![PathId(0), PathId(2)]);
        assert_eq!(d.reason, SchedulerReason::Redundant);
    }

    #[test]
    fn redundant_single_path_has_no_copies() {
        let mut s = Scheduler::new(SchedulerKind::Redundant);
        let paths = [view(0, 50, true, 10_000, true)];
        let d = s.select_for_data(&paths, 1350).unwrap();
        assert_eq!(d.path, PathId(0));
        assert!(d.duplicate_on.is_empty());
        assert_eq!(d.reason, SchedulerReason::OnlyAvailable);
    }

    #[test]
    fn blest_prefers_idle_path_over_saturated_fast_one() {
        let mut s = Scheduler::new(SchedulerKind::Blest);
        // Path 0: 10 ms but nearly window-full (lots in flight, little
        // headroom). Path 1: 30 ms, idle. ECF logic: waiting for the
        // fast path costs more than sending on the slower idle one.
        let fast_saturated = PathView {
            id: PathId(0),
            srtt: Duration::from_millis(10),
            rtt_known: true,
            cwnd_available: 2_000,
            bytes_in_flight: 100_000,
            usable: true,
        };
        let slow_idle = PathView {
            id: PathId(1),
            srtt: Duration::from_millis(30),
            rtt_known: true,
            cwnd_available: 50_000,
            bytes_in_flight: 0,
            usable: true,
        };
        let d = s
            .select_for_data(&[fast_saturated, slow_idle], 1350)
            .unwrap();
        assert_eq!(d.path, PathId(1));
        assert_eq!(d.reason, SchedulerReason::HolAware);
    }

    #[test]
    fn blest_matches_lowest_rtt_when_both_idle() {
        let mut s = Scheduler::new(SchedulerKind::Blest);
        let paths = [
            view(0, 50, true, 10_000, true),
            view(1, 20, true, 10_000, true),
        ];
        let d = s.select_for_data(&paths, 1350).unwrap();
        assert_eq!(d.path, PathId(1));
    }

    #[test]
    fn decision_reasons_explain_the_pick() {
        let mut s = Scheduler::new(SchedulerKind::LowestRtt);
        let two_known = [
            view(0, 50, true, 10_000, true),
            view(1, 20, true, 10_000, true),
        ];
        let d = s.select_for_data(&two_known, 1350).unwrap();
        assert_eq!(d.reason, SchedulerReason::LowestRtt);

        let fresh = [
            view(0, 30, true, 10_000, true),
            view(1, 100, false, 10_000, true),
        ];
        let d = s.select_for_data(&fresh, 1350).unwrap();
        assert_eq!(d.reason, SchedulerReason::RttUnknownDuplicate);

        // All paths potentially failed: the fallback pick is OnlyAvailable.
        let all_failed = [
            view(0, 10, true, 10_000, false),
            view(1, 99, true, 10_000, false),
        ];
        let d = s.select_for_data(&all_failed, 1350).unwrap();
        assert_eq!(d.reason, SchedulerReason::OnlyAvailable);

        // A single remaining candidate is OnlyAvailable, not a ranking.
        let single = [view(0, 50, true, 10_000, true)];
        let d = s.select_for_data(&single, 1350).unwrap();
        assert_eq!(d.reason, SchedulerReason::OnlyAvailable);
    }

    #[test]
    fn control_path_ignores_window() {
        let s = Scheduler::new(SchedulerKind::LowestRtt);
        let paths = [view(0, 10, true, 0, true), view(1, 99, true, 10_000, true)];
        assert_eq!(s.select_for_control(&paths), Some(PathId(0)));
    }

    #[test]
    fn control_falls_back_to_potentially_failed_path() {
        // Satellite fix: with every path unusable, control traffic still
        // picks the least-bad path instead of stalling outright.
        let s = Scheduler::new(SchedulerKind::LowestRtt);
        let paths = [
            view(0, 40, true, 0, false),
            view(1, 15, true, 0, false), // lowest RTT among the failed
        ];
        assert_eq!(s.select_for_control(&paths), Some(PathId(1)));
        assert_eq!(s.select_for_control(&[]), None);
    }

    #[test]
    fn kind_parses_by_name_and_lists_valid_names_on_error() {
        for kind in SCHEDULER_KINDS {
            assert_eq!(SchedulerKind::from_str(kind.name()), Ok(kind));
            assert_eq!(kind.to_string(), kind.name());
        }
        let err = SchedulerKind::from_str("fastest").unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("fastest"), "{msg}");
        for kind in SCHEDULER_KINDS {
            assert!(msg.contains(kind.name()), "{msg} missing {}", kind.name());
        }
    }

    #[test]
    fn custom_policy_plugs_in_and_clones() {
        /// Always picks the highest-numbered usable path.
        #[derive(Debug, Clone)]
        struct HighestId;
        impl SchedulePolicy for HighestId {
            fn name(&self) -> &'static str {
                "highest-id"
            }
            fn clone_box(&self) -> Box<dyn SchedulePolicy> {
                Box::new(self.clone())
            }
            fn select_for_data(&mut self, paths: &[PathView], min_space: u64) -> Option<Decision> {
                paths
                    .iter()
                    .filter(|p| p.usable && p.cwnd_available >= min_space)
                    .max_by_key(|p| p.id.0)
                    .map(|p| Decision {
                        path: p.id,
                        duplicate_on: Vec::new(),
                        reason: SchedulerReason::OnlyAvailable,
                    })
            }
        }
        let boxed: Box<dyn SchedulePolicy> = Box::new(HighestId);
        let mut s = Scheduler::from_policy(boxed.clone());
        assert_eq!(s.kind(), None);
        assert_eq!(s.name(), "highest-id");
        let paths = [
            view(0, 10, true, 10_000, true),
            view(7, 99, true, 10_000, true),
        ];
        assert_eq!(s.select_for_data(&paths, 1350).unwrap().path, PathId(7));
    }

    #[test]
    fn every_builtin_schedules_on_a_two_path_set() {
        // The zoo smoke: each kind must produce a decision (and a name
        // that parses back to itself) on a plain two-path set.
        for kind in SCHEDULER_KINDS {
            let mut s = Scheduler::new(kind);
            assert_eq!(s.kind(), Some(kind));
            let paths = [
                view(0, 50, true, 10_000, true),
                view(1, 20, true, 10_000, true),
            ];
            let d = s.select_for_data(&paths, 1350).unwrap_or_else(|| {
                panic!("{} produced no decision", kind.name());
            });
            assert!(paths.iter().any(|p| p.id == d.path), "{}", kind.name());
            assert!(s.select_for_control(&paths).is_some(), "{}", kind.name());
        }
    }
}
