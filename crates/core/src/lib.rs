//! # mpquic-core — Multipath QUIC
//!
//! A from-scratch Rust implementation of **Multipath QUIC** as designed in
//! *Multipath QUIC: Design and Evaluation* (De Coninck & Bonaventure,
//! CoNEXT 2017): a QUIC extension that lets one connection exploit several
//! network paths simultaneously — WiFi + LTE on a smartphone, IPv4 + IPv6
//! on a dual-stack host.
//!
//! ## Design (paper §3)
//!
//! * **Explicit Path IDs** in the public header, one packet-number space
//!   per path ([`mpquic_wire::PublicHeader`], [`path::Path`]).
//! * **Frames independent of packets**: stream data and control frames may
//!   be (re)transmitted on any path ([`stream`], [`Connection`]).
//! * **Path management**: handshake on the initial path only; new paths
//!   carry data in their first packet; `ADD_ADDRESS` advertises addresses;
//!   `PATHS` shares per-path health ([`Connection`]).
//! * **Lowest-RTT scheduling** with duplication while a path's RTT is
//!   unknown ([`scheduler::Scheduler`]).
//! * **OLIA coupled congestion control** (`mpquic-cc`).
//! * **RTO ⇒ potentially-failed path** handover logic with PATHS-frame
//!   acceleration ([`recovery`], [`Connection`]) — the Fig. 11 mechanism.
//!
//! ## Sans-IO
//!
//! [`Connection`] never touches sockets or clocks. Drive it with:
//!
//! ```text
//! conn.handle_datagram(now, local, remote, &bytes);   // network -> conn
//! while let Some(t) = conn.poll_transmit(now) { ... } // conn -> network
//! conn.next_timeout() / conn.on_timeout(now)          // timers
//! conn.poll_event()                                   // conn -> app
//! ```
//!
//! The `mpquic-netsim` crate provides the discrete-event network that the
//! experiments (and the examples) use as the substrate; a real UDP event
//! loop could drive the same state machine.
//!
//! Single-path QUIC — the paper's baseline — is this same implementation
//! with [`Config::single_path`] (multipath disabled, CUBIC).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod buffer;
pub mod config;
pub mod connection;
pub mod flow;
pub mod invariant;
pub mod path;
pub mod qlog;
pub mod recovery;
pub mod rtt;
pub mod scheduler;
pub mod stream;

pub use buffer::{BufferPool, PoolStats, TransmitQueue};
pub use config::{Config, ConfigBuilder, ConfigError, ConnStats, Event, Role, Transmit};
pub use connection::{error_codes, Connection, PathOp, StreamHandle};
pub use path::{Path, PathState};
pub use qlog::{Qlog, QlogEvent};
pub use scheduler::{
    Decision, ParseSchedulerError, PathView, SchedulePolicy, Scheduler, SchedulerKind,
    SCHEDULER_KINDS,
};
pub use stream::StreamId;

// Re-export the pieces callers commonly need alongside the connection.
pub use mpquic_cc::CcAlgorithm;
pub use mpquic_wire::PathId;

/// The telemetry crate, re-exported so subscribers can be built without a
/// separate dependency: `mpquic_core::telemetry::StreamingQlog`, etc.
/// Install a stack with [`Connection::set_subscriber`].
pub use mpquic_telemetry as telemetry;
