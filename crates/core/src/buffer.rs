//! Pooled datagram buffers for the batched egress datapath.
//!
//! The batched datapath ([`crate::Connection::poll_transmit_batch`])
//! produces many datagrams per call. Allocating a fresh `Vec<u8>` per
//! datagram would make allocator pressure scale with throughput, so the
//! buffers cycle through a [`BufferPool`]: taken when a datagram is
//! built, handed to the socket layer inside a [`crate::Transmit`], and
//! returned once the bytes are on the wire. After a short warm-up the
//! pool reaches a steady state where the hot path performs no heap
//! allocation at all (buffers keep whatever capacity they grew to).
//!
//! [`TransmitQueue`] owns a pool plus the queue of pending
//! [`crate::Transmit`]s and implements GSO-shaped coalescing: runs of
//! equal-size datagrams for the same `(local, remote)` pair are appended
//! into a single buffer whose [`crate::Transmit::segment_size`] records
//! the segment boundary, the way Linux `UDP_SEGMENT` describes a
//! segment train. The socket layer then fans the train out with one
//! `sendmmsg` call instead of one syscall per datagram.
//!
//! This module is inside the no-panic lint scope (`cargo xtask lint`):
//! nothing here may index, unwrap or panic.

use std::collections::VecDeque;
use std::net::SocketAddr;

use crate::config::Transmit;

/// Default number of datagrams a [`TransmitQueue`] accepts per batch.
pub const DEFAULT_BATCH: usize = 64;

/// Largest number of segments coalesced into one GSO-shaped
/// [`crate::Transmit`] (Linux caps `UDP_SEGMENT` trains at 64; we stay
/// well below so a lost train never costs a full flight).
pub const MAX_GSO_SEGMENTS: usize = 16;

/// Counters describing pool behaviour, for telemetry and benches.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Buffers handed out over the pool's lifetime.
    pub taken: u64,
    /// Buffers returned over the pool's lifetime.
    pub returned: u64,
    /// `take` calls that had to allocate because the free list was empty
    /// (a steady-state datapath stops incrementing this after warm-up).
    pub misses: u64,
}

/// A fixed-capacity pool of reusable byte buffers.
///
/// `take` pops a cleared buffer (allocating only when the pool is
/// empty); `put` returns one. In debug builds the pool is leak-checked:
/// dropping it while buffers are still outstanding trips a
/// `debug_assert`, so a datapath that forgets to recycle fails loudly in
/// tests instead of silently degrading to per-datagram allocation.
#[derive(Debug)]
pub struct BufferPool {
    free: Vec<Vec<u8>>,
    buf_capacity: usize,
    max_buffers: usize,
    outstanding: usize,
    stats: PoolStats,
}

impl BufferPool {
    /// Creates a pool of `max_buffers` buffers, each preallocated with
    /// `buf_capacity` bytes of capacity.
    pub fn new(max_buffers: usize, buf_capacity: usize) -> BufferPool {
        let max_buffers = max_buffers.max(1);
        let mut free = Vec::with_capacity(max_buffers);
        for _ in 0..max_buffers {
            free.push(Vec::with_capacity(buf_capacity));
        }
        BufferPool {
            free,
            buf_capacity,
            max_buffers,
            outstanding: 0,
            stats: PoolStats::default(),
        }
    }

    /// Pops a cleared buffer, allocating a fresh one only when the pool
    /// has run dry (counted in [`PoolStats::misses`]).
    pub fn take(&mut self) -> Vec<u8> {
        self.outstanding += 1;
        self.stats.taken += 1;
        match self.free.pop() {
            Some(buf) => buf,
            None => {
                self.stats.misses += 1;
                Vec::with_capacity(self.buf_capacity)
            }
        }
    }

    /// Returns a buffer to the pool. The buffer is cleared but keeps its
    /// capacity; buffers beyond the pool's fixed size are dropped.
    pub fn put(&mut self, mut buf: Vec<u8>) {
        self.outstanding = self.outstanding.saturating_sub(1);
        self.stats.returned += 1;
        if self.free.len() < self.max_buffers {
            buf.clear();
            self.free.push(buf);
        }
    }

    /// Buffers currently taken and not yet returned.
    pub fn outstanding(&self) -> usize {
        self.outstanding
    }

    /// Lifetime counters.
    pub fn stats(&self) -> PoolStats {
        self.stats
    }
}

impl Drop for BufferPool {
    fn drop(&mut self) {
        // Leak check (debug builds): every taken buffer must have been
        // returned by the time the pool goes away. Skipped during panics
        // so a failing test reports its own assertion, not this one.
        if cfg!(debug_assertions) && !std::thread::panicking() {
            debug_assert_eq!(
                self.outstanding, 0,
                "BufferPool dropped with {} leaked buffer(s)",
                self.outstanding
            );
        }
    }
}

/// A bounded queue of pool-backed [`Transmit`]s with GSO-shaped
/// coalescing, filled by [`crate::Connection::poll_transmit_batch`] and
/// drained by the socket layer.
///
/// Capacity is counted in *segments* (individual datagrams on the
/// wire), not queue entries, so coalescing never lets a batch outgrow
/// what the socket layer sized its syscall arrays for.
#[derive(Debug)]
pub struct TransmitQueue {
    pool: BufferPool,
    items: VecDeque<Transmit>,
    max_segments: usize,
    queued_segments: usize,
    coalesced: u64,
}

impl TransmitQueue {
    /// A queue accepting up to `max_segments` datagrams per batch, each
    /// up to `buf_capacity` bytes.
    pub fn new(max_segments: usize, buf_capacity: usize) -> TransmitQueue {
        let max_segments = max_segments.max(1);
        TransmitQueue {
            pool: BufferPool::new(max_segments, buf_capacity),
            items: VecDeque::with_capacity(max_segments),
            max_segments,
            queued_segments: 0,
            coalesced: 0,
        }
    }

    /// A queue sized for `config`: [`DEFAULT_BATCH`] datagrams of the
    /// configured maximum datagram size.
    pub fn for_config(config: &crate::Config) -> TransmitQueue {
        TransmitQueue::new(DEFAULT_BATCH, config.max_datagram_size)
    }

    /// True while the queue can accept at least one more datagram.
    pub fn has_capacity(&self) -> bool {
        self.queued_segments < self.max_segments
    }

    /// Takes a buffer from the pool for the caller to fill.
    pub fn take_buf(&mut self) -> Vec<u8> {
        self.pool.take()
    }

    /// Returns a buffer (e.g. one popped inside a [`Transmit`], or one
    /// taken but never filled) to the pool.
    pub fn recycle(&mut self, buf: Vec<u8>) {
        self.pool.put(buf);
    }

    /// Enqueues one datagram held in a pool buffer, coalescing it into
    /// the previous entry's GSO train when shapes allow (same addresses,
    /// prior segments all full-size, train below [`MAX_GSO_SEGMENTS`]).
    pub fn push_segment(&mut self, local: SocketAddr, remote: SocketAddr, buf: Vec<u8>) {
        self.queued_segments += 1;
        if !buf.is_empty() {
            if let Some(last) = self.items.back_mut() {
                if Self::can_coalesce(last, local, remote, buf.len()) {
                    if last.segment_size.is_none() {
                        last.segment_size = Some(last.payload.len());
                    }
                    last.payload.extend_from_slice(&buf);
                    self.pool.put(buf);
                    self.coalesced += 1;
                    return;
                }
            }
        }
        self.items.push_back(Transmit {
            local,
            remote,
            payload: buf,
            segment_size: None,
        });
    }

    /// Enqueues an externally built [`Transmit`] (not pool-backed; used
    /// by the generic one-at-a-time shims). No coalescing is attempted —
    /// the payload's allocation is owned by the caller.
    pub fn push(&mut self, transmit: Transmit) {
        self.queued_segments += transmit.segment_count();
        self.items.push_back(transmit);
    }

    /// Dequeues the next transmit. Its payload buffer should come back
    /// via [`TransmitQueue::recycle`] once sent (pool-backed payloads
    /// that are dropped instead trip the debug leak check).
    pub fn pop(&mut self) -> Option<Transmit> {
        let transmit = self.items.pop_front()?;
        self.queued_segments = self
            .queued_segments
            .saturating_sub(transmit.segment_count());
        Some(transmit)
    }

    /// Queue entries (GSO trains count once).
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Datagrams queued (each train segment counts).
    pub fn segments(&self) -> usize {
        self.queued_segments
    }

    /// Segments appended to an existing train over the queue's lifetime.
    pub fn coalesced(&self) -> u64 {
        self.coalesced
    }

    /// Pool counters.
    pub fn pool_stats(&self) -> PoolStats {
        self.pool.stats()
    }

    fn can_coalesce(last: &Transmit, local: SocketAddr, remote: SocketAddr, len: usize) -> bool {
        if last.local != local || last.remote != remote || last.payload.is_empty() {
            return false;
        }
        // The segment size of the train is fixed by its first datagram.
        let seg = match last.segment_size {
            Some(seg) => seg,
            None => last.payload.len(),
        };
        if seg == 0 || len > seg {
            return false;
        }
        // Only the final segment may be short: a train whose byte count
        // is not a multiple of its segment size is closed. This also
        // means appending a short segment closes the train.
        if !last.payload.len().is_multiple_of(seg) {
            return false;
        }
        last.payload.len() / seg < MAX_GSO_SEGMENTS
    }
}

impl Drop for TransmitQueue {
    fn drop(&mut self) {
        // Return queued payloads so the pool's leak check only fires for
        // buffers the *caller* popped and failed to recycle.
        while let Some(transmit) = self.items.pop_front() {
            self.pool.put(transmit.payload);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(port: u16) -> SocketAddr {
        SocketAddr::from(([127, 0, 0, 1], port))
    }

    #[test]
    fn pool_reuses_buffers_without_allocating() {
        let mut pool = BufferPool::new(4, 1500);
        let mut bufs: Vec<Vec<u8>> = (0..4).map(|_| pool.take()).collect();
        assert_eq!(pool.outstanding(), 4);
        assert_eq!(pool.stats().misses, 0, "preallocated buffers suffice");
        for buf in &mut bufs {
            buf.extend_from_slice(&[0xAB; 100]);
        }
        for buf in bufs {
            pool.put(buf);
        }
        assert_eq!(pool.outstanding(), 0);
        let again = pool.take();
        assert!(again.is_empty(), "returned buffers are cleared");
        assert!(again.capacity() >= 1500, "capacity is retained");
        pool.put(again);
        assert_eq!(pool.stats().misses, 0);
    }

    #[test]
    fn pool_overflow_allocates_and_counts_misses() {
        let mut pool = BufferPool::new(1, 64);
        let a = pool.take();
        let b = pool.take();
        assert_eq!(pool.stats().misses, 1);
        pool.put(a);
        pool.put(b); // beyond max_buffers: dropped, not pooled
        assert_eq!(pool.outstanding(), 0);
    }

    #[test]
    #[should_panic(expected = "leaked buffer")]
    #[cfg(debug_assertions)]
    fn pool_leak_check_fires_in_debug() {
        let mut pool = BufferPool::new(2, 64);
        let leaked = pool.take();
        std::mem::forget(leaked);
        drop(pool); // panics: 1 outstanding
    }

    #[test]
    fn queue_coalesces_equal_size_same_path_runs() {
        let mut q = TransmitQueue::new(16, 1500);
        for _ in 0..3 {
            let mut buf = q.take_buf();
            buf.extend_from_slice(&[1u8; 100]);
            q.push_segment(addr(1), addr(2), buf);
        }
        assert_eq!(q.len(), 1, "three equal segments form one train");
        assert_eq!(q.segments(), 3);
        assert_eq!(q.coalesced(), 2);
        let t = q.pop().expect("queued");
        assert_eq!(t.segment_size, Some(100));
        assert_eq!(t.payload.len(), 300);
        assert_eq!(t.segment_count(), 3);
        q.recycle(t.payload);
    }

    #[test]
    fn queue_does_not_coalesce_across_paths_or_after_short_segment() {
        let mut q = TransmitQueue::new(16, 1500);
        let mut full = q.take_buf();
        full.extend_from_slice(&[1u8; 100]);
        q.push_segment(addr(1), addr(2), full);
        // Different remote: new entry.
        let mut other = q.take_buf();
        other.extend_from_slice(&[2u8; 100]);
        q.push_segment(addr(1), addr(3), other);
        assert_eq!(q.len(), 2);
        // Short segment joins its train but closes it...
        let mut short = q.take_buf();
        short.extend_from_slice(&[3u8; 40]);
        q.push_segment(addr(1), addr(3), short);
        assert_eq!(q.len(), 2);
        // ...so the next full-size datagram starts a fresh entry.
        let mut next = q.take_buf();
        next.extend_from_slice(&[4u8; 100]);
        q.push_segment(addr(1), addr(3), next);
        assert_eq!(q.len(), 3);
        assert_eq!(q.segments(), 4);
        while let Some(t) = q.pop() {
            q.recycle(t.payload);
        }
    }

    #[test]
    fn queue_capacity_counts_segments_not_entries() {
        let mut q = TransmitQueue::new(3, 1500);
        for _ in 0..3 {
            assert!(q.has_capacity());
            let mut buf = q.take_buf();
            buf.extend_from_slice(&[9u8; 50]);
            q.push_segment(addr(1), addr(2), buf);
        }
        assert!(!q.has_capacity(), "3 segments fill a 3-segment queue");
        assert_eq!(q.len(), 1, "even though they coalesced into one entry");
        let t = q.pop().expect("queued");
        assert!(q.has_capacity());
        q.recycle(t.payload);
    }

    #[test]
    fn train_segments_iterate_in_order() {
        let mut q = TransmitQueue::new(8, 1500);
        for fill in [10u8, 20, 30] {
            let mut buf = q.take_buf();
            buf.extend_from_slice(&[fill; 64]);
            q.push_segment(addr(7), addr(8), buf);
        }
        let t = q.pop().expect("queued");
        let segs: Vec<&[u8]> = t.segments().collect();
        assert_eq!(segs.len(), 3);
        assert_eq!(segs[0], &[10u8; 64][..]);
        assert_eq!(segs[1], &[20u8; 64][..]);
        assert_eq!(segs[2], &[30u8; 64][..]);
        q.recycle(t.payload);
    }
}
