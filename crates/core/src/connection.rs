//! The Multipath QUIC connection: the paper's design, assembled.
//!
//! A [`Connection`] is a sans-IO state machine (see the crate docs): the
//! caller feeds incoming datagrams ([`Connection::handle_datagram`]) and
//! the clock ([`Connection::on_timeout`]), and drains outgoing datagrams
//! ([`Connection::poll_transmit`]) and application events
//! ([`Connection::poll_event`]).
//!
//! The multipath machinery follows §3 of the paper:
//!
//! * the handshake runs on the initial path only; once complete, the
//!   client's path manager opens one path per additional local interface
//!   (odd Path IDs), pairing local and remote addresses by the address IDs
//!   the server announced in `ADD_ADDRESS` frames;
//! * new paths carry data in their very first packet (no per-path
//!   handshake);
//! * each packet is placed by the lowest-RTT scheduler, with stream frames
//!   duplicated onto a known path while the chosen path's RTT is unknown;
//! * `WINDOW_UPDATE` frames are duplicated on all active paths;
//! * an RTO marks a path *potentially failed*, moves its frames to the
//!   retransmission queues (servable by any path), collapses its window
//!   and — the §4.3 handover accelerator — attaches a `PATHS` frame so the
//!   peer learns about the failure without waiting for its own RTO.

use bytes::{Bytes, BytesMut};
use mpquic_crypto::nonce_for;
use mpquic_crypto::{
    handshake::initial_key, Aead, ClientHandshake, HandshakeEvent, ServerHandshake, SessionKeys,
};
use mpquic_util::{DetRng, SimTime};
use mpquic_wire::{
    AckFrame, AddressInfo, Frame, Packet, PacketBuilder, PacketType, PathId, PathInfo, PathStatus,
    PublicHeader, StreamFrame,
};
use std::collections::{BTreeMap, VecDeque};
use std::net::SocketAddr;

use mpquic_telemetry::{self as telemetry, Subscriber};

use crate::buffer::TransmitQueue;
use crate::config::{Config, ConnStats, Event, Role, Transmit};
use crate::flow::ConnFlowControl;
use crate::invariant::InvariantChecker;
use crate::path::{ChallengeTimeout, Path, PathState};
use crate::qlog::Qlog;
use crate::recovery::SentPacket;
use crate::scheduler::{PathView, Scheduler, SchedulerReason};
use crate::stream::{RecvStream, SendStream, StreamId};

/// Transport-level error codes used in CONNECTION_CLOSE.
pub mod error_codes {
    /// Clean application close.
    pub const NO_ERROR: u64 = 0;
    /// Peer violated flow control.
    pub const FLOW_CONTROL_ERROR: u64 = 0x3;
    /// Peer broke stream semantics (e.g. moved a FIN).
    pub const STREAM_STATE_ERROR: u64 = 0x5;
    /// The connection idled out (closed silently, no CONNECTION_CLOSE).
    pub const IDLE_TIMEOUT: u64 = 0x10;
}

/// Demux-facing operations a connection asks its endpoint to perform,
/// drained via [`Connection::pop_path_op`] after each batch of work.
///
/// CID rotation only works if the endpoint's demux table learns the new
/// connection ID *before* the peer starts using it — otherwise the first
/// rotated datagram is dropped on the floor. The connection therefore
/// publishes routing changes through this queue instead of mutating demux
/// state it cannot see.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PathOp {
    /// Route datagrams carrying this connection ID to this connection (a
    /// rotation is in progress; the peer may switch at any moment).
    MapCid(u64),
    /// Stop routing this connection ID (rotation complete). Endpoints
    /// should tombstone it so stragglers are counted, not misrouted.
    UnmapCid(u64),
    /// A path validation started (an address change quarantined a path).
    ValidationStarted,
    /// A path validation completed successfully.
    ValidationCompleted,
    /// A path validation exhausted its challenge retries.
    ValidationAbandoned,
}

/// A Multipath QUIC connection endpoint.
///
/// ```
/// use mpquic_core::{Config, Connection};
/// use mpquic_util::SimTime;
/// use bytes::Bytes;
///
/// // A dual-interface client (e.g. WiFi + LTE) dialing a server.
/// let mut client = Connection::client(
///     Config::multipath(),
///     vec!["10.0.0.1:4000".parse().unwrap(), "10.1.0.1:4000".parse().unwrap()],
///     0,
///     "10.0.1.1:443".parse().unwrap(),
///     42,
/// );
/// let stream = client.open_stream();
/// client.stream_write(stream, Bytes::from_static(b"hello")).unwrap();
/// client.stream_finish(stream);
/// // The first transmit is the handshake packet (CHLO on path 0).
/// let first = client.poll_transmit(SimTime::ZERO).expect("CHLO");
/// assert_eq!(first.remote, "10.0.1.1:443".parse().unwrap());
/// ```
pub struct Connection {
    role: Role,
    config: Config,
    /// Connection ID (chosen by the client; learned by the server).
    cid: u64,
    /// Previous connection ID, still accepted inbound after a rotation so
    /// in-flight datagrams keyed to the old CID are not dropped.
    prev_cid: Option<u64>,
    /// A rotation we initiated and are waiting to see retired:
    /// `(sequence, new CID)`.
    pending_new_cid: Option<(u64, u64)>,
    /// Sequence number for the next NEW_CONNECTION_ID we issue.
    next_cid_seq: u64,
    /// Lowest NEW_CONNECTION_ID sequence we would still accept from the
    /// peer (highest adopted + 1).
    peer_cid_seq: u64,
    /// Deterministic RNG for path-challenge tokens and rotated CIDs.
    rng: DetRng,
    /// Demux-facing operations, drained via [`Connection::pop_path_op`].
    path_ops: VecDeque<PathOp>,
    /// Connection-wide packet-number counter, used instead of the
    /// per-path counters when `Config::shared_pn_space` is set (the
    /// paper's single-space ablation).
    shared_pn: u64,

    // --- crypto ---
    client_hs: Option<ClientHandshake>,
    server_hs: Option<ServerHandshake>,
    session_keys: Option<SessionKeys>,
    handshake_complete: bool,
    /// Crypto frames awaiting transmission in Handshake packets.
    crypto_queue: VecDeque<Frame>,

    // --- paths & addressing ---
    paths: BTreeMap<PathId, Path>,
    local_addrs: Vec<SocketAddr>,
    /// Index (into `local_addrs`) of the interface the connection started on.
    initial_local_index: usize,
    /// Remote addresses by the peer's address ID (ADD_ADDRESS).
    remote_addrs: BTreeMap<u64, SocketAddr>,
    /// Next client-initiated path ID (odd).
    next_path_id: u32,
    /// Most recent PATHS frame received from the peer.
    peer_paths: Vec<PathInfo>,
    addresses_advertised: bool,
    /// Set while processing a packet that contained ADD_ADDRESS frames.
    addresses_dirty: bool,

    // --- streams & flow control ---
    send_streams: BTreeMap<StreamId, SendStream>,
    recv_streams: BTreeMap<StreamId, RecvStream>,
    next_stream_id: u64,
    /// Round-robin service cursor so one busy stream cannot starve the
    /// others within a packet-building loop.
    stream_cursor: u64,
    flow: ConnFlowControl,

    // --- scheduling & frame queues ---
    scheduler: Scheduler,
    /// Path-agnostic control frames (sendable anywhere).
    control_queue: VecDeque<Frame>,
    /// Frames bound to a specific path (WINDOW_UPDATE duplicates, probes).
    per_path_queue: BTreeMap<PathId, VecDeque<Frame>>,
    /// Stream frames duplicated toward a specific path by the scheduler's
    /// unknown-RTT phase.
    duplicate_queue: BTreeMap<PathId, VecDeque<StreamFrame>>,

    // --- lifecycle ---
    /// Last time any authenticated packet was received.
    last_activity: Option<SimTime>,
    /// Structured event log (enabled via `Config::enable_qlog`).
    qlog: Qlog,
    /// Telemetry subscriber stack ([`Connection::set_subscriber`]). Every
    /// instrumentation point emits a [`mpquic_telemetry::Event`] through
    /// it; the default `()` stack discards everything.
    subscriber: Box<dyn telemetry::Subscriber>,
    events: VecDeque<Event>,
    close_pending: Option<(u64, String)>,
    close_sent: bool,
    closed: bool,
    stats: ConnStats,
    /// Runtime protocol invariants (zero-sized no-op in plain release
    /// builds; see [`crate::invariant`]).
    invariants: InvariantChecker,
    /// Reusable encode scratch for the egress path (header bytes and
    /// plaintext payload); spares two allocations per packet sealed.
    scratch_header: BytesMut,
    scratch_payload: BytesMut,
}

impl std::fmt::Debug for Connection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Connection")
            .field("role", &self.role)
            .field("cid", &self.cid)
            .field("handshake_complete", &self.handshake_complete)
            .field("paths", &self.paths.keys().collect::<Vec<_>>())
            .field("closed", &self.closed)
            .finish()
    }
}

impl Connection {
    /// Creates a client connection. The initial path runs from
    /// `local_addrs[initial_local_index]` to `remote_addr`; additional
    /// paths open automatically after the handshake when multipath is
    /// enabled and the server advertises matching addresses.
    pub fn client(
        config: Config,
        local_addrs: Vec<SocketAddr>,
        initial_local_index: usize,
        remote_addr: SocketAddr,
        seed: u64,
    ) -> Connection {
        assert!(initial_local_index < local_addrs.len());
        let mut rng = DetRng::new(seed);
        // CID 0 is the server's "not yet adopted" sentinel, so the client
        // must never choose it (a DetRng word is 0 with probability 2⁻⁶⁴,
        // but seeds are caller-controlled, so guard anyway).
        let mut cid = rng.next_u64();
        while cid == 0 {
            cid = rng.next_u64();
        }
        let mut hs = ClientHandshake::with_version(cid, &mut rng, config.quic_version);
        let mut crypto_queue = VecDeque::new();
        if let Some(HandshakeEvent::Send(bytes)) = hs.poll() {
            crypto_queue.push_back(Frame::Crypto {
                offset: 0,
                data: bytes,
            });
        }
        let mut conn = Connection::new_common(Role::Client, config, cid, local_addrs, rng);
        conn.initial_local_index = initial_local_index;
        conn.client_hs = Some(hs);
        conn.crypto_queue = crypto_queue;
        let local = conn.local_addrs[initial_local_index];
        conn.create_path(SimTime::ZERO, PathId::INITIAL, local, remote_addr, true);
        conn
    }

    /// Creates a server connection that will accept the first incoming
    /// datagram as its initial path.
    pub fn server(config: Config, local_addrs: Vec<SocketAddr>, seed: u64) -> Connection {
        let mut rng = DetRng::new(seed);
        let hs = ServerHandshake::new(&mut rng);
        let mut conn = Connection::new_common(Role::Server, config, 0, local_addrs, rng);
        conn.server_hs = Some(hs);
        conn
    }

    fn new_common(
        role: Role,
        config: Config,
        cid: u64,
        local_addrs: Vec<SocketAddr>,
        rng: DetRng,
    ) -> Connection {
        assert!(
            !local_addrs.is_empty(),
            "at least one local address required"
        );
        let flow = ConnFlowControl::new(config.conn_recv_window, config.conn_recv_window);
        // An installed policy object wins over the named kind; cloning it
        // keeps `Config` reusable across connections.
        let scheduler = match &config.scheduler_policy {
            Some(policy) => Scheduler::from_policy(policy.clone_box()),
            None => Scheduler::new(config.scheduler),
        };
        let qlog = if config.enable_qlog {
            Qlog::with_limit(config.qlog_event_limit)
        } else {
            Qlog::disabled()
        };
        Connection {
            role,
            cid,
            prev_cid: None,
            pending_new_cid: None,
            next_cid_seq: 0,
            peer_cid_seq: 0,
            rng,
            path_ops: VecDeque::new(),
            shared_pn: 0,
            qlog,
            subscriber: Box::new(()),
            client_hs: None,
            server_hs: None,
            session_keys: None,
            handshake_complete: false,
            crypto_queue: VecDeque::new(),
            paths: BTreeMap::new(),
            local_addrs,
            initial_local_index: 0,
            remote_addrs: BTreeMap::new(),
            next_path_id: 1,
            peer_paths: Vec::new(),
            addresses_advertised: false,
            addresses_dirty: false,
            send_streams: BTreeMap::new(),
            recv_streams: BTreeMap::new(),
            next_stream_id: match role {
                Role::Client => 1,
                Role::Server => 2,
            },
            stream_cursor: 0,
            flow,
            scheduler,
            control_queue: VecDeque::new(),
            per_path_queue: BTreeMap::new(),
            duplicate_queue: BTreeMap::new(),
            last_activity: None,
            events: VecDeque::new(),
            close_pending: None,
            close_sent: false,
            closed: false,
            stats: ConnStats::default(),
            invariants: InvariantChecker::new(),
            scratch_header: BytesMut::new(),
            scratch_payload: BytesMut::new(),
            config,
        }
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// This endpoint's role.
    pub fn role(&self) -> Role {
        self.role
    }

    /// The connection ID.
    pub fn connection_id(&self) -> u64 {
        self.cid
    }

    /// True once the secure handshake finished.
    pub fn is_established(&self) -> bool {
        self.handshake_complete
    }

    /// True once the connection is closed (either side).
    pub fn is_closed(&self) -> bool {
        self.closed
    }

    /// Statistics counters.
    pub fn stats(&self) -> ConnStats {
        self.stats
    }

    /// The local addresses this connection may send from (one per
    /// interface). A real-socket driver binds one socket per entry.
    pub fn local_addrs(&self) -> &[SocketAddr] {
        &self.local_addrs
    }

    /// IDs of the currently known paths.
    pub fn path_ids(&self) -> Vec<PathId> {
        self.paths.keys().copied().collect()
    }

    /// Read-only view of a path (tests and experiment instrumentation).
    pub fn path(&self, id: PathId) -> Option<&Path> {
        self.paths.get(&id)
    }

    /// Most recent PATHS frame contents received from the peer.
    pub fn peer_paths(&self) -> &[PathInfo] {
        &self.peer_paths
    }

    /// Pops the next application event.
    pub fn poll_event(&mut self) -> Option<Event> {
        self.events.pop_front()
    }

    /// The structured event log (empty unless `Config::enable_qlog`).
    pub fn qlog(&self) -> &Qlog {
        &self.qlog
    }

    /// Installs a telemetry subscriber stack, replacing the current one.
    ///
    /// Compose subscribers with tuples —
    /// `Box::new((metrics, (streaming_qlog, stats)))` — per
    /// [`mpquic_telemetry::Subscriber`]. Events emitted before the call
    /// are not replayed, so install the stack before driving the
    /// connection.
    pub fn set_subscriber(&mut self, subscriber: Box<dyn telemetry::Subscriber>) {
        self.subscriber = subscriber;
    }

    /// True when anything is listening: the legacy qlog or an installed
    /// subscriber. Emission points that must *allocate* to describe an
    /// event (candidate lists, path vectors) check this first.
    fn telemetry_enabled(&self) -> bool {
        Subscriber::is_enabled(&self.qlog) || self.subscriber.is_enabled()
    }

    /// Delivers one event to the legacy qlog and the subscriber stack.
    fn emit(&mut self, event: telemetry::Event) {
        self.qlog.on_event(&event);
        self.subscriber.on_event(&event);
    }

    // ------------------------------------------------------------------
    // Stream API
    // ------------------------------------------------------------------

    /// Opens a new bidirectional stream and returns its ID.
    pub fn open_stream(&mut self) -> StreamId {
        let id = self.next_stream_id;
        self.next_stream_id += 2;
        self.send_streams
            .insert(id, SendStream::new(id, self.config.stream_recv_window));
        self.recv_streams
            .insert(id, RecvStream::new(id, self.config.stream_recv_window));
        id
    }

    /// Returns a handle bundling all per-stream operations for `id` —
    /// the preferred stream API. The handle borrows the connection, so
    /// drive it in its own statement:
    ///
    /// ```ignore
    /// conn.stream(id).write(data)?;
    /// let chunk = conn.stream(id).read(4096);
    /// ```
    pub fn stream(&mut self, id: StreamId) -> StreamHandle<'_> {
        StreamHandle { conn: self, id }
    }

    /// Appends data to a stream's send buffer.
    ///
    /// Thin shim over [`StreamHandle::write`]; prefer
    /// `conn.stream(id).write(data)`.
    pub fn stream_write(
        &mut self,
        id: StreamId,
        data: Bytes,
    ) -> Result<(), crate::stream::StreamError> {
        self.stream(id).write(data)
    }

    /// Marks a stream finished at its current write offset.
    ///
    /// Thin shim over [`StreamHandle::finish`]; prefer
    /// `conn.stream(id).finish()`.
    pub fn stream_finish(&mut self, id: StreamId) {
        self.stream(id).finish();
    }

    /// Reads up to `max` in-order bytes from a stream.
    ///
    /// Thin shim over [`StreamHandle::read`]; prefer
    /// `conn.stream(id).read(max)`.
    pub fn stream_read(&mut self, id: StreamId, max: usize) -> Option<Bytes> {
        self.stream(id).read(max)
    }

    /// True once the peer's FIN and all stream data have been read.
    ///
    /// Thin shim over [`StreamHandle::is_finished`]; prefer
    /// `conn.stream(id).is_finished()`.
    pub fn stream_is_finished(&self, id: StreamId) -> bool {
        self.recv_streams.get(&id).is_some_and(|s| s.is_finished())
    }

    /// True once everything written (and the FIN) was acknowledged.
    ///
    /// Thin shim over [`StreamHandle::is_fully_acked`]; prefer
    /// `conn.stream(id).is_fully_acked()`.
    pub fn stream_fully_acked(&self, id: StreamId) -> bool {
        self.send_streams
            .get(&id)
            .is_some_and(|s| s.is_fully_acked())
    }

    /// IDs of streams the *peer* opened, in ID order (no allocation).
    ///
    /// Peer streams have the opposite ID parity from locally opened
    /// ones (clients open odd IDs, servers even), so a server
    /// application can discover new request streams by scanning this
    /// instead of tracking [`Event::StreamOpened`] events.
    pub fn peer_stream_ids(&self) -> impl Iterator<Item = StreamId> + '_ {
        let peer_parity = match self.role {
            Role::Client => 0,
            Role::Server => 1,
        };
        self.recv_streams
            .keys()
            .copied()
            .filter(move |id| id % 2 == peer_parity)
    }

    /// Begins a clean or error close.
    pub fn close(&mut self, error_code: u64, reason: &str) {
        if self.close_pending.is_none() && !self.closed {
            self.close_pending = Some((error_code, reason.to_string()));
        }
    }

    // ------------------------------------------------------------------
    // Ingress
    // ------------------------------------------------------------------

    /// Processes one incoming UDP datagram.
    pub fn handle_datagram(
        &mut self,
        now: SimTime,
        local: SocketAddr,
        remote: SocketAddr,
        data: &[u8],
    ) {
        if self.closed {
            return;
        }
        let mut cursor = data;
        let Ok(header) = PublicHeader::decode(&mut cursor) else {
            self.stats.decrypt_failures += 1;
            return;
        };
        let header_len = data.len() - cursor.len();
        if self.role == Role::Server && self.cid == 0 {
            self.cid = header.connection_id;
        }
        // During a CID rotation, three IDs route here: the current one,
        // the freshly issued one (the peer may adopt it before our
        // bookkeeping catches up), and the just-retired one (in-flight
        // stragglers).
        let cid_known = header.connection_id == self.cid
            || self.prev_cid == Some(header.connection_id)
            || self.pending_new_cid.map(|(_, cid)| cid) == Some(header.connection_id);
        if !cid_known {
            self.stats.decrypt_failures += 1;
            return;
        }
        // Select keys by packet type and direction.
        let aead = match header.packet_type {
            PacketType::Handshake => Aead::new(initial_key(header.connection_id)),
            PacketType::OneRtt => {
                let Some(keys) = self.session_keys else {
                    // Can't decrypt yet (e.g. 1-RTT data racing the SHLO).
                    self.stats.decrypt_failures += 1;
                    return;
                };
                match self.role {
                    Role::Client => Aead::new(keys.server_to_client),
                    Role::Server => Aead::new(keys.client_to_server),
                }
            }
        };
        let nonce = nonce_for(
            self.config.nonce_mode,
            header.path_id.0,
            header.packet_number,
        );
        let Ok(plaintext) = aead.open(&nonce, &data[..header_len], &data[header_len..]) else {
            self.stats.decrypt_failures += 1;
            return;
        };
        let Ok(packet) = Packet::from_parts(header, &plaintext) else {
            self.stats.decrypt_failures += 1;
            return;
        };

        // Locate or create the path (peer-opened paths carry data in
        // their first packet; no handshake needed).
        if !self.paths.contains_key(&header.path_id) {
            let valid_initiator = match self.role {
                // Peer is the server: it may create even IDs.
                Role::Client => header.path_id.server_initiated(),
                // Peer is the client: ID 0 or odd IDs.
                Role::Server => header.path_id.client_initiated(),
            };
            if !valid_initiator {
                return;
            }
            self.create_path(now, header.path_id, local, remote, false);
            self.events.push_back(Event::PathActive(header.path_id));
        } else {
            // NAT rebinding / handover: the explicit Path ID lets us keep
            // all path state while the remote address changes (paper §3).
            // Once the handshake is done, the new address must prove it
            // can return traffic before any fresh data is scheduled onto
            // it: the path is quarantined in `Validating` and challenged
            // (bounded, timer-driven retries); only a PATH_RESPONSE
            // echoing the token lifts the quarantine. Receiving stays
            // allowed throughout — the quarantine is outbound-only.
            let mut validation_started = None;
            if let Some(path) = self.paths.get_mut(&header.path_id) {
                if path.remote != remote && path.state != PathState::Closed {
                    // A still-pending challenge belongs to an address
                    // the peer has already left: that validation is
                    // superseded, not completed.
                    let superseded = path.state == PathState::Validating;
                    path.remote = remote;
                    if self.handshake_complete {
                        let token = self.rng.next_u64();
                        path.begin_validation(token, now);
                        self.per_path_queue
                            .entry(header.path_id)
                            .or_default()
                            .push_back(Frame::PathChallenge { token });
                        validation_started = Some((header.path_id, superseded));
                    }
                }
            }
            if let Some((path_id, superseded)) = validation_started {
                if superseded {
                    self.path_ops.push_back(PathOp::ValidationAbandoned);
                }
                self.path_ops.push_back(PathOp::ValidationStarted);
                self.events.push_back(Event::PathPotentiallyFailed(path_id));
                self.emit(telemetry::Event::PathValidationStarted(
                    telemetry::PathValidationStarted {
                        time: now,
                        path: path_id,
                    },
                ));
                self.emit(telemetry::Event::PathStateChanged(
                    telemetry::PathStateChanged {
                        time: now,
                        path: path_id,
                        state: telemetry::PathState::Validating,
                    },
                ));
            }
        }

        let ack_eliciting = packet.is_ack_eliciting();
        {
            let path = self.paths.get_mut(&header.path_id).expect("just ensured");
            if !path.on_packet_received(
                header.packet_number,
                now,
                ack_eliciting,
                self.config.max_ack_delay,
            ) {
                self.stats.duplicate_packets += 1;
                return;
            }
            path.bytes_received += data.len() as u64;
        }
        self.stats.packets_received += 1;
        self.stats.bytes_received += data.len() as u64;
        self.last_activity = Some(now);
        self.emit(telemetry::Event::PacketReceived(
            telemetry::PacketReceived {
                time: now,
                path: header.path_id,
                packet_number: header.packet_number,
                size: data.len(),
            },
        ));

        for frame in packet.frames {
            self.handle_frame(now, header.path_id, frame);
            if self.closed {
                return;
            }
        }
        if self.addresses_dirty {
            self.addresses_dirty = false;
            self.maybe_open_paths(now);
        }
    }

    fn handle_frame(&mut self, now: SimTime, on_path: PathId, frame: Frame) {
        match frame {
            Frame::Padding { .. } | Frame::Ping => {}
            Frame::Crypto { data, .. } => self.handle_crypto(now, &data),
            Frame::Ack(ack) => {
                // Decode enforces the cap/layout; this asserts that
                // postcondition actually held (paper: ≤256 ranges).
                self.invariants.check_ack_frame(&ack, "received");
                self.handle_ack(now, on_path, ack);
            }
            Frame::Stream(f) => self.handle_stream_frame(now, f),
            Frame::WindowUpdate {
                stream_id,
                max_data,
            } => {
                if stream_id == 0 {
                    self.flow.on_max_data(max_data);
                } else if let Some(s) = self.send_streams.get_mut(&stream_id) {
                    s.on_max_stream_data(max_data);
                }
            }
            Frame::Blocked { .. } => {}
            Frame::RstStream { stream_id, .. } => {
                // Minimal reset handling: drop receive state and surface
                // completion so readers unblock.
                if self.recv_streams.remove(&stream_id).is_some() {
                    self.events.push_back(Event::StreamComplete(stream_id));
                }
            }
            Frame::ConnectionClose { error_code, reason } => {
                self.closed = true;
                self.events.push_back(Event::Closed { error_code, reason });
            }
            Frame::AddAddress(info) => {
                self.remote_addrs.insert(info.address_id, info.addr);
                // Path opening is deferred to the end of the packet so a
                // multi-address advertisement is seen whole before local
                // interfaces are paired with remote addresses.
                self.addresses_dirty = true;
            }
            Frame::Paths(infos) => {
                let mut changes: Vec<(PathId, telemetry::PathState)> = Vec::new();
                for info in &infos {
                    match info.status {
                        PathStatus::PotentiallyFailed => {
                            if let Some(path) = self.paths.get_mut(&info.path_id) {
                                if path.state == PathState::Active {
                                    path.mark_potentially_failed(now);
                                    self.events
                                        .push_back(Event::PathPotentiallyFailed(info.path_id));
                                    changes.push((
                                        info.path_id,
                                        telemetry::PathState::PotentiallyFailed,
                                    ));
                                }
                            }
                        }
                        PathStatus::Closed => {
                            if let Some(path) = self.paths.get_mut(&info.path_id) {
                                if path.state != PathState::Closed {
                                    path.state = PathState::Closed;
                                    path.probe_at = None;
                                    self.events.push_back(Event::PathClosed(info.path_id));
                                    changes.push((info.path_id, telemetry::PathState::Closed));
                                }
                            }
                        }
                        PathStatus::Active => {}
                    }
                }
                self.peer_paths = infos;
                for (path, state) in changes {
                    self.emit(telemetry::Event::PathStateChanged(
                        telemetry::PathStateChanged {
                            time: now,
                            path,
                            state,
                        },
                    ));
                }
            }
            Frame::PathChallenge { token } => {
                // Echo on the same path: a PATH_RESPONSE only proves the
                // 4-tuple works if it travels the challenged path.
                self.per_path_queue
                    .entry(on_path)
                    .or_default()
                    .push_back(Frame::PathResponse { token });
            }
            Frame::PathResponse { token } => self.handle_path_response(now, token),
            Frame::NewConnectionId { sequence, cid } => self.adopt_new_cid(now, sequence, cid),
            Frame::RetireConnectionId { sequence } => self.complete_cid_rotation(now, sequence),
        }
    }

    /// A PATH_RESPONSE lifts the quarantine on whichever path issued the
    /// matching challenge. On the server, a successful migration also
    /// triggers a CID rotation so on-path observers cannot link the
    /// client's old and new addresses.
    fn handle_path_response(&mut self, now: SimTime, token: u64) {
        let validated = self
            .paths
            .values_mut()
            .find_map(|p| p.complete_validation(token).then_some(p.id));
        let Some(path_id) = validated else {
            return;
        };
        self.path_ops.push_back(PathOp::ValidationCompleted);
        self.events.push_back(Event::PathActive(path_id));
        self.emit(telemetry::Event::PathValidated(telemetry::PathValidated {
            time: now,
            path: path_id,
        }));
        self.emit(telemetry::Event::PathStateChanged(
            telemetry::PathStateChanged {
                time: now,
                path: path_id,
                state: telemetry::PathState::Active,
            },
        ));
        if self.role == Role::Server {
            self.rotate_cid();
        }
    }

    /// Initiates a connection-ID rotation: queues NEW_CONNECTION_ID with a
    /// fresh CID and tells the local demux (via [`Connection::pop_path_op`])
    /// to route the new CID here *before* the peer can switch to it. The
    /// rotation completes when the peer retires it back with
    /// RETIRE_CONNECTION_ID, at which point this endpoint switches its
    /// outgoing CID and unmaps the old one. No-op while a rotation is
    /// already pending or before the handshake completes.
    pub fn rotate_cid(&mut self) {
        if self.pending_new_cid.is_some() || !self.handshake_complete || self.closed {
            return;
        }
        let mut new_cid = self.rng.next_u64();
        while new_cid == 0 || new_cid == self.cid || Some(new_cid) == self.prev_cid {
            new_cid = self.rng.next_u64();
        }
        let sequence = self.next_cid_seq;
        self.next_cid_seq += 1;
        self.pending_new_cid = Some((sequence, new_cid));
        self.path_ops.push_back(PathOp::MapCid(new_cid));
        self.control_queue.push_back(Frame::NewConnectionId {
            sequence,
            cid: new_cid,
        });
    }

    /// Peer issued us a fresh CID: adopt it for all future sends and
    /// retire the sequence so the peer can drop its old routing entry.
    fn adopt_new_cid(&mut self, now: SimTime, sequence: u64, cid: u64) {
        if sequence < self.peer_cid_seq {
            // Retransmission of one we already adopted; re-ack the
            // retirement in case the first RETIRE_CONNECTION_ID was lost.
            self.control_queue
                .push_back(Frame::RetireConnectionId { sequence });
            return;
        }
        if cid == 0 || cid == self.cid {
            return;
        }
        self.peer_cid_seq = sequence + 1;
        let old_cid = self.cid;
        self.prev_cid = Some(old_cid);
        self.cid = cid;
        self.path_ops.push_back(PathOp::MapCid(cid));
        self.control_queue
            .push_back(Frame::RetireConnectionId { sequence });
        self.emit(telemetry::Event::CidRotated(telemetry::CidRotated {
            time: now,
            old_cid,
            new_cid: cid,
        }));
    }

    /// Peer confirmed it switched to the CID we issued: cut over our own
    /// bookkeeping and release the old demux route.
    fn complete_cid_rotation(&mut self, now: SimTime, sequence: u64) {
        let Some((pending_seq, new_cid)) = self.pending_new_cid else {
            return;
        };
        if sequence != pending_seq {
            return;
        }
        let old_cid = self.cid;
        self.prev_cid = Some(old_cid);
        self.cid = new_cid;
        self.pending_new_cid = None;
        self.path_ops.push_back(PathOp::UnmapCid(old_cid));
        self.emit(telemetry::Event::CidRotated(telemetry::CidRotated {
            time: now,
            old_cid,
            new_cid,
        }));
    }

    /// Drains the next demux-facing path operation. Endpoints call this
    /// after processing a connection so their demux table follows CID
    /// rotations without dropping a datagram; drivers without a demux may
    /// drain and discard.
    pub fn pop_path_op(&mut self) -> Option<PathOp> {
        self.path_ops.pop_front()
    }

    fn handle_crypto(&mut self, now: SimTime, data: &[u8]) {
        match self.role {
            Role::Client => {
                let hs = self.client_hs.as_mut().expect("client handshake");
                match hs.on_crypto_data(data) {
                    Some(HandshakeEvent::Complete(keys)) => {
                        self.session_keys = Some(keys);
                        self.handshake_complete = true;
                        self.events.push_back(Event::HandshakeCompleted);
                        self.maybe_open_paths(now);
                    }
                    Some(HandshakeEvent::Send(bytes)) => {
                        // Version negotiation: retry CHLO with the
                        // mutually supported version.
                        self.crypto_queue.push_back(Frame::Crypto {
                            offset: 0,
                            data: bytes,
                        });
                    }
                    None => {}
                }
            }
            Role::Server => {
                let hs = self.server_hs.as_mut().expect("server handshake");
                let completion = hs.on_crypto_data(data);
                // The server may have queued an SHLO *or* a version
                // negotiation; either way it goes on the crypto stream.
                if let Some(HandshakeEvent::Send(bytes)) = hs.poll() {
                    self.crypto_queue.push_back(Frame::Crypto {
                        offset: 0,
                        data: bytes,
                    });
                }
                if let Some(HandshakeEvent::Complete(keys)) = completion {
                    self.session_keys = Some(keys);
                    self.handshake_complete = true;
                    self.events.push_back(Event::HandshakeCompleted);
                    // Advertise our addresses so the client can open the
                    // additional paths (paper §3, Path Management).
                    if self.config.multipath && !self.addresses_advertised {
                        self.addresses_advertised = true;
                        for (i, &addr) in self.local_addrs.clone().iter().enumerate() {
                            self.control_queue.push_back(Frame::AddAddress(AddressInfo {
                                address_id: i as u64,
                                addr,
                            }));
                        }
                    }
                }
            }
        }
    }

    fn handle_ack(&mut self, now: SimTime, on_path: PathId, ack: AckFrame) {
        // Coupled congestion control needs a snapshot of every path.
        let snapshots: Vec<_> = self.paths.values().map(Path::snapshot).collect();
        let self_index = self
            .paths
            .keys()
            .position(|&id| id == ack.path_id)
            .unwrap_or(0);
        let Some(path) = self.paths.get_mut(&ack.path_id) else {
            return;
        };
        let ack_delay = std::time::Duration::from_micros(ack.ack_delay_micros);
        let mut outcome =
            path.recovery
                .on_ack(now, ack.iter_ranges_ascending(), ack_delay, &mut path.rtt);
        // Telemetry payloads are gathered while the path borrow is live
        // and emitted once it ends.
        let mut metrics = None;
        let mut recovered = false;
        if outcome.newly_acked_bytes > 0 {
            let rtt = path.rtt.latest();
            path.cc
                .on_ack(now, outcome.newly_acked_bytes, rtt, &snapshots, self_index);
            recovered = path.state == PathState::PotentiallyFailed;
            path.mark_recovered();
            metrics = Some(telemetry::MetricsUpdated {
                time: now,
                path: ack.path_id,
                srtt_us: path.rtt.srtt().as_micros() as u64,
                rttvar_us: path.rtt.rttvar().as_micros() as u64,
                cwnd: path.cc.window(),
                bytes_in_flight: path.recovery.bytes_in_flight(),
            });
        }
        let mut window_after = None;
        if outcome.congestion_event {
            path.cc.on_congestion_event(now);
            self.stats.congestion_events += 1;
            window_after = Some(path.cc.window());
        }
        self.emit(telemetry::Event::AckReceived(telemetry::AckReceived {
            time: now,
            on_path,
            acks_path: ack.path_id,
            largest_acked: ack.largest_acked,
            newly_acked_bytes: outcome.newly_acked_bytes,
        }));
        if let Some(m) = metrics {
            self.emit(telemetry::Event::MetricsUpdated(m));
        }
        if recovered {
            self.events.push_back(Event::PathActive(ack.path_id));
            self.emit(telemetry::Event::PathStateChanged(
                telemetry::PathStateChanged {
                    time: now,
                    path: ack.path_id,
                    state: telemetry::PathState::Active,
                },
            ));
        }
        if let Some(window_after) = window_after {
            self.emit(telemetry::Event::CongestionEvent(
                telemetry::CongestionEvent {
                    time: now,
                    path: ack.path_id,
                    window_after,
                },
            ));
        }
        if outcome.lost_bytes > 0 {
            self.emit(telemetry::Event::FramesLost(telemetry::FramesLost {
                time: now,
                path: ack.path_id,
                frames: outcome.lost_frames.len(),
                bytes: outcome.lost_bytes,
            }));
        }
        for frame in outcome.acked_frames.drain(..) {
            self.on_frame_acked(frame);
        }
        let lost_frames = std::mem::take(&mut outcome.lost_frames);
        if !lost_frames.is_empty() {
            self.requeue_lost_frames(now, ack.path_id, lost_frames);
        }
        // Hand the outcome's spent buffers back so the next ACK on this
        // path reuses their capacity (the steady-state zero-alloc claim).
        if let Some(path) = self.paths.get_mut(&ack.path_id) {
            path.recovery.reclaim(outcome);
        }
    }

    /// Delivery confirmation for one retransmittable frame (the on-ack
    /// twin of [`Connection::requeue_lost_frames`]). Deliberately an
    /// exhaustive match — `cargo xtask lint` checks every [`Frame`]
    /// variant appears here so a new frame type cannot silently skip its
    /// acked bookkeeping.
    fn on_frame_acked(&mut self, frame: Frame) {
        match frame {
            Frame::Stream(f) => {
                // Mark the range delivered so a lost duplicate of the same
                // bytes is not retransmitted.
                if let Some(s) = self.send_streams.get_mut(&f.stream_id) {
                    s.on_acked(f.offset, f.data.len() as u64, f.fin);
                }
            }
            // Handshake delivery is confirmed by the crypto state machine
            // itself (completion), not per-frame.
            Frame::Crypto { .. } => {}
            // Control frames are idempotent advertisements: once acked
            // there is nothing to clean up, and a newer copy may already
            // be queued.
            Frame::WindowUpdate { .. }
            | Frame::Blocked { .. }
            | Frame::RstStream { .. }
            | Frame::ConnectionClose { .. }
            | Frame::AddAddress(_)
            | Frame::Paths(_)
            | Frame::Ping => {}
            // Path-validation and CID-rotation frames are one-shot
            // signals; their outcomes live in the connection state
            // machine, not per-frame bookkeeping.
            Frame::PathChallenge { .. }
            | Frame::PathResponse { .. }
            | Frame::NewConnectionId { .. }
            | Frame::RetireConnectionId { .. } => {}
            // Never tracked by recovery (not retransmittable).
            Frame::Ack(_) | Frame::Padding { .. } => {}
        }
    }

    fn handle_stream_frame(&mut self, _now: SimTime, frame: StreamFrame) {
        let id = frame.stream_id;
        if !self.recv_streams.contains_key(&id) && !self.send_streams.contains_key(&id) {
            // Peer-opened stream: create both halves.
            self.recv_streams
                .insert(id, RecvStream::new(id, self.config.stream_recv_window));
            self.send_streams
                .insert(id, SendStream::new(id, self.config.stream_recv_window));
            self.events.push_back(Event::StreamOpened(id));
        }
        let Some(stream) = self.recv_streams.get_mut(&id) else {
            return;
        };
        match stream.on_frame(&frame) {
            Ok(outcome) => {
                if self
                    .flow
                    .on_data_received(outcome.conn_window_consumed)
                    .is_err()
                {
                    self.abort(
                        error_codes::FLOW_CONTROL_ERROR,
                        "connection flow control violated",
                    );
                    return;
                }
                if outcome.readable {
                    self.events.push_back(Event::StreamReadable(id));
                }
                if outcome.finished {
                    self.events.push_back(Event::StreamComplete(id));
                }
            }
            Err(crate::stream::StreamError::FlowControlViolated) => {
                self.abort(
                    error_codes::FLOW_CONTROL_ERROR,
                    "stream flow control violated",
                );
            }
            Err(_) => {
                self.abort(error_codes::STREAM_STATE_ERROR, "stream state violated");
            }
        }
    }

    fn abort(&mut self, code: u64, reason: &str) {
        self.close(code, reason);
    }

    // ------------------------------------------------------------------
    // Path management
    // ------------------------------------------------------------------

    fn create_path(
        &mut self,
        now: SimTime,
        id: PathId,
        local: SocketAddr,
        remote: SocketAddr,
        locally_initiated: bool,
    ) {
        self.invariants
            .check_path_ownership(self.role, id, locally_initiated);
        let cc = self.config.cc.build(self.config.max_datagram_size as u64);
        let path = Path::new(id, local, remote, self.config.initial_rtt, cc);
        self.paths.insert(id, path);
        self.emit(telemetry::Event::PathStateChanged(
            telemetry::PathStateChanged {
                time: now,
                path: id,
                state: telemetry::PathState::Active,
            },
        ));
    }

    /// Client-side: opens additional paths once the handshake is complete
    /// and the server's addresses are known. Local interface `i` pairs
    /// with the server address advertised under address ID `i`; if the
    /// server advertised a single address, every interface pairs with it.
    fn maybe_open_paths(&mut self, now: SimTime) {
        if self.role != Role::Client || !self.config.multipath || !self.handshake_complete {
            return;
        }
        for i in 0..self.local_addrs.len() {
            if i == self.initial_local_index {
                continue;
            }
            let local = self.local_addrs[i];
            if self.paths.values().any(|p| p.local == local) {
                continue;
            }
            let remote = self.remote_addrs.get(&(i as u64)).copied().or_else(|| {
                if self.remote_addrs.len() == 1 {
                    self.remote_addrs.values().next().copied()
                } else {
                    None
                }
            });
            let Some(remote) = remote else { continue };
            let id = PathId(self.next_path_id);
            self.next_path_id += 2;
            self.create_path(now, id, local, remote, true);
            // Exercise the path immediately: the first packet tells the
            // peer the path exists (so *its* scheduler can use it — vital
            // when the server is the bulk sender) and samples the RTT.
            self.per_path_queue
                .entry(id)
                .or_default()
                .push_back(Frame::Ping);
            self.events.push_back(Event::PathActive(id));
        }
    }

    /// Migrates a path to a new local address — QUIC's *connection
    /// migration*, which the paper's introduction contrasts with
    /// multipath: "QUIC connection migration allows moving a flow from
    /// one address to another. This is a form of hard handover."
    ///
    /// Path identity (Path ID, packet-number spaces) is preserved, but
    /// the congestion and RTT state is reset: the new network's
    /// characteristics are unknown (RFC 9000 §9.4 semantics). The peer
    /// learns the new address from the packets themselves (its
    /// NAT-rebinding handling updates the remote address).
    pub fn migrate_path(&mut self, id: PathId, new_local: SocketAddr, now: SimTime) {
        let Some(path) = self.paths.get_mut(&id) else {
            return;
        };
        if path.local == new_local || path.state == PathState::Closed {
            return;
        }
        path.local = new_local;
        path.cc = self.config.cc.build(self.config.max_datagram_size as u64);
        path.rtt = crate::rtt::RttEstimator::new(self.config.initial_rtt);
        path.state = PathState::Active;
        path.probe_at = None;
        // Everything in flight went out on the old network; surrender it
        // for retransmission on the new one.
        let frames = path.recovery.surrender_all();
        self.requeue_lost_frames(now, id, frames);
        // Probe the new network immediately.
        self.per_path_queue
            .entry(id)
            .or_default()
            .push_back(Frame::Ping);
        self.events.push_back(Event::PathActive(id));
        self.emit(telemetry::Event::PathStateChanged(
            telemetry::PathStateChanged {
                time: now,
                path: id,
                state: telemetry::PathState::Active,
            },
        ));
    }

    /// Closes a path: the paper's path manager controls "the creation
    /// and deletion of paths". Outstanding frames move to the shared
    /// retransmission queues (servable by the remaining paths) and the
    /// peer is told via a PATHS frame carrying `Closed` status.
    pub fn close_path(&mut self, id: PathId, now: SimTime) {
        let Some(path) = self.paths.get_mut(&id) else {
            return;
        };
        if path.state == PathState::Closed {
            return;
        }
        path.state = PathState::Closed;
        path.probe_at = None;
        // Surrender everything in flight on the dying path.
        let frames = path.recovery.surrender_all();
        self.requeue_lost_frames(now, id, frames);
        // Reroute its queued control frames.
        if let Some(queue) = self.per_path_queue.get_mut(&id) {
            let frames: Vec<Frame> = queue.drain(..).collect();
            self.control_queue.extend(frames);
        }
        if let Some(dups) = self.duplicate_queue.get_mut(&id) {
            for frame in dups.drain(..).collect::<Vec<_>>() {
                if let Some(s) = self.send_streams.get_mut(&frame.stream_id) {
                    s.on_lost(frame);
                }
            }
        }
        self.queue_paths_frame();
        self.events.push_back(Event::PathClosed(id));
        self.emit(telemetry::Event::PathStateChanged(
            telemetry::PathStateChanged {
                time: now,
                path: id,
                state: telemetry::PathState::Closed,
            },
        ));
    }

    fn queue_paths_frame(&mut self) {
        if !self.config.send_paths_frames || !self.config.multipath {
            return;
        }
        let infos: Vec<PathInfo> = self
            .paths
            .values()
            .map(|p| PathInfo {
                path_id: p.id,
                status: p.status(),
                srtt_micros: if p.rtt_known() {
                    p.rtt.srtt().as_micros() as u64
                } else {
                    mpquic_wire::frame::SRTT_UNKNOWN
                },
            })
            .collect();
        self.control_queue.push_back(Frame::Paths(infos));
    }

    /// Routes reliable frames from lost (or surrendered) packets back to
    /// their retransmission queues. `from_path` is the path the frames
    /// originally travelled on — recorded in the `frame_retransmitted`
    /// telemetry event; the retransmission itself is rescheduled and may
    /// leave on any path.
    fn requeue_lost_frames(&mut self, now: SimTime, from_path: PathId, frames: Vec<Frame>) {
        for frame in frames {
            self.stats.frames_retransmitted += 1;
            let kind = frame.frame_type().name();
            match frame {
                Frame::Stream(f) => {
                    if let Some(s) = self.send_streams.get_mut(&f.stream_id) {
                        s.on_lost(f);
                    }
                }
                Frame::Crypto { .. } => self.crypto_queue.push_back(frame),
                Frame::Paths(_) => self.queue_paths_frame(),
                Frame::Ping => {}
                Frame::WindowUpdate { .. }
                | Frame::AddAddress(_)
                | Frame::Blocked { .. }
                | Frame::RstStream { .. }
                | Frame::ConnectionClose { .. } => self.control_queue.push_back(frame),
                // Challenge retransmission is timer-driven with a bounded
                // retry budget; a lost copy is simply dropped here.
                Frame::PathChallenge { .. } => {}
                Frame::PathResponse { .. }
                | Frame::NewConnectionId { .. }
                | Frame::RetireConnectionId { .. } => self.control_queue.push_back(frame),
                Frame::Ack(_) | Frame::Padding { .. } => {}
            }
            self.emit(telemetry::Event::FrameRetransmitted(
                telemetry::FrameRetransmitted {
                    time: now,
                    from_path,
                    kind,
                },
            ));
        }
    }

    // ------------------------------------------------------------------
    // Timers
    // ------------------------------------------------------------------

    /// Earliest instant at which [`Connection::on_timeout`] (or a
    /// transmission) is needed.
    pub fn next_timeout(&self) -> Option<SimTime> {
        if self.closed {
            return None;
        }
        let mut earliest = SimTime::FAR_FUTURE;
        if let (Some(idle), Some(last)) = (self.config.idle_timeout, self.last_activity) {
            earliest = earliest.min(last + idle);
        }
        for path in self.paths.values() {
            if let Some((when, _)) = path.recovery.next_timeout(&path.rtt) {
                earliest = earliest.min(when);
            }
            if path.ack_pending {
                if let Some(deadline) = path.ack_deadline {
                    earliest = earliest.min(deadline);
                }
            }
            if let Some(probe) = path.probe_at {
                earliest = earliest.min(probe);
            }
            if let Some(challenge) = path.challenge_timeout() {
                earliest = earliest.min(challenge);
            }
        }
        if earliest == SimTime::FAR_FUTURE {
            None
        } else {
            Some(earliest)
        }
    }

    /// Fires expired timers: loss detection, RTOs, and probe scheduling.
    /// Delayed ACKs flush through the next [`Connection::poll_transmit`].
    pub fn on_timeout(&mut self, now: SimTime) {
        if self.closed {
            return;
        }
        if let (Some(idle), Some(last)) = (self.config.idle_timeout, self.last_activity) {
            if now.saturating_duration_since(last) >= idle {
                // Idle connections close silently (no CONNECTION_CLOSE:
                // the peer is unreachable or gone anyway).
                self.closed = true;
                self.events.push_back(Event::Closed {
                    error_code: error_codes::IDLE_TIMEOUT,
                    reason: "idle timeout".to_string(),
                });
                return;
            }
        }
        let ids: Vec<PathId> = self.paths.keys().copied().collect();
        for id in ids {
            let (outcome, was_active) = {
                let path = self.paths.get_mut(&id).expect("listed");
                let due = path
                    .recovery
                    .next_timeout(&path.rtt)
                    .is_some_and(|(when, _)| when <= now);
                if !due {
                    continue;
                }
                let was_active = path.state == PathState::Active;
                let outcome = path.recovery.on_timeout(now, &path.rtt);
                (outcome, was_active)
            };
            if outcome.rto_fired {
                self.stats.rtos += 1;
                self.emit(telemetry::Event::Rto(telemetry::Rto {
                    time: now,
                    path: id,
                }));
                {
                    let path = self.paths.get_mut(&id).expect("listed");
                    path.cc.on_rto(now);
                    // The paper's §4.3 behaviour: the path is only
                    // *potentially* failed; the scheduler ignores it until
                    // data is acked on it.
                    path.mark_potentially_failed(now);
                }
                if was_active {
                    self.events.push_back(Event::PathPotentiallyFailed(id));
                    self.emit(telemetry::Event::PathStateChanged(
                        telemetry::PathStateChanged {
                            time: now,
                            path: id,
                            state: telemetry::PathState::PotentiallyFailed,
                        },
                    ));
                }
                // Tell the peer which path failed so it does not have to
                // discover it through its own RTO (Fig. 11).
                if self.paths.len() > 1 {
                    self.queue_paths_frame();
                    if was_active {
                        // Traffic moves to the best remaining usable path
                        // (§4.3 handover). `None` means no healthy path is
                        // left and the connection rides the fallback.
                        let to_path = {
                            let views: Vec<PathView> = self
                                .path_views()
                                .into_iter()
                                .filter(|v| v.id != id)
                                .collect();
                            self.scheduler.select_for_control(&views)
                        };
                        self.emit(telemetry::Event::Handover(telemetry::Handover {
                            time: now,
                            from_path: id,
                            to_path,
                        }));
                    }
                }
            } else if outcome.congestion_event {
                let path = self.paths.get_mut(&id).expect("listed");
                path.cc.on_congestion_event(now);
                self.stats.congestion_events += 1;
            }
            if !outcome.lost_frames.is_empty() {
                self.requeue_lost_frames(now, id, outcome.lost_frames);
            }
        }
        // Path-validation timers: retransmit the challenge (bounded
        // budget) or abandon the rebound path.
        let ids: Vec<PathId> = self.paths.keys().copied().collect();
        for id in ids {
            let action = self
                .paths
                .get_mut(&id)
                .and_then(|p| p.on_challenge_timeout(now));
            match action {
                Some(ChallengeTimeout::Retransmit(token)) => {
                    self.per_path_queue
                        .entry(id)
                        .or_default()
                        .push_back(Frame::PathChallenge { token });
                }
                Some(ChallengeTimeout::Abandon) => self.abandon_path_validation(now, id),
                None => {}
            }
        }
    }

    /// The rebound address never answered its challenges: close the path,
    /// reroute everything it still held, and tell the peer via PATHS.
    fn abandon_path_validation(&mut self, now: SimTime, id: PathId) {
        let surrendered = {
            let Some(path) = self.paths.get_mut(&id) else {
                return;
            };
            path.abandon_validation();
            path.recovery.surrender_all()
        };
        if !surrendered.is_empty() {
            self.requeue_lost_frames(now, id, surrendered);
        }
        if let Some(queue) = self.per_path_queue.get_mut(&id) {
            // Stranded challenges/responses die with the path; everything
            // else reroutes through the path-agnostic queue.
            let rerouted: Vec<Frame> = queue
                .drain(..)
                .filter(|f| !matches!(f, Frame::PathChallenge { .. } | Frame::PathResponse { .. }))
                .collect();
            self.control_queue.extend(rerouted);
        }
        if let Some(dups) = self.duplicate_queue.get_mut(&id) {
            let stranded: Vec<StreamFrame> = dups.drain(..).collect();
            for frame in stranded {
                if let Some(s) = self.send_streams.get_mut(&frame.stream_id) {
                    s.on_lost(frame);
                }
            }
        }
        if self.paths.len() > 1 {
            self.queue_paths_frame();
        }
        self.path_ops.push_back(PathOp::ValidationAbandoned);
        self.events.push_back(Event::PathClosed(id));
        self.emit(telemetry::Event::PathValidationFailed(
            telemetry::PathValidationFailed {
                time: now,
                path: id,
            },
        ));
        self.emit(telemetry::Event::PathStateChanged(
            telemetry::PathStateChanged {
                time: now,
                path: id,
                state: telemetry::PathState::Closed,
            },
        ));
    }

    // ------------------------------------------------------------------
    // Egress
    // ------------------------------------------------------------------

    /// Produces the next outgoing datagram, if any. Call repeatedly until
    /// it returns `None`.
    ///
    /// One-shot shim over the batched egress path: each call allocates
    /// its own payload. Hot loops should prefer
    /// [`Connection::poll_transmit_batch`], which fills pool-backed
    /// buffers and coalesces same-path runs GSO-style.
    pub fn poll_transmit(&mut self, now: SimTime) -> Option<Transmit> {
        let mut payload = Vec::new();
        let (local, remote) = self.poll_transmit_into(now, &mut payload)?;
        Some(Transmit {
            local,
            remote,
            payload,
            segment_size: None,
        })
    }

    /// Fills `queue` with as many datagrams as the congestion window,
    /// the scheduler and the queue's capacity allow, writing each into a
    /// buffer from the queue's pool. Consecutive datagrams for the same
    /// `(local, remote)` pair coalesce into GSO-shaped segment trains
    /// (see [`Transmit::segment_size`]). Returns the number of wire
    /// datagrams produced.
    pub fn poll_transmit_batch(&mut self, now: SimTime, queue: &mut TransmitQueue) -> usize {
        let mut produced = 0;
        while queue.has_capacity() {
            let mut buf = queue.take_buf();
            match self.poll_transmit_into(now, &mut buf) {
                Some((local, remote)) => {
                    queue.push_segment(local, remote, buf);
                    produced += 1;
                }
                None => {
                    queue.recycle(buf);
                    break;
                }
            }
        }
        produced
    }

    /// Builds the next outgoing datagram directly into `out` (cleared
    /// first) and returns its `(local, remote)` addressing, or `None`
    /// when there is nothing to send.
    fn poll_transmit_into(
        &mut self,
        now: SimTime,
        out: &mut Vec<u8>,
    ) -> Option<(SocketAddr, SocketAddr)> {
        out.clear();
        if self.closed && !self.close_sent {
            // We process a received close by going silent; nothing to send.
            return None;
        }
        // 0. Pending CONNECTION_CLOSE.
        if let Some((code, reason)) = self.close_pending.clone() {
            if !self.close_sent {
                let meta = self.emit_close(now, code, reason, out);
                self.close_sent = true;
                self.closed = true;
                return meta;
            }
            return None;
        }
        // 1. Generate window updates (duplicated on all paths).
        self.flush_window_updates(now);
        // 2. Handshake packets (initial path, initial keys).
        if !self.crypto_queue.is_empty() {
            if let Some(t) = self.emit_handshake(now, out) {
                return Some(t);
            }
        }
        // 3. Path-bound control frames (window-update duplicates, probes).
        // Frames stranded on a path that is no longer active are rerouted
        // through the path-agnostic queue — frames are independent of
        // paths by design.
        let stranded: Vec<PathId> = self
            .per_path_queue
            .iter()
            .filter(|(id, q)| {
                // A Validating path keeps its queue: the PATH_CHALLENGE
                // must leave on the quarantined 4-tuple to prove it.
                !q.is_empty()
                    && self.paths.get(id).is_none_or(|p| {
                        !matches!(p.state, PathState::Active | PathState::Validating)
                    })
            })
            .map(|(&id, _)| id)
            .collect();
        for id in stranded {
            if let Some(queue) = self.per_path_queue.get_mut(&id) {
                let frames: Vec<Frame> = queue.drain(..).collect();
                self.control_queue.extend(frames);
            }
        }
        let path_with_control = self
            .per_path_queue
            .iter()
            .find(|(_, q)| !q.is_empty())
            .map(|(&id, _)| id);
        if let Some(id) = path_with_control {
            if let Some(t) = self.emit_control(now, id, out) {
                return Some(t);
            }
        }
        // 4. Data packets, scheduled per the paper.
        if self.session_keys.is_some() {
            if let Some(t) = self.emit_data(now, out) {
                return Some(t);
            }
        }
        // 5. Due ACKs that found no ride. The ACK frame names the path it
        // acknowledges, so it may travel on any path; prefer the path the
        // data arrived on (like the paper's implementation), but fall back
        // to the best active path when that one is potentially failed —
        // otherwise ACKs for a broken path would be sent into the void.
        let due: Vec<(PathId, bool)> = self
            .paths
            .values()
            .filter(|p| p.ack_due(now))
            .map(|p| (p.id, p.state == PathState::Active))
            .collect();
        for (due_path, active) in due {
            let send_on = if active {
                Some(due_path)
            } else {
                // The receiving path is sick: route its ACK over the best
                // active path (ACK frames carry their own Path ID).
                self.scheduler
                    .select_for_control(&self.path_views())
                    .or(Some(due_path))
            };
            if let Some(id) = send_on {
                if let Some(t) = self.emit_ack_only(now, id, out) {
                    return Some(t);
                }
            }
        }
        // 6. Probes of potentially-failed paths.
        let probe_path = self
            .paths
            .values()
            .find(|p| p.probe_at.is_some_and(|at| at <= now))
            .map(|p| p.id);
        if let Some(id) = probe_path {
            if let Some(t) = self.emit_probe(now, id, out) {
                return Some(t);
            }
        }
        None
    }

    fn flush_window_updates(&mut self, now: SimTime) {
        let mut updates: Vec<Frame> = Vec::new();
        if let Some(limit) = self.flow.poll_window_update() {
            updates.push(Frame::WindowUpdate {
                stream_id: 0,
                max_data: limit,
            });
        }
        for (&id, stream) in self.recv_streams.iter_mut() {
            if let Some(limit) = stream.poll_window_update() {
                updates.push(Frame::WindowUpdate {
                    stream_id: id,
                    max_data: limit,
                });
            }
        }
        if updates.is_empty() {
            return;
        }
        if self.config.duplicate_window_updates && self.config.multipath {
            // The paper's rule: WINDOW_UPDATE goes out on *all* paths.
            let active: Vec<PathId> = self
                .paths
                .values()
                .filter(|p| p.state == PathState::Active)
                .map(|p| p.id)
                .collect();
            for &id in &active {
                let queue = self.per_path_queue.entry(id).or_default();
                queue.extend(updates.iter().cloned());
            }
            if self.telemetry_enabled() {
                for update in &updates {
                    if let Frame::WindowUpdate {
                        stream_id,
                        max_data,
                    } = update
                    {
                        let (stream_id, max_data) = (*stream_id, *max_data);
                        self.emit(telemetry::Event::WindowUpdateDuplicated(
                            telemetry::WindowUpdateDuplicated {
                                time: now,
                                stream_id,
                                max_data,
                                paths: active.clone(),
                            },
                        ));
                    }
                }
            }
        } else {
            self.control_queue.extend(updates);
        }
    }

    /// Which AEAD protects packets we send of the given type.
    fn send_aead(&self, packet_type: PacketType) -> Option<Aead> {
        match packet_type {
            PacketType::Handshake => Some(Aead::new(initial_key(self.cid))),
            PacketType::OneRtt => {
                let keys = self.session_keys?;
                Some(match self.role {
                    Role::Client => Aead::new(keys.client_to_server),
                    Role::Server => Aead::new(keys.server_to_client),
                })
            }
        }
    }

    fn provisional_header(&self, path_id: PathId, packet_type: PacketType) -> PublicHeader {
        let packet_number = if self.config.shared_pn_space {
            self.shared_pn
        } else {
            self.paths
                .get(&path_id)
                .map(|p| p.recovery.next_pn_peek())
                .unwrap_or(0)
        };
        PublicHeader {
            connection_id: self.cid,
            path_id,
            packet_number,
            packet_type,
        }
    }

    /// Adds pending ACK frames to a packet being built for `packet_path`.
    ///
    /// ACK affinity follows the paper: "our implementation returns the ACK
    /// frame for a given path on the path where the data was received" —
    /// unless that path is potentially failed, in which case the ACK may
    /// ride the best active path ("since it contains the Path ID, it is
    /// possible to send ACK frames over different paths"). Keeping healthy
    /// paths' ACKs off sick paths prevents a single dead path from
    /// starving the others of acknowledgements.
    fn push_acks(&mut self, now: SimTime, builder: &mut PacketBuilder, packet_path: PathId) {
        let best_active = self
            .paths
            .values()
            .filter(|p| p.state == PathState::Active)
            .min_by_key(|p| p.rtt.srtt())
            .map(|p| p.id);
        let pending: Vec<(PathId, PathId)> = self
            .paths
            .values()
            .filter(|p| p.ack_pending)
            .map(|p| {
                let target = if p.state == PathState::Active {
                    p.id
                } else {
                    best_active.unwrap_or(packet_path)
                };
                (p.id, target)
            })
            .collect();
        for (id, target) in pending {
            if target != packet_path {
                continue;
            }
            let frame = {
                let path = self.paths.get(&id).expect("listed");
                path.peek_ack_frame(now, self.config.max_ack_ranges)
                    .map(Frame::Ack)
            };
            if let Some(frame) = frame {
                let mut largest_acked = 0;
                if let Frame::Ack(ack) = &frame {
                    self.invariants.check_ack_frame(ack, "built");
                    largest_acked = ack.largest_acked;
                }
                if builder.try_push(frame) {
                    self.paths.get_mut(&id).expect("listed").note_ack_sent();
                    self.emit(telemetry::Event::AckSent(telemetry::AckSent {
                        time: now,
                        on_path: packet_path,
                        acks_path: id,
                        largest_acked,
                    }));
                }
            }
        }
    }

    /// Seals a finished builder into `out` (cleared first) and records
    /// the packet with recovery and congestion control. Returns the
    /// datagram's `(local, remote)` addressing.
    ///
    /// Encoding reuses the connection's two scratch buffers and seals
    /// straight into `out`, so a warm egress path allocates nothing
    /// per packet here.
    fn finalize(
        &mut self,
        now: SimTime,
        builder: PacketBuilder,
        path_id: PathId,
        packet_type: PacketType,
        out: &mut Vec<u8>,
    ) -> Option<(SocketAddr, SocketAddr)> {
        let packet = builder.finish()?;
        let aead = self.send_aead(packet_type)?;
        let ack_eliciting = packet.is_ack_eliciting();
        let mut header_buf = std::mem::take(&mut self.scratch_header);
        let mut payload_buf = std::mem::take(&mut self.scratch_payload);
        packet.encode_parts_into(&mut header_buf, &mut payload_buf);
        let nonce = nonce_for(
            self.config.nonce_mode,
            path_id.0,
            packet.header.packet_number,
        );
        out.clear();
        out.extend_from_slice(&header_buf);
        aead.seal_into(&nonce, &header_buf, &payload_buf, out);
        self.scratch_header = header_buf;
        self.scratch_payload = payload_buf;
        let wire_len = out.len() as u64;

        let path = self.paths.get_mut(&path_id).expect("path exists");
        if self.config.shared_pn_space {
            // Single-space ablation: every path allocates from one
            // connection-wide counter. Recovery reserves the value so it
            // still owns the per-path numbering (and stays monotonic).
            path.recovery.reserve_through(self.shared_pn);
            self.shared_pn += 1;
        }
        let pn = path.recovery.next_packet_number();
        debug_assert_eq!(pn, packet.header.packet_number, "provisional pn must match");
        if ack_eliciting {
            path.recovery.on_packet_sent(SentPacket {
                packet_number: pn,
                time_sent: now,
                size: wire_len,
                ack_eliciting,
                frames: packet
                    .frames
                    .into_iter()
                    .filter(Frame::is_retransmittable)
                    .collect(),
            });
            path.cc.on_packet_sent(now, wire_len);
        }
        self.invariants.on_packet_sent(path_id, pn, &path.recovery);
        path.bytes_sent += wire_len;
        let (local, remote) = (path.local, path.remote);
        self.stats.packets_sent += 1;
        self.stats.bytes_sent += wire_len;
        self.emit(telemetry::Event::PacketSent(telemetry::PacketSent {
            time: now,
            path: path_id,
            packet_number: pn,
            size: wire_len as usize,
            ack_eliciting,
        }));
        Some((local, remote))
    }

    fn emit_close(
        &mut self,
        now: SimTime,
        code: u64,
        reason: String,
        out: &mut Vec<u8>,
    ) -> Option<(SocketAddr, SocketAddr)> {
        let packet_type = if self.session_keys.is_some() {
            PacketType::OneRtt
        } else {
            PacketType::Handshake
        };
        let path_id = self
            .paths
            .values()
            .find(|p| p.state == PathState::Active)
            .or_else(|| self.paths.values().next())
            .map(|p| p.id)?;
        let header = self.provisional_header(path_id, packet_type);
        let mut builder = PacketBuilder::with_datagram_size(header, self.config.max_datagram_size);
        self.push_acks(now, &mut builder, path_id);
        builder.try_push(Frame::ConnectionClose {
            error_code: code,
            reason,
        });
        self.finalize(now, builder, path_id, packet_type, out)
    }

    fn emit_handshake(
        &mut self,
        now: SimTime,
        out: &mut Vec<u8>,
    ) -> Option<(SocketAddr, SocketAddr)> {
        let path_id = PathId::INITIAL;
        if !self.paths.contains_key(&path_id) {
            return None;
        }
        let header = self.provisional_header(path_id, PacketType::Handshake);
        let mut builder = PacketBuilder::with_datagram_size(header, self.config.max_datagram_size);
        self.push_acks(now, &mut builder, path_id);
        while let Some(frame) = self.crypto_queue.front() {
            if builder.remaining() < frame.wire_size() {
                break;
            }
            let frame = self.crypto_queue.pop_front().expect("checked");
            builder.try_push(frame);
        }
        self.finalize(now, builder, path_id, PacketType::Handshake, out)
    }

    fn emit_control(
        &mut self,
        now: SimTime,
        path_id: PathId,
        out: &mut Vec<u8>,
    ) -> Option<(SocketAddr, SocketAddr)> {
        let header = self.provisional_header(path_id, PacketType::OneRtt);
        self.session_keys?;
        let mut builder = PacketBuilder::with_datagram_size(header, self.config.max_datagram_size);
        self.push_acks(now, &mut builder, path_id);
        if let Some(queue) = self.per_path_queue.get_mut(&path_id) {
            while let Some(frame) = queue.front() {
                if builder.remaining() < frame.wire_size() {
                    break;
                }
                let frame = queue.pop_front().expect("checked");
                builder.try_push(frame);
            }
        }
        if !builder.has_retransmittable() {
            // Nothing but ACKs would go out; leave those to emit_ack_only.
            return None;
        }
        self.finalize(now, builder, path_id, PacketType::OneRtt, out)
    }

    fn emit_data(&mut self, now: SimTime, out: &mut Vec<u8>) -> Option<(SocketAddr, SocketAddr)> {
        // Does anyone want to send?
        let has_dup = self.duplicate_queue.values().any(|q| !q.is_empty());
        let has_stream_data = self.send_streams.values().any(SendStream::wants_to_send);
        let has_control = !self.control_queue.is_empty();
        if !has_dup && !has_stream_data && !has_control {
            return None;
        }
        let views = self.path_views();
        // Duplicate-queue frames are bound to their target path; if a
        // target path has queued duplicates and window space, serve it
        // first so duplicates don't rot.
        let dup_path = self
            .duplicate_queue
            .iter()
            .filter(|(_, q)| !q.is_empty())
            .map(|(&id, _)| id)
            .find(|id| {
                views.iter().any(|v| {
                    v.id == *id
                        && v.usable
                        && v.cwnd_available >= self.config.max_datagram_size as u64
                })
            });
        let decision = if let Some(id) = dup_path {
            crate::scheduler::Decision {
                path: id,
                duplicate_on: Vec::new(),
                reason: SchedulerReason::DuplicateQueue,
            }
        } else {
            self.scheduler
                .select_for_data(&views, self.config.max_datagram_size as u64)?
        };
        let path_id = decision.path;
        let header = self.provisional_header(path_id, PacketType::OneRtt);
        let mut builder = PacketBuilder::with_datagram_size(header, self.config.max_datagram_size);
        self.push_acks(now, &mut builder, path_id);
        // Path-agnostic control frames ride along.
        while let Some(frame) = self.control_queue.front() {
            if builder.remaining() < frame.wire_size() {
                break;
            }
            let frame = self.control_queue.pop_front().expect("checked");
            builder.try_push(frame);
        }
        // Duplicated stream frames targeted at this path.
        if let Some(queue) = self.duplicate_queue.get_mut(&path_id) {
            while let Some(frame) = queue.front() {
                let wrapped_size = Frame::Stream(frame.clone()).wire_size();
                if builder.remaining() < wrapped_size {
                    break;
                }
                let frame = queue.pop_front().expect("checked");
                builder.try_push(Frame::Stream(frame));
            }
        }
        // Fresh stream data (and retransmissions), subject to connection
        // flow control.
        let mut credit = self.flow.send_credit();
        // Service streams round-robin, starting after the last stream
        // served, so concurrent streams share the paths fairly.
        let mut stream_ids: Vec<StreamId> = self.send_streams.keys().copied().collect();
        let pivot = stream_ids
            .iter()
            .position(|&id| id > self.stream_cursor)
            .unwrap_or(0);
        stream_ids.rotate_left(pivot);
        loop {
            let mut progressed = false;
            for &sid in &stream_ids {
                let stream = self.send_streams.get_mut(&sid).expect("listed");
                if !stream.wants_to_send() {
                    if stream.should_report_blocked() {
                        let f = Frame::Blocked { stream_id: sid };
                        if builder.remaining() >= f.wire_size() {
                            builder.try_push(f);
                        }
                    }
                    continue;
                }
                let overhead =
                    StreamFrame::overhead(sid, stream.next_send_offset(), builder.remaining());
                if builder.remaining() <= overhead {
                    continue;
                }
                let max_payload = builder.remaining() - overhead;
                if let Some((frame, consumed)) = stream.next_frame(max_payload, credit) {
                    credit -= consumed;
                    self.stream_cursor = sid;
                    self.flow.on_new_data_sent(consumed);
                    for &dup_target in &decision.duplicate_on {
                        self.duplicate_queue
                            .entry(dup_target)
                            .or_default()
                            .push_back(frame.clone());
                        self.stats.duplicated_stream_frames += 1;
                    }
                    let ok = builder.try_push(Frame::Stream(frame));
                    debug_assert!(ok, "frame was sized to fit");
                    progressed = true;
                }
            }
            if !progressed || builder.remaining() < 16 {
                break;
            }
        }
        if self.flow.should_report_blocked() {
            let f = Frame::Blocked { stream_id: 0 };
            if builder.remaining() >= f.wire_size() {
                builder.try_push(f);
            }
        }
        if !builder.has_retransmittable() {
            return None;
        }
        let transmit = self.finalize(now, builder, path_id, PacketType::OneRtt, out);
        // Record the decision only for packets that actually left, so the
        // scheduler-share statistic matches bytes on the wire.
        if transmit.is_some() && self.telemetry_enabled() {
            let min_space = self.config.max_datagram_size as u64;
            let candidates: Vec<PathId> = views
                .iter()
                .filter(|v| v.usable && v.cwnd_available >= min_space)
                .map(|v| v.id)
                .collect();
            self.emit(telemetry::Event::SchedulerDecision(
                telemetry::SchedulerDecision {
                    time: now,
                    chosen_path: decision.path,
                    candidates,
                    duplicate_on: decision.duplicate_on,
                    reason: decision.reason,
                },
            ));
        }
        transmit
    }

    fn emit_ack_only(
        &mut self,
        now: SimTime,
        path_id: PathId,
        out: &mut Vec<u8>,
    ) -> Option<(SocketAddr, SocketAddr)> {
        let packet_type = if self.session_keys.is_some() {
            PacketType::OneRtt
        } else {
            PacketType::Handshake
        };
        let header = self.provisional_header(path_id, packet_type);
        let mut builder = PacketBuilder::with_datagram_size(header, self.config.max_datagram_size);
        self.push_acks(now, &mut builder, path_id);
        if builder.is_empty() {
            return None;
        }
        self.finalize(now, builder, path_id, packet_type, out)
    }

    fn emit_probe(
        &mut self,
        now: SimTime,
        path_id: PathId,
        out: &mut Vec<u8>,
    ) -> Option<(SocketAddr, SocketAddr)> {
        {
            let path = self.paths.get_mut(&path_id)?;
            // One probe per backoff period; the probe's own RTO (or its
            // ACK) schedules what happens next.
            path.probe_at = None;
        }
        let header = self.provisional_header(path_id, PacketType::OneRtt);
        self.session_keys?;
        let mut builder = PacketBuilder::with_datagram_size(header, self.config.max_datagram_size);
        self.push_acks(now, &mut builder, path_id);
        builder.try_push(Frame::Ping);
        self.finalize(now, builder, path_id, PacketType::OneRtt, out)
    }

    fn path_views(&self) -> Vec<PathView> {
        self.paths
            .values()
            // Validating paths are invisible to the scheduler entirely —
            // not even the control-frame fallback may place traffic on an
            // unvalidated address (the challenge itself travels through
            // the per-path queue, which ignores scheduling).
            .filter(|p| !matches!(p.state, PathState::Closed | PathState::Validating))
            .map(|p| PathView {
                id: p.id,
                srtt: p.rtt.srtt(),
                rtt_known: p.rtt_known(),
                cwnd_available: p.cwnd_available(),
                bytes_in_flight: p.recovery.bytes_in_flight(),
                usable: p.usable_for_data() && (self.handshake_complete || p.id == PathId::INITIAL),
            })
            .collect()
    }
}

/// All per-stream operations for one stream, obtained from
/// [`Connection::stream`].
///
/// Consolidates the historical `stream_write`/`stream_read`/
/// `stream_finish`/`stream_is_finished`/`stream_fully_acked` method
/// family; those methods still exist as thin shims over this handle.
pub struct StreamHandle<'a> {
    conn: &'a mut Connection,
    id: StreamId,
}

impl StreamHandle<'_> {
    /// The stream this handle operates on.
    pub fn id(&self) -> StreamId {
        self.id
    }

    /// Appends data to the stream's send buffer.
    ///
    /// # Panics
    /// Panics if the stream is unknown (the historical `stream_write`
    /// contract; open streams with [`Connection::open_stream`]).
    pub fn write(&mut self, data: Bytes) -> Result<(), crate::stream::StreamError> {
        self.conn
            .send_streams
            .get_mut(&self.id)
            .expect("unknown stream")
            .write(data)
    }

    /// Marks the stream finished at its current write offset.
    ///
    /// # Panics
    /// Panics if the stream is unknown.
    pub fn finish(&mut self) {
        self.conn
            .send_streams
            .get_mut(&self.id)
            .expect("unknown stream")
            .finish();
    }

    /// Reads up to `max` in-order bytes from the stream.
    pub fn read(&mut self, max: usize) -> Option<Bytes> {
        let stream = self.conn.recv_streams.get_mut(&self.id)?;
        let data = stream.read(max)?;
        self.conn.flow.on_data_consumed(data.len() as u64);
        Some(data)
    }

    /// True once the peer's FIN and all stream data have been read.
    pub fn is_finished(&self) -> bool {
        self.conn.stream_is_finished(self.id)
    }

    /// True once everything written (and the FIN) was acknowledged.
    pub fn is_fully_acked(&self) -> bool {
        self.conn.stream_fully_acked(self.id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Event;
    use crate::SchedulerKind;

    const C0: &str = "10.0.0.1:50000";
    const C1: &str = "10.1.0.1:50000";
    const S0: &str = "10.0.1.1:4433";
    const S1: &str = "10.1.1.1:4433";

    fn addr(s: &str) -> SocketAddr {
        s.parse().unwrap()
    }

    fn pair() -> (Connection, Connection) {
        let client = Connection::client(
            Config::multipath(),
            vec![addr(C0), addr(C1)],
            0,
            addr(S0),
            1,
        );
        let server = Connection::server(Config::multipath(), vec![addr(S0), addr(S1)], 2);
        (client, server)
    }

    /// Shuttles all pending datagrams both ways (zero latency) until both
    /// sides are quiescent at `now`.
    fn shuttle(client: &mut Connection, server: &mut Connection, now: SimTime) {
        for _ in 0..64 {
            let mut any = false;
            while let Some(t) = client.poll_transmit(now) {
                server.handle_datagram(now, t.remote, t.local, &t.payload);
                any = true;
            }
            while let Some(t) = server.poll_transmit(now) {
                client.handle_datagram(now, t.remote, t.local, &t.payload);
                any = true;
            }
            if !any {
                return;
            }
        }
        panic!("shuttle did not quiesce");
    }

    fn established_pair(now: SimTime) -> (Connection, Connection) {
        let (mut client, mut server) = pair();
        shuttle(&mut client, &mut server, now);
        assert!(client.is_established() && server.is_established());
        (client, server)
    }

    fn drain(conn: &mut Connection) -> Vec<Event> {
        std::iter::from_fn(|| conn.poll_event()).collect()
    }

    /// Fires the earliest pending timer of either side and shuttles the
    /// resulting datagrams. Returns the time it advanced to.
    fn advance(client: &mut Connection, server: &mut Connection) -> SimTime {
        let now = [client.next_timeout(), server.next_timeout()]
            .into_iter()
            .flatten()
            .min()
            .expect("a timer is armed");
        client.on_timeout(now);
        server.on_timeout(now);
        shuttle(client, server, now);
        now
    }

    #[test]
    fn zero_latency_handshake_establishes_both_sides() {
        let (mut client, mut server) = established_pair(SimTime::from_millis(1));
        assert!(drain(&mut client).contains(&Event::HandshakeCompleted));
        assert!(drain(&mut server).contains(&Event::HandshakeCompleted));
        assert_eq!(client.connection_id(), server.connection_id());
    }

    #[test]
    fn client_opens_additional_path_after_add_address() {
        let (mut client, mut server) = established_pair(SimTime::from_millis(1));
        shuttle(&mut client, &mut server, SimTime::from_millis(2));
        assert!(client.path_ids().contains(&PathId(1)));
        let p1 = client.path(PathId(1)).unwrap();
        assert_eq!(p1.local, addr(C1));
        assert_eq!(p1.remote, addr(S1));
        // Path 1 was probed (PING) so the server learned about it.
        assert!(server.path_ids().contains(&PathId(1)));
    }

    #[test]
    fn stream_ids_allocated_by_role() {
        let (mut client, mut server) = pair();
        assert_eq!(client.open_stream(), 1);
        assert_eq!(client.open_stream(), 3);
        assert_eq!(server.open_stream(), 2);
        assert_eq!(server.open_stream(), 4);
    }

    #[test]
    fn peer_opened_stream_creates_both_halves_and_event() {
        let (mut client, mut server) = established_pair(SimTime::from_millis(1));
        let stream = client.open_stream();
        client
            .stream_write(stream, Bytes::from_static(b"hi"))
            .unwrap();
        shuttle(&mut client, &mut server, SimTime::from_millis(2));
        let events = drain(&mut server);
        assert!(events.contains(&Event::StreamOpened(stream)));
        assert!(events.contains(&Event::StreamReadable(stream)));
        assert_eq!(&server.stream_read(stream, 10).unwrap()[..], b"hi");
        // The server can answer on the same stream.
        server
            .stream_write(stream, Bytes::from_static(b"yo"))
            .unwrap();
        shuttle(&mut client, &mut server, SimTime::from_millis(3));
        assert_eq!(&client.stream_read(stream, 10).unwrap()[..], b"yo");
    }

    #[test]
    fn close_is_idempotent_and_propagates_once() {
        let (mut client, mut server) = established_pair(SimTime::from_millis(1));
        client.close(0, "bye");
        client.close(7, "ignored");
        shuttle(&mut client, &mut server, SimTime::from_millis(2));
        assert!(client.is_closed());
        assert!(server.is_closed());
        let events = drain(&mut server);
        let closes: Vec<_> = events
            .iter()
            .filter(|e| matches!(e, Event::Closed { .. }))
            .collect();
        assert_eq!(closes.len(), 1);
        assert!(matches!(
            closes[0],
            Event::Closed { error_code: 0, reason } if reason == "bye"
        ));
        // A closed connection emits nothing further.
        assert!(client.poll_transmit(SimTime::from_millis(3)).is_none());
        assert!(client.next_timeout().is_none());
    }

    #[test]
    fn datagrams_with_wrong_cid_are_dropped() {
        let (mut client, mut server) = established_pair(SimTime::from_millis(1));
        let stream = client.open_stream();
        client
            .stream_write(stream, Bytes::from_static(b"x"))
            .unwrap();
        let t = client.poll_transmit(SimTime::from_millis(2)).unwrap();
        let mut corrupted = t.payload.clone();
        corrupted[3] ^= 0xFF; // flip a CID byte in the public header
        let before = server.stats();
        server.handle_datagram(SimTime::from_millis(2), t.remote, t.local, &corrupted);
        let after = server.stats();
        assert_eq!(after.packets_received, before.packets_received);
        assert_eq!(after.decrypt_failures, before.decrypt_failures + 1);
    }

    #[test]
    fn tampered_payload_fails_authentication() {
        let (mut client, mut server) = established_pair(SimTime::from_millis(1));
        let stream = client.open_stream();
        client
            .stream_write(stream, Bytes::from_static(b"secret"))
            .unwrap();
        let t = client.poll_transmit(SimTime::from_millis(2)).unwrap();
        let mut tampered = t.payload.clone();
        let last = tampered.len() - 1;
        tampered[last] ^= 0x01;
        let before = server.stats().decrypt_failures;
        server.handle_datagram(SimTime::from_millis(2), t.remote, t.local, &tampered);
        assert_eq!(server.stats().decrypt_failures, before + 1);
        assert!(server.stream_read(stream, 10).is_none());
    }

    #[test]
    fn duplicate_datagram_discarded() {
        let (mut client, mut server) = established_pair(SimTime::from_millis(1));
        let stream = client.open_stream();
        client
            .stream_write(stream, Bytes::from_static(b"abc"))
            .unwrap();
        let t = client.poll_transmit(SimTime::from_millis(2)).unwrap();
        server.handle_datagram(SimTime::from_millis(2), t.remote, t.local, &t.payload);
        server.handle_datagram(SimTime::from_millis(2), t.remote, t.local, &t.payload);
        assert_eq!(server.stats().duplicate_packets, 1);
        assert_eq!(&server.stream_read(stream, 10).unwrap()[..], b"abc");
        assert!(server.stream_read(stream, 10).is_none());
    }

    #[test]
    fn nat_rebinding_updates_remote_without_losing_state() {
        let (mut client, mut server) = established_pair(SimTime::from_millis(1));
        let stream = client.open_stream();
        client
            .stream_write(stream, Bytes::from_static(b"before"))
            .unwrap();
        shuttle(&mut client, &mut server, SimTime::from_millis(2));
        assert_eq!(&server.stream_read(stream, 100).unwrap()[..], b"before");
        let srtt_before = server.path(PathId::INITIAL).unwrap().rtt.srtt();

        // The client's NAT rebinds: same path id, new source address.
        client
            .stream_write(stream, Bytes::from_static(b"after"))
            .unwrap();
        let rebound = addr("192.0.2.99:1234");
        while let Some(t) = client.poll_transmit(SimTime::from_millis(3)) {
            if t.local == addr(C0) {
                server.handle_datagram(SimTime::from_millis(3), t.remote, rebound, &t.payload);
            } else {
                server.handle_datagram(SimTime::from_millis(3), t.remote, t.local, &t.payload);
            }
        }
        assert_eq!(&server.stream_read(stream, 100).unwrap()[..], b"after");
        let path = server.path(PathId::INITIAL).unwrap();
        assert_eq!(path.remote, rebound, "remote address follows the rebinding");
        assert_eq!(path.rtt.srtt(), srtt_before, "path state survives");
    }

    /// Shuttles both ways through a NAT that rewrites the client's
    /// path-0 source address to `rebound` (return traffic addressed to
    /// `rebound` is translated back to the client transparently).
    fn shuttle_nat(
        client: &mut Connection,
        server: &mut Connection,
        rebound: SocketAddr,
        now: SimTime,
    ) {
        for _ in 0..64 {
            let mut any = false;
            while let Some(t) = client.poll_transmit(now) {
                let src = if t.local == addr(C0) {
                    rebound
                } else {
                    t.local
                };
                server.handle_datagram(now, t.remote, src, &t.payload);
                any = true;
            }
            while let Some(t) = server.poll_transmit(now) {
                client.handle_datagram(now, t.remote, t.local, &t.payload);
                any = true;
            }
            if !any {
                return;
            }
        }
        panic!("shuttle_nat did not quiesce");
    }

    /// Decrypts one server-to-client datagram back into frames.
    fn server_frames(server: &Connection, payload: &[u8]) -> (PathId, Vec<Frame>) {
        let mut cursor = payload;
        let header = PublicHeader::decode(&mut cursor).unwrap();
        let keys = server.session_keys.unwrap();
        let aead = Aead::new(keys.server_to_client);
        let nonce = nonce_for(
            NonceMode::PathIdMixed,
            header.path_id.0,
            header.packet_number,
        );
        let hdr_len = payload.len() - cursor.len();
        let plain = aead
            .open(&nonce, &payload[..hdr_len], &payload[hdr_len..])
            .unwrap();
        (header.path_id, Frame::decode_all(&plain).unwrap())
    }

    #[test]
    fn rebind_triggers_validation_and_cid_rotation() {
        let mut client = Connection::client(Config::single_path(), vec![addr(C0)], 0, addr(S0), 1);
        let mut server = Connection::server(Config::single_path(), vec![addr(S0)], 2);
        shuttle(&mut client, &mut server, SimTime::from_millis(1));
        assert!(client.is_established());
        let old_cid = server.connection_id();
        let stream = client.open_stream();
        client
            .stream_write(stream, Bytes::from_static(b"hello"))
            .unwrap();
        // First flight after the rebind: the server quarantines path 0
        // but still accepts the data it carried.
        let rebound = addr("203.0.113.9:4242");
        while let Some(t) = client.poll_transmit(SimTime::from_millis(2)) {
            server.handle_datagram(SimTime::from_millis(2), t.remote, rebound, &t.payload);
        }
        assert_eq!(
            server.path(PathId::INITIAL).unwrap().state,
            PathState::Validating
        );
        assert_eq!(&server.stream_read(stream, 100).unwrap()[..], b"hello");
        // Challenge/response completes, the path re-activates at its new
        // address, and the server rotates the connection ID end to end.
        shuttle_nat(&mut client, &mut server, rebound, SimTime::from_millis(3));
        let path = server.path(PathId::INITIAL).unwrap();
        assert_eq!(path.state, PathState::Active);
        assert_eq!(path.remote, rebound);
        assert_ne!(server.connection_id(), old_cid, "CID rotated");
        assert_eq!(client.connection_id(), server.connection_id());
        // The demux-facing op stream saw the whole story.
        let mut ops = Vec::new();
        while let Some(op) = server.pop_path_op() {
            ops.push(op);
        }
        assert!(ops.contains(&PathOp::ValidationStarted));
        assert!(ops.contains(&PathOp::ValidationCompleted));
        assert!(ops.iter().any(|o| matches!(o, PathOp::MapCid(_))));
        assert!(ops.contains(&PathOp::UnmapCid(old_cid)));
        // Data still flows after the rotation.
        client
            .stream_write(stream, Bytes::from_static(b"again"))
            .unwrap();
        shuttle_nat(&mut client, &mut server, rebound, SimTime::from_millis(4));
        assert_eq!(&server.stream_read(stream, 100).unwrap()[..], b"again");
    }

    #[test]
    fn validation_timeout_abandons_rebound_path() {
        let mut client = Connection::client(Config::single_path(), vec![addr(C0)], 0, addr(S0), 1);
        let mut server = Connection::server(Config::single_path(), vec![addr(S0)], 2);
        shuttle(&mut client, &mut server, SimTime::from_millis(1));
        let stream = client.open_stream();
        client
            .stream_write(stream, Bytes::from_static(b"x"))
            .unwrap();
        let rebound = addr("203.0.113.9:4242");
        while let Some(t) = client.poll_transmit(SimTime::from_millis(2)) {
            server.handle_datagram(SimTime::from_millis(2), t.remote, rebound, &t.payload);
        }
        assert_eq!(
            server.path(PathId::INITIAL).unwrap().state,
            PathState::Validating
        );
        // The rebound address black-holes everything: drop all server
        // output and fire its timers until the challenge budget runs out.
        let mut fired = 0;
        while server.path(PathId::INITIAL).unwrap().state == PathState::Validating {
            let at = server.next_timeout().expect("validation timer armed");
            server.on_timeout(at);
            while server.poll_transmit(at).is_some() {}
            fired += 1;
            assert!(fired < 64, "validation never resolved");
        }
        assert_eq!(
            server.path(PathId::INITIAL).unwrap().state,
            PathState::Closed
        );
        let mut ops = Vec::new();
        while let Some(op) = server.pop_path_op() {
            ops.push(op);
        }
        assert!(ops.contains(&PathOp::ValidationStarted));
        assert!(ops.contains(&PathOp::ValidationAbandoned));
    }

    #[test]
    fn quarantined_path_carries_no_data_while_sibling_keeps_flowing() {
        // Redundant scheduling guarantees both paths carry the client's
        // data, so the rebind on path 0 is always observed.
        let config = Config::builder()
            .scheduler(SchedulerKind::Redundant)
            .build()
            .unwrap();
        let mut client =
            Connection::client(config.clone(), vec![addr(C0), addr(C1)], 0, addr(S0), 1);
        let mut server = Connection::server(config, vec![addr(S0), addr(S1)], 2);
        for step in 1..4 {
            shuttle(&mut client, &mut server, SimTime::from_millis(step));
        }
        assert!(server.path_ids().contains(&PathId(1)));
        let stream = client.open_stream();
        client
            .stream_write(stream, Bytes::from_static(b"payload"))
            .unwrap();
        let rebound = addr("203.0.113.9:4242");
        while let Some(t) = client.poll_transmit(SimTime::from_millis(5)) {
            let src = if t.local == addr(C0) {
                rebound
            } else {
                t.local
            };
            server.handle_datagram(SimTime::from_millis(5), t.remote, src, &t.payload);
        }
        assert_eq!(
            server.path(PathId::INITIAL).unwrap().state,
            PathState::Validating
        );
        // The server responds while path 0 is quarantined: stream data
        // may only leave on path 1; path-0 datagrams are challenge/ACKs.
        server
            .stream_write(stream, Bytes::from_static(b"response"))
            .unwrap();
        let mut path1_stream_frames = 0;
        while let Some(t) = server.poll_transmit(SimTime::from_millis(6)) {
            let (path_id, frames) = server_frames(&server, &t.payload);
            let has_stream = frames.iter().any(|f| matches!(f, Frame::Stream(_)));
            if path_id == PathId::INITIAL {
                assert!(
                    !has_stream,
                    "stream data escaped onto the unvalidated path: {frames:?}"
                );
            } else if has_stream {
                path1_stream_frames += 1;
            }
            client.handle_datagram(SimTime::from_millis(6), t.remote, t.local, &t.payload);
        }
        assert!(
            path1_stream_frames > 0,
            "the healthy sibling path must keep carrying data"
        );
        assert_eq!(&client.stream_read(stream, 100).unwrap()[..], b"response");
    }

    #[test]
    fn rebind_mid_transfer_never_sends_data_unvalidated() {
        // DetRng-driven property: wherever the rebind lands in the
        // transfer, the server never puts stream data on the rebound
        // address until validation completes — and the transfer still
        // finishes afterwards.
        let mut seeds = DetRng::new(0x5EED_A617);
        for _case in 0..6u64 {
            let seed = seeds.next_u64();
            let mut case_rng = DetRng::new(seed);
            let rebind_step = case_rng.range_u64(4, 16);
            let mut client =
                Connection::client(Config::single_path(), vec![addr(C0)], 0, addr(S0), seed);
            let mut server = Connection::server(Config::single_path(), vec![addr(S0)], seed ^ 0xff);
            shuttle(&mut client, &mut server, SimTime::from_millis(1));
            let stream = client.open_stream();
            client
                .stream_write(stream, Bytes::from_static(b"want"))
                .unwrap();
            shuttle(&mut client, &mut server, SimTime::from_millis(2));
            assert_eq!(&server.stream_read(stream, 100).unwrap()[..], b"want");
            server
                .stream_write(stream, Bytes::from(vec![7u8; 40_000]))
                .unwrap();
            server.stream_finish(stream);
            let rebound = addr("198.51.100.7:9999");
            let mut rebound_active = false;
            let mut received = 0usize;
            for step in 3..200u64 {
                let now = SimTime::from_millis(step * 10);
                if step == rebind_step + 3 {
                    rebound_active = true;
                }
                for conn in [&mut client, &mut server] {
                    if conn.next_timeout().is_some_and(|t| t <= now) {
                        conn.on_timeout(now);
                    }
                }
                for _ in 0..8 {
                    let mut any = false;
                    while let Some(t) = client.poll_transmit(now) {
                        let src = if rebound_active && t.local == addr(C0) {
                            rebound
                        } else {
                            t.local
                        };
                        server.handle_datagram(now, t.remote, src, &t.payload);
                        any = true;
                    }
                    while let Some(t) = server.poll_transmit(now) {
                        if server.path(PathId::INITIAL).unwrap().state == PathState::Validating {
                            let (_, frames) = server_frames(&server, &t.payload);
                            assert!(
                                !frames.iter().any(|f| matches!(f, Frame::Stream(_))),
                                "seed {seed:#x}: stream data sent while path \
                                 unvalidated"
                            );
                        }
                        client.handle_datagram(now, t.remote, t.local, &t.payload);
                        any = true;
                    }
                    if !any {
                        break;
                    }
                }
                while let Some(chunk) = client.stream_read(stream, usize::MAX) {
                    received += chunk.len();
                }
                if client.stream_is_finished(stream) {
                    break;
                }
            }
            assert!(
                client.stream_is_finished(stream),
                "seed {seed:#x}: transfer did not complete after rebind"
            );
            assert_eq!(received, 40_000, "seed {seed:#x}: byte count");
            assert_eq!(
                server.path(PathId::INITIAL).unwrap().state,
                PathState::Active,
                "seed {seed:#x}: path re-validated"
            );
        }
    }

    #[test]
    fn shared_pn_space_ablation_still_transfers() {
        // The per-path vs single packet-number-space ablation: with one
        // shared counter, packet numbers interleave across paths but the
        // transfer must still complete (per-path sequences stay strictly
        // monotonic, so loss detection keeps working).
        let config = Config::builder().shared_pn_space(true).build().unwrap();
        let mut client =
            Connection::client(config.clone(), vec![addr(C0), addr(C1)], 0, addr(S0), 1);
        let mut server = Connection::server(config, vec![addr(S0), addr(S1)], 2);
        for step in 1..4 {
            shuttle(&mut client, &mut server, SimTime::from_millis(step));
        }
        assert!(server.path_ids().contains(&PathId(1)));
        let stream = client.open_stream();
        client
            .stream_write(stream, Bytes::from(vec![9u8; 100_000]))
            .unwrap();
        client.stream_finish(stream);
        let mut got = 0usize;
        for step in 5..60u64 {
            shuttle(&mut client, &mut server, SimTime::from_millis(step));
            while let Some(chunk) = server.stream_read(stream, usize::MAX) {
                got += chunk.len();
            }
            if server.stream_is_finished(stream) {
                break;
            }
            let now = SimTime::from_millis(step);
            for conn in [&mut client, &mut server] {
                if conn.next_timeout().is_some_and(|t| t <= now) {
                    conn.on_timeout(now);
                }
            }
        }
        assert!(server.stream_is_finished(stream));
        assert_eq!(got, 100_000);
    }

    #[test]
    fn single_path_config_never_advertises_addresses() {
        let mut client = Connection::client(Config::single_path(), vec![addr(C0)], 0, addr(S0), 1);
        let mut server = Connection::server(Config::single_path(), vec![addr(S0), addr(S1)], 2);
        shuttle(&mut client, &mut server, SimTime::from_millis(1));
        assert!(client.is_established());
        assert_eq!(client.path_ids(), vec![PathId::INITIAL]);
        assert_eq!(server.path_ids(), vec![PathId::INITIAL]);
    }

    #[test]
    fn flow_control_violation_closes_connection() {
        let mut config = Config::multipath();
        config.stream_recv_window = 64; // tiny window on the receiver
        config.conn_recv_window = 1 << 20;
        let mut client = Connection::client(Config::multipath(), vec![addr(C0)], 0, addr(S0), 1);
        let mut server = Connection::server(config, vec![addr(S0)], 2);
        shuttle(&mut client, &mut server, SimTime::from_millis(1));
        // The client believes the stream window is its own default (16 MB),
        // so it overruns the server's tiny 64-byte limit.
        let stream = client.open_stream();
        client
            .stream_write(stream, Bytes::from(vec![1u8; 4096]))
            .unwrap();
        shuttle(&mut client, &mut server, SimTime::from_millis(2));
        assert!(
            server.is_closed(),
            "server must abort on flow-control violation"
        );
        assert!(client.is_closed(), "client learns about the abort");
        let events = drain(&mut client);
        assert!(events.iter().any(|e| matches!(
            e,
            Event::Closed { error_code, .. } if *error_code == error_codes::FLOW_CONTROL_ERROR
        )));
    }

    #[test]
    fn window_updates_are_duplicated_on_all_paths() {
        let mut config = Config::multipath();
        config.conn_recv_window = 64 << 10;
        config.stream_recv_window = 64 << 10;
        let mut client =
            Connection::client(config.clone(), vec![addr(C0), addr(C1)], 0, addr(S0), 1);
        let mut server = Connection::server(config, vec![addr(S0), addr(S1)], 2);
        // Establish + open paths.
        for step in 1..4 {
            shuttle(&mut client, &mut server, SimTime::from_millis(step));
        }
        assert!(server.path_ids().contains(&PathId(1)));
        // Push more than half the window and read it, forcing updates.
        let stream = client.open_stream();
        client
            .stream_write(stream, Bytes::from(vec![2u8; 48 << 10]))
            .unwrap();
        shuttle(&mut client, &mut server, SimTime::from_millis(5));
        while server.stream_read(stream, usize::MAX).is_some() {}
        // Collect the server's outgoing packets and count WINDOW_UPDATE
        // carriers per path.
        let mut wu_paths = std::collections::HashSet::new();
        while let Some(t) = server.poll_transmit(SimTime::from_millis(6)) {
            let mut cursor = &t.payload[..];
            let header = PublicHeader::decode(&mut cursor).unwrap();
            let keys = server.session_keys.unwrap();
            let aead = Aead::new(keys.server_to_client);
            let nonce = nonce_for(
                NonceMode::PathIdMixed,
                header.path_id.0,
                header.packet_number,
            );
            let hdr_len = t.payload.len() - cursor.len();
            let plain = aead
                .open(&nonce, &t.payload[..hdr_len], &t.payload[hdr_len..])
                .unwrap();
            let frames = Frame::decode_all(&plain).unwrap();
            if frames
                .iter()
                .any(|f| matches!(f, Frame::WindowUpdate { .. }))
            {
                wu_paths.insert(header.path_id);
            }
            client.handle_datagram(SimTime::from_millis(6), t.remote, t.local, &t.payload);
        }
        assert!(
            wu_paths.len() >= 2,
            "WINDOW_UPDATE should ride every active path, saw {wu_paths:?}"
        );
    }

    #[test]
    fn handshake_packet_loss_recovers_via_rto() {
        let (mut client, mut server) = pair();
        // Drop the CHLO.
        let chlo = client.poll_transmit(SimTime::ZERO).expect("CHLO");
        assert!(client.poll_transmit(SimTime::ZERO).is_none());
        drop(chlo);
        // RTO fires and the CHLO is retransmitted.
        let rto_at = client.next_timeout().expect("rto armed");
        client.on_timeout(rto_at);
        let retx = client.poll_transmit(rto_at).expect("retransmitted CHLO");
        server.handle_datagram(rto_at, retx.remote, retx.local, &retx.payload);
        shuttle(&mut client, &mut server, rto_at);
        assert!(client.is_established());
        assert!(server.is_established());
    }

    #[test]
    fn writes_before_handshake_flow_after_it() {
        let (mut client, mut server) = pair();
        let stream = client.open_stream();
        client
            .stream_write(stream, Bytes::from_static(b"early data"))
            .unwrap();
        client.stream_finish(stream);
        shuttle(&mut client, &mut server, SimTime::from_millis(1));
        let mut got = Vec::new();
        while let Some(chunk) = server.stream_read(stream, usize::MAX) {
            got.extend_from_slice(&chunk);
        }
        assert_eq!(&got, b"early data");
        assert!(server.stream_is_finished(stream));
        // The final ACK may ride the delayed-ACK timer.
        for _ in 0..4 {
            if client.stream_fully_acked(stream) {
                break;
            }
            advance(&mut client, &mut server);
        }
        assert!(client.stream_fully_acked(stream));
    }

    #[test]
    fn close_path_reroutes_and_informs_peer() {
        let (mut client, mut server) = established_pair(SimTime::from_millis(1));
        shuttle(&mut client, &mut server, SimTime::from_millis(2));
        assert!(client.path_ids().contains(&PathId(1)));
        let stream = client.open_stream();
        client
            .stream_write(stream, Bytes::from(vec![5u8; 200_000]))
            .unwrap();
        client.stream_finish(stream);
        // Move some data so both paths are warm, then close path 1.
        shuttle(&mut client, &mut server, SimTime::from_millis(3));
        client.close_path(PathId(1), SimTime::from_millis(4));
        assert_eq!(client.path(PathId(1)).unwrap().state, PathState::Closed);
        assert!(drain(&mut client)
            .iter()
            .any(|e| matches!(e, Event::PathClosed(p) if *p == PathId(1))));
        // Everything still completes, and no packet leaves on path 1.
        let mut sent_on_path1 = false;
        for step in 5..40u64 {
            while let Some(t) = client.poll_transmit(SimTime::from_millis(step)) {
                sent_on_path1 |= t.local == addr(C1);
                server.handle_datagram(SimTime::from_millis(step), t.remote, t.local, &t.payload);
            }
            while let Some(t) = server.poll_transmit(SimTime::from_millis(step)) {
                client.handle_datagram(SimTime::from_millis(step), t.remote, t.local, &t.payload);
            }
            while server.stream_read(stream, usize::MAX).is_some() {}
            if server.stream_is_finished(stream) {
                break;
            }
            if client
                .next_timeout()
                .is_some_and(|t| t <= SimTime::from_millis(step))
            {
                client.on_timeout(SimTime::from_millis(step));
            }
        }
        assert!(server.stream_is_finished(stream));
        assert!(!sent_on_path1, "closed path must carry nothing");
        // The peer learned about the closure via the PATHS frame.
        assert_eq!(
            server.path(PathId(1)).map(|p| p.state),
            Some(PathState::Closed)
        );
    }

    #[test]
    fn idle_timeout_closes_silently() {
        let mut config = Config::multipath();
        config.idle_timeout = Some(Duration::from_secs(5));
        let mut client = Connection::client(config, vec![addr(C0)], 0, addr(S0), 1);
        let mut server = Connection::server(Config::multipath(), vec![addr(S0)], 2);
        shuttle(&mut client, &mut server, SimTime::from_millis(1));
        assert!(client.is_established());
        // Fire timers until the idle deadline passes with no traffic.
        let mut guard = 0;
        while !client.is_closed() {
            let t = client.next_timeout().expect("idle timer armed");
            client.on_timeout(t);
            guard += 1;
            assert!(guard < 64, "idle timer never fired");
        }
        let events = drain(&mut client);
        assert!(events.iter().any(|e| matches!(
            e,
            Event::Closed { error_code, .. } if *error_code == error_codes::IDLE_TIMEOUT
        )));
        // Silent close: nothing was sent to the peer.
        assert!(client.poll_transmit(SimTime::from_secs(10)).is_none());
    }

    #[test]
    fn connection_migration_is_a_hard_handover() {
        // Single-path QUIC moves its flow to a new local address: the
        // Path ID survives, congestion state resets, and the server
        // follows the address change.
        let mut client = Connection::client(
            Config::single_path(),
            vec![addr(C0), addr(C1)],
            0,
            addr(S0),
            1,
        );
        let mut server = Connection::server(Config::single_path(), vec![addr(S0)], 2);
        shuttle(&mut client, &mut server, SimTime::from_millis(1));
        let stream = client.open_stream();
        client
            .stream_write(stream, Bytes::from(vec![1u8; 50_000]))
            .unwrap();
        shuttle(&mut client, &mut server, SimTime::from_millis(2));
        while server.stream_read(stream, usize::MAX).is_some() {}
        let cwnd_before = client.path(PathId::INITIAL).unwrap().cc.window();
        assert!(cwnd_before > 20_000, "window grew before migration");

        client.migrate_path(PathId::INITIAL, addr(C1), SimTime::from_millis(3));
        let path = client.path(PathId::INITIAL).unwrap();
        assert_eq!(path.local, addr(C1));
        assert!(path.cc.window() < cwnd_before, "congestion state reset");
        assert!(!path.rtt_known(), "RTT estimate reset");

        // Traffic continues from the new address; the server follows.
        client
            .stream_write(stream, Bytes::from(vec![2u8; 50_000]))
            .unwrap();
        client.stream_finish(stream);
        for step in 4..40u64 {
            shuttle(&mut client, &mut server, SimTime::from_millis(step));
            while server.stream_read(stream, usize::MAX).is_some() {}
            if server.stream_is_finished(stream) {
                break;
            }
            if [client.next_timeout(), server.next_timeout()]
                .into_iter()
                .flatten()
                .min()
                .is_some_and(|t| t <= SimTime::from_millis(step))
            {
                client.on_timeout(SimTime::from_millis(step));
                server.on_timeout(SimTime::from_millis(step));
            }
        }
        assert!(server.stream_is_finished(stream));
        assert_eq!(server.path(PathId::INITIAL).unwrap().remote, addr(C1));
    }

    #[test]
    fn version_negotiation_costs_one_extra_round_trip() {
        let mut config = Config::multipath();
        config.quic_version = 99; // a future version the server rejects
        let mut client = Connection::client(config, vec![addr(C0)], 0, addr(S0), 1);
        let mut server = Connection::server(Config::multipath(), vec![addr(S0)], 2);
        // Round 1: CHLO(v99) -> version negotiation.
        let chlo = client.poll_transmit(SimTime::ZERO).expect("CHLO");
        server.handle_datagram(
            SimTime::from_millis(10),
            chlo.remote,
            chlo.local,
            &chlo.payload,
        );
        assert!(!server.is_established(), "v99 must be rejected");
        let vneg = server
            .poll_transmit(SimTime::from_millis(10))
            .expect("VN packet");
        client.handle_datagram(
            SimTime::from_millis(20),
            vneg.remote,
            vneg.local,
            &vneg.payload,
        );
        assert!(!client.is_established());
        // Round 2: CHLO(v1) -> SHLO; both complete.
        shuttle(&mut client, &mut server, SimTime::from_millis(20));
        assert!(client.is_established());
        assert!(server.is_established());
        // And data flows.
        let stream = client.open_stream();
        client
            .stream_write(stream, Bytes::from_static(b"post-negotiation"))
            .unwrap();
        client.stream_finish(stream);
        shuttle(&mut client, &mut server, SimTime::from_millis(30));
        let mut got = Vec::new();
        while let Some(chunk) = server.stream_read(stream, usize::MAX) {
            got.extend_from_slice(&chunk);
        }
        assert_eq!(&got, b"post-negotiation");
    }

    use mpquic_crypto::NonceMode;
    use std::time::Duration;
}
