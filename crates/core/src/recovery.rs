//! Per-path loss recovery: sent-packet tracking, ACK processing, loss
//! detection and retransmission timeouts.
//!
//! Each path has its own packet-number space (the paper's design), so each
//! path owns one `Recovery` instance. Because packet numbers are never
//! reused, ACKs unambiguously identify the transmission being acknowledged
//! — the property that gives (MP)QUIC its precise RTT samples and effective
//! early retransmit, which the paper contrasts with TCP's retransmission
//! ambiguity.
//!
//! Loss is declared through the two standard QUIC signals:
//!
//! * **packet threshold** — a packet is lost once packets sent ≥3 packet
//!   numbers after it have been acknowledged (fast retransmit);
//! * **time threshold** — a packet is lost once it has been outstanding
//!   for 9/8·max(srtt, latest) *and* something sent after it was acked
//!   (early retransmit, armed via a loss timer).
//!
//! When neither fires and ack-eliciting data is outstanding, the
//! **RTO** timer backs off exponentially; on expiry the path is reported
//! to the connection, which (per the paper, §4.3) marks it *potentially
//! failed* and moves its outstanding frames to any other usable path.

use mpquic_util::SimTime;
use mpquic_wire::Frame;
use std::collections::BTreeMap;
use std::time::Duration;

use crate::rtt::RttEstimator;

/// Number of newer packets that must be acknowledged before an older
/// outstanding packet is declared lost (RFC 9002 kPacketThreshold).
pub const PACKET_THRESHOLD: u64 = 3;

/// A packet handed to loss recovery at send time.
#[derive(Debug, Clone)]
pub struct SentPacket {
    /// Per-path packet number.
    pub packet_number: u64,
    /// Send timestamp.
    pub time_sent: SimTime,
    /// Full wire size, bytes (counted against the congestion window).
    pub size: u64,
    /// True if the packet elicits an acknowledgement (carries anything
    /// other than ACK/PADDING frames).
    pub ack_eliciting: bool,
    /// The retransmittable frames the packet carried; returned to the
    /// connection if the packet is declared lost.
    pub frames: Vec<Frame>,
}

/// What an ACK did to this path's state.
#[derive(Debug, Default)]
pub struct AckOutcome {
    /// Bytes newly removed from flight.
    pub newly_acked_bytes: u64,
    /// Largest packet number newly acknowledged, if any.
    pub largest_newly_acked: Option<u64>,
    /// Send time of the largest newly acked packet (for the RTT sample).
    pub rtt_sample_taken: bool,
    /// Retransmittable frames of the packets newly acknowledged — the
    /// connection uses these to mark stream ranges as delivered so lost
    /// duplicates are not retransmitted.
    pub acked_frames: Vec<Frame>,
    /// Retransmittable frames of packets now declared lost.
    pub lost_frames: Vec<Frame>,
    /// Bytes of packets now declared lost.
    pub lost_bytes: u64,
    /// True if this loss constitutes a *new* congestion event (first loss
    /// in the current congestion epoch) — callers must invoke the
    /// congestion controller's decrease exactly once per event.
    pub congestion_event: bool,
}

/// Which timer fired.
#[derive(Debug, PartialEq, Eq, Clone, Copy)]
pub enum TimeoutKind {
    /// The early-retransmit loss timer.
    LossTime,
    /// The retransmission timeout.
    Rto,
}

/// Result of handling a timeout.
#[derive(Debug, Default)]
pub struct TimeoutOutcome {
    /// Frames to retransmit.
    pub lost_frames: Vec<Frame>,
    /// Bytes removed from flight.
    pub lost_bytes: u64,
    /// True if the congestion controller should apply a loss decrease.
    pub congestion_event: bool,
    /// True if this was an RTO (the connection marks the path
    /// potentially failed and collapses its window).
    pub rto_fired: bool,
}

/// Loss-recovery state for one path's packet-number space.
#[derive(Debug)]
pub struct Recovery {
    /// Outstanding packets by packet number.
    sent: BTreeMap<u64, SentPacket>,
    /// Next packet number to assign.
    next_pn: u64,
    /// Largest packet number the peer has acknowledged.
    largest_acked: Option<u64>,
    /// Bytes currently in flight (ack-eliciting packets only).
    bytes_in_flight: u64,
    /// Earliest time at which an outstanding packet crosses the time
    /// threshold (the armed loss timer).
    loss_time: Option<SimTime>,
    /// Consecutive RTO count (exponential backoff).
    rto_count: u32,
    /// RTO reference point: set at the first outstanding send, restarted
    /// on every acknowledgement that makes progress (classic retransmit
    /// timer semantics — arming from the oldest packet's send time fires
    /// spuriously whenever serialization delays stretch the flight).
    rto_reference: Option<SimTime>,
    /// First packet number of the current congestion epoch: losses of
    /// packets sent before this do not trigger another window reduction.
    congestion_epoch_start: u64,
    /// Reusable packet-number scratch for ACK processing and loss
    /// detection: collecting pns before removal needs a buffer (the map
    /// cannot be mutated mid-iteration), and reusing one keeps the ACK
    /// path allocation-free at steady state like the egress side.
    scratch: Vec<u64>,
    /// Reusable backing store for [`AckOutcome::acked_frames`]: the
    /// outcome borrows it via `mem::take` and the connection hands it
    /// back through [`Recovery::reclaim`] once the frames are consumed,
    /// so steady-state ACKs reuse one high-water allocation instead of
    /// growing a fresh vector per ACK.
    frames_buf: Vec<Frame>,
}

impl Recovery {
    /// Fresh state for a new path.
    pub fn new() -> Recovery {
        Recovery {
            sent: BTreeMap::new(),
            next_pn: 0,
            largest_acked: None,
            bytes_in_flight: 0,
            loss_time: None,
            rto_count: 0,
            rto_reference: None,
            congestion_epoch_start: 0,
            scratch: Vec::new(),
            frames_buf: Vec::new(),
        }
    }

    /// Allocates the next packet number (monotonic, never reused).
    pub fn next_packet_number(&mut self) -> u64 {
        let pn = self.next_pn;
        self.next_pn += 1;
        pn
    }

    /// Highest packet number allocated so far plus one.
    pub fn next_pn_peek(&self) -> u64 {
        self.next_pn
    }

    /// Jumps this space's counter forward so the next allocation returns
    /// `pn` — the shared-packet-number-space ablation routes every send
    /// through one connection-wide counter and reserves each value here,
    /// keeping the numbering owned by recovery. Never moves backwards.
    pub fn reserve_through(&mut self, pn: u64) {
        self.next_pn = self.next_pn.max(pn);
    }

    /// Bytes currently in flight.
    pub fn bytes_in_flight(&self) -> u64 {
        self.bytes_in_flight
    }

    /// Number of outstanding (tracked) packets.
    pub fn outstanding_packets(&self) -> usize {
        self.sent.len()
    }

    /// True if any ack-eliciting packet is outstanding.
    pub fn has_ack_eliciting_in_flight(&self) -> bool {
        self.sent.values().any(|p| p.ack_eliciting)
    }

    /// Current RTO backoff exponent.
    pub fn rto_count(&self) -> u32 {
        self.rto_count
    }

    /// Records a sent packet.
    pub fn on_packet_sent(&mut self, packet: SentPacket) {
        debug_assert!(packet.packet_number < self.next_pn);
        if packet.ack_eliciting {
            self.bytes_in_flight += packet.size;
            if self.rto_reference.is_none() {
                self.rto_reference = Some(packet.time_sent);
            }
        }
        self.sent.insert(packet.packet_number, packet);
    }

    /// Processes the ACK ranges `(start, end)` (ascending) for this path.
    pub fn on_ack(
        &mut self,
        now: SimTime,
        ranges: impl Iterator<Item = (u64, u64)>,
        ack_delay: Duration,
        rtt: &mut RttEstimator,
    ) -> AckOutcome {
        // Acked frames accumulate into the reusable buffer; the caller
        // returns it via [`Recovery::reclaim`] after consuming them.
        let mut acked_frames = std::mem::take(&mut self.frames_buf);
        acked_frames.clear();
        let mut outcome = AckOutcome {
            acked_frames,
            ..AckOutcome::default()
        };
        let mut largest_newly_acked: Option<(u64, SimTime, bool)> = None;
        for (start, end) in ranges {
            if end >= self.next_pn {
                // Acking packets we never sent: ignore the bogus range.
                continue;
            }
            // Collect outstanding pns within the range into the reusable
            // scratch (taken out of `self` so the map stays borrowable).
            let mut pns = std::mem::take(&mut self.scratch);
            pns.clear();
            pns.extend(self.sent.range(start..=end).map(|(&pn, _)| pn));
            for &pn in &pns {
                let packet = self.sent.remove(&pn).expect("pn listed");
                if packet.ack_eliciting {
                    self.bytes_in_flight = self.bytes_in_flight.saturating_sub(packet.size);
                    outcome.newly_acked_bytes += packet.size;
                }
                let is_new_largest = largest_newly_acked.is_none_or(|(l, _, _)| pn > l);
                if is_new_largest {
                    largest_newly_acked = Some((pn, packet.time_sent, packet.ack_eliciting));
                }
                outcome.acked_frames.extend(packet.frames);
            }
            self.scratch = pns;
            self.largest_acked = Some(self.largest_acked.map_or(end, |l| l.max(end)));
        }
        if let Some((pn, time_sent, ack_eliciting)) = largest_newly_acked {
            outcome.largest_newly_acked = Some(pn);
            // Take an RTT sample only when the largest acked packet is
            // newly acknowledged and was ack-eliciting (RFC 9002 §5.1).
            if Some(pn) == self.largest_acked && ack_eliciting {
                rtt.on_sample(time_sent, now, ack_delay);
                outcome.rtt_sample_taken = true;
            }
            // Forward progress: reset the RTO backoff and restart the
            // retransmission timer.
            self.rto_count = 0;
            self.rto_reference = if self.has_ack_eliciting_in_flight() {
                Some(now)
            } else {
                None
            };
        }
        // Loss detection pass.
        let (lost_frames, lost_bytes, congestion_event) = self.detect_lost(now, rtt);
        outcome.lost_frames = lost_frames;
        outcome.lost_bytes = lost_bytes;
        outcome.congestion_event = congestion_event;
        outcome
    }

    /// Takes an [`AckOutcome`] back once its frames are consumed, so the
    /// next [`Recovery::on_ack`] reuses its `acked_frames` capacity
    /// instead of allocating. Optional — dropping the outcome is
    /// harmless, it just costs the next ACK one fresh allocation.
    pub fn reclaim(&mut self, mut outcome: AckOutcome) {
        outcome.acked_frames.clear();
        self.frames_buf = outcome.acked_frames;
    }

    /// Declares packets lost by packet threshold or time threshold and
    /// re-arms the loss timer. Returns `(frames, bytes, congestion_event)`.
    fn detect_lost(&mut self, now: SimTime, rtt: &RttEstimator) -> (Vec<Frame>, u64, bool) {
        self.loss_time = None;
        let Some(largest_acked) = self.largest_acked else {
            return (Vec::new(), 0, false);
        };
        let threshold = rtt.loss_time_threshold();
        let mut lost_frames = Vec::new();
        let mut lost_bytes = 0;
        let mut congestion_event = false;
        let mut lost_pns = std::mem::take(&mut self.scratch);
        lost_pns.clear();
        for (&pn, packet) in self.sent.range(..largest_acked) {
            let by_count = pn + PACKET_THRESHOLD <= largest_acked;
            let deadline = packet.time_sent + threshold;
            let by_time = deadline <= now;
            if by_count || by_time {
                lost_pns.push(pn);
            } else {
                // Earliest still-outstanding candidate arms the timer.
                self.loss_time = Some(self.loss_time.map_or(deadline, |t| t.min(deadline)));
            }
        }
        for &pn in &lost_pns {
            let packet = self.sent.remove(&pn).expect("pn listed");
            if packet.ack_eliciting {
                self.bytes_in_flight = self.bytes_in_flight.saturating_sub(packet.size);
            }
            lost_bytes += packet.size;
            if pn >= self.congestion_epoch_start {
                congestion_event = true;
            }
            lost_frames.extend(packet.frames);
        }
        self.scratch = lost_pns;
        if congestion_event {
            // Start a new epoch: further losses of already-sent packets
            // belong to this same event.
            self.congestion_epoch_start = self.next_pn;
        }
        (lost_frames, lost_bytes, congestion_event)
    }

    /// When the next timer fires, and which one.
    pub fn next_timeout(&self, rtt: &RttEstimator) -> Option<(SimTime, TimeoutKind)> {
        if let Some(t) = self.loss_time {
            return Some((t, TimeoutKind::LossTime));
        }
        // RTO armed from the last progress point while ack-eliciting
        // data is outstanding.
        if !self.has_ack_eliciting_in_flight() {
            return None;
        }
        let reference = self.rto_reference?;
        let backoff = 1u32 << self.rto_count.min(10);
        Some((reference + rtt.rto() * backoff, TimeoutKind::Rto))
    }

    /// Handles an expired timer.
    ///
    /// * Loss timer → time-threshold losses are declared.
    /// * RTO → **all** outstanding packets are surrendered for
    ///   retransmission (the connection re-schedules them, possibly on
    ///   another path) and the backoff doubles.
    pub fn on_timeout(&mut self, now: SimTime, rtt: &RttEstimator) -> TimeoutOutcome {
        let mut outcome = TimeoutOutcome::default();
        if let Some((when, kind)) = self.next_timeout(rtt) {
            if when > now {
                return outcome;
            }
            match kind {
                TimeoutKind::LossTime => {
                    let (frames, bytes, event) = self.detect_lost(now, rtt);
                    outcome.lost_frames = frames;
                    outcome.lost_bytes = bytes;
                    outcome.congestion_event = event;
                }
                TimeoutKind::Rto => {
                    self.rto_count += 1;
                    self.rto_reference = None;
                    outcome.rto_fired = true;
                    outcome.congestion_event = true;
                    self.congestion_epoch_start = self.next_pn;
                    let mut pns = std::mem::take(&mut self.scratch);
                    pns.clear();
                    pns.extend(self.sent.keys().copied());
                    for &pn in &pns {
                        let packet = self.sent.remove(&pn).expect("listed");
                        if packet.ack_eliciting {
                            self.bytes_in_flight = self.bytes_in_flight.saturating_sub(packet.size);
                        }
                        outcome.lost_bytes += packet.size;
                        outcome.lost_frames.extend(packet.frames);
                    }
                    self.scratch = pns;
                }
            }
        }
        outcome
    }
}

impl Recovery {
    /// True if `bytes_in_flight` equals the sum of outstanding
    /// ack-eliciting packet sizes — the accounting identity the congestion
    /// controller depends on. Only compiled for invariant-checking builds
    /// (it walks the whole sent map).
    #[cfg(any(debug_assertions, feature = "invariants"))]
    pub fn flight_accounting_consistent(&self) -> bool {
        let sum: u64 = self
            .sent
            .values()
            .filter(|p| p.ack_eliciting)
            .map(|p| p.size)
            .sum();
        sum == self.bytes_in_flight
    }
}

impl Recovery {
    /// Removes every outstanding packet and returns all retransmittable
    /// frames — used when a path is closed or migrated and its in-flight
    /// data must move elsewhere wholesale.
    pub fn surrender_all(&mut self) -> Vec<Frame> {
        self.loss_time = None;
        self.rto_reference = None;
        self.bytes_in_flight = 0;
        let mut frames = Vec::new();
        for (_, packet) in std::mem::take(&mut self.sent) {
            frames.extend(packet.frames);
        }
        frames
    }
}

impl Default for Recovery {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rtt::DEFAULT_INITIAL_RTT;
    use bytes::Bytes;
    use mpquic_wire::StreamFrame;

    fn stream_frame(tag: u8) -> Frame {
        Frame::Stream(StreamFrame {
            stream_id: 1,
            offset: u64::from(tag) * 100,
            data: Bytes::from(vec![tag; 10]),
            fin: false,
        })
    }

    fn send(r: &mut Recovery, now_ms: u64, size: u64) -> u64 {
        let pn = r.next_packet_number();
        r.on_packet_sent(SentPacket {
            packet_number: pn,
            time_sent: SimTime::from_millis(now_ms),
            size,
            ack_eliciting: true,
            frames: vec![stream_frame(pn as u8)],
        });
        pn
    }

    fn rtt() -> RttEstimator {
        RttEstimator::new(DEFAULT_INITIAL_RTT)
    }

    #[test]
    fn ack_removes_from_flight_and_samples_rtt() {
        let mut r = Recovery::new();
        let mut est = rtt();
        let pn = send(&mut r, 0, 1000);
        assert_eq!(r.bytes_in_flight(), 1000);
        let out = r.on_ack(
            SimTime::from_millis(40),
            [(pn, pn)].into_iter(),
            Duration::ZERO,
            &mut est,
        );
        assert_eq!(out.newly_acked_bytes, 1000);
        assert_eq!(out.largest_newly_acked, Some(pn));
        assert!(out.rtt_sample_taken);
        assert_eq!(est.latest(), Duration::from_millis(40));
        assert_eq!(r.bytes_in_flight(), 0);
    }

    #[test]
    fn duplicate_ack_is_noop() {
        let mut r = Recovery::new();
        let mut est = rtt();
        let pn = send(&mut r, 0, 1000);
        let _ = r.on_ack(
            SimTime::from_millis(40),
            [(pn, pn)].into_iter(),
            Duration::ZERO,
            &mut est,
        );
        let out = r.on_ack(
            SimTime::from_millis(50),
            [(pn, pn)].into_iter(),
            Duration::ZERO,
            &mut est,
        );
        assert_eq!(out.newly_acked_bytes, 0);
        assert!(out.largest_newly_acked.is_none());
        assert!(!out.rtt_sample_taken);
    }

    #[test]
    fn bogus_ack_of_unsent_packet_ignored() {
        let mut r = Recovery::new();
        let mut est = rtt();
        send(&mut r, 0, 1000);
        let out = r.on_ack(
            SimTime::from_millis(40),
            [(5, 9)].into_iter(),
            Duration::ZERO,
            &mut est,
        );
        assert_eq!(out.newly_acked_bytes, 0);
        assert_eq!(r.bytes_in_flight(), 1000);
    }

    #[test]
    fn packet_threshold_loss() {
        let mut r = Recovery::new();
        let mut est = rtt();
        let p0 = send(&mut r, 0, 100);
        let _p1 = send(&mut r, 1, 100);
        let _p2 = send(&mut r, 2, 100);
        let p3 = send(&mut r, 3, 100);
        // Ack p3 only: p0 is three behind -> lost; p1, p2 not yet.
        let out = r.on_ack(
            SimTime::from_millis(40),
            [(p3, p3)].into_iter(),
            Duration::ZERO,
            &mut est,
        );
        assert_eq!(out.lost_frames, vec![stream_frame(p0 as u8)]);
        assert!(out.congestion_event);
        assert_eq!(r.outstanding_packets(), 2);
    }

    #[test]
    fn one_congestion_event_per_epoch() {
        let mut r = Recovery::new();
        let mut est = rtt();
        for i in 0..8 {
            send(&mut r, i, 100);
        }
        // Ack pn 4: pns 0 and 1 lost -> one congestion event.
        let out = r.on_ack(
            SimTime::from_millis(40),
            [(4, 4)].into_iter(),
            Duration::ZERO,
            &mut est,
        );
        assert_eq!(out.lost_frames.len(), 2);
        assert!(out.congestion_event);
        // Ack pn 6: pns 2 and 3 lost, but they were sent before the epoch
        // started -> no second congestion event.
        let out2 = r.on_ack(
            SimTime::from_millis(50),
            [(6, 6)].into_iter(),
            Duration::ZERO,
            &mut est,
        );
        assert_eq!(out2.lost_frames.len(), 2);
        assert!(!out2.congestion_event);
    }

    #[test]
    fn time_threshold_arms_loss_timer() {
        let mut r = Recovery::new();
        let mut est = rtt();
        let p0 = send(&mut r, 0, 100);
        let p1 = send(&mut r, 5, 100);
        // Ack p1 at t=50: RTT sample = 45 ms, so the time threshold is
        // 9/8·45 ≈ 50.6 ms. p0 is only 1 behind (below the packet
        // threshold) and 50 ms old — just under the threshold — so the
        // loss timer must be armed rather than declaring it lost.
        let out = r.on_ack(
            SimTime::from_millis(50),
            [(p1, p1)].into_iter(),
            Duration::ZERO,
            &mut est,
        );
        assert!(out.lost_frames.is_empty());
        let (when, kind) = r.next_timeout(&est).expect("timer armed");
        assert_eq!(kind, TimeoutKind::LossTime);
        // Firing the timer declares p0 lost.
        let to = r.on_timeout(when, &est);
        assert_eq!(to.lost_frames, vec![stream_frame(p0 as u8)]);
        assert!(to.congestion_event);
        assert!(!to.rto_fired);
    }

    #[test]
    fn rto_surrenders_everything_and_backs_off() {
        let mut r = Recovery::new();
        let est = rtt();
        send(&mut r, 0, 100);
        send(&mut r, 10, 100);
        let (when, kind) = r.next_timeout(&est).unwrap();
        assert_eq!(kind, TimeoutKind::Rto);
        let out = r.on_timeout(when, &est);
        assert!(out.rto_fired);
        assert_eq!(out.lost_frames.len(), 2);
        assert_eq!(r.bytes_in_flight(), 0);
        assert_eq!(r.rto_count(), 1);
        assert_eq!(r.outstanding_packets(), 0);
        // Next RTO (after retransmission) doubles.
        send(&mut r, 1000, 100);
        let (when2, _) = r.next_timeout(&est).unwrap();
        let expected = SimTime::from_millis(1000) + est.rto() * 2;
        assert_eq!(when2, expected);
    }

    #[test]
    fn ack_resets_rto_backoff() {
        let mut r = Recovery::new();
        let mut est = rtt();
        send(&mut r, 0, 100);
        let (when, _) = r.next_timeout(&est).unwrap();
        let _ = r.on_timeout(when, &est);
        assert_eq!(r.rto_count(), 1);
        let pn = send(&mut r, 2000, 100);
        let _ = r.on_ack(
            SimTime::from_millis(2040),
            [(pn, pn)].into_iter(),
            Duration::ZERO,
            &mut est,
        );
        assert_eq!(r.rto_count(), 0);
    }

    #[test]
    fn timeout_before_deadline_is_noop() {
        let mut r = Recovery::new();
        let est = rtt();
        send(&mut r, 0, 100);
        let out = r.on_timeout(SimTime::from_millis(1), &est);
        assert!(out.lost_frames.is_empty());
        assert!(!out.rto_fired);
        assert_eq!(r.outstanding_packets(), 1);
    }

    #[test]
    fn no_timer_when_nothing_outstanding() {
        let r = Recovery::new();
        assert!(r.next_timeout(&rtt()).is_none());
    }

    #[test]
    fn non_ack_eliciting_packets_not_counted_in_flight() {
        let mut r = Recovery::new();
        let pn = r.next_packet_number();
        r.on_packet_sent(SentPacket {
            packet_number: pn,
            time_sent: SimTime::ZERO,
            size: 50,
            ack_eliciting: false,
            frames: vec![],
        });
        assert_eq!(r.bytes_in_flight(), 0);
        // And they don't arm the RTO.
        assert!(r.next_timeout(&rtt()).is_none());
    }

    #[test]
    fn surrender_all_empties_state() {
        let mut r = Recovery::new();
        let est = rtt();
        send(&mut r, 0, 100);
        send(&mut r, 5, 100);
        let frames = r.surrender_all();
        assert_eq!(frames.len(), 2);
        assert_eq!(r.bytes_in_flight(), 0);
        assert_eq!(r.outstanding_packets(), 0);
        assert!(r.next_timeout(&est).is_none());
        // Packet numbers keep increasing afterwards.
        let pn = r.next_packet_number();
        assert_eq!(pn, 2);
    }

    #[test]
    fn packet_numbers_monotonic() {
        let mut r = Recovery::new();
        let a = r.next_packet_number();
        let b = r.next_packet_number();
        assert!(b > a);
    }
}
