//! A qlog-inspired structured event log.
//!
//! Real QUIC implementations emit qlog traces for debugging and
//! analysis; the original mp-quic work likewise relied on per-packet
//! logs to diagnose scheduler behaviour. When enabled
//! (`Config::enable_qlog`), the connection records every packet sent and
//! received, loss-recovery activity and path state changes. The log is a
//! plain in-memory vector — cheap to query in tests and experiments, and
//! serializable for external tooling.

use mpquic_util::SimTime;
use mpquic_wire::PathId;
use serde::Serialize;

use crate::path::PathState;

/// One logged protocol event.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub enum QlogEvent {
    /// A packet left the connection.
    PacketSent {
        /// When.
        time: SimTime,
        /// On which path.
        path: PathId,
        /// Its per-path packet number.
        packet_number: u64,
        /// Wire size, bytes.
        size: usize,
        /// Whether loss recovery tracks it.
        ack_eliciting: bool,
    },
    /// An authenticated packet was accepted.
    PacketReceived {
        /// When.
        time: SimTime,
        /// On which path.
        path: PathId,
        /// Its per-path packet number.
        packet_number: u64,
        /// Wire size, bytes.
        size: usize,
    },
    /// Loss recovery declared packets lost on a path.
    PacketsLost {
        /// When.
        time: SimTime,
        /// On which path.
        path: PathId,
        /// How many bytes were declared lost.
        bytes: u64,
    },
    /// The congestion controller applied a decrease.
    CongestionEvent {
        /// When.
        time: SimTime,
        /// On which path.
        path: PathId,
        /// The window after the decrease.
        window_after: u64,
    },
    /// A retransmission timeout fired.
    Rto {
        /// When.
        time: SimTime,
        /// On which path.
        path: PathId,
    },
    /// A path changed liveness state.
    PathStateChanged {
        /// When.
        time: SimTime,
        /// The path.
        path: PathId,
        /// Its new state.
        state: PathStateKind,
    },
}

/// Serializable mirror of [`PathState`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum PathStateKind {
    /// Usable.
    Active,
    /// RTO without progress (scheduler avoids it).
    PotentiallyFailed,
    /// Abandoned.
    Closed,
}

impl From<PathState> for PathStateKind {
    fn from(s: PathState) -> Self {
        match s {
            PathState::Active => PathStateKind::Active,
            PathState::PotentiallyFailed => PathStateKind::PotentiallyFailed,
            PathState::Closed => PathStateKind::Closed,
        }
    }
}

/// The event log.
#[derive(Debug, Default, Clone)]
pub struct Qlog {
    events: Vec<QlogEvent>,
    enabled: bool,
}

impl Qlog {
    /// An enabled, empty log.
    pub fn enabled() -> Qlog {
        Qlog {
            events: Vec::new(),
            enabled: true,
        }
    }

    /// A disabled log (records nothing).
    pub fn disabled() -> Qlog {
        Qlog::default()
    }

    /// Appends an event if enabled.
    pub fn push(&mut self, event: QlogEvent) {
        if self.enabled {
            self.events.push(event);
        }
    }

    /// All events, in order.
    pub fn events(&self) -> &[QlogEvent] {
        &self.events
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events on one path.
    pub fn for_path(&self, path: PathId) -> impl Iterator<Item = &QlogEvent> {
        self.events.iter().filter(move |e| match e {
            QlogEvent::PacketSent { path: p, .. }
            | QlogEvent::PacketReceived { path: p, .. }
            | QlogEvent::PacketsLost { path: p, .. }
            | QlogEvent::CongestionEvent { path: p, .. }
            | QlogEvent::Rto { path: p, .. }
            | QlogEvent::PathStateChanged { path: p, .. } => *p == path,
        })
    }

    /// Bytes sent per path, a common analysis query.
    pub fn bytes_sent_on(&self, path: PathId) -> u64 {
        self.for_path(path)
            .filter_map(|e| match e {
                QlogEvent::PacketSent { size, .. } => Some(*size as u64),
                _ => None,
            })
            .sum()
    }

    /// Serializes the whole log as JSON lines (one event per line).
    pub fn to_json_lines(&self) -> String {
        self.events
            .iter()
            .map(|e| serde_json::to_string(e).expect("events serialize"))
            .collect::<Vec<_>>()
            .join("\n")
    }

    /// Serializes the whole log as one JSON array.
    pub fn to_json(&self) -> String {
        serde_json::to_string(&self.events).expect("events serialize")
    }

    /// Writes the log to `path` as JSON lines — the format the
    /// `mpq-server`/`mpq-client` binaries emit for their `--qlog` flag,
    /// consumable line-by-line by external tooling.
    pub fn write_json<P: AsRef<std::path::Path>>(&self, path: P) -> std::io::Result<()> {
        let mut out = self.to_json_lines();
        if !out.is_empty() {
            out.push('\n');
        }
        std::fs::write(path, out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sent(path: u32, pn: u64) -> QlogEvent {
        QlogEvent::PacketSent {
            time: SimTime::from_millis(pn),
            path: PathId(path),
            packet_number: pn,
            size: 100,
            ack_eliciting: true,
        }
    }

    #[test]
    fn disabled_log_records_nothing() {
        let mut log = Qlog::disabled();
        log.push(sent(0, 1));
        assert!(log.is_empty());
    }

    #[test]
    fn enabled_log_records_in_order() {
        let mut log = Qlog::enabled();
        log.push(sent(0, 1));
        log.push(sent(1, 1));
        log.push(QlogEvent::Rto {
            time: SimTime::from_millis(5),
            path: PathId(0),
        });
        assert_eq!(log.len(), 3);
        assert_eq!(log.for_path(PathId(0)).count(), 2);
        assert_eq!(log.for_path(PathId(1)).count(), 1);
        assert_eq!(log.bytes_sent_on(PathId(0)), 100);
    }

    #[test]
    fn json_lines_output() {
        let mut log = Qlog::enabled();
        log.push(sent(0, 7));
        let json = log.to_json_lines();
        assert!(json.contains("PacketSent"));
        assert!(json.contains("\"packet_number\":7"));
    }

    #[test]
    fn write_json_round_trips_through_a_file() {
        let mut log = Qlog::enabled();
        log.push(sent(0, 1));
        log.push(sent(1, 2));
        let path = std::env::temp_dir().join("mpquic_qlog_write_test.jsonl");
        log.write_json(&path).expect("write qlog");
        let written = std::fs::read_to_string(&path).expect("read back");
        assert_eq!(written.lines().count(), 2);
        assert_eq!(written, format!("{}\n", log.to_json_lines()));
        let _ = std::fs::remove_file(&path);
    }
}
