//! A qlog-inspired structured event log.
//!
//! Real QUIC implementations emit qlog traces for debugging and
//! analysis; the original mp-quic work likewise relied on per-packet
//! logs to diagnose scheduler behaviour. When enabled
//! (`Config::enable_qlog`), the connection records every packet sent and
//! received, loss-recovery activity and path state changes. The log is a
//! plain in-memory vector — cheap to query in tests and experiments, and
//! serializable for external tooling. Its size is capped
//! ([`Qlog::with_limit`]); for unbounded traces use the streaming
//! subscriber, [`mpquic_telemetry::StreamingQlog`].
//!
//! `Qlog` is itself a [`mpquic_telemetry::Subscriber`]: the connection
//! emits every event through its subscriber stack and this type records
//! the subset it historically captured, so code and tests written against
//! the legacy log keep working unchanged.

use mpquic_telemetry::{self as telemetry, Subscriber};
use mpquic_util::SimTime;
use mpquic_wire::PathId;
use serde::Serialize;

use crate::path::PathState;

/// Default cap on in-memory events (see [`Qlog::with_limit`]). Generous
/// for tests and experiment-length transfers, small enough that a runaway
/// connection cannot exhaust memory: the struct is ~48 bytes, so the cap
/// bounds the log at a few megabytes.
pub const DEFAULT_EVENT_LIMIT: usize = 65_536;

/// One logged protocol event.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub enum QlogEvent {
    /// A packet left the connection.
    PacketSent {
        /// When.
        time: SimTime,
        /// On which path.
        path: PathId,
        /// Its per-path packet number.
        packet_number: u64,
        /// Wire size, bytes.
        size: usize,
        /// Whether loss recovery tracks it.
        ack_eliciting: bool,
    },
    /// An authenticated packet was accepted.
    PacketReceived {
        /// When.
        time: SimTime,
        /// On which path.
        path: PathId,
        /// Its per-path packet number.
        packet_number: u64,
        /// Wire size, bytes.
        size: usize,
    },
    /// Loss recovery declared packets lost on a path.
    PacketsLost {
        /// When.
        time: SimTime,
        /// On which path.
        path: PathId,
        /// How many bytes were declared lost.
        bytes: u64,
    },
    /// The congestion controller applied a decrease.
    CongestionEvent {
        /// When.
        time: SimTime,
        /// On which path.
        path: PathId,
        /// The window after the decrease.
        window_after: u64,
    },
    /// A retransmission timeout fired.
    Rto {
        /// When.
        time: SimTime,
        /// On which path.
        path: PathId,
    },
    /// A path changed liveness state.
    PathStateChanged {
        /// When.
        time: SimTime,
        /// The path.
        path: PathId,
        /// Its new state.
        state: PathStateKind,
    },
}

/// Serializable mirror of [`PathState`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum PathStateKind {
    /// Usable.
    Active,
    /// Quarantined after an address change; awaiting PATH_RESPONSE.
    Validating,
    /// RTO without progress (scheduler avoids it).
    PotentiallyFailed,
    /// Abandoned.
    Closed,
}

impl From<PathState> for PathStateKind {
    fn from(s: PathState) -> Self {
        match s {
            PathState::Active => PathStateKind::Active,
            PathState::Validating => PathStateKind::Validating,
            PathState::PotentiallyFailed => PathStateKind::PotentiallyFailed,
            PathState::Closed => PathStateKind::Closed,
        }
    }
}

/// The event log.
#[derive(Debug, Clone)]
pub struct Qlog {
    events: Vec<QlogEvent>,
    enabled: bool,
    /// Maximum events retained; pushes beyond it are counted in
    /// `dropped` instead of stored.
    limit: usize,
    dropped: u64,
}

impl Default for Qlog {
    fn default() -> Qlog {
        Qlog {
            events: Vec::new(),
            enabled: false,
            limit: DEFAULT_EVENT_LIMIT,
            dropped: 0,
        }
    }
}

impl Qlog {
    /// An enabled, empty log capped at [`DEFAULT_EVENT_LIMIT`] events.
    pub fn enabled() -> Qlog {
        Qlog {
            enabled: true,
            ..Qlog::default()
        }
    }

    /// An enabled, empty log retaining at most `limit` events
    /// (`Config::qlog_event_limit`). Events past the cap are dropped and
    /// counted, never stored — the log's memory is bounded up front.
    pub fn with_limit(limit: usize) -> Qlog {
        Qlog {
            enabled: true,
            limit,
            ..Qlog::default()
        }
    }

    /// A disabled log (records nothing).
    pub fn disabled() -> Qlog {
        Qlog::default()
    }

    /// Appends an event if enabled and below the cap.
    pub fn push(&mut self, event: QlogEvent) {
        if !self.enabled {
            return;
        }
        if self.events.len() < self.limit {
            self.events.push(event);
        } else {
            self.dropped += 1;
        }
    }

    /// Events discarded because the log was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// All events, in order.
    pub fn events(&self) -> &[QlogEvent] {
        &self.events
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events on one path.
    pub fn for_path(&self, path: PathId) -> impl Iterator<Item = &QlogEvent> {
        self.events.iter().filter(move |e| match e {
            QlogEvent::PacketSent { path: p, .. }
            | QlogEvent::PacketReceived { path: p, .. }
            | QlogEvent::PacketsLost { path: p, .. }
            | QlogEvent::CongestionEvent { path: p, .. }
            | QlogEvent::Rto { path: p, .. }
            | QlogEvent::PathStateChanged { path: p, .. } => *p == path,
        })
    }

    /// Bytes sent per path, a common analysis query.
    pub fn bytes_sent_on(&self, path: PathId) -> u64 {
        self.for_path(path)
            .filter_map(|e| match e {
                QlogEvent::PacketSent { size, .. } => Some(*size as u64),
                _ => None,
            })
            .sum()
    }

    /// Serializes the whole log as JSON lines (one event per line).
    ///
    /// Infallible: [`QlogEvent`] serialization cannot fail by
    /// construction (plain structs, string keys), and should a serializer
    /// ever disagree the offending event is skipped rather than
    /// panicking — the log is diagnostics, not protocol state.
    pub fn to_json_lines(&self) -> String {
        self.events
            .iter()
            .filter_map(|e| serde_json::to_string(e).ok())
            .collect::<Vec<_>>()
            .join("\n")
    }

    /// Serializes the whole log as one JSON array (same never-panics
    /// contract as [`Qlog::to_json_lines`]).
    pub fn to_json(&self) -> String {
        serde_json::to_string(&self.events).unwrap_or_else(|_| String::from("[]"))
    }

    /// Writes the log to `path` as JSON lines — the format the
    /// `mpq-server`/`mpq-client` binaries emit for their `--qlog` flag,
    /// consumable line-by-line by external tooling.
    pub fn write_json<P: AsRef<std::path::Path>>(&self, path: P) -> std::io::Result<()> {
        let mut out = self.to_json_lines();
        if !out.is_empty() {
            out.push('\n');
        }
        std::fs::write(path, out)
    }
}

impl From<telemetry::PathState> for PathStateKind {
    fn from(s: telemetry::PathState) -> Self {
        match s {
            telemetry::PathState::Active => PathStateKind::Active,
            telemetry::PathState::Validating => PathStateKind::Validating,
            telemetry::PathState::PotentiallyFailed => PathStateKind::PotentiallyFailed,
            telemetry::PathState::Closed => PathStateKind::Closed,
        }
    }
}

/// Compatibility bridge: the connection emits [`mpquic_telemetry::Event`]s
/// through its subscriber stack, and this impl records the subset the
/// legacy log always captured (packets, losses, congestion, RTOs, path
/// states) in the legacy [`QlogEvent`] shape. Richer events
/// (`scheduler_decision`, `ack_sent`, …) flow only to real telemetry
/// subscribers.
impl Subscriber for Qlog {
    fn is_enabled(&self) -> bool {
        self.enabled
    }

    fn on_packet_sent(&mut self, e: &telemetry::PacketSent) {
        self.push(QlogEvent::PacketSent {
            time: e.time,
            path: e.path,
            packet_number: e.packet_number,
            size: e.size,
            ack_eliciting: e.ack_eliciting,
        });
    }

    fn on_packet_received(&mut self, e: &telemetry::PacketReceived) {
        self.push(QlogEvent::PacketReceived {
            time: e.time,
            path: e.path,
            packet_number: e.packet_number,
            size: e.size,
        });
    }

    fn on_frames_lost(&mut self, e: &telemetry::FramesLost) {
        self.push(QlogEvent::PacketsLost {
            time: e.time,
            path: e.path,
            bytes: e.bytes,
        });
    }

    fn on_congestion_event(&mut self, e: &telemetry::CongestionEvent) {
        self.push(QlogEvent::CongestionEvent {
            time: e.time,
            path: e.path,
            window_after: e.window_after,
        });
    }

    fn on_rto(&mut self, e: &telemetry::Rto) {
        self.push(QlogEvent::Rto {
            time: e.time,
            path: e.path,
        });
    }

    fn on_path_state_changed(&mut self, e: &telemetry::PathStateChanged) {
        self.push(QlogEvent::PathStateChanged {
            time: e.time,
            path: e.path,
            state: e.state.into(),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sent(path: u32, pn: u64) -> QlogEvent {
        QlogEvent::PacketSent {
            time: SimTime::from_millis(pn),
            path: PathId(path),
            packet_number: pn,
            size: 100,
            ack_eliciting: true,
        }
    }

    #[test]
    fn disabled_log_records_nothing() {
        let mut log = Qlog::disabled();
        log.push(sent(0, 1));
        assert!(log.is_empty());
    }

    #[test]
    fn enabled_log_records_in_order() {
        let mut log = Qlog::enabled();
        log.push(sent(0, 1));
        log.push(sent(1, 1));
        log.push(QlogEvent::Rto {
            time: SimTime::from_millis(5),
            path: PathId(0),
        });
        assert_eq!(log.len(), 3);
        assert_eq!(log.for_path(PathId(0)).count(), 2);
        assert_eq!(log.for_path(PathId(1)).count(), 1);
        assert_eq!(log.bytes_sent_on(PathId(0)), 100);
    }

    #[test]
    fn event_limit_caps_memory_and_counts_drops() {
        let mut log = Qlog::with_limit(3);
        for pn in 0..10 {
            log.push(sent(0, pn));
        }
        assert_eq!(log.len(), 3, "stores at most the cap");
        assert_eq!(log.dropped(), 7, "overflow is counted");
        // The retained prefix is the oldest events, in order.
        assert!(matches!(
            log.events()[2],
            QlogEvent::PacketSent {
                packet_number: 2,
                ..
            }
        ));
    }

    #[test]
    fn subscriber_bridge_records_legacy_events() {
        use mpquic_telemetry as telemetry;
        let mut log = Qlog::enabled();
        assert!(Subscriber::is_enabled(&log));
        assert!(!Subscriber::is_enabled(&Qlog::disabled()));
        log.on_event(&telemetry::Event::PacketSent(telemetry::PacketSent {
            time: SimTime::from_millis(1),
            path: PathId(1),
            packet_number: 4,
            size: 500,
            ack_eliciting: true,
        }));
        log.on_event(&telemetry::Event::Rto(telemetry::Rto {
            time: SimTime::from_millis(2),
            path: PathId(1),
        }));
        // Events outside the legacy vocabulary are ignored, not recorded.
        log.on_event(&telemetry::Event::AckSent(telemetry::AckSent {
            time: SimTime::from_millis(3),
            on_path: PathId(0),
            acks_path: PathId(1),
            largest_acked: 4,
        }));
        assert_eq!(log.len(), 2);
        assert_eq!(log.bytes_sent_on(PathId(1)), 500);
        assert!(matches!(log.events()[1], QlogEvent::Rto { .. }));
    }

    #[test]
    fn json_lines_output() {
        let mut log = Qlog::enabled();
        log.push(sent(0, 7));
        let json = log.to_json_lines();
        assert!(json.contains("PacketSent"));
        assert!(json.contains("\"packet_number\":7"));
    }

    #[test]
    fn write_json_round_trips_through_a_file() {
        let mut log = Qlog::enabled();
        log.push(sent(0, 1));
        log.push(sent(1, 2));
        let path = std::env::temp_dir().join("mpquic_qlog_write_test.jsonl");
        log.write_json(&path).expect("write qlog");
        let written = std::fs::read_to_string(&path).expect("read back");
        assert_eq!(written.lines().count(), 2);
        assert_eq!(written, format!("{}\n", log.to_json_lines()));
        let _ = std::fs::remove_file(&path);
    }
}
