//! Runtime protocol invariants from the paper, asserted while the
//! connection runs.
//!
//! The paper's correctness argument rests on properties the type system
//! cannot express:
//!
//! * **monotonic per-path packet numbers** (§3, *Path identification*) —
//!   packet numbers are never reused within a path's space, which is what
//!   makes RTT samples unambiguous;
//! * **≤ 256 ACK ranges** (§3, *Loss handling*) — the frame-format cap;
//! * **bytes-in-flight accounting** — a path's `bytes_in_flight` must
//!   equal the sum of its outstanding ack-eliciting packet sizes, or the
//!   congestion controller is being fed garbage;
//! * **odd/even Path ID ownership** (§3, *Path management*) — clients
//!   initiate path 0 and odd IDs, servers even IDs, so the hosts cannot
//!   collide when opening paths.
//!
//! [`InvariantChecker`] asserts these on every packet send and on every
//! ACK frame built or received. It compiles to a zero-sized no-op unless
//! `debug_assertions` or the `invariants` feature is enabled, so release
//! builds pay nothing while `cargo test` (and CI, which enables
//! `--features invariants` for release-mode runs) checks every packet.
//!
//! Static enforcement of the companion source-level rules (exhaustive
//! `Frame` match sites, no-panic wire/io code, packet-number counters
//! mutated only inside `recovery`) lives in `cargo xtask lint`; see
//! DESIGN.md §9 for the full invariant table.

use crate::config::Role;
use crate::recovery::Recovery;
use mpquic_wire::{AckFrame, PathId};

#[cfg(any(debug_assertions, feature = "invariants"))]
mod imp {
    use super::*;
    use mpquic_wire::MAX_ACK_RANGES;
    use std::collections::BTreeMap;

    /// Asserts the paper's runtime invariants on the send/receive hot
    /// path. Active build: `debug_assertions` or `--features invariants`.
    #[derive(Debug, Default)]
    pub struct InvariantChecker {
        /// Highest packet number sent so far, per path.
        last_sent_pn: BTreeMap<PathId, u64>,
    }

    impl InvariantChecker {
        /// A checker with no history.
        pub fn new() -> InvariantChecker {
            InvariantChecker::default()
        }

        /// Called once per sealed packet: packet numbers must be strictly
        /// monotonic per path, and the path's in-flight accounting must
        /// still be consistent after recording the send.
        pub fn on_packet_sent(&mut self, path: PathId, pn: u64, recovery: &Recovery) {
            if let Some(&last) = self.last_sent_pn.get(&path) {
                assert!(
                    pn > last,
                    "invariant violated: non-monotonic packet number on {path}: \
                     sent pn {pn} after pn {last}"
                );
            }
            self.last_sent_pn.insert(path, pn);
            assert!(
                recovery.flight_accounting_consistent(),
                "invariant violated: bytes_in_flight out of sync with \
                 outstanding packets on {path}"
            );
        }

        /// Structural checks on an ACK frame — built locally or decoded
        /// from the peer (`origin` labels the failure): the range-count
        /// cap and the descending, disjoint range layout the recovery
        /// machinery assumes.
        pub fn check_ack_frame(&self, ack: &AckFrame, origin: &'static str) {
            assert!(
                !ack.ranges.is_empty(),
                "invariant violated: {origin} ACK frame with no ranges"
            );
            assert!(
                ack.ranges.len() <= MAX_ACK_RANGES,
                "invariant violated: {origin} ACK frame carries {} ranges (max {})",
                ack.ranges.len(),
                MAX_ACK_RANGES
            );
            let mut prev_start: Option<u64> = None;
            for &(start, end) in &ack.ranges {
                assert!(
                    start <= end,
                    "invariant violated: {origin} ACK range ({start}, {end}) is inverted"
                );
                match prev_start {
                    None => assert!(
                        end == ack.largest_acked,
                        "invariant violated: {origin} ACK first range end {end} \
                         != largest_acked {}",
                        ack.largest_acked
                    ),
                    Some(ps) => assert!(
                        end + 1 < ps,
                        "invariant violated: {origin} ACK ranges not descending/disjoint \
                         (range ending {end} follows range starting {ps})"
                    ),
                }
                prev_start = Some(start);
            }
        }

        /// The odd/even Path ID ownership rule: which IDs each role may
        /// create locally, and which it may accept from the peer.
        pub fn check_path_ownership(&self, role: Role, id: PathId, locally_initiated: bool) {
            let valid = match (role, locally_initiated) {
                // We are the client creating a path, or the server
                // accepting one the client opened: ID 0 or odd.
                (Role::Client, true) | (Role::Server, false) => id.client_initiated(),
                // The mirror: even IDs only.
                (Role::Client, false) | (Role::Server, true) => id.server_initiated(),
            };
            let how = if locally_initiated {
                "create"
            } else {
                "accept"
            };
            assert!(
                valid,
                "invariant violated: {role:?} may not {how} {id} \
                 (path 0/odd = client, even = server)"
            );
        }
    }
}

#[cfg(not(any(debug_assertions, feature = "invariants")))]
mod imp {
    use super::*;

    /// Zero-sized no-op variant compiled into release builds without the
    /// `invariants` feature; every check vanishes.
    #[derive(Debug, Default)]
    pub struct InvariantChecker;

    impl InvariantChecker {
        /// A checker that checks nothing.
        pub fn new() -> InvariantChecker {
            InvariantChecker
        }

        /// No-op.
        #[inline(always)]
        pub fn on_packet_sent(&mut self, _path: PathId, _pn: u64, _recovery: &Recovery) {}

        /// No-op.
        #[inline(always)]
        pub fn check_ack_frame(&self, _ack: &AckFrame, _origin: &'static str) {}

        /// No-op.
        #[inline(always)]
        pub fn check_path_ownership(&self, _role: Role, _id: PathId, _locally_initiated: bool) {}
    }
}

pub use imp::InvariantChecker;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotonic_pns_accepted() {
        let mut c = InvariantChecker::new();
        let r = Recovery::new();
        c.on_packet_sent(PathId(1), 0, &r);
        c.on_packet_sent(PathId(1), 1, &r);
        // Independent spaces: path 3 may reuse the same numbers.
        c.on_packet_sent(PathId(3), 0, &r);
    }

    #[test]
    #[should_panic(expected = "non-monotonic packet number")]
    fn repeated_pn_panics() {
        let mut c = InvariantChecker::new();
        let r = Recovery::new();
        c.on_packet_sent(PathId(1), 5, &r);
        c.on_packet_sent(PathId(1), 5, &r);
    }

    #[test]
    #[should_panic(expected = "ACK frame carries")]
    fn oversized_ack_panics() {
        let c = InvariantChecker::new();
        let ranges: Vec<(u64, u64)> = (0..300u64).rev().map(|i| (i * 3, i * 3)).collect();
        let ack = AckFrame {
            path_id: PathId(0),
            largest_acked: 299 * 3,
            ack_delay_micros: 0,
            ranges,
        };
        c.check_ack_frame(&ack, "test");
    }

    #[test]
    fn path_ownership_rules() {
        let c = InvariantChecker::new();
        c.check_path_ownership(Role::Client, PathId::INITIAL, true);
        c.check_path_ownership(Role::Client, PathId(3), true);
        c.check_path_ownership(Role::Client, PathId(2), false);
        c.check_path_ownership(Role::Server, PathId(1), false);
    }

    #[test]
    #[should_panic(expected = "odd = client")]
    fn client_creating_even_path_panics() {
        let c = InvariantChecker::new();
        c.check_path_ownership(Role::Client, PathId(2), true);
    }
}
