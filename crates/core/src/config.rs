//! Connection configuration and application-facing event types.

use mpquic_cc::CcAlgorithm;
use mpquic_crypto::NonceMode;
use mpquic_wire::{PathId, MAX_DATAGRAM_SIZE};
use std::net::SocketAddr;
use std::time::Duration;

use crate::rtt::DEFAULT_INITIAL_RTT;
use crate::scheduler::SchedulerKind;
use crate::stream::StreamId;

/// Connection configuration.
///
/// The defaults reproduce the paper's experimental setup: OLIA coupled
/// congestion control, lowest-RTT scheduling with duplication on
/// unknown-RTT paths, 16 MB receive windows, WINDOW_UPDATE duplication on
/// all paths, and Path-ID-mixed packet-protection nonces.
#[derive(Debug, Clone)]
pub struct Config {
    /// Enable the multipath extension. `false` yields plain single-path
    /// QUIC (the paper's QUIC baseline): one path, no ADD_ADDRESS/PATHS.
    pub multipath: bool,
    /// Congestion control algorithm for every path.
    pub cc: CcAlgorithm,
    /// Packet scheduler policy.
    pub scheduler: SchedulerKind,
    /// Maximum UDP datagram size produced.
    pub max_datagram_size: usize,
    /// Connection-level receive window (the paper sets 16 MB).
    pub conn_recv_window: u64,
    /// Per-stream receive window.
    pub stream_recv_window: u64,
    /// Maximum time an ACK may be delayed.
    pub max_ack_delay: Duration,
    /// RTT assumed for a path before its first sample.
    pub initial_rtt: Duration,
    /// Packet-protection nonce construction.
    pub nonce_mode: NonceMode,
    /// Duplicate WINDOW_UPDATE frames on all active paths (the paper's
    /// receive-buffer-stall defence; disable for the ablation bench).
    pub duplicate_window_updates: bool,
    /// Send a PATHS frame alongside retransmissions after an RTO (the
    /// paper's handover accelerator, §4.3; disable for the ablation).
    pub send_paths_frames: bool,
    /// Close the connection silently after this long without receiving
    /// any packet (`None` disables the idle timer).
    pub idle_timeout: Option<Duration>,
    /// Maximum ACK ranges reported per ACK frame (the paper's 256; set
    /// to 3 to emulate TCP-SACK-starved acking in the ablation).
    pub max_ack_ranges: usize,
    /// Protocol version the client proposes in its CHLO. A server that
    /// does not support it answers with version negotiation and the
    /// client retries (one extra round trip), per paper §2.
    pub quic_version: u32,
    /// Record a qlog-style structured event log
    /// ([`crate::Connection::qlog`]).
    pub enable_qlog: bool,
    /// Maximum events retained by the in-memory qlog; once full, further
    /// events are counted ([`crate::Qlog::dropped`]) but not stored, so a
    /// long transfer cannot grow the log without bound. Use the streaming
    /// subscriber ([`mpquic_telemetry::StreamingQlog`]) for full traces.
    pub qlog_event_limit: usize,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            multipath: true,
            cc: CcAlgorithm::Olia,
            scheduler: SchedulerKind::LowestRtt,
            max_datagram_size: MAX_DATAGRAM_SIZE,
            conn_recv_window: 16 << 20,
            stream_recv_window: 16 << 20,
            max_ack_delay: Duration::from_millis(25),
            initial_rtt: DEFAULT_INITIAL_RTT,
            nonce_mode: NonceMode::PathIdMixed,
            duplicate_window_updates: true,
            send_paths_frames: true,
            idle_timeout: Some(Duration::from_secs(30)),
            max_ack_ranges: mpquic_wire::MAX_ACK_RANGES,
            quic_version: mpquic_crypto::handshake::SUPPORTED_VERSION,
            enable_qlog: false,
            qlog_event_limit: crate::qlog::DEFAULT_EVENT_LIMIT,
        }
    }
}

impl Config {
    /// The paper's single-path QUIC baseline: CUBIC, no multipath.
    pub fn single_path() -> Config {
        Config {
            multipath: false,
            cc: CcAlgorithm::Cubic,
            ..Config::default()
        }
    }

    /// The paper's MPQUIC configuration (also the `Default`).
    pub fn multipath() -> Config {
        Config::default()
    }
}

/// A datagram to hand to the network.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Transmit {
    /// Source address (selects the local interface / path).
    pub local: SocketAddr,
    /// Destination address.
    pub remote: SocketAddr,
    /// UDP payload.
    pub payload: Vec<u8>,
}

/// Which end of the connection this is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// Connection initiator.
    Client,
    /// Connection acceptor.
    Server,
}

/// Application-visible connection events, drained via
/// [`crate::Connection::poll_event`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// The secure handshake finished; streams may now flow.
    HandshakeCompleted,
    /// The peer opened a stream.
    StreamOpened(StreamId),
    /// In-order data is available to read.
    StreamReadable(StreamId),
    /// All data up to the FIN has been received.
    StreamComplete(StreamId),
    /// A new path became active.
    PathActive(PathId),
    /// A path was marked potentially failed (RTO with no progress, or the
    /// peer reported it via a PATHS frame).
    PathPotentiallyFailed(PathId),
    /// A path was closed by the local path manager or the peer.
    PathClosed(PathId),
    /// The connection was closed (by either side).
    Closed {
        /// Error code from the CONNECTION_CLOSE frame (0 = clean).
        error_code: u64,
        /// Human-readable reason.
        reason: String,
    },
}

/// Counters for experiment analysis.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ConnStats {
    /// Packets sent (all paths).
    pub packets_sent: u64,
    /// Packets received and accepted.
    pub packets_received: u64,
    /// Wire bytes sent.
    pub bytes_sent: u64,
    /// Wire bytes received.
    pub bytes_received: u64,
    /// Frames re-queued after loss.
    pub frames_retransmitted: u64,
    /// Stream frames duplicated by the unknown-RTT scheduler phase.
    pub duplicated_stream_frames: u64,
    /// RTO events across paths.
    pub rtos: u64,
    /// Congestion (loss) events across paths.
    pub congestion_events: u64,
    /// Packets dropped because they failed decryption.
    pub decrypt_failures: u64,
    /// Duplicate packets discarded.
    pub duplicate_packets: u64,
}
