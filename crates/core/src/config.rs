//! Connection configuration and application-facing event types.

use mpquic_cc::CcAlgorithm;
use mpquic_crypto::NonceMode;
use mpquic_wire::{PathId, MAX_DATAGRAM_SIZE};
use std::net::SocketAddr;
use std::time::Duration;

use crate::rtt::DEFAULT_INITIAL_RTT;
use crate::scheduler::{SchedulePolicy, SchedulerKind};
use crate::stream::StreamId;

/// Connection configuration.
///
/// The defaults reproduce the paper's experimental setup: OLIA coupled
/// congestion control, lowest-RTT scheduling with duplication on
/// unknown-RTT paths, 16 MB receive windows, WINDOW_UPDATE duplication on
/// all paths, and Path-ID-mixed packet-protection nonces.
///
/// Build one with [`Config::builder`], which validates the combination
/// before the connection ever sees it. Constructing or mutating the
/// struct field-by-field (`Config { .. }`) still works for this release
/// but is **deprecated**: it skips validation and will lose `pub` field
/// access in a future release.
#[derive(Debug, Clone)]
pub struct Config {
    /// Enable the multipath extension. `false` yields plain single-path
    /// QUIC (the paper's QUIC baseline): one path, no ADD_ADDRESS/PATHS.
    pub multipath: bool,
    /// Congestion control algorithm for every path.
    pub cc: CcAlgorithm,
    /// Packet scheduler policy (one of the built-ins; ignored when
    /// [`Config::scheduler_policy`] supplies a custom implementation).
    pub scheduler: SchedulerKind,
    /// Custom scheduling policy. `Some` takes precedence over
    /// [`Config::scheduler`]; the boxed policy is cloned into each
    /// connection built from this configuration.
    pub scheduler_policy: Option<Box<dyn SchedulePolicy>>,
    /// Ablation: allocate packet numbers from one shared space instead of
    /// one space per path. Loses the per-path monotonicity that makes
    /// multipath loss detection robust to cross-path reordering — the
    /// paper's argument for per-path spaces (§3) — and exists so the
    /// figure harness can measure exactly that cost.
    pub shared_pn_space: bool,
    /// Maximum UDP datagram size produced.
    pub max_datagram_size: usize,
    /// Connection-level receive window (the paper sets 16 MB).
    pub conn_recv_window: u64,
    /// Per-stream receive window.
    pub stream_recv_window: u64,
    /// Maximum time an ACK may be delayed.
    pub max_ack_delay: Duration,
    /// RTT assumed for a path before its first sample.
    pub initial_rtt: Duration,
    /// Packet-protection nonce construction.
    pub nonce_mode: NonceMode,
    /// Duplicate WINDOW_UPDATE frames on all active paths (the paper's
    /// receive-buffer-stall defence; disable for the ablation bench).
    pub duplicate_window_updates: bool,
    /// Send a PATHS frame alongside retransmissions after an RTO (the
    /// paper's handover accelerator, §4.3; disable for the ablation).
    pub send_paths_frames: bool,
    /// Close the connection silently after this long without receiving
    /// any packet (`None` disables the idle timer).
    pub idle_timeout: Option<Duration>,
    /// Maximum ACK ranges reported per ACK frame (the paper's 256; set
    /// to 3 to emulate TCP-SACK-starved acking in the ablation).
    pub max_ack_ranges: usize,
    /// Protocol version the client proposes in its CHLO. A server that
    /// does not support it answers with version negotiation and the
    /// client retries (one extra round trip), per paper §2.
    pub quic_version: u32,
    /// Record a qlog-style structured event log
    /// ([`crate::Connection::qlog`]).
    pub enable_qlog: bool,
    /// Maximum events retained by the in-memory qlog; once full, further
    /// events are counted ([`crate::Qlog::dropped`]) but not stored, so a
    /// long transfer cannot grow the log without bound. Use the streaming
    /// subscriber ([`mpquic_telemetry::StreamingQlog`]) for full traces.
    pub qlog_event_limit: usize,
    /// Maximum concurrently accepted server-side connections. An
    /// endpoint's demux drops (and counts) datagrams carrying unknown
    /// CIDs once this many connections are live. Ignored by clients.
    pub max_incoming_connections: usize,
    /// Worker shards an endpoint spreads accepted connections over.
    /// `0` means auto (`std::thread::available_parallelism`). Ignored by
    /// the single-connection `Driver` loop.
    pub worker_shards: usize,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            multipath: true,
            cc: CcAlgorithm::Olia,
            scheduler: SchedulerKind::LowestRtt,
            scheduler_policy: None,
            shared_pn_space: false,
            max_datagram_size: MAX_DATAGRAM_SIZE,
            conn_recv_window: 16 << 20,
            stream_recv_window: 16 << 20,
            max_ack_delay: Duration::from_millis(25),
            initial_rtt: DEFAULT_INITIAL_RTT,
            nonce_mode: NonceMode::PathIdMixed,
            duplicate_window_updates: true,
            send_paths_frames: true,
            idle_timeout: Some(Duration::from_secs(30)),
            max_ack_ranges: mpquic_wire::MAX_ACK_RANGES,
            quic_version: mpquic_crypto::handshake::SUPPORTED_VERSION,
            enable_qlog: false,
            qlog_event_limit: crate::qlog::DEFAULT_EVENT_LIMIT,
            max_incoming_connections: 64,
            worker_shards: 0,
        }
    }
}

impl Config {
    /// The paper's single-path QUIC baseline: CUBIC, no multipath.
    pub fn single_path() -> Config {
        Config {
            multipath: false,
            cc: CcAlgorithm::Cubic,
            ..Config::default()
        }
    }

    /// The paper's MPQUIC configuration (also the `Default`).
    pub fn multipath() -> Config {
        Config::default()
    }

    /// Starts a validated builder from the multipath defaults.
    pub fn builder() -> ConfigBuilder {
        ConfigBuilder {
            config: Config::default(),
        }
    }

    /// Starts a validated builder from this configuration.
    pub fn into_builder(self) -> ConfigBuilder {
        ConfigBuilder { config: self }
    }

    /// Checks the configuration's internal consistency; called by
    /// [`ConfigBuilder::build`].
    pub fn validate(&self) -> Result<(), ConfigError> {
        const MIN_DATAGRAM_SIZE: usize = 64;
        const MAX_UDP_PAYLOAD: usize = 65_507;
        if self.max_datagram_size < MIN_DATAGRAM_SIZE || self.max_datagram_size > MAX_UDP_PAYLOAD {
            return Err(ConfigError::DatagramSizeOutOfRange {
                got: self.max_datagram_size,
                min: MIN_DATAGRAM_SIZE,
                max: MAX_UDP_PAYLOAD,
            });
        }
        if self.conn_recv_window == 0 {
            return Err(ConfigError::ZeroWindow("conn_recv_window"));
        }
        if self.stream_recv_window == 0 {
            return Err(ConfigError::ZeroWindow("stream_recv_window"));
        }
        if self.stream_recv_window > self.conn_recv_window {
            return Err(ConfigError::StreamWindowExceedsConnWindow {
                stream: self.stream_recv_window,
                conn: self.conn_recv_window,
            });
        }
        if self.max_ack_ranges == 0 || self.max_ack_ranges > mpquic_wire::MAX_ACK_RANGES {
            return Err(ConfigError::AckRangesOutOfRange {
                got: self.max_ack_ranges,
                max: mpquic_wire::MAX_ACK_RANGES,
            });
        }
        if self.initial_rtt.is_zero() {
            return Err(ConfigError::ZeroDuration("initial_rtt"));
        }
        if self.idle_timeout.is_some_and(|t| t.is_zero()) {
            return Err(ConfigError::ZeroDuration("idle_timeout"));
        }
        if self.enable_qlog && self.qlog_event_limit == 0 {
            return Err(ConfigError::ZeroQlogLimit);
        }
        if self.max_incoming_connections == 0 {
            return Err(ConfigError::ZeroAcceptLimit);
        }
        Ok(())
    }
}

/// Why a [`ConfigBuilder`] rejected a configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// `max_datagram_size` is outside the sendable UDP payload range.
    DatagramSizeOutOfRange {
        /// Rejected value.
        got: usize,
        /// Smallest accepted datagram size.
        min: usize,
        /// Largest accepted datagram size (UDP/IPv4 payload maximum).
        max: usize,
    },
    /// A receive window (named field) is zero, which would deadlock the
    /// transfer before the first byte.
    ZeroWindow(&'static str),
    /// The per-stream window exceeds the connection window, so a single
    /// stream could never actually use its advertised credit.
    StreamWindowExceedsConnWindow {
        /// Per-stream window.
        stream: u64,
        /// Connection window.
        conn: u64,
    },
    /// `max_ack_ranges` is zero or exceeds the wire format's cap.
    AckRangesOutOfRange {
        /// Rejected value.
        got: usize,
        /// Wire-format maximum.
        max: usize,
    },
    /// A duration (named field) is zero.
    ZeroDuration(&'static str),
    /// qlog is enabled with a zero event limit: every event would be
    /// dropped, which is never what the caller meant.
    ZeroQlogLimit,
    /// `max_incoming_connections` is zero: the endpoint could never
    /// accept anything, which is never what a server meant.
    ZeroAcceptLimit,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::DatagramSizeOutOfRange { got, min, max } => {
                write!(f, "max_datagram_size {got} outside [{min}, {max}]")
            }
            ConfigError::ZeroWindow(field) => write!(f, "{field} must be > 0"),
            ConfigError::StreamWindowExceedsConnWindow { stream, conn } => write!(
                f,
                "stream_recv_window {stream} exceeds conn_recv_window {conn}"
            ),
            ConfigError::AckRangesOutOfRange { got, max } => {
                write!(f, "max_ack_ranges {got} outside [1, {max}]")
            }
            ConfigError::ZeroDuration(field) => write!(f, "{field} must be > 0"),
            ConfigError::ZeroQlogLimit => {
                write!(f, "enable_qlog with qlog_event_limit 0 drops every event")
            }
            ConfigError::ZeroAcceptLimit => {
                write!(f, "max_incoming_connections must be > 0")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// Builds a validated [`Config`].
///
/// ```
/// use mpquic_core::Config;
/// let config = Config::builder()
///     .single_path()
///     .recv_windows(8 << 20)
///     .build()
///     .expect("valid configuration");
/// assert!(!config.multipath);
/// ```
#[derive(Debug, Clone)]
pub struct ConfigBuilder {
    config: Config,
}

impl Default for ConfigBuilder {
    fn default() -> Self {
        Config::builder()
    }
}

impl ConfigBuilder {
    /// Applies the paper's single-path baseline preset (no multipath,
    /// CUBIC congestion control).
    pub fn single_path(mut self) -> Self {
        self.config.multipath = false;
        self.config.cc = CcAlgorithm::Cubic;
        self
    }

    /// Applies the paper's multipath preset (the defaults: multipath on,
    /// OLIA congestion control).
    pub fn multipath(mut self) -> Self {
        self.config.multipath = true;
        self.config.cc = CcAlgorithm::Olia;
        self
    }

    /// Enables or disables the multipath extension without touching the
    /// congestion controller.
    pub fn multipath_enabled(mut self, on: bool) -> Self {
        self.config.multipath = on;
        self
    }

    /// Congestion control algorithm for every path.
    pub fn cc(mut self, cc: CcAlgorithm) -> Self {
        self.config.cc = cc;
        self
    }

    /// Packet scheduler policy (a built-in kind). Clears any custom
    /// policy previously set with [`ConfigBuilder::scheduler_policy`].
    pub fn scheduler(mut self, scheduler: SchedulerKind) -> Self {
        self.config.scheduler = scheduler;
        self.config.scheduler_policy = None;
        self
    }

    /// Installs a custom scheduling policy, overriding the built-in
    /// [`ConfigBuilder::scheduler`] kind.
    pub fn scheduler_policy(mut self, policy: Box<dyn SchedulePolicy>) -> Self {
        self.config.scheduler_policy = Some(policy);
        self
    }

    /// Ablation: one shared packet-number space instead of per-path
    /// spaces (see [`Config::shared_pn_space`]).
    pub fn shared_pn_space(mut self, on: bool) -> Self {
        self.config.shared_pn_space = on;
        self
    }

    /// Maximum UDP datagram size produced.
    pub fn max_datagram_size(mut self, size: usize) -> Self {
        self.config.max_datagram_size = size;
        self
    }

    /// Connection-level receive window.
    pub fn conn_recv_window(mut self, window: u64) -> Self {
        self.config.conn_recv_window = window;
        self
    }

    /// Per-stream receive window.
    pub fn stream_recv_window(mut self, window: u64) -> Self {
        self.config.stream_recv_window = window;
        self
    }

    /// Sets the connection and per-stream receive windows together (the
    /// paper always configures them equal).
    pub fn recv_windows(mut self, window: u64) -> Self {
        self.config.conn_recv_window = window;
        self.config.stream_recv_window = window;
        self
    }

    /// Maximum time an ACK may be delayed.
    pub fn max_ack_delay(mut self, delay: Duration) -> Self {
        self.config.max_ack_delay = delay;
        self
    }

    /// RTT assumed for a path before its first sample.
    pub fn initial_rtt(mut self, rtt: Duration) -> Self {
        self.config.initial_rtt = rtt;
        self
    }

    /// Packet-protection nonce construction.
    pub fn nonce_mode(mut self, mode: NonceMode) -> Self {
        self.config.nonce_mode = mode;
        self
    }

    /// Duplicate WINDOW_UPDATE frames on all active paths.
    pub fn duplicate_window_updates(mut self, on: bool) -> Self {
        self.config.duplicate_window_updates = on;
        self
    }

    /// Send a PATHS frame alongside retransmissions after an RTO.
    pub fn send_paths_frames(mut self, on: bool) -> Self {
        self.config.send_paths_frames = on;
        self
    }

    /// Idle timeout (`None` disables the idle timer).
    pub fn idle_timeout(mut self, timeout: Option<Duration>) -> Self {
        self.config.idle_timeout = timeout;
        self
    }

    /// Maximum ACK ranges reported per ACK frame.
    pub fn max_ack_ranges(mut self, ranges: usize) -> Self {
        self.config.max_ack_ranges = ranges;
        self
    }

    /// Protocol version the client proposes in its CHLO.
    pub fn quic_version(mut self, version: u32) -> Self {
        self.config.quic_version = version;
        self
    }

    /// Record a qlog-style structured event log.
    pub fn enable_qlog(mut self, on: bool) -> Self {
        self.config.enable_qlog = on;
        self
    }

    /// Maximum events retained by the in-memory qlog.
    pub fn qlog_event_limit(mut self, limit: usize) -> Self {
        self.config.qlog_event_limit = limit;
        self
    }

    /// Maximum concurrently accepted server-side connections.
    pub fn max_incoming_connections(mut self, limit: usize) -> Self {
        self.config.max_incoming_connections = limit;
        self
    }

    /// Worker shards an endpoint spreads connections over (0 = auto).
    pub fn worker_shards(mut self, shards: usize) -> Self {
        self.config.worker_shards = shards;
        self
    }

    /// Validates and returns the configuration.
    pub fn build(self) -> Result<Config, ConfigError> {
        self.config.validate()?;
        Ok(self.config)
    }
}

/// A datagram (or GSO-shaped train of datagrams) to hand to the network.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Transmit {
    /// Source address (selects the local interface / path).
    pub local: SocketAddr,
    /// Destination address.
    pub remote: SocketAddr,
    /// UDP payload. When `segment_size` is set this holds several
    /// wire datagrams back to back (a GSO segment train).
    pub payload: Vec<u8>,
    /// `None`: `payload` is one datagram. `Some(s)`: `payload` is a
    /// train of datagrams of `s` bytes each (only the last may be
    /// shorter), produced by the batched egress path
    /// ([`crate::Connection::poll_transmit_batch`]); the socket layer
    /// must send each segment as its own UDP datagram.
    pub segment_size: Option<usize>,
}

impl Transmit {
    /// The wire datagrams this transmit expands to, in send order.
    pub fn segments(&self) -> impl Iterator<Item = &[u8]> {
        let seg = match self.segment_size {
            Some(seg) if seg > 0 => seg,
            _ => self.payload.len().max(1),
        };
        self.payload.chunks(seg)
    }

    /// Number of wire datagrams this transmit expands to.
    pub fn segment_count(&self) -> usize {
        match self.segment_size {
            Some(seg) if seg > 0 => self.payload.len().div_ceil(seg).max(1),
            _ => 1,
        }
    }
}

/// Which end of the connection this is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// Connection initiator.
    Client,
    /// Connection acceptor.
    Server,
}

/// Application-visible connection events, drained via
/// [`crate::Connection::poll_event`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// The secure handshake finished; streams may now flow.
    HandshakeCompleted,
    /// The peer opened a stream.
    StreamOpened(StreamId),
    /// In-order data is available to read.
    StreamReadable(StreamId),
    /// All data up to the FIN has been received.
    StreamComplete(StreamId),
    /// A new path became active.
    PathActive(PathId),
    /// A path was marked potentially failed (RTO with no progress, or the
    /// peer reported it via a PATHS frame).
    PathPotentiallyFailed(PathId),
    /// A path was closed by the local path manager or the peer.
    PathClosed(PathId),
    /// The connection was closed (by either side).
    Closed {
        /// Error code from the CONNECTION_CLOSE frame (0 = clean).
        error_code: u64,
        /// Human-readable reason.
        reason: String,
    },
}

/// Counters for experiment analysis.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ConnStats {
    /// Packets sent (all paths).
    pub packets_sent: u64,
    /// Packets received and accepted.
    pub packets_received: u64,
    /// Wire bytes sent.
    pub bytes_sent: u64,
    /// Wire bytes received.
    pub bytes_received: u64,
    /// Frames re-queued after loss.
    pub frames_retransmitted: u64,
    /// Stream frames duplicated by the unknown-RTT scheduler phase.
    pub duplicated_stream_frames: u64,
    /// RTO events across paths.
    pub rtos: u64,
    /// Congestion (loss) events across paths.
    pub congestion_events: u64,
    /// Packets dropped because they failed decryption.
    pub decrypt_failures: u64,
    /// Duplicate packets discarded.
    pub duplicate_packets: u64,
}
