//! Round-trip-time estimation (RFC 6298 smoothing with QUIC's ack-delay
//! correction).
//!
//! The paper repeatedly credits MPQUIC's scheduling quality to its
//! "precise path latency estimation": monotonically increasing packet
//! numbers remove retransmission ambiguity (no Karn's algorithm needed) and
//! the ACK frame's ack-delay field lets the sender subtract the peer's
//! deliberate delaying of the ACK from the sample.

use mpquic_util::SimTime;
use std::time::Duration;

/// Default RTT assumed before the first sample (QUIC uses 333 ms as a
/// conservative initial guess; we match its spirit with 100 ms since the
/// paper's topologies are at most 400 ms RTT).
pub const DEFAULT_INITIAL_RTT: Duration = Duration::from_millis(100);

/// Minimum retransmission timeout (matches gQUIC's 200 ms floor).
pub const MIN_RTO: Duration = Duration::from_millis(200);

/// Maximum retransmission timeout.
pub const MAX_RTO: Duration = Duration::from_secs(60);

/// Timer granularity used in RTO variance floors.
const GRANULARITY: Duration = Duration::from_millis(1);

/// Smoothed RTT state for one path.
#[derive(Debug, Clone)]
pub struct RttEstimator {
    /// Smoothed RTT (EWMA, gain 1/8).
    srtt: Duration,
    /// Mean deviation (EWMA, gain 1/4).
    rttvar: Duration,
    /// Smallest RTT observed (never ack-delay-adjusted, per QUIC).
    min_rtt: Duration,
    /// Most recent raw sample.
    latest: Duration,
    /// True once at least one sample has been taken.
    has_sample: bool,
    /// RTT assumed before the first sample.
    initial_rtt: Duration,
}

impl RttEstimator {
    /// Creates an estimator that reports `initial_rtt` until a sample
    /// arrives.
    pub fn new(initial_rtt: Duration) -> RttEstimator {
        RttEstimator {
            srtt: initial_rtt,
            rttvar: initial_rtt / 2,
            min_rtt: Duration::MAX,
            latest: initial_rtt,
            has_sample: false,
            initial_rtt,
        }
    }

    /// Records a sample: `now - time_sent`, minus the peer-reported
    /// `ack_delay` (only subtracted when doing so would not push the
    /// sample below the observed minimum, per RFC 9002 §5.3).
    pub fn on_sample(&mut self, sent: SimTime, now: SimTime, ack_delay: Duration) {
        let raw = now.saturating_duration_since(sent);
        if raw.is_zero() {
            return;
        }
        self.min_rtt = self.min_rtt.min(raw);
        let adjusted = if raw.saturating_sub(ack_delay) >= self.min_rtt {
            raw - ack_delay
        } else {
            raw
        };
        self.latest = adjusted;
        if !self.has_sample {
            self.srtt = adjusted;
            self.rttvar = adjusted / 2;
            self.has_sample = true;
        } else {
            let delta = self.srtt.abs_diff(adjusted);
            self.rttvar = (self.rttvar * 3 + delta) / 4;
            self.srtt = (self.srtt * 7 + adjusted) / 8;
        }
    }

    /// Smoothed RTT (the scheduler's path ranking key).
    pub fn srtt(&self) -> Duration {
        self.srtt
    }

    /// Latest raw sample.
    pub fn latest(&self) -> Duration {
        self.latest
    }

    /// RTT mean deviation (the RTO's variance term), exposed for
    /// telemetry ([`mpquic_telemetry::MetricsUpdated`] reports it
    /// alongside the smoothed RTT).
    pub fn rttvar(&self) -> Duration {
        self.rttvar
    }

    /// Smallest observed RTT, or the initial RTT before any sample.
    pub fn min_rtt(&self) -> Duration {
        if self.min_rtt == Duration::MAX {
            self.initial_rtt
        } else {
            self.min_rtt
        }
    }

    /// True once a real sample has been observed — the scheduler's
    /// "is this path's RTT known?" test that triggers the paper's
    /// duplicate-while-unknown behaviour.
    pub fn has_sample(&self) -> bool {
        self.has_sample
    }

    /// Retransmission timeout: `srtt + max(4·rttvar, granularity)`,
    /// clamped to `[MIN_RTO, MAX_RTO]`.
    pub fn rto(&self) -> Duration {
        let rto = self.srtt + (self.rttvar * 4).max(GRANULARITY);
        rto.clamp(MIN_RTO, MAX_RTO)
    }

    /// Loss-detection time threshold: `9/8 · max(srtt, latest)`
    /// (RFC 9002's kTimeThreshold).
    pub fn loss_time_threshold(&self) -> Duration {
        let base = self.srtt.max(self.latest);
        base + base / 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> Duration {
        Duration::from_millis(v)
    }

    #[test]
    fn reports_initial_rtt_before_samples() {
        let rtt = RttEstimator::new(ms(100));
        assert!(!rtt.has_sample());
        assert_eq!(rtt.srtt(), ms(100));
        assert_eq!(rtt.min_rtt(), ms(100));
        assert_eq!(rtt.rto(), ms(300)); // 100 + 4*50
    }

    #[test]
    fn first_sample_initializes() {
        let mut rtt = RttEstimator::new(ms(100));
        rtt.on_sample(SimTime::from_millis(0), SimTime::from_millis(40), ms(0));
        assert!(rtt.has_sample());
        assert_eq!(rtt.srtt(), ms(40));
        assert_eq!(rtt.min_rtt(), ms(40));
    }

    #[test]
    fn smoothing_converges() {
        let mut rtt = RttEstimator::new(ms(100));
        for i in 0..50u64 {
            rtt.on_sample(
                SimTime::from_millis(i * 100),
                SimTime::from_millis(i * 100 + 30),
                ms(0),
            );
        }
        let srtt_ms = rtt.srtt().as_millis();
        assert!(
            (29..=31).contains(&srtt_ms),
            "srtt {srtt_ms} should converge to 30"
        );
    }

    #[test]
    fn ack_delay_subtracted() {
        let mut rtt = RttEstimator::new(ms(100));
        // Establish a min_rtt of 20 ms first.
        rtt.on_sample(SimTime::from_millis(0), SimTime::from_millis(20), ms(0));
        // 50 ms raw with 25 ms ack delay -> 25 ms sample.
        rtt.on_sample(SimTime::from_millis(100), SimTime::from_millis(150), ms(25));
        assert_eq!(rtt.latest(), ms(25));
    }

    #[test]
    fn ack_delay_not_subtracted_below_min() {
        let mut rtt = RttEstimator::new(ms(100));
        rtt.on_sample(SimTime::from_millis(0), SimTime::from_millis(30), ms(0));
        // Subtracting 25 from 40 would give 15 < min(30): keep raw 40.
        rtt.on_sample(SimTime::from_millis(100), SimTime::from_millis(140), ms(25));
        assert_eq!(rtt.latest(), ms(40));
    }

    #[test]
    fn min_rtt_uses_raw_samples() {
        let mut rtt = RttEstimator::new(ms(100));
        rtt.on_sample(SimTime::from_millis(0), SimTime::from_millis(50), ms(45));
        // min_rtt tracks the raw 50, not the adjusted 5.
        assert_eq!(rtt.min_rtt(), ms(50));
    }

    #[test]
    fn rto_clamped() {
        let mut rtt = RttEstimator::new(ms(1));
        rtt.on_sample(SimTime::from_millis(0), SimTime::from_millis(1), ms(0));
        assert_eq!(rtt.rto(), MIN_RTO);
    }

    #[test]
    fn zero_duration_sample_ignored() {
        let mut rtt = RttEstimator::new(ms(100));
        rtt.on_sample(SimTime::from_millis(5), SimTime::from_millis(5), ms(0));
        assert!(!rtt.has_sample());
    }

    #[test]
    fn loss_threshold_is_nine_eighths() {
        let mut rtt = RttEstimator::new(ms(100));
        rtt.on_sample(SimTime::from_millis(0), SimTime::from_millis(80), ms(0));
        assert_eq!(rtt.loss_time_threshold(), ms(90));
    }
}
