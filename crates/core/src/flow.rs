//! Connection-level flow control.
//!
//! Both directions of a connection maintain a cumulative byte budget over
//! all streams (the sum of the highest offsets). The receive side extends
//! its limit with connection-level WINDOW_UPDATE frames (`stream_id == 0`),
//! which the MPQUIC scheduler duplicates on **every** path — the paper's
//! defence against receive-buffer stalls when one path lags
//! ("the scheduler ensures proper delivery of the WINDOW_UPDATE frames by
//! sending them on all paths when they are needed").

/// Connection-level flow control state (both directions).
#[derive(Debug)]
pub struct ConnFlowControl {
    // --- send side (peer-imposed) ---
    /// Peer's cumulative limit on new stream data.
    max_data_remote: u64,
    /// New-data bytes sent so far (sum of stream offset high-water marks).
    bytes_sent: u64,
    /// Whether BLOCKED was reported for the current limit.
    blocked_reported: bool,
    // --- receive side (we impose) ---
    /// Window size granted beyond consumed data.
    window: u64,
    /// Limit currently advertised to the peer.
    max_data_local: u64,
    /// Highest cumulative offset received.
    bytes_received: u64,
    /// Bytes the application has consumed.
    bytes_consumed: u64,
}

/// Receiving more data than the advertised limit is a protocol violation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowControlViolated;

impl ConnFlowControl {
    /// Creates flow control with our receive window and the peer's
    /// initial limit (symmetric configuration uses the same value).
    pub fn new(local_window: u64, initial_remote_limit: u64) -> ConnFlowControl {
        ConnFlowControl {
            max_data_remote: initial_remote_limit,
            bytes_sent: 0,
            blocked_reported: false,
            window: local_window,
            max_data_local: local_window,
            bytes_received: 0,
            bytes_consumed: 0,
        }
    }

    /// Bytes of *new* stream data we may still send.
    pub fn send_credit(&self) -> u64 {
        self.max_data_remote.saturating_sub(self.bytes_sent)
    }

    /// Records `n` bytes of new stream data sent.
    pub fn on_new_data_sent(&mut self, n: u64) {
        self.bytes_sent += n;
        debug_assert!(self.bytes_sent <= self.max_data_remote);
    }

    /// Processes a connection-level WINDOW_UPDATE from the peer.
    pub fn on_max_data(&mut self, limit: u64) {
        if limit > self.max_data_remote {
            self.max_data_remote = limit;
            self.blocked_reported = false;
        }
    }

    /// True when the peer's limit currently blocks us.
    pub fn is_blocked(&self) -> bool {
        self.send_credit() == 0
    }

    /// Reports blocking once per episode (drives BLOCKED frames).
    pub fn should_report_blocked(&mut self) -> bool {
        if self.is_blocked() && !self.blocked_reported {
            self.blocked_reported = true;
            true
        } else {
            false
        }
    }

    /// Accounts `n` new bytes received (the increase in a stream's highest
    /// offset). Errors if the peer exceeded our advertised limit.
    pub fn on_data_received(&mut self, n: u64) -> Result<(), FlowControlViolated> {
        self.bytes_received += n;
        if self.bytes_received > self.max_data_local {
            return Err(FlowControlViolated);
        }
        Ok(())
    }

    /// Accounts `n` bytes consumed by the application.
    pub fn on_data_consumed(&mut self, n: u64) {
        self.bytes_consumed += n;
        debug_assert!(self.bytes_consumed <= self.bytes_received);
    }

    /// Returns the new limit to advertise when at least half the window
    /// has been consumed since the last advertisement.
    pub fn poll_window_update(&mut self) -> Option<u64> {
        let target = self.bytes_consumed + self.window;
        if target >= self.max_data_local + self.window / 2 {
            self.max_data_local = target;
            Some(target)
        } else {
            None
        }
    }

    /// Limit currently advertised to the peer.
    pub fn max_data_local(&self) -> u64 {
        self.max_data_local
    }

    /// Peer's current limit on us.
    pub fn max_data_remote(&self) -> u64 {
        self.max_data_remote
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_credit_tracks_limit() {
        let mut fc = ConnFlowControl::new(1000, 100);
        assert_eq!(fc.send_credit(), 100);
        fc.on_new_data_sent(60);
        assert_eq!(fc.send_credit(), 40);
        fc.on_max_data(200);
        assert_eq!(fc.send_credit(), 140);
    }

    #[test]
    fn stale_max_data_ignored() {
        let mut fc = ConnFlowControl::new(1000, 100);
        fc.on_max_data(50);
        assert_eq!(fc.max_data_remote(), 100);
    }

    #[test]
    fn blocked_reported_once_per_episode() {
        let mut fc = ConnFlowControl::new(1000, 10);
        fc.on_new_data_sent(10);
        assert!(fc.is_blocked());
        assert!(fc.should_report_blocked());
        assert!(!fc.should_report_blocked());
        fc.on_max_data(20);
        assert!(!fc.is_blocked());
        fc.on_new_data_sent(10);
        assert!(fc.should_report_blocked(), "new episode after limit raise");
    }

    #[test]
    fn receive_limit_enforced() {
        let mut fc = ConnFlowControl::new(100, 1000);
        assert!(fc.on_data_received(100).is_ok());
        assert_eq!(fc.on_data_received(1), Err(FlowControlViolated));
    }

    #[test]
    fn window_update_after_half_window() {
        let mut fc = ConnFlowControl::new(100, 1000);
        fc.on_data_received(80).unwrap();
        assert!(fc.poll_window_update().is_none(), "not consumed yet");
        fc.on_data_consumed(50);
        assert_eq!(fc.poll_window_update(), Some(150));
        assert!(fc.poll_window_update().is_none());
        fc.on_data_consumed(30);
        assert!(fc.poll_window_update().is_none(), "only 30 more consumed");
        fc.on_data_received(20).unwrap();
        fc.on_data_consumed(20);
        assert_eq!(fc.poll_window_update(), Some(200));
    }
}
