//! Stream state: ordered byte streams multiplexed over the connection.
//!
//! STREAM frames carry `(stream id, offset)` so the receiver can reorder
//! data that arrived over *different paths* — the property that lets
//! MPQUIC spread one stream across heterogeneous paths without any extra
//! sequence-number layer (unlike MPTCP's DSS mapping).
//!
//! The send side does not keep a copy of transmitted data: when a packet
//! is lost, recovery hands its STREAM frames back and [`SendStream::on_lost`]
//! re-queues exactly the byte ranges that have not been acknowledged in
//! the meantime (data may have been acked on another path — duplication
//! and cross-path retransmission make that common).

use bytes::{Buf, Bytes};
use mpquic_util::RangeSet;
use mpquic_wire::StreamFrame;
use std::collections::{BTreeMap, VecDeque};

/// Stream identifier type. Stream IDs are chosen by the opener: clients
/// use odd IDs (1, 3, ...), servers even IDs (2, 4, ...); 0 is reserved.
pub type StreamId = u64;

/// Errors surfaced by stream machinery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamError {
    /// Peer exceeded the stream flow-control limit we advertised.
    FlowControlViolated,
    /// Peer moved the FIN offset or sent data past it.
    FinalSizeChanged,
    /// Write after `finish()`.
    WriteAfterFinish,
}

impl std::fmt::Display for StreamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StreamError::FlowControlViolated => write!(f, "stream flow control violated"),
            StreamError::FinalSizeChanged => write!(f, "stream final size changed"),
            StreamError::WriteAfterFinish => write!(f, "write after finish"),
        }
    }
}

impl std::error::Error for StreamError {}

/// Sending half of a stream.
#[derive(Debug)]
pub struct SendStream {
    id: StreamId,
    /// Data accepted from the application but not yet sent.
    pending: VecDeque<Bytes>,
    /// Total bytes accepted from the application.
    write_offset: u64,
    /// Offset of the first never-yet-sent byte.
    next_send_offset: u64,
    /// Stream length once `finish()` is called.
    fin_offset: Option<u64>,
    /// True once a frame with FIN has been handed out at least once.
    fin_sent: bool,
    /// True once the FIN has been acknowledged.
    fin_acked: bool,
    /// Byte ranges the peer has acknowledged.
    acked: RangeSet,
    /// Lost byte ranges awaiting retransmission (data re-queued by loss
    /// recovery, already trimmed against `acked`).
    retransmit: VecDeque<StreamFrame>,
    /// Peer's flow-control limit for this stream (max offset we may send).
    pub max_data_remote: u64,
    /// True if we reported being blocked since the last limit increase.
    blocked_reported: bool,
}

impl SendStream {
    /// Creates the sending half with the peer's initial stream window.
    pub fn new(id: StreamId, initial_max_data: u64) -> SendStream {
        SendStream {
            id,
            pending: VecDeque::new(),
            write_offset: 0,
            next_send_offset: 0,
            fin_offset: None,
            fin_sent: false,
            fin_acked: false,
            acked: RangeSet::new(),
            retransmit: VecDeque::new(),
            max_data_remote: initial_max_data,
            blocked_reported: false,
        }
    }

    /// Stream ID.
    pub fn id(&self) -> StreamId {
        self.id
    }

    /// Appends application data. Returns an error after `finish()`.
    pub fn write(&mut self, data: Bytes) -> Result<(), StreamError> {
        if self.fin_offset.is_some() {
            return Err(StreamError::WriteAfterFinish);
        }
        self.write_offset += data.len() as u64;
        if !data.is_empty() {
            self.pending.push_back(data);
        }
        Ok(())
    }

    /// Marks the end of the stream at the current write offset.
    pub fn finish(&mut self) {
        if self.fin_offset.is_none() {
            self.fin_offset = Some(self.write_offset);
        }
    }

    /// True once every byte (and the FIN) has been acknowledged.
    pub fn is_fully_acked(&self) -> bool {
        match self.fin_offset {
            Some(fin) => {
                self.fin_acked
                    && (fin == 0
                        || (self.acked.min() == Some(0)
                            && self.acked.max() == Some(fin - 1)
                            && self.acked.range_count() == 1))
            }
            None => false,
        }
    }

    /// True if the stream has anything to transmit right now (new data
    /// within the peer's limit, retransmissions, or an unsent FIN).
    pub fn wants_to_send(&self) -> bool {
        if !self.retransmit.is_empty() {
            return true;
        }
        let has_new = self.next_send_offset < self.write_offset
            && self.next_send_offset < self.max_data_remote;
        let fin_pending = self.fin_offset.is_some()
            && !self.fin_sent
            && self.next_send_offset >= self.write_offset;
        has_new || fin_pending
    }

    /// True if new data exists but the peer's stream limit blocks it.
    pub fn is_blocked(&self) -> bool {
        self.next_send_offset < self.write_offset
            && self.next_send_offset >= self.max_data_remote
            && self.retransmit.is_empty()
    }

    /// Reports whether a BLOCKED frame should be emitted (once per
    /// blocking episode).
    pub fn should_report_blocked(&mut self) -> bool {
        if self.is_blocked() && !self.blocked_reported {
            self.blocked_reported = true;
            true
        } else {
            false
        }
    }

    /// Raises the peer's stream flow-control limit.
    pub fn on_max_stream_data(&mut self, max_data: u64) {
        if max_data > self.max_data_remote {
            self.max_data_remote = max_data;
            self.blocked_reported = false;
        }
    }

    /// Produces the next frame to send, at most `max_payload` data bytes
    /// and at most `conn_credit` bytes of *new* (never-sent) data.
    ///
    /// Retransmissions are preferred and do not consume new connection
    /// credit (their offsets were already counted when first sent).
    /// Returns the frame and how many new-data bytes it consumed.
    pub fn next_frame(
        &mut self,
        max_payload: usize,
        conn_credit: u64,
    ) -> Option<(StreamFrame, u64)> {
        // 1. Retransmissions first.
        if let Some(mut frame) = self.retransmit.pop_front() {
            if frame.data.len() > max_payload && max_payload > 0 {
                // Split: send the head, re-queue the tail.
                let tail_data = frame.data.split_off(max_payload);
                let tail = StreamFrame {
                    stream_id: frame.stream_id,
                    offset: frame.offset + max_payload as u64,
                    data: tail_data,
                    fin: frame.fin,
                };
                frame.fin = false;
                self.retransmit.push_front(tail);
            } else if frame.data.len() > max_payload {
                self.retransmit.push_front(frame);
                return None;
            }
            if frame.fin {
                self.fin_sent = true;
            }
            return Some((frame, 0));
        }
        // 2. New data within stream and connection limits.
        let fc_limit = self
            .max_data_remote
            .min(self.next_send_offset.saturating_add(conn_credit));
        let sendable = self
            .write_offset
            .min(fc_limit)
            .saturating_sub(self.next_send_offset);
        let len = (sendable as usize).min(max_payload);
        let offset = self.next_send_offset;
        let mut data = Vec::with_capacity(len);
        let mut need = len;
        while need > 0 {
            let chunk = self.pending.front_mut().expect("pending data accounted");
            let take = need.min(chunk.len());
            data.extend_from_slice(&chunk[..take]);
            chunk.advance(take);
            if chunk.is_empty() {
                self.pending.pop_front();
            }
            need -= take;
        }
        self.next_send_offset += len as u64;
        // FIN rides on the frame that reaches the final offset.
        let fin = self.fin_offset == Some(self.next_send_offset)
            && self.next_send_offset >= self.write_offset
            && !self.fin_sent;
        if len == 0 && !fin {
            return None;
        }
        if fin {
            self.fin_sent = true;
        }
        Some((
            StreamFrame {
                stream_id: self.id,
                offset,
                data: Bytes::from(data),
                fin,
            },
            len as u64,
        ))
    }

    /// Records acknowledgement of a previously sent frame.
    pub fn on_acked(&mut self, offset: u64, len: u64, fin: bool) {
        if len > 0 {
            self.acked.insert_range(offset, offset + len - 1);
        }
        if fin {
            self.fin_acked = true;
        }
    }

    /// Re-queues a lost frame, minus any ranges acknowledged since (e.g.
    /// via a duplicate sent on another path).
    pub fn on_lost(&mut self, frame: StreamFrame) {
        let mut remaining = RangeSet::new();
        if !frame.data.is_empty() {
            remaining.insert_range(frame.offset, frame.offset + frame.data.len() as u64 - 1);
            for acked in self.acked.iter() {
                remaining.remove_range(*acked.start(), *acked.end());
            }
        }
        let fin_needed = frame.fin && !self.fin_acked;
        let mut fin_attached = false;
        let sub_ranges: Vec<(u64, u64)> =
            remaining.iter().map(|r| (*r.start(), *r.end())).collect();
        for (start, end) in &sub_ranges {
            let rel = (start - frame.offset) as usize;
            let len = (end - start + 1) as usize;
            let data = frame.data.slice(rel..rel + len);
            // FIN re-attaches to the final fragment.
            let fin = fin_needed && frame.offset + frame.data.len() as u64 == end + 1;
            fin_attached |= fin;
            self.retransmit.push_back(StreamFrame {
                stream_id: frame.stream_id,
                offset: *start,
                data,
                fin,
            });
        }
        if fin_needed && !fin_attached {
            // All data was acked elsewhere but the FIN still needs delivery.
            self.retransmit.push_back(StreamFrame {
                stream_id: frame.stream_id,
                offset: frame.offset + frame.data.len() as u64,
                data: Bytes::new(),
                fin: true,
            });
        }
    }

    /// Total bytes accepted from the application.
    pub fn write_offset(&self) -> u64 {
        self.write_offset
    }

    /// Offset of the first never-sent byte.
    pub fn next_send_offset(&self) -> u64 {
        self.next_send_offset
    }
}

/// Receiving half of a stream.
#[derive(Debug)]
pub struct RecvStream {
    id: StreamId,
    /// Out-of-order buffered chunks keyed by offset (non-overlapping).
    chunks: BTreeMap<u64, Bytes>,
    /// Byte ranges received so far.
    received: RangeSet,
    /// Next offset the application will read.
    read_offset: u64,
    /// Stream length, once the FIN was seen.
    fin_offset: Option<u64>,
    /// Our advertised flow-control limit (max offset the peer may send).
    max_data_local: u64,
    /// Flow-control window size used when extending the limit.
    window: u64,
    /// Limit value most recently advertised in a WINDOW_UPDATE.
    advertised: u64,
}

/// Outcome of receiving a STREAM frame.
#[derive(Debug, Default, PartialEq, Eq)]
pub struct RecvOutcome {
    /// Increase of the highest received offset (counted against the
    /// connection-level flow-control window).
    pub conn_window_consumed: u64,
    /// True if new in-order data became readable.
    pub readable: bool,
    /// True if this frame completed the stream (FIN present or already
    /// known and all bytes received).
    pub finished: bool,
}

impl RecvStream {
    /// Creates the receiving half with our advertised window.
    pub fn new(id: StreamId, window: u64) -> RecvStream {
        RecvStream {
            id,
            chunks: BTreeMap::new(),
            received: RangeSet::new(),
            read_offset: 0,
            fin_offset: None,
            max_data_local: window,
            window,
            advertised: window,
        }
    }

    /// Stream ID.
    pub fn id(&self) -> StreamId {
        self.id
    }

    /// Handles an incoming STREAM frame (duplicates and overlaps allowed —
    /// the duplication scheduler produces them by design).
    pub fn on_frame(&mut self, frame: &StreamFrame) -> Result<RecvOutcome, StreamError> {
        let mut outcome = RecvOutcome::default();
        let end = frame.offset + frame.data.len() as u64;
        if end > self.max_data_local {
            return Err(StreamError::FlowControlViolated);
        }
        if let Some(fin) = self.fin_offset {
            if end > fin || (frame.fin && end != fin) {
                return Err(StreamError::FinalSizeChanged);
            }
        }
        if frame.fin {
            if self.highest_received() > end {
                return Err(StreamError::FinalSizeChanged);
            }
            self.fin_offset = Some(end);
        }
        let prev_highest = self.highest_received();
        if !frame.data.is_empty() {
            // Insert only the sub-ranges not already received.
            let mut fresh = RangeSet::new();
            fresh.insert_range(frame.offset, end - 1);
            for have in self.received.iter() {
                fresh.remove_range(*have.start(), *have.end());
            }
            let new_ranges: Vec<(u64, u64)> =
                fresh.iter().map(|r| (*r.start(), *r.end())).collect();
            for (start, stop) in new_ranges {
                let rel = (start - frame.offset) as usize;
                let len = (stop - start + 1) as usize;
                self.chunks.insert(start, frame.data.slice(rel..rel + len));
                self.received.insert_range(start, stop);
            }
        }
        outcome.conn_window_consumed = self.highest_received().saturating_sub(prev_highest);
        outcome.readable = self
            .received
            .iter()
            .next()
            .is_some_and(|r| *r.start() <= self.read_offset && *r.end() >= self.read_offset);
        outcome.finished = self.is_complete();
        Ok(outcome)
    }

    /// Highest contiguous-or-not offset received.
    pub fn highest_received(&self) -> u64 {
        self.received.max().map_or(0, |m| m + 1)
    }

    /// Reads up to `max` in-order bytes, advancing the read offset.
    pub fn read(&mut self, max: usize) -> Option<Bytes> {
        let (&start, chunk) = self.chunks.iter().next()?;
        if start > self.read_offset {
            return None; // gap at the head
        }
        debug_assert_eq!(start, self.read_offset, "chunks must be disjoint");
        let take = chunk.len().min(max);
        let mut chunk = self.chunks.remove(&start).expect("just looked at it");
        let out = chunk.split_to(take);
        if !chunk.is_empty() {
            self.chunks.insert(start + take as u64, chunk);
        }
        self.read_offset += take as u64;
        Some(out)
    }

    /// Bytes the application has consumed.
    pub fn consumed(&self) -> u64 {
        self.read_offset
    }

    /// True once the FIN offset is known and all bytes up to it were read.
    pub fn is_finished(&self) -> bool {
        self.fin_offset == Some(self.read_offset) && self.chunks.is_empty()
    }

    /// True once all bytes up to the FIN have been *received* (possibly
    /// not yet read).
    pub fn is_complete(&self) -> bool {
        match self.fin_offset {
            Some(0) => true,
            Some(fin) => {
                self.read_offset == fin
                    || (self.received.min().is_some_and(|m| m <= self.read_offset)
                        && self.highest_received() == fin
                        && self.received.range_count() == 1)
            }
            None => false,
        }
    }

    /// If enough window has been consumed, returns the new limit to
    /// advertise in a WINDOW_UPDATE (gQUIC sends one when the unadvertised
    /// consumption exceeds half the window).
    pub fn poll_window_update(&mut self) -> Option<u64> {
        let target = self.read_offset + self.window;
        if target >= self.advertised + self.window / 2 {
            self.advertised = target;
            self.max_data_local = target;
            Some(target)
        } else {
            None
        }
    }

    /// Current advertised limit.
    pub fn max_data_local(&self) -> u64 {
        self.max_data_local
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(offset: u64, data: &[u8], fin: bool) -> StreamFrame {
        StreamFrame {
            stream_id: 1,
            offset,
            data: Bytes::from(data.to_vec()),
            fin,
        }
    }

    mod send {
        use super::*;

        #[test]
        fn write_and_frame_generation() {
            let mut s = SendStream::new(1, 1 << 20);
            s.write(Bytes::from_static(b"hello world")).unwrap();
            let (f, new_bytes) = s.next_frame(5, u64::MAX).unwrap();
            assert_eq!(
                (f.offset, &f.data[..], f.fin, new_bytes),
                (0, &b"hello"[..], false, 5)
            );
            let (f2, _) = s.next_frame(100, u64::MAX).unwrap();
            assert_eq!((f2.offset, &f2.data[..]), (5, &b" world"[..]));
            assert!(s.next_frame(100, u64::MAX).is_none());
        }

        #[test]
        fn fin_rides_last_frame() {
            let mut s = SendStream::new(1, 1 << 20);
            s.write(Bytes::from_static(b"abc")).unwrap();
            s.finish();
            let (f, _) = s.next_frame(100, u64::MAX).unwrap();
            assert!(f.fin);
            assert_eq!(&f.data[..], b"abc");
        }

        #[test]
        fn empty_fin_frame() {
            let mut s = SendStream::new(1, 1 << 20);
            s.finish();
            let (f, _) = s.next_frame(100, u64::MAX).unwrap();
            assert!(f.fin);
            assert!(f.data.is_empty());
            assert!(s.next_frame(100, u64::MAX).is_none());
        }

        #[test]
        fn write_after_finish_rejected() {
            let mut s = SendStream::new(1, 1 << 20);
            s.finish();
            assert_eq!(
                s.write(Bytes::from_static(b"x")),
                Err(StreamError::WriteAfterFinish)
            );
        }

        #[test]
        fn stream_flow_control_limits_new_data() {
            let mut s = SendStream::new(1, 4);
            s.write(Bytes::from_static(b"abcdefgh")).unwrap();
            let (f, _) = s.next_frame(100, u64::MAX).unwrap();
            assert_eq!(&f.data[..], b"abcd");
            assert!(s.next_frame(100, u64::MAX).is_none());
            assert!(s.is_blocked());
            assert!(s.should_report_blocked());
            assert!(!s.should_report_blocked(), "only reported once");
            s.on_max_stream_data(8);
            assert!(!s.is_blocked());
            let (f2, _) = s.next_frame(100, u64::MAX).unwrap();
            assert_eq!(&f2.data[..], b"efgh");
        }

        #[test]
        fn connection_credit_limits_new_data() {
            let mut s = SendStream::new(1, 1 << 20);
            s.write(Bytes::from_static(b"abcdefgh")).unwrap();
            let (f, consumed) = s.next_frame(100, 3).unwrap();
            assert_eq!(&f.data[..], b"abc");
            assert_eq!(consumed, 3);
        }

        #[test]
        fn lost_frame_requeued_and_preferred() {
            let mut s = SendStream::new(1, 1 << 20);
            s.write(Bytes::from(vec![7u8; 20])).unwrap();
            let (f, _) = s.next_frame(10, u64::MAX).unwrap();
            s.on_lost(f);
            // Retransmission comes before the remaining new data.
            let (rtx, new_bytes) = s.next_frame(100, u64::MAX).unwrap();
            assert_eq!((rtx.offset, rtx.data.len(), new_bytes), (0, 10, 0));
        }

        #[test]
        fn lost_frame_trimmed_by_acks() {
            let mut s = SendStream::new(1, 1 << 20);
            s.write(Bytes::from((0u8..20).collect::<Vec<u8>>()))
                .unwrap();
            let (f, _) = s.next_frame(20, u64::MAX).unwrap();
            // Bytes 5..=14 acked via a duplicate on another path.
            s.on_acked(5, 10, false);
            s.on_lost(f);
            let (a, _) = s.next_frame(100, u64::MAX).unwrap();
            let (b, _) = s.next_frame(100, u64::MAX).unwrap();
            assert_eq!((a.offset, a.data.len()), (0, 5));
            assert_eq!((b.offset, b.data.len()), (15, 5));
            assert_eq!(&b.data[..], &(15u8..20).collect::<Vec<u8>>()[..]);
        }

        #[test]
        fn fully_acked_lost_frame_vanishes() {
            let mut s = SendStream::new(1, 1 << 20);
            s.write(Bytes::from(vec![1u8; 10])).unwrap();
            let (f, _) = s.next_frame(10, u64::MAX).unwrap();
            s.on_acked(0, 10, false);
            s.on_lost(f);
            assert!(s.next_frame(100, u64::MAX).is_none());
        }

        #[test]
        fn lost_fin_reattached() {
            let mut s = SendStream::new(1, 1 << 20);
            s.write(Bytes::from(vec![2u8; 5])).unwrap();
            s.finish();
            let (f, _) = s.next_frame(10, u64::MAX).unwrap();
            assert!(f.fin);
            // Data acked but the FIN flag's packet was lost.
            s.on_acked(0, 5, false);
            s.on_lost(f);
            let (rtx, _) = s.next_frame(10, u64::MAX).unwrap();
            assert!(rtx.fin);
            assert!(rtx.data.is_empty());
            assert_eq!(rtx.offset, 5);
        }

        #[test]
        fn retransmission_split_respects_budget() {
            let mut s = SendStream::new(1, 1 << 20);
            s.write(Bytes::from(vec![3u8; 30])).unwrap();
            s.finish();
            let (f, _) = s.next_frame(30, u64::MAX).unwrap();
            assert!(f.fin);
            s.on_lost(f);
            let (head, _) = s.next_frame(12, u64::MAX).unwrap();
            assert_eq!((head.offset, head.data.len(), head.fin), (0, 12, false));
            let (tail, _) = s.next_frame(100, u64::MAX).unwrap();
            assert_eq!((tail.offset, tail.data.len(), tail.fin), (12, 18, true));
        }

        #[test]
        fn fully_acked_detection() {
            let mut s = SendStream::new(1, 1 << 20);
            s.write(Bytes::from(vec![4u8; 10])).unwrap();
            s.finish();
            let (f, _) = s.next_frame(100, u64::MAX).unwrap();
            assert!(!s.is_fully_acked());
            s.on_acked(f.offset, f.data.len() as u64, f.fin);
            assert!(s.is_fully_acked());
        }
    }

    mod recv {
        use super::*;

        #[test]
        fn in_order_read() {
            let mut s = RecvStream::new(1, 1 << 20);
            let out = s.on_frame(&frame(0, b"hello", false)).unwrap();
            assert!(out.readable);
            assert_eq!(out.conn_window_consumed, 5);
            assert_eq!(&s.read(100).unwrap()[..], b"hello");
            assert!(s.read(100).is_none());
        }

        #[test]
        fn out_of_order_buffered_until_gap_fills() {
            let mut s = RecvStream::new(1, 1 << 20);
            let out = s.on_frame(&frame(5, b"world", false)).unwrap();
            assert!(!out.readable);
            assert!(s.read(100).is_none());
            let out2 = s.on_frame(&frame(0, b"hello", false)).unwrap();
            assert!(out2.readable);
            assert_eq!(&s.read(100).unwrap()[..], b"hello");
            assert_eq!(&s.read(100).unwrap()[..], b"world");
        }

        #[test]
        fn duplicates_ignored() {
            let mut s = RecvStream::new(1, 1 << 20);
            s.on_frame(&frame(0, b"abcde", false)).unwrap();
            let out = s.on_frame(&frame(0, b"abcde", false)).unwrap();
            assert_eq!(out.conn_window_consumed, 0);
            assert_eq!(&s.read(100).unwrap()[..], b"abcde");
            assert!(s.read(100).is_none());
        }

        #[test]
        fn partial_overlap_takes_only_new_bytes() {
            let mut s = RecvStream::new(1, 1 << 20);
            s.on_frame(&frame(0, b"abcde", false)).unwrap();
            // Overlaps 3..5, extends to 8.
            let out = s.on_frame(&frame(3, b"XYZxy", false)).unwrap();
            assert_eq!(out.conn_window_consumed, 3);
            let mut all = Vec::new();
            while let Some(chunk) = s.read(100) {
                all.extend_from_slice(&chunk);
            }
            assert_eq!(&all, b"abcdeZxy");
        }

        #[test]
        fn fin_and_finished() {
            let mut s = RecvStream::new(1, 1 << 20);
            let out = s.on_frame(&frame(0, b"bye", true)).unwrap();
            assert!(out.finished);
            assert!(!s.is_finished(), "not finished until read");
            s.read(100).unwrap();
            assert!(s.is_finished());
        }

        #[test]
        fn fin_known_but_gaps_not_complete() {
            let mut s = RecvStream::new(1, 1 << 20);
            s.on_frame(&frame(5, b"tail", true)).unwrap();
            assert!(!s.is_complete());
            s.on_frame(&frame(0, b"heads", false)).unwrap();
            assert!(s.is_complete());
        }

        #[test]
        fn flow_control_enforced() {
            let mut s = RecvStream::new(1, 4);
            assert_eq!(
                s.on_frame(&frame(0, b"abcde", false)),
                Err(StreamError::FlowControlViolated)
            );
        }

        #[test]
        fn final_size_change_rejected() {
            let mut s = RecvStream::new(1, 1 << 20);
            s.on_frame(&frame(0, b"abc", true)).unwrap();
            assert_eq!(
                s.on_frame(&frame(0, b"abcd", false)),
                Err(StreamError::FinalSizeChanged)
            );
            assert_eq!(
                s.on_frame(&frame(0, b"ab", true)),
                Err(StreamError::FinalSizeChanged)
            );
        }

        #[test]
        fn data_beyond_fin_rejected() {
            let mut s = RecvStream::new(1, 1 << 20);
            s.on_frame(&frame(10, b"", true)).unwrap();
            assert_eq!(
                s.on_frame(&frame(8, b"abcd", false)),
                Err(StreamError::FinalSizeChanged)
            );
        }

        #[test]
        fn window_update_after_half_window_consumed() {
            let mut s = RecvStream::new(1, 100);
            assert!(s.poll_window_update().is_none());
            s.on_frame(&frame(0, &[0u8; 60], false)).unwrap();
            assert!(s.poll_window_update().is_none(), "received but not read");
            let mut got = 0;
            while got < 60 {
                got += s.read(100).map_or(0, |b| b.len());
            }
            // Consumed 60 >= window/2: new limit = 60 + 100.
            assert_eq!(s.poll_window_update(), Some(160));
            assert_eq!(s.max_data_local(), 160);
            assert!(s.poll_window_update().is_none(), "no duplicate update");
        }

        #[test]
        fn prop_reassembly_model_runner() {
            // see the proptest block below
        }

        #[test]
        fn read_respects_max() {
            let mut s = RecvStream::new(1, 1 << 20);
            s.on_frame(&frame(0, b"abcdef", false)).unwrap();
            assert_eq!(&s.read(2).unwrap()[..], b"ab");
            assert_eq!(&s.read(2).unwrap()[..], b"cd");
            assert_eq!(&s.read(100).unwrap()[..], b"ef");
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// A receive stream reassembles the exact original bytes no matter
        /// how STREAM frames are sliced, duplicated or reordered — the
        /// property multipath transfer rests on (frames arrive out of
        /// order across heterogeneous paths by design).
        #[test]
        fn prop_recv_reassembly_matches_original(
            len in 1usize..3000,
            cuts in proptest::collection::vec(0usize..3000, 0..25),
            swaps in proptest::collection::vec((any::<u16>(), any::<u16>()), 0..40),
            dup_count in 0usize..8,
        ) {
            let data: Vec<u8> = (0..len).map(|i| (i * 7 % 253) as u8).collect();
            let mut points: Vec<usize> = cuts.into_iter().map(|c| c % len).collect();
            points.push(0);
            points.push(len);
            points.sort_unstable();
            points.dedup();
            let mut frames: Vec<StreamFrame> = points
                .windows(2)
                .filter(|w| w[1] > w[0])
                .map(|w| StreamFrame {
                    stream_id: 1,
                    offset: w[0] as u64,
                    data: Bytes::copy_from_slice(&data[w[0]..w[1]]),
                    fin: w[1] == len,
                })
                .collect();
            for i in 0..dup_count.min(frames.len()) {
                frames.push(frames[i].clone());
            }
            for (a, b) in swaps {
                if frames.len() > 1 {
                    let x = (a as usize) % frames.len();
                    let y = (b as usize) % frames.len();
                    frames.swap(x, y);
                }
            }
            let mut stream = RecvStream::new(1, 1 << 20);
            let mut consumed_total = 0u64;
            for frame in &frames {
                let outcome = stream.on_frame(frame).expect("legal frames");
                consumed_total += outcome.conn_window_consumed;
            }
            // Connection-level accounting equals the stream length exactly
            // (duplicates must not double-count).
            prop_assert_eq!(consumed_total, len as u64);
            let mut got = Vec::new();
            while let Some(chunk) = stream.read(usize::MAX) {
                got.extend_from_slice(&chunk);
            }
            prop_assert_eq!(got, data);
            prop_assert!(stream.is_finished());
        }

        /// The send stream emits every byte exactly once across arbitrary
        /// per-frame payload budgets, and loss + retransmission (minus
        /// what got acked elsewhere) never duplicates delivered ranges.
        #[test]
        fn prop_send_stream_emits_each_byte_once(
            len in 1usize..2000,
            budgets in proptest::collection::vec(1usize..700, 1..60),
            lose_every in 2usize..5,
            ack_every in 2usize..4,
        ) {
            let data: Vec<u8> = (0..len).map(|i| (i * 13 % 251) as u8).collect();
            let mut stream = SendStream::new(1, 1 << 20);
            stream.write(Bytes::from(data.clone())).unwrap();
            stream.finish();
            let mut received: Vec<Option<u8>> = vec![None; len];
            let mut produced = Vec::new();
            let mut budget_iter = budgets.into_iter().cycle();
            let mut step = 0usize;
            let mut fin_seen = false;
            for _ in 0..10_000 {
                let Some((frame, _)) = stream.next_frame(budget_iter.next().unwrap(), u64::MAX)
                else {
                    break;
                };
                step += 1;
                if step.is_multiple_of(lose_every) {
                    // Frame lost; maybe a duplicate was acked elsewhere.
                    if step.is_multiple_of(ack_every) && !frame.data.is_empty() {
                        stream.on_acked(frame.offset, frame.data.len() as u64, frame.fin);
                        // ...and it was of course delivered there.
                        for (i, b) in frame.data.iter().enumerate() {
                            received[frame.offset as usize + i] = Some(*b);
                        }
                        fin_seen |= frame.fin;
                    }
                    stream.on_lost(frame);
                    continue;
                }
                // Delivered.
                for (i, b) in frame.data.iter().enumerate() {
                    let slot = &mut received[frame.offset as usize + i];
                    *slot = Some(*b);
                }
                fin_seen |= frame.fin;
                stream.on_acked(frame.offset, frame.data.len() as u64, frame.fin);
                produced.push(frame);
            }
            prop_assert!(fin_seen, "FIN must eventually be delivered");
            let assembled: Vec<u8> = received.into_iter().map(|b| b.expect("every byte delivered")).collect();
            prop_assert_eq!(assembled, data);
            prop_assert!(stream.is_fully_acked());
        }
    }
}
