//! End-to-end tests driving two [`Connection`]s through an in-memory
//! network with per-path latency, programmable loss and path kill
//! switches. This exercises the full protocol — handshake, streams,
//! multipath path management, scheduling, loss recovery and the
//! potentially-failed handover logic — without the full `mpquic-netsim`
//! substrate.

use bytes::Bytes;
use mpquic_core::{Config, Connection, Event, PathId, PathState, Transmit};
use mpquic_util::SimTime;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::net::SocketAddr;
use std::time::Duration;

const C0: &str = "10.0.0.1:50000";
const C1: &str = "10.1.0.1:50001";
const S0: &str = "10.0.1.1:4433";
const S1: &str = "10.1.1.1:4433";

fn addr(s: &str) -> SocketAddr {
    s.parse().unwrap()
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Dir {
    ClientToServer,
    ServerToClient,
}

/// A two-host in-memory network with per-link one-way delay.
struct Net {
    client: Connection,
    server: Connection,
    /// (deliver_at, seq, dir, transmit) — min-heap by time.
    in_flight: BinaryHeap<Reverse<(SimTime, u64, u8, TransmitKey)>>,
    payloads: Vec<Option<Transmit>>,
    now: SimTime,
    /// One-way delay for (client-addr, server-addr) pairs; default applies
    /// otherwise.
    path0_delay: Duration,
    path1_delay: Duration,
    /// Deterministic drop: datagram sequence numbers to drop.
    drop_seqs: Vec<u64>,
    /// Kill switches: when true, all datagrams on that path vanish.
    path0_dead: bool,
    path1_dead: bool,
    seq: u64,
    delivered: u64,
}

type TransmitKey = usize;

impl Net {
    fn new(client: Connection, server: Connection) -> Net {
        Net {
            client,
            server,
            in_flight: BinaryHeap::new(),
            payloads: Vec::new(),
            now: SimTime::ZERO,
            path0_delay: Duration::from_millis(20),
            path1_delay: Duration::from_millis(20),
            drop_seqs: Vec::new(),
            path0_dead: false,
            path1_dead: false,
            seq: 0,
            delivered: 0,
        }
    }

    fn is_path0(t: &Transmit) -> bool {
        t.local == addr(C0) || t.local == addr(S0) || t.remote == addr(S0) || t.remote == addr(C0)
    }

    fn pump(&mut self) {
        loop {
            let mut any = false;
            while let Some(t) = self.client.poll_transmit(self.now) {
                any = true;
                self.enqueue(Dir::ClientToServer, t);
            }
            while let Some(t) = self.server.poll_transmit(self.now) {
                any = true;
                self.enqueue(Dir::ServerToClient, t);
            }
            if !any {
                break;
            }
        }
    }

    fn enqueue(&mut self, dir: Dir, t: Transmit) {
        let seq = self.seq;
        self.seq += 1;
        let on_path0 = Net::is_path0(&t);
        if self.drop_seqs.contains(&seq) {
            return;
        }
        if (on_path0 && self.path0_dead) || (!on_path0 && self.path1_dead) {
            return;
        }
        let delay = if on_path0 {
            self.path0_delay
        } else {
            self.path1_delay
        };
        let key = self.payloads.len();
        self.payloads.push(Some(t));
        let dir_code = match dir {
            Dir::ClientToServer => 0,
            Dir::ServerToClient => 1,
        };
        self.in_flight
            .push(Reverse((self.now + delay, seq, dir_code, key)));
    }

    /// Advances simulated time by one event (delivery or timer). Returns
    /// false when nothing remains to do.
    fn step(&mut self) -> bool {
        self.pump();
        let next_delivery = self.in_flight.peek().map(|Reverse((t, ..))| *t);
        let next_timer = [self.client.next_timeout(), self.server.next_timeout()]
            .into_iter()
            .flatten()
            .min();
        let next = match (next_delivery, next_timer) {
            (Some(a), Some(b)) => a.min(b),
            (Some(a), None) => a,
            (None, Some(b)) => b,
            (None, None) => return false,
        };
        assert!(next >= self.now, "time went backwards");
        self.now = next;
        // Deliveries due now.
        while let Some(Reverse((t, _, dir_code, key))) = self.in_flight.peek().copied() {
            if t > self.now {
                break;
            }
            self.in_flight.pop();
            let transmit = self.payloads[key].take().expect("delivered once");
            self.delivered += 1;
            match dir_code {
                0 => self.server.handle_datagram(
                    self.now,
                    transmit.remote,
                    transmit.local,
                    &transmit.payload,
                ),
                _ => self.client.handle_datagram(
                    self.now,
                    transmit.remote,
                    transmit.local,
                    &transmit.payload,
                ),
            }
        }
        // Timers due now.
        if self.client.next_timeout().is_some_and(|t| t <= self.now) {
            self.client.on_timeout(self.now);
        }
        if self.server.next_timeout().is_some_and(|t| t <= self.now) {
            self.server.on_timeout(self.now);
        }
        true
    }

    fn run_until(&mut self, mut cond: impl FnMut(&mut Net) -> bool, limit: SimTime) -> bool {
        loop {
            if cond(self) {
                return true;
            }
            if self.now > limit || !self.step() {
                return cond(self);
            }
        }
    }
}

fn single_path_pair() -> Net {
    let client = Connection::client(Config::single_path(), vec![addr(C0)], 0, addr(S0), 1);
    let server = Connection::server(Config::single_path(), vec![addr(S0)], 2);
    Net::new(client, server)
}

fn multipath_pair() -> Net {
    let client = Connection::client(
        Config::multipath(),
        vec![addr(C0), addr(C1)],
        0,
        addr(S0),
        1,
    );
    let server = Connection::server(Config::multipath(), vec![addr(S0), addr(S1)], 2);
    Net::new(client, server)
}

fn drain_events(conn: &mut Connection) -> Vec<Event> {
    std::iter::from_fn(|| conn.poll_event()).collect()
}

#[test]
fn handshake_completes_in_one_rtt() {
    let mut net = single_path_pair();
    assert!(net.run_until(
        |n| n.client.is_established() && n.server.is_established(),
        SimTime::from_secs(5),
    ));
    // One-way delay 20 ms: server completes at 20 ms, client at 40 ms.
    assert_eq!(net.now, SimTime::from_millis(40));
    assert!(drain_events(&mut net.client).contains(&Event::HandshakeCompleted));
    assert!(drain_events(&mut net.server).contains(&Event::HandshakeCompleted));
}

#[test]
fn request_response_over_single_path() {
    let mut net = single_path_pair();
    let stream = net.client.open_stream();
    net.client
        .stream_write(stream, Bytes::from_static(b"GET /file"))
        .unwrap();
    net.client.stream_finish(stream);

    // Server echoes a 100 kB response when the request completes.
    let response = vec![0xABu8; 100_000];
    let mut responded = false;
    let resp = response.clone();
    assert!(net.run_until(
        move |n| {
            if !responded {
                let events = drain_events(&mut n.server);
                if events.iter().any(|e| matches!(e, Event::StreamComplete(_))) {
                    let mut req = Vec::new();
                    while let Some(chunk) = n.server.stream_read(stream, usize::MAX) {
                        req.extend_from_slice(&chunk);
                    }
                    assert_eq!(&req, b"GET /file");
                    n.server
                        .stream_write(stream, Bytes::from(resp.clone()))
                        .unwrap();
                    n.server.stream_finish(stream);
                    responded = true;
                }
            }
            n.client.stream_is_finished(stream) || {
                while n.client.stream_read(stream, usize::MAX).is_some() {}
                n.client.stream_is_finished(stream)
            }
        },
        SimTime::from_secs(30),
    ));
    assert_eq!(
        net.client.path_ids(),
        vec![PathId::INITIAL],
        "single path stays single"
    );
}

#[test]
fn multipath_opens_second_path_and_uses_it() {
    let mut net = multipath_pair();
    let stream = net.client.open_stream();
    // 2 MB client -> server transfer to give both paths work.
    net.client
        .stream_write(stream, Bytes::from(vec![7u8; 2_000_000]))
        .unwrap();
    net.client.stream_finish(stream);
    assert!(net.run_until(
        |n| {
            while n.server.stream_read(stream, usize::MAX).is_some() {}
            n.server.stream_is_finished(stream)
        },
        SimTime::from_secs(60),
    ));
    let ids = net.client.path_ids();
    assert!(
        ids.contains(&PathId(1)),
        "client should open path 1: {ids:?}"
    );
    let p1 = net.client.path(PathId(1)).unwrap();
    assert!(p1.bytes_sent > 0, "path 1 should carry data");
    let p0 = net.client.path(PathId::INITIAL).unwrap();
    assert!(p0.bytes_sent > 0, "path 0 should carry data");
    // Server saw both paths too.
    assert!(net.server.path_ids().contains(&PathId(1)));
}

#[test]
fn duplication_happens_while_rtt_unknown() {
    let mut net = multipath_pair();
    let stream = net.client.open_stream();
    net.client
        .stream_write(stream, Bytes::from(vec![9u8; 500_000]))
        .unwrap();
    net.client.stream_finish(stream);
    assert!(net.run_until(
        |n| {
            while n.server.stream_read(stream, usize::MAX).is_some() {}
            n.server.stream_is_finished(stream)
        },
        SimTime::from_secs(60),
    ));
    let stats = net.client.stats();
    assert!(
        stats.duplicated_stream_frames > 0,
        "fresh path should trigger the duplicate-while-unknown phase"
    );
}

#[test]
fn transfer_survives_random_loss() {
    let mut net = single_path_pair();
    // Drop a swath of datagrams mid-transfer.
    net.drop_seqs = (30..60).step_by(3).collect();
    let stream = net.client.open_stream();
    net.client
        .stream_write(stream, Bytes::from(vec![5u8; 300_000]))
        .unwrap();
    net.client.stream_finish(stream);
    assert!(net.run_until(
        |n| {
            while n.server.stream_read(stream, usize::MAX).is_some() {}
            n.server.stream_is_finished(stream)
        },
        SimTime::from_secs(60),
    ));
    assert!(
        net.client.stats().frames_retransmitted > 0,
        "losses must cause retransmissions"
    );
}

#[test]
fn handover_marks_path_potentially_failed_and_continues() {
    let mut net = multipath_pair();
    net.path1_delay = Duration::from_millis(30);
    let stream = net.client.open_stream();
    net.client
        .stream_write(stream, Bytes::from(vec![1u8; 200_000]))
        .unwrap();

    // Let both paths come up and move some data.
    assert!(net.run_until(
        |n| n
            .client
            .path(PathId(1))
            .is_some_and(|p| p.bytes_sent > 10_000),
        SimTime::from_secs(30),
    ));
    // Kill path 0 (the "bad WiFi").
    net.path0_dead = true;
    // Keep writing so there is always data to move.
    net.client
        .stream_write(stream, Bytes::from(vec![2u8; 500_000]))
        .unwrap();
    net.client.stream_finish(stream);
    assert!(
        net.run_until(
            |n| {
                while n.server.stream_read(stream, usize::MAX).is_some() {}
                n.server.stream_is_finished(stream)
            },
            SimTime::from_secs(120),
        ),
        "transfer must complete over the surviving path"
    );
    // The client noticed the failure.
    let p0 = net.client.path(PathId::INITIAL).unwrap();
    assert_eq!(p0.state, PathState::PotentiallyFailed);
    assert!(net.client.stats().rtos > 0);
    let events = drain_events(&mut net.client);
    assert!(events
        .iter()
        .any(|e| matches!(e, Event::PathPotentiallyFailed(p) if *p == PathId::INITIAL)));
}

#[test]
fn paths_frame_informs_peer_of_failure() {
    let mut net = multipath_pair();
    let stream = net.client.open_stream();
    net.client
        .stream_write(stream, Bytes::from(vec![1u8; 100_000]))
        .unwrap();
    assert!(net.run_until(
        |n| n.client.path(PathId(1)).is_some_and(|p| p.rtt_known()),
        SimTime::from_secs(30),
    ));
    net.path0_dead = true;
    net.client
        .stream_write(stream, Bytes::from(vec![2u8; 100_000]))
        .unwrap();
    net.client.stream_finish(stream);
    // The server learns about path 0's failure from the client's PATHS
    // frame without waiting for its own RTO on path 0.
    assert!(net.run_until(
        |n| {
            n.server.peer_paths().iter().any(|info| {
                info.path_id == PathId::INITIAL
                    && info.status == mpquic_wire::PathStatus::PotentiallyFailed
            })
        },
        SimTime::from_secs(60),
    ));
}

#[test]
fn close_propagates() {
    let mut net = single_path_pair();
    assert!(net.run_until(|n| n.client.is_established(), SimTime::from_secs(5)));
    net.client.close(0, "done");
    assert!(net.run_until(|n| n.server.is_closed(), SimTime::from_secs(5)));
    let events = drain_events(&mut net.server);
    assert!(events.iter().any(|e| matches!(
        e,
        Event::Closed { error_code: 0, reason } if reason == "done"
    )));
    assert!(net.client.is_closed());
}

#[test]
fn single_path_config_ignores_advertised_addresses() {
    // Client is single-path but server is multipath: the ADD_ADDRESS
    // frames must not cause extra paths.
    let client = Connection::client(
        Config::single_path(),
        vec![addr(C0), addr(C1)],
        0,
        addr(S0),
        1,
    );
    let server = Connection::server(Config::multipath(), vec![addr(S0), addr(S1)], 2);
    let mut net = Net::new(client, server);
    let stream = net.client.open_stream();
    net.client
        .stream_write(stream, Bytes::from(vec![3u8; 50_000]))
        .unwrap();
    net.client.stream_finish(stream);
    assert!(net.run_until(
        |n| {
            while n.server.stream_read(stream, usize::MAX).is_some() {}
            n.server.stream_is_finished(stream)
        },
        SimTime::from_secs(30),
    ));
    assert_eq!(net.client.path_ids(), vec![PathId::INITIAL]);
}

#[test]
fn worst_path_first_still_aggregates() {
    // Start the connection on the slower interface (index 1), as the
    // paper's experimental design varies.
    let client = Connection::client(
        Config::multipath(),
        vec![addr(C0), addr(C1)],
        1,
        addr(S1),
        1,
    );
    let server = Connection::server(Config::multipath(), vec![addr(S0), addr(S1)], 2);
    let mut net = Net::new(client, server);
    net.path1_delay = Duration::from_millis(80); // initial path slow
    let stream = net.client.open_stream();
    net.client
        .stream_write(stream, Bytes::from(vec![4u8; 1_000_000]))
        .unwrap();
    net.client.stream_finish(stream);
    assert!(net.run_until(
        |n| {
            while n.server.stream_read(stream, usize::MAX).is_some() {}
            n.server.stream_is_finished(stream)
        },
        SimTime::from_secs(120),
    ));
    // The second (fast) path must have been opened and used.
    let ids = net.client.path_ids();
    assert_eq!(ids.len(), 2, "paths: {ids:?}");
    let secondary = ids
        .iter()
        .find(|&&id| id != PathId::INITIAL)
        .copied()
        .unwrap();
    assert!(net.client.path(secondary).unwrap().bytes_sent > 0);
}

#[test]
fn large_ack_ranges_survive_heavy_loss() {
    let mut net = single_path_pair();
    // Periodic loss creating many ACK ranges.
    net.drop_seqs = (20..400).step_by(5).collect();
    let stream = net.client.open_stream();
    net.client
        .stream_write(stream, Bytes::from(vec![6u8; 500_000]))
        .unwrap();
    net.client.stream_finish(stream);
    assert!(net.run_until(
        |n| {
            while n.server.stream_read(stream, usize::MAX).is_some() {}
            n.server.stream_is_finished(stream)
        },
        SimTime::from_secs(120),
    ));
}

#[test]
fn lost_frames_are_retransmitted_on_the_other_path() {
    // Frames are independent of packets: data lost on path 0 may be
    // retransmitted on path 1 (unlike MPTCP's same-subflow rule).
    let mut net = multipath_pair();
    let stream = net.client.open_stream();
    net.client
        .stream_write(stream, Bytes::from(vec![0xAAu8; 400_000]))
        .unwrap();
    net.client.stream_finish(stream);
    // Warm up both paths.
    assert!(net.run_until(
        |n| {
            n.client.path(PathId(1)).is_some_and(|p| p.rtt_known())
                && n.client
                    .path(PathId::INITIAL)
                    .is_some_and(|p| p.rtt_known())
        },
        SimTime::from_secs(30),
    ));
    // Kill path 0: its in-flight data is lost; recovery must finish the
    // transfer exclusively over path 1.
    net.path0_dead = true;
    let sent_on_p1_before = net.client.path(PathId(1)).unwrap().bytes_sent;
    assert!(net.run_until(
        |n| {
            while n.server.stream_read(stream, usize::MAX).is_some() {}
            n.server.stream_is_finished(stream)
        },
        SimTime::from_secs(300),
    ));
    let p1 = net.client.path(PathId(1)).unwrap();
    assert!(
        p1.bytes_sent > sent_on_p1_before,
        "path 1 must carry the retransmissions"
    );
    assert!(net.client.stats().frames_retransmitted > 0);
}

#[test]
fn data_acked_via_duplicate_is_not_retransmitted() {
    // The duplicate-while-unknown phase sends copies on two paths; once
    // either copy is acked, losing the other must not trigger a data
    // retransmission (SendStream trims against acked ranges).
    let mut net = multipath_pair();
    // Make path 1 slow so duplicated copies race visibly.
    net.path1_delay = Duration::from_millis(150);
    let stream = net.client.open_stream();
    net.client
        .stream_write(stream, Bytes::from(vec![0x55u8; 60_000]))
        .unwrap();
    net.client.stream_finish(stream);
    assert!(net.run_until(
        |n| {
            while n.server.stream_read(stream, usize::MAX).is_some() {}
            n.server.stream_is_finished(stream)
        },
        SimTime::from_secs(60),
    ));
    let stats = net.client.stats();
    assert!(
        stats.duplicated_stream_frames > 0,
        "unknown-RTT phase should have duplicated frames"
    );
    // No losses occurred, so every "retransmission" would be pure waste;
    // allow a tiny number (frames declared lost by reordering heuristics)
    // but not wholesale re-sending of the duplicated volume.
    assert!(
        stats.frames_retransmitted <= stats.duplicated_stream_frames,
        "retransmissions {} should not exceed duplicates {}",
        stats.frames_retransmitted,
        stats.duplicated_stream_frames
    );
}

#[test]
fn multiple_streams_multiplex_over_multiple_paths() {
    // "MPQUIC can spread multiple data streams over multiple paths by
    // design" — three concurrent streams, both paths, exact delivery.
    let mut net = multipath_pair();
    let streams: Vec<_> = (0..3).map(|_| net.client.open_stream()).collect();
    for (i, &stream) in streams.iter().enumerate() {
        net.client
            .stream_write(stream, Bytes::from(vec![i as u8 + 1; 150_000 * (i + 1)]))
            .unwrap();
        net.client.stream_finish(stream);
    }
    let mut received = vec![Vec::new(); 3];
    assert!(net.run_until(
        |n| {
            for (i, &stream) in streams.iter().enumerate() {
                while let Some(chunk) = n.server.stream_read(stream, usize::MAX) {
                    received[i].extend_from_slice(&chunk);
                }
            }
            streams.iter().all(|&s| n.server.stream_is_finished(s))
        },
        SimTime::from_secs(120),
    ));
    for (i, data) in received.iter().enumerate() {
        assert_eq!(data.len(), 150_000 * (i + 1), "stream {i} length");
        assert!(data.iter().all(|&b| b == i as u8 + 1), "stream {i} content");
    }
    // Both paths carried traffic.
    assert!(net.client.path(PathId::INITIAL).unwrap().bytes_sent > 50_000);
    assert!(net.client.path(PathId(1)).unwrap().bytes_sent > 50_000);
}

#[test]
fn tight_connection_window_still_completes_via_window_updates() {
    // A 64 kB connection window forces continuous WINDOW_UPDATE traffic;
    // the transfer must still complete at full correctness.
    let mut config = Config::multipath();
    config.conn_recv_window = 64 << 10;
    config.stream_recv_window = 64 << 10;
    let client = Connection::client(config.clone(), vec![addr(C0), addr(C1)], 0, addr(S0), 1);
    let server = Connection::server(config, vec![addr(S0), addr(S1)], 2);
    let mut net = Net::new(client, server);
    let stream = net.client.open_stream();
    net.client
        .stream_write(
            stream,
            Bytes::from((0..1_000_000u32).map(|i| i as u8).collect::<Vec<u8>>()),
        )
        .unwrap();
    net.client.stream_finish(stream);
    let mut received = Vec::new();
    assert!(net.run_until(
        |n| {
            while let Some(chunk) = n.server.stream_read(stream, usize::MAX) {
                received.extend_from_slice(&chunk);
            }
            n.server.stream_is_finished(stream)
        },
        SimTime::from_secs(120),
    ));
    assert_eq!(received.len(), 1_000_000);
    assert!(
        received.iter().enumerate().all(|(i, &b)| b == i as u8),
        "content integrity under window churn"
    );
}

#[test]
fn paths_frame_shares_rtt_estimates() {
    let mut net = multipath_pair();
    net.path1_delay = Duration::from_millis(60);
    let stream = net.client.open_stream();
    net.client
        .stream_write(stream, Bytes::from(vec![1u8; 300_000]))
        .unwrap();
    // Warm both paths, then force a PATHS frame via an RTO on path 0.
    assert!(net.run_until(
        |n| n.client.path(PathId(1)).is_some_and(|p| p.rtt_known()),
        SimTime::from_secs(30),
    ));
    net.path0_dead = true;
    net.client.stream_finish(stream);
    assert!(net.run_until(
        |n| !n.server.peer_paths().is_empty(),
        SimTime::from_secs(60),
    ));
    let infos = net.server.peer_paths();
    // The client's srtt estimates travelled to the server.
    let p1 = infos
        .iter()
        .find(|i| i.path_id == PathId(1))
        .expect("path 1 entry");
    let reported_ms = p1.srtt_micros as f64 / 1000.0;
    assert!(
        (90.0..200.0).contains(&reported_ms),
        "path 1 srtt ≈ 120 ms (2×60 one-way), reported {reported_ms:.1}"
    );
}

#[test]
fn qlog_records_the_connection_story() {
    let mut config = Config::multipath();
    config.enable_qlog = true;
    let client = Connection::client(config.clone(), vec![addr(C0), addr(C1)], 0, addr(S0), 1);
    let server = Connection::server(config, vec![addr(S0), addr(S1)], 2);
    let mut net = Net::new(client, server);
    let stream = net.client.open_stream();
    net.client
        .stream_write(stream, Bytes::from(vec![3u8; 200_000]))
        .unwrap();
    net.client.stream_finish(stream);
    // A few mid-stream drops so loss events appear in the log.
    net.drop_seqs = (40..60).step_by(4).collect();
    assert!(net.run_until(
        |n| {
            while n.server.stream_read(stream, usize::MAX).is_some() {}
            n.server.stream_is_finished(stream)
        },
        SimTime::from_secs(60),
    ));
    let qlog = net.client.qlog();
    assert!(!qlog.is_empty());
    use mpquic_core::QlogEvent;
    let sent = qlog
        .events()
        .iter()
        .filter(|e| matches!(e, QlogEvent::PacketSent { .. }))
        .count();
    let received = qlog
        .events()
        .iter()
        .filter(|e| matches!(e, QlogEvent::PacketReceived { .. }))
        .count();
    assert_eq!(sent as u64, net.client.stats().packets_sent);
    assert_eq!(received as u64, net.client.stats().packets_received);
    assert!(
        qlog.events()
            .iter()
            .any(|e| matches!(e, QlogEvent::PacketsLost { .. })),
        "drops must surface as loss events"
    );
    assert!(qlog.bytes_sent_on(PathId::INITIAL) > 0);
    assert!(qlog.bytes_sent_on(PathId(1)) > 0);
    // JSON export sanity.
    let json = qlog.to_json_lines();
    assert!(json.lines().count() == qlog.len());
    // The default config records nothing.
    let plain = Connection::client(Config::multipath(), vec![addr(C0)], 0, addr(S0), 9);
    assert!(plain.qlog().is_empty());
}
