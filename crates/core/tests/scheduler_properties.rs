//! Property tests for the packet scheduler (§3, *Packet Scheduling*).
//!
//! Each property is checked over a few thousand randomly generated path
//! sets, driven by the repo's deterministic RNG so failures reproduce
//! exactly from the printed case (and the tests run with no external
//! test-framework dependency).
//!
//! 1. A usable path with unknown RTT always wins, and data is duplicated
//!    onto the best *known* path whenever one exists.
//! 2. With every RTT known, `select_for_data` picks the lowest-sRTT path
//!    among those with congestion-window space, never a window-full one.
//! 3. Control frames may ride any active path: `select_for_control`
//!    returns a usable path regardless of congestion window, and every
//!    usable path is reachable as some path set's choice.

use mpquic_core::scheduler::{PathView, Scheduler};
use mpquic_core::{PathId, SchedulerKind};
use mpquic_util::DetRng;
use std::time::Duration;

const CASES: usize = 4_000;
const MIN_SPACE: u64 = 1_350;

/// Draws a random path set: 1–6 paths with random sRTTs (distinct, so
/// "the lowest-RTT path" is unambiguous), random window headroom either
/// side of `MIN_SPACE`, and random usable/known flags.
fn random_paths(rng: &mut DetRng, all_known: bool, all_usable: bool) -> Vec<PathView> {
    let n = rng.range_u64(1, 7) as usize;
    let mut srtts: Vec<u64> = Vec::with_capacity(n);
    while srtts.len() < n {
        let ms = rng.range_u64(1, 500);
        if !srtts.contains(&ms) {
            srtts.push(ms);
        }
    }
    (0..n)
        .map(|i| PathView {
            id: PathId(i as u32),
            srtt: Duration::from_millis(srtts[i]),
            rtt_known: all_known || rng.bool(0.8),
            cwnd_available: if rng.bool(0.7) {
                rng.range_u64(MIN_SPACE, 1 << 20)
            } else {
                rng.next_below(MIN_SPACE)
            },
            bytes_in_flight: rng.next_below(1 << 16),
            usable: all_usable || rng.bool(0.8),
        })
        .collect()
}

fn eligible(paths: &[PathView]) -> Vec<&PathView> {
    let usable: Vec<&PathView> = paths
        .iter()
        .filter(|p| p.usable && p.cwnd_available >= MIN_SPACE)
        .collect();
    if !usable.is_empty() {
        return usable;
    }
    // The scheduler's documented fallback: rather than stalling, a
    // potentially-failed path with window space may be used.
    paths
        .iter()
        .filter(|p| p.cwnd_available >= MIN_SPACE)
        .collect()
}

#[test]
fn unknown_rtt_path_always_triggers_duplication() {
    let mut rng = DetRng::new(0x5EED_0001);
    for case in 0..CASES {
        let paths = random_paths(&mut rng, false, false);
        let mut scheduler = Scheduler::new(SchedulerKind::LowestRtt);
        let Some(decision) = scheduler.select_for_data(&paths, MIN_SPACE) else {
            assert!(
                eligible(&paths).is_empty(),
                "case {case}: scheduler stalled despite eligible paths {paths:?}"
            );
            continue;
        };
        let candidates = eligible(&paths);
        let picked = candidates
            .iter()
            .find(|p| p.id == decision.path)
            .unwrap_or_else(|| panic!("case {case}: picked ineligible path {paths:?}"));
        let unknown_exists = candidates.iter().any(|p| !p.rtt_known);
        if unknown_exists {
            // An unknown-RTT path is always exploited immediately ...
            assert!(
                !picked.rtt_known,
                "case {case}: unknown-RTT candidate exists but a known path \
                 was picked: {decision:?} from {paths:?}"
            );
            // ... and duplicated onto the best known candidate, iff any.
            let best_known: Vec<PathId> = candidates
                .iter()
                .filter(|p| p.rtt_known)
                .min_by_key(|p| p.srtt)
                .map(|p| p.id)
                .into_iter()
                .collect();
            assert_eq!(
                decision.duplicate_on, best_known,
                "case {case}: duplicate target is the lowest-sRTT known \
                 candidate: {decision:?} from {paths:?}"
            );
            assert!(
                !decision.duplicate_on.contains(&decision.path),
                "case {case}: a packet must not duplicate onto its own path"
            );
        } else {
            assert!(
                decision.duplicate_on.is_empty(),
                "case {case}: no unknown-RTT path, so no duplication: {paths:?}"
            );
        }
    }
}

#[test]
fn data_goes_to_lowest_srtt_path_with_window_space() {
    let mut rng = DetRng::new(0x5EED_0002);
    for case in 0..CASES {
        // All RTTs known: the pure lowest-RTT regime.
        let paths = random_paths(&mut rng, true, false);
        let mut scheduler = Scheduler::new(SchedulerKind::LowestRtt);
        let decision = scheduler.select_for_data(&paths, MIN_SPACE);
        let candidates = eligible(&paths);
        match decision {
            None => assert!(
                candidates.is_empty(),
                "case {case}: scheduler stalled despite eligible paths {paths:?}"
            ),
            Some(decision) => {
                assert!(decision.duplicate_on.is_empty());
                let best = candidates
                    .iter()
                    .min_by_key(|p| p.srtt)
                    .expect("eligible set nonempty when a decision exists");
                assert_eq!(
                    decision.path, best.id,
                    "case {case}: expected the lowest-sRTT eligible path \
                     from {paths:?}"
                );
                // In particular: never a window-full path.
                let picked = paths.iter().find(|p| p.id == decision.path).unwrap();
                assert!(
                    picked.cwnd_available >= MIN_SPACE,
                    "case {case}: picked a window-full path: {paths:?}"
                );
            }
        }
    }
}

#[test]
fn control_frames_ride_any_active_path() {
    let mut rng = DetRng::new(0x5EED_0003);
    let mut chosen_without_window_space = 0usize;
    for case in 0..CASES {
        let paths = random_paths(&mut rng, false, false);
        let scheduler = Scheduler::new(SchedulerKind::LowestRtt);
        match scheduler.select_for_control(&paths) {
            // `None` only when there is literally no path: a connection
            // whose every path is potentially failed still needs to move
            // its ACKs/PATHS frames somewhere (the documented fallback).
            None => assert!(
                paths.is_empty(),
                "case {case}: control traffic refused despite paths \
                 existing in {paths:?}"
            ),
            Some(id) => {
                let picked = paths.iter().find(|p| p.id == id).unwrap();
                // A usable path always wins over the fallback; the
                // fallback itself may be any (potentially failed) path.
                assert!(
                    picked.usable || paths.iter().all(|p| !p.usable),
                    "case {case}: control frame scheduled on an unusable \
                     path while a usable one existed: {paths:?}"
                );
                if picked.cwnd_available < MIN_SPACE {
                    chosen_without_window_space += 1;
                }
            }
        }
    }
    // The property "window space is not required" must actually have been
    // exercised, not vacuously true.
    assert!(
        chosen_without_window_space > 0,
        "generator never produced a control pick on a window-full path"
    );
}

#[test]
fn every_usable_path_can_carry_control_frames() {
    // `select_for_control` is deterministic per path set (lowest sRTT),
    // but "control frames may ride any path" means: for every usable path
    // there is a state in which it is the choice. Demonstrate that by
    // construction for each path index in turn.
    for winner in 0..4u32 {
        let paths: Vec<PathView> = (0..4)
            .map(|i| PathView {
                id: PathId(i),
                // Give the designated winner the lowest sRTT, everyone
                // else progressively slower ones.
                srtt: Duration::from_millis(if i == winner { 1 } else { 10 + u64::from(i) }),
                rtt_known: true,
                cwnd_available: 0, // window-full: irrelevant for control
                bytes_in_flight: 0,
                usable: true,
            })
            .collect();
        let scheduler = Scheduler::new(SchedulerKind::LowestRtt);
        assert_eq!(scheduler.select_for_control(&paths), Some(PathId(winner)));
    }
}

#[test]
fn redundant_policy_duplicates_onto_every_other_eligible_path() {
    // The redundant policy's contract: every data frame goes out on the
    // chosen path AND is duplicated onto every other eligible path, so
    // the union {chosen} ∪ duplicate_on covers the whole eligible set
    // exactly once.
    let mut rng = DetRng::new(0x5EED_0004);
    for case in 0..CASES {
        let paths = random_paths(&mut rng, false, false);
        let mut scheduler = Scheduler::new(SchedulerKind::Redundant);
        let Some(decision) = scheduler.select_for_data(&paths, MIN_SPACE) else {
            assert!(
                eligible(&paths).is_empty(),
                "case {case}: redundant policy stalled despite eligible \
                 paths {paths:?}"
            );
            continue;
        };
        let mut covered: Vec<PathId> = decision.duplicate_on.clone();
        covered.push(decision.path);
        covered.sort_by_key(|p| p.0);
        let mut expected: Vec<PathId> = eligible(&paths).iter().map(|p| p.id).collect();
        expected.sort_by_key(|p| p.0);
        covered.dedup();
        assert_eq!(
            covered, expected,
            "case {case}: redundant coverage must equal the eligible set \
             exactly: {decision:?} from {paths:?}"
        );
        assert!(
            !decision.duplicate_on.contains(&decision.path),
            "case {case}: a frame must not duplicate onto its own path"
        );
    }
}
