//! Property test: the batched egress path is observationally identical
//! to the one-shot path.
//!
//! [`Connection::poll_transmit_batch`] exists purely as a faster way to
//! drain the same packetizer — pool-backed buffers and GSO-shaped
//! coalescing must never change *what* goes on the wire, only how it is
//! handed to the sockets. This test runs mirrored client/server pairs
//! (same seeds, same configuration, same application schedule) through a
//! deterministic lossless in-memory network, draining one run with a
//! `poll_transmit` loop and its twin with `poll_transmit_batch` +
//! [`TransmitQueue`], and asserts the flattened datagram sequences are
//! byte-for-byte equal.
//!
//! Cases are generated with the repo's deterministic RNG
//! ([`mpquic_util::DetRng`]) so any failure reproduces exactly from the
//! printed case, in the same style as `scheduler_properties.rs`.

use bytes::Bytes;
use mpquic_core::{Config, Connection, TransmitQueue};
use mpquic_util::{DetRng, SimTime};
use std::net::SocketAddr;
use std::time::Duration;

const CASES: u64 = 24;
/// Queue sized small on purpose: forces the batch drain to wrap around
/// `has_capacity` several times per pump, exercising the refill path.
const QUEUE_SEGMENTS: usize = 16;
const QUEUE_BUF_CAPACITY: usize = 2048;

fn addr(s: &str) -> SocketAddr {
    s.parse().unwrap()
}

/// One flattened wire datagram: addressing plus payload bytes.
type Datagram = (SocketAddr, SocketAddr, Vec<u8>);

#[derive(Clone, Copy, PartialEq, Eq)]
enum Drain {
    OneShot,
    Batched,
}

/// Drains everything the connection wants to send right now into
/// per-datagram tuples. For the batched mode, GSO trains are flattened
/// back into individual datagrams via [`mpquic_core::Transmit::segments`]
/// so the two modes are compared on wire contents, not on framing of the
/// hand-off.
fn drain(
    conn: &mut Connection,
    now: SimTime,
    mode: Drain,
    queue: &mut TransmitQueue,
) -> Vec<Datagram> {
    let mut out = Vec::new();
    match mode {
        Drain::OneShot => {
            while let Some(t) = conn.poll_transmit(now) {
                out.push((t.local, t.remote, t.payload));
            }
        }
        Drain::Batched => loop {
            let produced = conn.poll_transmit_batch(now, queue);
            while let Some(t) = queue.pop() {
                for seg in t.segments() {
                    out.push((t.local, t.remote, seg.to_vec()));
                }
                queue.recycle(t.payload);
            }
            if produced == 0 {
                break;
            }
        },
    }
    out
}

/// Runs one complete transfer scenario and returns the full ordered
/// wire trace (client and server datagrams interleaved per pump round).
fn run_scenario(
    seed: u64,
    multipath: bool,
    size: usize,
    chunk: usize,
    mode: Drain,
) -> Vec<Datagram> {
    let config = if multipath {
        Config::builder().multipath()
    } else {
        Config::builder().single_path()
    }
    .build()
    .expect("preset configurations are valid");

    let client_addrs = if multipath {
        vec![addr("10.0.0.1:50000"), addr("10.1.0.1:50001")]
    } else {
        vec![addr("10.0.0.1:50000")]
    };
    let server_addrs = if multipath {
        vec![addr("10.0.1.1:4433"), addr("10.1.1.1:4433")]
    } else {
        vec![addr("10.0.1.1:4433")]
    };

    let mut client =
        Connection::client(config.clone(), client_addrs, 0, addr("10.0.1.1:4433"), seed);
    let mut server = Connection::server(config, server_addrs, seed ^ 0x9e37_79b9);
    let mut queue = TransmitQueue::new(QUEUE_SEGMENTS, QUEUE_BUF_CAPACITY);

    let stream = client.open_stream();
    let payload: Vec<u8> = (0..size).map(|i| (i * 31 % 251) as u8).collect();
    let mut written = 0;
    let mut trace = Vec::new();
    let mut now = SimTime::ZERO;
    let delay = Duration::from_millis(5);

    for _round in 0..10_000 {
        // Application schedule: feed the stream in fixed chunks as soon
        // as the handshake completes (identical in both modes).
        if client.is_established() && written < size {
            let end = (written + chunk).min(size);
            let _ = client
                .stream(stream)
                .write(Bytes::copy_from_slice(&payload[written..end]));
            written = end;
            if written == size {
                client.stream(stream).finish();
            }
        }

        let from_client = drain(&mut client, now, mode, &mut queue);
        let from_server = drain(&mut server, now, mode, &mut queue);
        let quiet = from_client.is_empty() && from_server.is_empty();
        trace.extend(from_client.iter().cloned());
        trace.extend(from_server.iter().cloned());

        if quiet {
            if written == size && client.stream_fully_acked(stream) {
                break;
            }
            // Nothing in flight: jump to the earliest protocol deadline.
            let next = [client.next_timeout(), server.next_timeout()]
                .into_iter()
                .flatten()
                .min();
            let Some(next) = next else { break };
            now = now.max(next);
            if client.next_timeout().is_some_and(|t| t <= now) {
                client.on_timeout(now);
            }
            if server.next_timeout().is_some_and(|t| t <= now) {
                server.on_timeout(now);
            }
            continue;
        }

        // Lossless in-order delivery after a fixed one-way delay.
        now += delay;
        for (local, remote, bytes) in &from_client {
            server.handle_datagram(now, *remote, *local, bytes);
        }
        for (local, remote, bytes) in &from_server {
            client.handle_datagram(now, *remote, *local, bytes);
        }
    }

    assert!(
        written == size && client.stream_fully_acked(stream),
        "scenario did not complete: seed {seed}, multipath {multipath}, \
         size {size}, chunk {chunk}, written {written}"
    );
    trace
}

#[test]
fn batched_egress_equals_one_shot_egress() {
    let mut rng = DetRng::new(0xba7c4);
    for case in 0..CASES {
        let multipath = rng.bool(0.5);
        let size = rng.range_u64(1, 64 * 1024) as usize;
        let chunk = rng.range_u64(256, 8 * 1024) as usize;
        let seed = rng.next_u64();

        let one_shot = run_scenario(seed, multipath, size, chunk, Drain::OneShot);
        let batched = run_scenario(seed, multipath, size, chunk, Drain::Batched);

        assert_eq!(
            one_shot.len(),
            batched.len(),
            "case {case}: datagram counts diverge (seed {seed}, multipath \
             {multipath}, size {size}, chunk {chunk})"
        );
        for (i, (a, b)) in one_shot.iter().zip(batched.iter()).enumerate() {
            assert_eq!(
                a, b,
                "case {case}: datagram {i} diverges (seed {seed}, multipath \
                 {multipath}, size {size}, chunk {chunk})"
            );
        }
    }
}

/// The GSO invariant the io layer depends on: within one coalesced
/// train every segment except the last has exactly `segment_size`
/// bytes, and none exceeds it.
#[test]
fn coalesced_trains_have_uniform_segments() {
    let config = Config::builder()
        .multipath()
        .build()
        .expect("preset configurations are valid");
    let mut client = Connection::client(
        config.clone(),
        vec![addr("10.0.0.1:50000"), addr("10.1.0.1:50001")],
        0,
        addr("10.0.1.1:4433"),
        7,
    );
    let mut server = Connection::server(
        config,
        vec![addr("10.0.1.1:4433"), addr("10.1.1.1:4433")],
        8,
    );
    let mut queue = TransmitQueue::new(64, 2048);

    let stream = client.open_stream();
    let mut now = SimTime::ZERO;
    let mut wrote = false;
    let mut checked_trains = 0;
    for _ in 0..2_000 {
        if client.is_established() && !wrote {
            let bulk = vec![0xa5u8; 48 * 1024];
            let _ = client.stream(stream).write(Bytes::from(bulk));
            client.stream(stream).finish();
            wrote = true;
        }
        let mut round = Vec::new();
        for conn in [&mut client, &mut server] {
            loop {
                let produced = conn.poll_transmit_batch(now, &mut queue);
                while let Some(t) = queue.pop() {
                    if let Some(seg) = t.segment_size {
                        let lens: Vec<usize> = t.segments().map(<[u8]>::len).collect();
                        for len in &lens[..lens.len().saturating_sub(1)] {
                            assert_eq!(*len, seg, "non-final segment not full-sized");
                        }
                        assert!(lens.last().is_some_and(|l| *l <= seg && *l > 0));
                        checked_trains += 1;
                    }
                    round.push((t.local, t.remote, t.payload.clone(), t.segment_size));
                    queue.recycle(t.payload);
                }
                if produced == 0 {
                    break;
                }
            }
        }
        if round.is_empty() {
            if wrote && client.stream_fully_acked(stream) {
                break;
            }
            let next = [client.next_timeout(), server.next_timeout()]
                .into_iter()
                .flatten()
                .min();
            let Some(next) = next else { break };
            now = now.max(next);
            if client.next_timeout().is_some_and(|t| t <= now) {
                client.on_timeout(now);
            }
            if server.next_timeout().is_some_and(|t| t <= now) {
                server.on_timeout(now);
            }
            continue;
        }
        now += Duration::from_millis(5);
        for (local, remote, bytes, seg) in &round {
            // Trains are delivered segment by segment, exactly as the
            // socket layer fans them out. Server sockets sit on :4433.
            let to_server = local.port() != 4433;
            for segment in chunks_of(bytes, *seg) {
                if to_server {
                    server.handle_datagram(now, *remote, *local, segment);
                } else {
                    client.handle_datagram(now, *remote, *local, segment);
                }
            }
        }
    }
    assert!(
        checked_trains > 0,
        "bulk multipath transfer never produced a coalesced train"
    );
}

/// Splits a train payload for delivery; with `None` the payload is one
/// datagram (trains were already flattened before this point).
fn chunks_of(bytes: &[u8], seg: Option<usize>) -> Vec<&[u8]> {
    match seg {
        Some(s) if s > 0 => bytes.chunks(s).collect(),
        _ => vec![bytes],
    }
}
