//! Regression tests for the protocol invariants that `cargo xtask lint`
//! and `mpquic_core::invariant` guard (DESIGN.md §9):
//!
//! * an ACK frame never carries more than `MAX_ACK_RANGES` (256) ranges —
//!   capped at build time, rejected at decode time;
//! * per-path packet numbers are never reused, even across retransmission
//!   and RTO storms — retransmitted *frames* get fresh packet numbers in
//!   the path's space (the paper's design: frames, not packets, are
//!   retransmitted).

use bytes::{Bytes, BytesMut};
use mpquic_core::{Config, Connection, Transmit};
use mpquic_util::{RangeSet, SimTime};
use mpquic_wire::{AckFrame, DecodeError, Frame, PathId, PublicHeader, MAX_ACK_RANGES};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashSet};
use std::net::SocketAddr;
use std::time::Duration;

const C0: &str = "10.0.0.1:50000";
const C1: &str = "10.1.0.1:50001";
const S0: &str = "10.0.1.1:4433";
const S1: &str = "10.1.1.1:4433";

fn addr(s: &str) -> SocketAddr {
    s.parse().unwrap()
}

// ---------------------------------------------------------------------
// ACK range cap
// ---------------------------------------------------------------------

#[test]
fn ack_builder_truncates_to_max_ranges() {
    let mut set = RangeSet::default();
    for i in 0..400u64 {
        set.insert(i * 2); // 400 disjoint singletons
    }
    let ack = AckFrame::from_range_set(PathId(1), &set, 0).unwrap();
    assert_eq!(ack.ranges.len(), MAX_ACK_RANGES);
    // The newest (largest) packet numbers are the ones kept: dropping old
    // ranges only delays acks, dropping new ones would stall the sender.
    assert_eq!(ack.largest_acked, 399 * 2);
    let mut buf = BytesMut::new();
    Frame::Ack(ack).encode(&mut buf);
    // What the capped builder produces must decode back cleanly.
    assert!(Frame::decode_all(&buf).is_ok());
}

#[test]
fn oversized_ack_rejected_on_decode() {
    // Bypass the builder and construct a structurally valid ACK frame
    // with 300 ranges, as a buggy or hostile peer might.
    let ranges: Vec<(u64, u64)> = (0..300u64).rev().map(|i| (i * 3, i * 3 + 1)).collect();
    let ack = AckFrame {
        path_id: PathId(1),
        largest_acked: ranges[0].1,
        ack_delay_micros: 0,
        ranges,
    };
    let mut buf = BytesMut::new();
    Frame::Ack(ack).encode(&mut buf);
    let mut read = &buf[..];
    assert_eq!(
        Frame::decode(&mut read),
        Err(DecodeError::LimitExceeded("ack range count"))
    );
}

#[test]
fn max_size_ack_is_accepted_on_decode() {
    // Boundary: exactly MAX_ACK_RANGES must still decode.
    let mut set = RangeSet::default();
    for i in 0..MAX_ACK_RANGES as u64 {
        set.insert(i * 2);
    }
    let ack = AckFrame::from_range_set(PathId(2), &set, 5).unwrap();
    assert_eq!(ack.ranges.len(), MAX_ACK_RANGES);
    let frame = Frame::Ack(ack);
    let mut buf = BytesMut::new();
    frame.encode(&mut buf);
    let mut read = &buf[..];
    assert_eq!(Frame::decode(&mut read), Ok(frame));
}

// ---------------------------------------------------------------------
// Packet numbers never repeat
// ---------------------------------------------------------------------

/// A two-host in-memory network (compact variant of the end_to_end
/// harness) that decodes the public header of **every datagram ever
/// produced** — including ones it then drops — and fails the test the
/// moment a (direction, path, packet number) triple repeats.
struct PnAuditNet {
    client: Connection,
    server: Connection,
    in_flight: BinaryHeap<Reverse<(SimTime, u64, u8, usize)>>,
    payloads: Vec<Option<Transmit>>,
    now: SimTime,
    seq: u64,
    /// Drop every n-th datagram (0 = lossless).
    drop_every: u64,
    /// When set, all path-1 datagrams vanish (forces an RTO + handover).
    path1_dead: bool,
    seen: HashSet<(u8, u32, u64)>,
}

impl PnAuditNet {
    fn new(client: Connection, server: Connection, drop_every: u64) -> PnAuditNet {
        PnAuditNet {
            client,
            server,
            in_flight: BinaryHeap::new(),
            payloads: Vec::new(),
            now: SimTime::ZERO,
            seq: 0,
            drop_every,
            path1_dead: false,
            seen: HashSet::new(),
        }
    }

    fn audit(&mut self, dir: u8, t: &Transmit) {
        let mut read = &t.payload[..];
        let header = PublicHeader::decode(&mut read).expect("own datagrams must parse");
        assert!(
            self.seen
                .insert((dir, header.path_id.0, header.packet_number)),
            "packet number {} reused on {} (direction {dir}) at {:?}",
            header.packet_number,
            header.path_id,
            self.now,
        );
    }

    fn is_path1(t: &Transmit) -> bool {
        t.local == addr(C1) || t.local == addr(S1) || t.remote == addr(S1) || t.remote == addr(C1)
    }

    fn pump(&mut self) {
        loop {
            let mut any = false;
            while let Some(t) = self.client.poll_transmit(self.now) {
                any = true;
                self.audit(0, &t);
                self.enqueue(0, t);
            }
            while let Some(t) = self.server.poll_transmit(self.now) {
                any = true;
                self.audit(1, &t);
                self.enqueue(1, t);
            }
            if !any {
                break;
            }
        }
    }

    fn enqueue(&mut self, dir: u8, t: Transmit) {
        let seq = self.seq;
        self.seq += 1;
        if self.drop_every != 0 && seq % self.drop_every == 3 {
            return; // deterministic loss
        }
        if self.path1_dead && PnAuditNet::is_path1(&t) {
            return;
        }
        let key = self.payloads.len();
        self.payloads.push(Some(t));
        self.in_flight.push(Reverse((
            self.now + Duration::from_millis(20),
            seq,
            dir,
            key,
        )));
    }

    fn step(&mut self) -> bool {
        self.pump();
        let next_delivery = self.in_flight.peek().map(|Reverse((t, ..))| *t);
        let next_timer = [self.client.next_timeout(), self.server.next_timeout()]
            .into_iter()
            .flatten()
            .min();
        let next = match (next_delivery, next_timer) {
            (Some(a), Some(b)) => a.min(b),
            (Some(a), None) => a,
            (None, Some(b)) => b,
            (None, None) => return false,
        };
        self.now = next;
        while let Some(Reverse((t, _, dir, key))) = self.in_flight.peek().copied() {
            if t > self.now {
                break;
            }
            self.in_flight.pop();
            let transmit = self.payloads[key].take().expect("delivered once");
            let receiver = if dir == 0 {
                &mut self.server
            } else {
                &mut self.client
            };
            receiver.handle_datagram(self.now, transmit.remote, transmit.local, &transmit.payload);
        }
        if self.client.next_timeout().is_some_and(|t| t <= self.now) {
            self.client.on_timeout(self.now);
        }
        if self.server.next_timeout().is_some_and(|t| t <= self.now) {
            self.server.on_timeout(self.now);
        }
        true
    }

    fn run_until(&mut self, mut cond: impl FnMut(&mut PnAuditNet) -> bool, limit: SimTime) -> bool {
        loop {
            if cond(self) {
                return true;
            }
            if self.now > limit || !self.step() {
                return cond(self);
            }
        }
    }
}

fn multipath_audit_pair(drop_every: u64) -> PnAuditNet {
    let client = Connection::client(
        Config::multipath(),
        vec![addr(C0), addr(C1)],
        0,
        addr(S0),
        1,
    );
    let server = Connection::server(Config::multipath(), vec![addr(S0), addr(S1)], 2);
    PnAuditNet::new(client, server, drop_every)
}

fn transfer(net: &mut PnAuditNet, size: usize) {
    let stream = net.client.open_stream();
    net.client
        .stream_write(stream, Bytes::from(vec![0x5A; size]))
        .unwrap();
    net.client.stream_finish(stream);
    assert!(
        net.run_until(
            |n| {
                while n.server.stream_read(stream, usize::MAX).is_some() {}
                n.server.stream_is_finished(stream)
            },
            SimTime::from_secs(60),
        ),
        "transfer did not complete"
    );
}

#[test]
fn packet_numbers_unique_across_lossy_transfer() {
    // ~1 in 7 datagrams dropped: plenty of retransmission. Every
    // retransmitted frame must ride a fresh packet number.
    let mut net = multipath_audit_pair(7);
    transfer(&mut net, 200_000);
    assert!(net.seen.len() > 100, "expected a substantial packet trace");
}

#[test]
fn packet_numbers_unique_across_rto_handover() {
    // Let the transfer spread over both paths, then kill path 1 so its
    // in-flight data RTOs and is retransmitted on path 0 — the paper's
    // Fig. 11 handover scenario. No packet number may be reused in the
    // process, on either path's space.
    let mut net = multipath_audit_pair(0);
    let stream = net.client.open_stream();
    net.client
        .stream_write(stream, Bytes::from(vec![0x77; 300_000]))
        .unwrap();
    net.client.stream_finish(stream);
    // Run until both paths have carried traffic.
    assert!(net.run_until(
        |n| n.seen.iter().any(|&(_, path, _)| path != 0),
        SimTime::from_secs(30),
    ));
    net.path1_dead = true;
    assert!(
        net.run_until(
            |n| {
                while n.server.stream_read(stream, usize::MAX).is_some() {}
                n.server.stream_is_finished(stream)
            },
            SimTime::from_secs(120),
        ),
        "transfer did not survive the path-1 failure"
    );
    let paths_used: HashSet<u32> = net.seen.iter().map(|&(_, p, _)| p).collect();
    assert!(paths_used.len() >= 2, "both path spaces should appear");
}
