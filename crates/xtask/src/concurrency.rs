//! Concurrency-correctness lints (DESIGN.md §14).
//!
//! Three passes over the stripped source view from [`crate::scan`],
//! guarding the sharded endpoint's cross-thread protocol the way the
//! protocol lints in [`crate::lints`] guard the wire format:
//!
//! 1. **atomic-ordering** — every atomic operation carrying a memory
//!    ordering must name an atomic registered in `atomics.toml`, and
//!    the ordering must match the registered *role*: `counter` atomics
//!    (statistics) use `Relaxed` only; `flag` atomics (publish a state
//!    change to another thread) load `Acquire` and store `Release`;
//!    `sync` atomics (hand-rolled synchronization) use
//!    `Acquire`/`Release`/`AcqRel`. `SeqCst` is never accepted — a site
//!    that needs it needs a registry discussion, not a stronger default.
//!    Each registry entry carries a one-line justification, and stale
//!    entries (atomics that no longer exist) fail the lint too.
//! 2. **unsafe-audit** — every `unsafe` keyword outside `#[cfg(test)]`
//!    must be immediately preceded (modulo attributes) by a `//`
//!    comment block containing `SAFETY:`. The compiler checks that
//!    unsafe code is *declared*; this checks that it is *argued*.
//! 3. **channel-topology** — every channel endpoint operation in the
//!    io crate (`send`/`try_send`/`recv`/`try_recv`/`recv_timeout`)
//!    must map onto a channel declared in `channels.toml`, bounded
//!    channels may only be sent to with `try_send` (a blocking send
//!    inside the demux or a shard loop can deadlock against a peer
//!    blocked the other way), and the declared blocking-wait edges
//!    between threads must form no cycle.

use crate::lints::{SourceFile, Violation};
use crate::scan;
use std::collections::BTreeMap;
use std::ops::Range;

// ---------------------------------------------------------------------
// Mini TOML: array-of-tables with string values
// ---------------------------------------------------------------------

/// One `[[table]]` from a registry file: its name plus `key = "value"`
/// pairs. The registries only ever need string values, so this parser
/// accepts nothing else — a syntax error in a registry should fail the
/// lint loudly, not be guessed around.
pub struct Table {
    /// The `[[name]]` header.
    pub kind: String,
    /// 1-based line of the header, for error messages.
    pub line: usize,
    /// The key/value pairs.
    pub entries: BTreeMap<String, String>,
}

/// Parses the registry dialect: `[[name]]` headers, `key = "value"`
/// lines, `#` comments and blank lines. Anything else is an error.
pub fn parse_tables(text: &str) -> Result<Vec<Table>, String> {
    let mut tables: Vec<Table> = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = idx + 1;
        let l = raw.trim();
        if l.is_empty() || l.starts_with('#') {
            continue;
        }
        if let Some(head) = l.strip_prefix("[[").and_then(|r| r.strip_suffix("]]")) {
            tables.push(Table {
                kind: head.trim().to_string(),
                line,
                entries: BTreeMap::new(),
            });
            continue;
        }
        let Some((key, value)) = l.split_once('=') else {
            return Err(format!(
                "line {line}: expected `[[table]]` or `key = \"value\"`"
            ));
        };
        let value = value.trim();
        let Some(value) = value.strip_prefix('"').and_then(|v| v.strip_suffix('"')) else {
            return Err(format!("line {line}: value must be a \"quoted string\""));
        };
        let Some(table) = tables.last_mut() else {
            return Err(format!(
                "line {line}: key/value before any [[table]] header"
            ));
        };
        let key = key.trim().to_string();
        if table
            .entries
            .insert(key.clone(), value.to_string())
            .is_some()
        {
            return Err(format!("line {line}: duplicate key `{key}`"));
        }
    }
    Ok(tables)
}

fn required<'t>(t: &'t Table, key: &str, file: &str) -> Result<&'t str, String> {
    t.entries
        .get(key)
        .map(String::as_str)
        .filter(|v| !v.is_empty())
        .ok_or_else(|| {
            format!(
                "{file}: [[{}]] at line {}: missing or empty `{key}`",
                t.kind, t.line
            )
        })
}

// ---------------------------------------------------------------------
// Pass 1: atomic-ordering discipline
// ---------------------------------------------------------------------

/// What an atomic is *for* — which fixes the orderings it may use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// A statistic: increments commute, reads are reports. `Relaxed`
    /// everywhere; anything stronger buys nothing and taxes the fast
    /// path.
    Counter,
    /// Publishes a state change (shutdown, readiness) another thread
    /// acts on: store `Release`, load `Acquire`, so writes before the
    /// raise happen-before the observing thread's next reads.
    Flag,
    /// Hand-rolled synchronization carrying data visibility: paired
    /// `Acquire`/`Release`, `AcqRel` for read-modify-write.
    Sync,
}

impl Role {
    fn parse(s: &str) -> Option<Role> {
        match s {
            "counter" => Some(Role::Counter),
            "flag" => Some(Role::Flag),
            "sync" => Some(Role::Sync),
            _ => None,
        }
    }
}

/// One registered atomic.
#[derive(Debug)]
pub struct AtomicEntry {
    /// The variable/field identifier as it appears at use sites.
    pub name: String,
    /// Workspace-relative path (suffix) of the declaring file.
    pub file: String,
    /// The role fixing its permitted orderings.
    pub role: Role,
    /// One line on why this atomic exists and why the role fits.
    pub justification: String,
}

/// Parses `atomics.toml`.
pub fn parse_atomics_registry(text: &str, file: &str) -> Result<Vec<AtomicEntry>, String> {
    let mut out = Vec::new();
    for t in parse_tables(text).map_err(|e| format!("{file}: {e}"))? {
        if t.kind != "atomic" {
            return Err(format!(
                "{file}: unknown table [[{}]] at line {}",
                t.kind, t.line
            ));
        }
        let role_str = required(&t, "role", file)?;
        let role = Role::parse(role_str).ok_or_else(|| {
            format!(
                "{file}: line {}: role `{role_str}` is not counter|flag|sync",
                t.line
            )
        })?;
        out.push(AtomicEntry {
            name: required(&t, "name", file)?.to_string(),
            file: required(&t, "file", file)?.to_string(),
            role,
            justification: required(&t, "justification", file)?.to_string(),
        });
    }
    // Name-keyed registry: two atomics may share a name (e.g. a clone
    // handle) only if they also share a role, otherwise use sites are
    // ambiguous.
    for (i, a) in out.iter().enumerate() {
        for b in &out[..i] {
            if a.name == b.name && a.file == b.file {
                return Err(format!(
                    "{file}: duplicate entry for `{}` in {}",
                    a.name, a.file
                ));
            }
            if a.name == b.name && a.role != b.role {
                return Err(format!(
                    "{file}: `{}` registered with conflicting roles; rename one",
                    a.name
                ));
            }
        }
    }
    Ok(out)
}

/// The atomic orderings (anything else after `Ordering::` — `Less`,
/// `Equal`, ... — is `std::cmp::Ordering` and not ours).
const MEMORY_ORDERINGS: &[&str] = &["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// Atomic methods, by operation class.
const LOAD_METHODS: &[&str] = &["load"];
const STORE_METHODS: &[&str] = &["store"];
const RMW_METHODS: &[&str] = &[
    "swap",
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "fetch_nand",
    "fetch_update",
    "compare_exchange",
    "compare_exchange_weak",
];

fn allowed(role: Role, method: &str, ordering: &str) -> bool {
    if ordering == "SeqCst" {
        return false;
    }
    match role {
        Role::Counter => ordering == "Relaxed",
        Role::Flag | Role::Sync => {
            if LOAD_METHODS.contains(&method) {
                ordering == "Acquire"
            } else if STORE_METHODS.contains(&method) {
                ordering == "Release"
            } else {
                // RMW on a flag/sync atomic does both halves.
                ordering == "AcqRel"
            }
        }
    }
}

fn expectation(role: Role, method: &str) -> &'static str {
    match role {
        Role::Counter => "Relaxed (role counter)",
        Role::Flag | Role::Sync => {
            if LOAD_METHODS.contains(&method) {
                "Acquire (role flag/sync load)"
            } else if STORE_METHODS.contains(&method) {
                "Release (role flag/sync store)"
            } else {
                "AcqRel (role flag/sync rmw)"
            }
        }
    }
}

/// One resolved atomic operation site.
struct AtomicSite {
    /// Byte offset of the `Ordering::` token (for line reporting).
    at: usize,
    /// Receiver identifier (`stop` in `self.stop.load(..)`).
    receiver: String,
    /// Method name (`load`, `store`, `fetch_add`, ...).
    method: String,
    /// Ordering variant (`Relaxed`, ...).
    ordering: String,
}

fn ident_before(b: &[u8], end: usize) -> Option<(usize, usize)> {
    let mut e = end;
    while e > 0 && b[e - 1].is_ascii_whitespace() {
        e -= 1;
    }
    let mut s = e;
    while s > 0 && (b[s - 1].is_ascii_alphanumeric() || b[s - 1] == b'_') {
        s -= 1;
    }
    (s < e).then_some((s, e))
}

/// Resolves each `Ordering::<Variant>` occurrence to the atomic call it
/// is an argument of: walks back over balanced parens to the enclosing
/// call's `(`, then reads `receiver.method` off the text before it.
fn atomic_sites(stripped: &str, tests: &[Range<usize>]) -> Vec<Result<AtomicSite, usize>> {
    let b = stripped.as_bytes();
    let mut out = Vec::new();
    for at in scan::word_offsets(stripped, "Ordering") {
        if tests.iter().any(|r| r.contains(&at)) {
            continue;
        }
        // `Ordering::<Variant>` — anything else (an import, a bare
        // `Ordering` type mention) is not an operation site.
        let rest = &stripped[at + "Ordering".len()..];
        let Some(rest) = rest.strip_prefix("::") else {
            continue;
        };
        let variant: String = rest
            .chars()
            .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
            .collect();
        if !MEMORY_ORDERINGS.contains(&variant.as_str()) {
            continue; // std::cmp::Ordering
        }
        // Walk back to the opening paren of the enclosing call.
        let mut depth = 0usize;
        let mut i = at;
        let open = loop {
            if i == 0 {
                break None;
            }
            i -= 1;
            match b[i] {
                b')' => depth += 1,
                b'(' if depth == 0 => break Some(i),
                b'(' => depth -= 1,
                b';' | b'{' | b'}' if depth == 0 => break None,
                _ => {}
            }
        };
        let Some(open) = open else {
            out.push(Err(at)); // `use ...::Ordering::X` or similar — flag it.
            continue;
        };
        let Some((ms, me)) = ident_before(b, open) else {
            out.push(Err(at));
            continue;
        };
        let method = stripped[ms..me].to_string();
        let known = LOAD_METHODS.contains(&method.as_str())
            || STORE_METHODS.contains(&method.as_str())
            || RMW_METHODS.contains(&method.as_str());
        if !known {
            out.push(Err(at));
            continue;
        }
        // Receiver: the identifier before the `.`.
        let mut d = ms;
        while d > 0 && b[d - 1].is_ascii_whitespace() {
            d -= 1;
        }
        if d == 0 || b[d - 1] != b'.' {
            out.push(Err(at));
            continue;
        }
        let Some((rs, re)) = ident_before(b, d - 1) else {
            out.push(Err(at));
            continue;
        };
        out.push(Ok(AtomicSite {
            at,
            receiver: stripped[rs..re].to_string(),
            method,
            ordering: variant,
        }));
    }
    out
}

/// Checks one file's atomic operations against the registry.
pub fn check_atomic_ordering(file: &SourceFile, registry: &[AtomicEntry]) -> Vec<Violation> {
    let stripped = scan::strip(&file.content);
    let tests = scan::test_item_ranges(&stripped);
    let mut out = Vec::new();
    let mut push = |at: usize, message: String| {
        out.push(Violation {
            file: file.path.clone(),
            line: scan::line_of(&stripped, at),
            lint: "atomic-ordering",
            message,
            line_text: scan::line_text(&file.content, at).to_string(),
        });
    };
    for site in atomic_sites(&stripped, &tests) {
        match site {
            Err(at) => push(
                at,
                "memory ordering outside a recognized atomic operation \
                 (registry cannot attribute it)"
                    .to_string(),
            ),
            Ok(s) => match registry.iter().find(|e| e.name == s.receiver) {
                None => push(
                    s.at,
                    format!(
                        "atomic `{}` is not in atomics.toml — register it with a \
                         role (counter|flag|sync) and a justification",
                        s.receiver
                    ),
                ),
                Some(entry) => {
                    if !allowed(entry.role, &s.method, &s.ordering) {
                        push(
                            s.at,
                            format!(
                                "`{}.{}` uses Ordering::{} but the registry expects {}",
                                s.receiver,
                                s.method,
                                s.ordering,
                                expectation(entry.role, &s.method)
                            ),
                        );
                    }
                }
            },
        }
    }
    out
}

/// Registry staleness: every entry's name must still occur in its
/// declaring file. `files` is the full scanned set.
pub fn check_atomic_registry_live(
    registry: &[AtomicEntry],
    files: &[SourceFile],
) -> Vec<Violation> {
    let mut out = Vec::new();
    for entry in registry {
        let Some(file) = files.iter().find(|f| f.path.ends_with(&entry.file)) else {
            out.push(Violation {
                file: entry.file.clone(),
                line: 1,
                lint: "atomic-ordering",
                message: format!(
                    "atomics.toml registers `{}` in {} but that file is not scanned",
                    entry.name, entry.file
                ),
                line_text: String::new(),
            });
            continue;
        };
        let stripped = scan::strip(&file.content);
        if scan::word_offsets(&stripped, &entry.name).is_empty() {
            out.push(Violation {
                file: file.path.clone(),
                line: 1,
                lint: "atomic-ordering",
                message: format!(
                    "stale atomics.toml entry: `{}` no longer appears in {}",
                    entry.name, entry.file
                ),
                line_text: String::new(),
            });
        }
    }
    out
}

// ---------------------------------------------------------------------
// Pass 2: unsafe-audit
// ---------------------------------------------------------------------

/// Checks that every `unsafe` outside `#[cfg(test)]` is immediately
/// preceded — attributes skipped — by a `//` comment block containing
/// `SAFETY:`.
pub fn check_unsafe_audit(file: &SourceFile) -> Vec<Violation> {
    let stripped = scan::strip(&file.content);
    let tests = scan::test_item_ranges(&stripped);
    let lines: Vec<&str> = file.content.lines().collect();
    let mut out = Vec::new();
    let mut flagged_lines = Vec::new();
    for at in scan::word_offsets(&stripped, "unsafe") {
        if tests.iter().any(|r| r.contains(&at)) {
            continue;
        }
        let line = scan::line_of(&stripped, at); // 1-based
        if flagged_lines.contains(&line) {
            continue; // one finding per line is enough
        }
        // Walk upward: skip attribute lines, then collect the contiguous
        // `//` comment block.
        let mut i = line - 1; // index of the unsafe line in `lines`
        let mut block_ok = false;
        while i > 0 {
            i -= 1;
            let l = lines[i].trim();
            if l.starts_with("#[") || l.starts_with("#![") {
                continue;
            }
            if l.starts_with("//") {
                // Found the adjacent comment block; scan all of it.
                let mut j = i;
                loop {
                    let c = lines[j].trim();
                    if !c.starts_with("//") {
                        break;
                    }
                    if c.contains("SAFETY:") {
                        block_ok = true;
                    }
                    if j == 0 {
                        break;
                    }
                    j -= 1;
                }
            }
            break;
        }
        if !block_ok {
            flagged_lines.push(line);
            out.push(Violation {
                file: file.path.clone(),
                line,
                lint: "unsafe-audit",
                message: "`unsafe` without an immediately preceding `// SAFETY:` \
                          comment arguing why the invariants hold"
                    .to_string(),
                line_text: scan::line_text(&file.content, at).to_string(),
            });
        }
    }
    out
}

// ---------------------------------------------------------------------
// Pass 3: channel-topology
// ---------------------------------------------------------------------

/// One declared channel.
pub struct ChannelEntry {
    /// Registry name.
    pub name: String,
    /// `bounded` or `unbounded`.
    pub bounded: bool,
    /// The thread (role name) holding the send half.
    pub tx_thread: String,
    /// The thread (role name) holding the receive half.
    pub rx_thread: String,
}

/// One declared endpoint-operation site: `file::var` doing `op` on
/// `channel`.
pub struct SiteEntry {
    /// Workspace-relative path suffix.
    pub file: String,
    /// Receiver identifier at the call site.
    pub var: String,
    /// `send` / `try_send` / `recv` / `try_recv` / `recv_timeout`.
    pub op: String,
    /// Name of the [`ChannelEntry`] this endpoint belongs to.
    pub channel: String,
}

/// Parses `channels.toml` into channels and sites.
pub fn parse_channels_registry(
    text: &str,
    file: &str,
) -> Result<(Vec<ChannelEntry>, Vec<SiteEntry>), String> {
    let mut channels = Vec::new();
    let mut sites = Vec::new();
    for t in parse_tables(text).map_err(|e| format!("{file}: {e}"))? {
        match t.kind.as_str() {
            "channel" => {
                let kind = required(&t, "kind", file)?;
                let bounded = match kind {
                    "bounded" => true,
                    "unbounded" => false,
                    other => {
                        return Err(format!(
                            "{file}: line {}: kind `{other}` is not bounded|unbounded",
                            t.line
                        ))
                    }
                };
                if bounded {
                    required(&t, "depth", file)?; // documented, not re-derived
                }
                required(&t, "justification", file)?;
                channels.push(ChannelEntry {
                    name: required(&t, "name", file)?.to_string(),
                    bounded,
                    tx_thread: required(&t, "tx_thread", file)?.to_string(),
                    rx_thread: required(&t, "rx_thread", file)?.to_string(),
                });
            }
            "site" => sites.push(SiteEntry {
                file: required(&t, "file", file)?.to_string(),
                var: required(&t, "var", file)?.to_string(),
                op: required(&t, "op", file)?.to_string(),
                channel: required(&t, "channel", file)?.to_string(),
            }),
            other => {
                return Err(format!(
                    "{file}: unknown table [[{other}]] at line {}",
                    t.line
                ))
            }
        }
    }
    for s in &sites {
        if !channels.iter().any(|c| c.name == s.channel) {
            return Err(format!(
                "{file}: site {}::{} names undeclared channel `{}`",
                s.file, s.var, s.channel
            ));
        }
    }
    Ok((channels, sites))
}

/// Channel endpoint methods the scan recognizes.
const CHANNEL_OPS: &[&str] = &["send", "try_send", "recv", "try_recv", "recv_timeout"];

/// Checks one io-crate file's channel operations against the registry,
/// and marks which declared sites were seen (for the staleness check).
pub fn check_channel_topology(
    file: &SourceFile,
    channels: &[ChannelEntry],
    sites: &[SiteEntry],
    seen: &mut [bool],
) -> Vec<Violation> {
    let stripped = scan::strip(&file.content);
    let tests = scan::test_item_ranges(&stripped);
    let b = stripped.as_bytes();
    let mut out = Vec::new();
    for &op in CHANNEL_OPS {
        for at in scan::word_offsets(&stripped, op) {
            if tests.iter().any(|r| r.contains(&at)) {
                continue;
            }
            // A method call: `.op(`.
            if at == 0 || b[at - 1] != b'.' {
                continue;
            }
            let mut j = at + op.len();
            while j < b.len() && b[j].is_ascii_whitespace() {
                j += 1;
            }
            if b.get(j) != Some(&b'(') {
                continue;
            }
            let Some((rs, re)) = ident_before(b, at - 1) else {
                continue;
            };
            let var = &stripped[rs..re];
            let mut push = |message: String| {
                out.push(Violation {
                    file: file.path.clone(),
                    line: scan::line_of(&stripped, at),
                    lint: "channel-topology",
                    message,
                    line_text: scan::line_text(&file.content, at).to_string(),
                });
            };
            let declared = sites
                .iter()
                .position(|s| file.path.ends_with(&s.file) && s.var == var && s.op == op);
            let Some(idx) = declared else {
                push(format!(
                    "channel operation `{var}.{op}(..)` has no [[site]] entry in \
                     channels.toml — declare which channel this endpoint belongs to"
                ));
                continue;
            };
            seen[idx] = true;
            let channel = channels
                .iter()
                .find(|c| c.name == sites[idx].channel)
                .expect("site channels validated at parse time");
            if channel.bounded && op == "send" {
                push(format!(
                    "blocking send on bounded channel `{}`: demux/shard loops must \
                     use try_send and count the drop, or they deadlock when the \
                     peer stalls",
                    channel.name
                ));
            }
        }
    }
    out
}

/// After scanning: declared-but-unseen sites are stale, and the
/// blocking-wait edges implied by the *seen* blocking receives must be
/// acyclic.
pub fn finish_channel_topology(
    channels: &[ChannelEntry],
    sites: &[SiteEntry],
    seen: &[bool],
    registry_file: &str,
) -> Vec<Violation> {
    let mut out = Vec::new();
    for (site, &was_seen) in sites.iter().zip(seen) {
        if !was_seen {
            out.push(Violation {
                file: registry_file.to_string(),
                line: 1,
                lint: "channel-topology",
                message: format!(
                    "stale channels.toml site: `{}::{}` doing `{}` no longer exists",
                    site.file, site.var, site.op
                ),
                line_text: String::new(),
            });
        }
    }
    // Wait-for edges: a blocking `recv` makes the receiving thread wait
    // on the sending thread. (Blocking bounded sends are rejected per
    // site above; unbounded sends never block.)
    let mut edges: Vec<(&str, &str)> = Vec::new();
    for (site, &was_seen) in sites.iter().zip(seen) {
        if !was_seen || (site.op != "recv" && site.op != "recv_timeout") {
            continue;
        }
        let c = channels
            .iter()
            .find(|c| c.name == site.channel)
            .expect("validated at parse time");
        let edge = (c.rx_thread.as_str(), c.tx_thread.as_str());
        if !edges.contains(&edge) {
            edges.push(edge);
        }
    }
    if let Some(cycle) = find_cycle(&edges) {
        out.push(Violation {
            file: registry_file.to_string(),
            line: 1,
            lint: "channel-topology",
            message: format!(
                "blocking-wait cycle between threads: {} — a full queue or quiet \
                 peer deadlocks the loop",
                cycle.join(" -> ")
            ),
            line_text: String::new(),
        });
    }
    out
}

/// DFS cycle detection over the thread wait-for graph; returns one
/// cycle's node sequence if any exists.
fn find_cycle<'e>(edges: &[(&'e str, &'e str)]) -> Option<Vec<&'e str>> {
    let mut nodes: Vec<&str> = Vec::new();
    for &(a, b) in edges {
        if !nodes.contains(&a) {
            nodes.push(a);
        }
        if !nodes.contains(&b) {
            nodes.push(b);
        }
    }
    // 0 = white, 1 = on stack, 2 = done.
    let mut color = vec![0u8; nodes.len()];
    let mut stack: Vec<&str> = Vec::new();
    fn visit<'e>(
        n: usize,
        nodes: &[&'e str],
        edges: &[(&'e str, &'e str)],
        color: &mut [u8],
        stack: &mut Vec<&'e str>,
    ) -> Option<Vec<&'e str>> {
        color[n] = 1;
        stack.push(nodes[n]);
        for &(a, b) in edges {
            if a != nodes[n] {
                continue;
            }
            let m = nodes.iter().position(|&x| x == b).expect("node indexed");
            match color[m] {
                1 => {
                    let start = stack.iter().position(|&x| x == b).unwrap_or(0);
                    let mut cycle = stack[start..].to_vec();
                    cycle.push(b);
                    return Some(cycle);
                }
                0 => {
                    if let Some(c) = visit(m, nodes, edges, color, stack) {
                        return Some(c);
                    }
                }
                _ => {}
            }
        }
        stack.pop();
        color[n] = 2;
        None
    }
    for n in 0..nodes.len() {
        if color[n] == 0 {
            if let Some(c) = visit(n, &nodes, edges, &mut color, &mut stack) {
                return Some(c);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(path: &str, content: &str) -> SourceFile {
        SourceFile {
            path: path.to_string(),
            content: content.to_string(),
        }
    }

    fn registry() -> Vec<AtomicEntry> {
        parse_atomics_registry(
            "[[atomic]]\n\
             name = \"accepted\"\n\
             file = \"crates/io/src/endpoint.rs\"\n\
             role = \"counter\"\n\
             justification = \"stat\"\n\
             [[atomic]]\n\
             name = \"stop\"\n\
             file = \"crates/io/src/endpoint.rs\"\n\
             role = \"flag\"\n\
             justification = \"shutdown publish\"\n",
            "atomics.toml",
        )
        .expect("registry parses")
    }

    #[test]
    fn counter_relaxed_and_flag_acqrel_are_clean() {
        let src = file(
            "crates/io/src/endpoint.rs",
            "fn f(s: &S) { s.stats.accepted.fetch_add(1, Ordering::Relaxed); \
             if s.stop.load(Ordering::Acquire) { return; } \
             s.stop.store(true, Ordering::Release); }",
        );
        let v = check_atomic_ordering(&src, &registry());
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn seqcst_is_always_rejected() {
        let src = file(
            "crates/io/src/endpoint.rs",
            "fn f(s: &S) { s.stop.store(true, Ordering::SeqCst); }",
        );
        let v = check_atomic_ordering(&src, &registry());
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].message.contains("SeqCst"));
    }

    #[test]
    fn counter_with_acquire_and_flag_with_relaxed_are_rejected() {
        let src = file(
            "crates/io/src/endpoint.rs",
            "fn f(s: &S) { let _ = s.accepted.load(Ordering::Acquire); \
             s.stop.store(true, Ordering::Relaxed); }",
        );
        let v = check_atomic_ordering(&src, &registry());
        assert_eq!(v.len(), 2, "{v:?}");
        assert!(v[0].message.contains("Relaxed (role counter)"));
        assert!(v[1].message.contains("Release (role flag/sync store)"));
    }

    #[test]
    fn unregistered_atomic_is_rejected() {
        let src = file(
            "crates/io/src/endpoint.rs",
            "fn f(x: &AtomicU64) { x.rogue.fetch_add(1, Ordering::Relaxed); }",
        );
        let v = check_atomic_ordering(&src, &registry());
        assert_eq!(v.len(), 1);
        assert!(v[0].message.contains("not in atomics.toml"));
    }

    #[test]
    fn cmp_ordering_and_test_atomics_are_ignored() {
        let src = file(
            "crates/io/src/endpoint.rs",
            "fn f(a: u8, b: u8) -> Ordering { a.cmp(&b) }\n\
             fn g() -> Ordering { Ordering::Less }\n\
             #[cfg(test)]\nmod tests { fn t(x: &A) { x.anything.load(Ordering::SeqCst); } }",
        );
        assert!(check_atomic_ordering(&src, &registry()).is_empty());
    }

    #[test]
    fn conflicting_roles_fail_parse() {
        let err = parse_atomics_registry(
            "[[atomic]]\nname = \"x\"\nfile = \"a.rs\"\nrole = \"flag\"\njustification = \"j\"\n\
             [[atomic]]\nname = \"x\"\nfile = \"b.rs\"\nrole = \"counter\"\njustification = \"j\"\n",
            "atomics.toml",
        )
        .unwrap_err();
        assert!(err.contains("conflicting roles"));
    }

    #[test]
    fn unsafe_without_safety_comment_is_flagged() {
        let src = file(
            "crates/io/src/mmsg.rs",
            "fn f() {\n    let r = unsafe { g() };\n}",
        );
        let v = check_unsafe_audit(&src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].line, 2);
    }

    #[test]
    fn safety_comment_blocks_satisfy_the_audit() {
        let src = file(
            "crates/io/src/mmsg.rs",
            "fn f() {\n\
             // SAFETY: g has no preconditions here.\n\
             let r = unsafe { g() };\n\
             // The argument may span lines and sit above attributes.\n\
             // SAFETY: trait contract upheld by construction.\n\
             #[allow(unsafe_code)]\n\
             unsafe impl Send for T {}\n\
             }",
        );
        let v = check_unsafe_audit(&src);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn non_safety_comment_does_not_satisfy_the_audit() {
        let src = file(
            "crates/io/src/mmsg.rs",
            "fn f() {\n// this is fine, trust me\nlet r = unsafe { g() };\n}",
        );
        assert_eq!(check_unsafe_audit(&src).len(), 1);
    }

    #[test]
    fn unsafe_in_tests_is_exempt() {
        let src = file(
            "crates/util/src/alloc_count.rs",
            "fn safe() {}\n#[cfg(test)]\nmod tests {\n fn t() { unsafe { g() } }\n}",
        );
        assert!(check_unsafe_audit(&src).is_empty());
    }

    fn channel_registry() -> (Vec<ChannelEntry>, Vec<SiteEntry>) {
        parse_channels_registry(
            "[[channel]]\nname = \"ingress\"\nkind = \"bounded\"\ndepth = \"512\"\n\
             tx_thread = \"demux\"\nrx_thread = \"shard\"\njustification = \"j\"\n\
             [[channel]]\nname = \"ctl\"\nkind = \"unbounded\"\n\
             tx_thread = \"shard\"\nrx_thread = \"demux\"\njustification = \"j\"\n\
             [[site]]\nfile = \"endpoint.rs\"\nvar = \"tx\"\nop = \"try_send\"\nchannel = \"ingress\"\n\
             [[site]]\nfile = \"endpoint.rs\"\nvar = \"ctl_rx\"\nop = \"recv\"\nchannel = \"ctl\"\n\
             [[site]]\nfile = \"shard.rs\"\nvar = \"rx\"\nop = \"try_recv\"\nchannel = \"ingress\"\n",
            "channels.toml",
        )
        .expect("registry parses")
    }

    #[test]
    fn declared_sites_are_clean_and_marked_seen() {
        let (channels, sites) = channel_registry();
        let mut seen = vec![false; sites.len()];
        let ep = file(
            "crates/io/src/endpoint.rs",
            "fn f() { tx.try_send(m); while let Ok(c) = ctl_rx.recv() { g(c); } }",
        );
        let sh = file(
            "crates/io/src/shard.rs",
            "fn g() { let _ = rx.try_recv(); }",
        );
        assert!(check_channel_topology(&ep, &channels, &sites, &mut seen).is_empty());
        assert!(check_channel_topology(&sh, &channels, &sites, &mut seen).is_empty());
        assert_eq!(seen, vec![true, true, true]);
        assert!(finish_channel_topology(&channels, &sites, &seen, "channels.toml").is_empty());
    }

    #[test]
    fn undeclared_site_is_flagged() {
        let (channels, sites) = channel_registry();
        let mut seen = vec![false; sites.len()];
        let src = file("crates/io/src/endpoint.rs", "fn f() { mystery.send(m); }");
        let v = check_channel_topology(&src, &channels, &sites, &mut seen);
        assert_eq!(v.len(), 1);
        assert!(v[0].message.contains("no [[site]] entry"));
    }

    #[test]
    fn blocking_send_on_bounded_channel_is_flagged() {
        let (channels, mut sites) = channel_registry();
        sites.push(SiteEntry {
            file: "endpoint.rs".into(),
            var: "tx".into(),
            op: "send".into(),
            channel: "ingress".into(),
        });
        let mut seen = vec![false; sites.len()];
        let src = file("crates/io/src/endpoint.rs", "fn f() { tx.send(m); }");
        let v = check_channel_topology(&src, &channels, &sites, &mut seen);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].message.contains("blocking send on bounded channel"));
    }

    #[test]
    fn stale_site_and_wait_cycle_are_flagged() {
        let (channels, mut sites) = channel_registry();
        // Add a blocking recv the *other* way: shard waits on demux via
        // ingress — combined with demux waiting on shard via ctl, a cycle.
        sites.push(SiteEntry {
            file: "shard.rs".into(),
            var: "rx".into(),
            op: "recv".into(),
            channel: "ingress".into(),
        });
        let seen = vec![true, true, false, true];
        let v = finish_channel_topology(&channels, &sites, &seen, "channels.toml");
        assert_eq!(v.len(), 2, "{v:?}");
        assert!(v[0].message.contains("stale"));
        assert!(v[1].message.contains("blocking-wait cycle"));
    }
}
