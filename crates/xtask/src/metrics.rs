//! Metrics-registry lint (DESIGN.md §15).
//!
//! The endpoint metrics plane exports a fixed set of Prometheus
//! families from `crates/telemetry/src/endpoint.rs`. This pass keeps
//! that scrape surface and `metrics.toml` in lockstep, the same way
//! `atomics.toml` pins the atomic sites:
//!
//! * every `mpq_*` name the source mentions must be registered with a
//!   kind (`counter`|`gauge`|`histogram`) and a help line — dashboards
//!   break silently when a family is renamed, so renames must show up
//!   as a registry diff;
//! * every registered metric must still be mentioned — stale entries
//!   fail the lint too;
//! * counter names end in `_total` (Prometheus convention), other
//!   kinds must not;
//! * histogram *sample* names (`<base>_bucket`, `<base>_sum`,
//!   `<base>_count`) attribute to their registered base family.
//!
//! Unlike the other passes this one scans the **raw** source, not the
//! stripped view: the names live inside string literals.

use crate::concurrency::parse_tables;
use crate::lints::{SourceFile, Violation};

/// The one file allowed to name `mpq_*` metric families.
pub const PLANE_FILE: &str = "crates/telemetry/src/endpoint.rs";

/// What a metric family is, which fixes its naming rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonic count; the name must end in `_total`.
    Counter,
    /// Point-in-time level; goes up and down.
    Gauge,
    /// Log2-bucketed distribution; rendered as `_bucket`/`_sum`/`_count`
    /// samples of the registered base name.
    Histogram,
}

impl MetricKind {
    fn parse(s: &str) -> Option<MetricKind> {
        match s {
            "counter" => Some(MetricKind::Counter),
            "gauge" => Some(MetricKind::Gauge),
            "histogram" => Some(MetricKind::Histogram),
            _ => None,
        }
    }
}

/// One registered metric family.
#[derive(Debug)]
pub struct MetricEntry {
    /// The full exported family name (`mpq_endpoint_accepted_total`).
    pub name: String,
    /// The family kind.
    pub kind: MetricKind,
    /// The HELP line served to scrapers.
    pub help: String,
}

fn required<'t>(
    t: &'t crate::concurrency::Table,
    key: &str,
    file: &str,
) -> Result<&'t str, String> {
    t.entries
        .get(key)
        .map(String::as_str)
        .filter(|v| !v.is_empty())
        .ok_or_else(|| {
            format!(
                "{file}: [[{}]] at line {}: missing or empty `{key}`",
                t.kind, t.line
            )
        })
}

/// Parses `metrics.toml` and enforces the naming rules that are pure
/// registry properties (kind-specific suffixes, uniqueness).
pub fn parse_metrics_registry(text: &str, file: &str) -> Result<Vec<MetricEntry>, String> {
    let mut out: Vec<MetricEntry> = Vec::new();
    for t in parse_tables(text).map_err(|e| format!("{file}: {e}"))? {
        if t.kind != "metric" {
            return Err(format!(
                "{file}: unknown table [[{}]] at line {}",
                t.kind, t.line
            ));
        }
        let name = required(&t, "name", file)?.to_string();
        let kind_str = required(&t, "kind", file)?;
        let kind = MetricKind::parse(kind_str).ok_or_else(|| {
            format!(
                "{file}: line {}: kind `{kind_str}` is not counter|gauge|histogram",
                t.line
            )
        })?;
        let help = required(&t, "help", file)?.to_string();
        if !name.starts_with("mpq_") {
            return Err(format!(
                "{file}: line {}: `{name}` must start with the `mpq_` namespace",
                t.line
            ));
        }
        match kind {
            MetricKind::Counter => {
                if !name.ends_with("_total") {
                    return Err(format!(
                        "{file}: line {}: counter `{name}` must end in `_total`",
                        t.line
                    ));
                }
            }
            MetricKind::Gauge | MetricKind::Histogram => {
                if name.ends_with("_total") {
                    return Err(format!(
                        "{file}: line {}: only counters end in `_total`, \
                         `{name}` is a {kind_str}",
                        t.line
                    ));
                }
                if kind == MetricKind::Histogram
                    && ["_bucket", "_sum", "_count"]
                        .iter()
                        .any(|s| name.ends_with(s))
                {
                    return Err(format!(
                        "{file}: line {}: `{name}` looks like a histogram sample \
                         name; register the base family instead",
                        t.line
                    ));
                }
            }
        }
        if out.iter().any(|e| e.name == name) {
            return Err(format!(
                "{file}: line {}: duplicate metric `{name}`",
                t.line
            ));
        }
        out.push(MetricEntry { name, kind, help });
    }
    Ok(out)
}

/// Extracts `mpq_[a-z0-9_]+` tokens from the raw source, with their
/// 1-based line numbers. A token must not be preceded by an identifier
/// character (so `x_mpq_y` is not a hit).
fn metric_tokens(content: &str) -> Vec<(usize, String)> {
    let b = content.as_bytes();
    let mut out = Vec::new();
    let mut line = 1usize;
    let mut i = 0usize;
    while i < b.len() {
        if b[i] == b'\n' {
            line += 1;
            i += 1;
            continue;
        }
        let boundary = i == 0 || !(b[i - 1].is_ascii_alphanumeric() || b[i - 1] == b'_');
        // Byte-wise match: `i` may sit mid-way through a multi-byte
        // char (doc comments use µ and Δ), where a str slice panics.
        if boundary && b.get(i..i + 4) == Some(b"mpq_") {
            let mut e = i;
            while e < b.len()
                && (b[e].is_ascii_lowercase() || b[e].is_ascii_digit() || b[e] == b'_')
            {
                e += 1;
            }
            out.push((line, content[i..e].to_string()));
            i = e;
        } else {
            i += 1;
        }
    }
    out
}

/// Attributes a source token to a registry entry: the name itself, or
/// a histogram sample name (`<base>_bucket`/`_sum`/`_count`).
fn resolve<'r>(registry: &'r [MetricEntry], token: &str) -> Option<&'r MetricEntry> {
    if let Some(e) = registry.iter().find(|e| e.name == token) {
        return Some(e);
    }
    for suffix in ["_bucket", "_sum", "_count"] {
        if let Some(base) = token.strip_suffix(suffix) {
            if let Some(e) = registry
                .iter()
                .find(|e| e.name == base && e.kind == MetricKind::Histogram)
            {
                return Some(e);
            }
        }
    }
    None
}

/// Checks the plane source against the registry, both directions.
pub fn check_metrics_coverage(registry: &[MetricEntry], file: &SourceFile) -> Vec<Violation> {
    let mut out = Vec::new();
    let mut live = vec![false; registry.len()];
    for (line, token) in metric_tokens(&file.content) {
        match resolve(registry, &token) {
            Some(entry) => {
                if let Some(slot) = registry
                    .iter()
                    .position(|e| e.name == entry.name)
                    .and_then(|i| live.get_mut(i))
                {
                    *slot = true;
                }
            }
            None => out.push(Violation {
                file: file.path.clone(),
                line,
                lint: "metrics-registry",
                message: format!(
                    "metric `{token}` is not in metrics.toml — register it with a \
                     kind (counter|gauge|histogram) and a help line"
                ),
                line_text: file
                    .content
                    .lines()
                    .nth(line.saturating_sub(1))
                    .unwrap_or("")
                    .to_string(),
            }),
        }
    }
    for (entry, seen) in registry.iter().zip(&live) {
        if !seen {
            out.push(Violation {
                file: file.path.clone(),
                line: 1,
                lint: "metrics-registry",
                message: format!(
                    "stale metrics.toml entry: `{}` is never mentioned in {}",
                    entry.name, file.path
                ),
                line_text: String::new(),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(content: &str) -> SourceFile {
        SourceFile {
            path: PLANE_FILE.to_string(),
            content: content.to_string(),
        }
    }

    const GOOD: &str = r#"
[[metric]]
name = "mpq_x_total"
kind = "counter"
help = "monotonic x"

[[metric]]
name = "mpq_depth"
kind = "histogram"
help = "depth distribution"
"#;

    #[test]
    fn parses_and_enforces_kinds() {
        let reg = parse_metrics_registry(GOOD, "t").expect("good registry");
        assert_eq!(reg.len(), 2);
        assert_eq!(reg[0].kind, MetricKind::Counter);
        assert!(parse_metrics_registry(
            "[[metric]]\nname = \"mpq_x\"\nkind = \"counter\"\nhelp = \"h\"\n",
            "t"
        )
        .is_err()); // counter without _total
        assert!(parse_metrics_registry(
            "[[metric]]\nname = \"mpq_x_total\"\nkind = \"gauge\"\nhelp = \"h\"\n",
            "t"
        )
        .is_err()); // gauge with _total
        assert!(parse_metrics_registry(
            "[[metric]]\nname = \"x_total\"\nkind = \"counter\"\nhelp = \"h\"\n",
            "t"
        )
        .is_err()); // outside the mpq_ namespace
    }

    #[test]
    fn histogram_sample_names_attribute_to_base() {
        let reg = parse_metrics_registry(GOOD, "t").expect("good registry");
        let src =
            file("\"mpq_x_total\" \"mpq_depth_bucket\" \"mpq_depth_sum\" \"mpq_depth_count\"");
        assert!(check_metrics_coverage(&reg, &src).is_empty());
    }

    #[test]
    fn unregistered_and_stale_names_are_flagged() {
        let reg = parse_metrics_registry(GOOD, "t").expect("good registry");
        let src = file("let a = \"mpq_x_total\";\nlet b = \"mpq_rogue\";");
        let violations = check_metrics_coverage(&reg, &src);
        assert_eq!(violations.len(), 2, "{violations:?}");
        assert!(violations[0].message.contains("mpq_rogue"));
        assert_eq!(violations[0].line, 2);
        assert!(violations[1].message.contains("stale"));
        assert!(violations[1].message.contains("mpq_depth"));
    }

    #[test]
    fn tokens_respect_identifier_boundaries() {
        let tokens = metric_tokens("x_mpq_not_a_hit \"mpq_yes\" MPQ_NO mpq_UPPER_stops");
        let names: Vec<&str> = tokens.iter().map(|(_, t)| t.as_str()).collect();
        assert_eq!(names, ["mpq_yes", "mpq_"]);
    }
}
