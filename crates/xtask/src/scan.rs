//! Lexical source scanning: comment/string stripping, brace matching and
//! function-body extraction.
//!
//! The lints in this workspace are *structural* (which tokens appear in
//! which function body), so a full parse is unnecessary — and the offline
//! build environment rules out `syn`. Instead every file is first
//! *stripped*: comments, string literals and char literals are replaced by
//! spaces, byte-for-byte, so that byte offsets and line numbers in the
//! stripped text map 1:1 onto the original file. All downstream matching
//! runs on the stripped text, which makes naive substring searches sound:
//! an `unwrap` inside a doc comment or a `"next_pn"` inside a string
//! literal can no longer produce a false positive.

/// Replaces the *contents* of comments, string literals (including raw
/// strings) and char literals with spaces. Newlines are preserved so line
/// numbers survive; total length is unchanged so byte offsets survive.
pub fn strip(src: &str) -> String {
    let b = src.as_bytes();
    let mut out: Vec<u8> = Vec::with_capacity(b.len());
    let mut i = 0;
    let blank = |out: &mut Vec<u8>, bytes: &[u8]| {
        for &c in bytes {
            out.push(if c == b'\n' { b'\n' } else { b' ' });
        }
    };
    while i < b.len() {
        let c = b[i];
        // Line comment.
        if c == b'/' && b.get(i + 1) == Some(&b'/') {
            let end = memchr_newline(b, i);
            blank(&mut out, &b[i..end]);
            i = end;
            continue;
        }
        // Block comment (nested).
        if c == b'/' && b.get(i + 1) == Some(&b'*') {
            let mut depth = 1;
            let mut j = i + 2;
            while j < b.len() && depth > 0 {
                if b[j] == b'/' && b.get(j + 1) == Some(&b'*') {
                    depth += 1;
                    j += 2;
                } else if b[j] == b'*' && b.get(j + 1) == Some(&b'/') {
                    depth -= 1;
                    j += 2;
                } else {
                    j += 1;
                }
            }
            blank(&mut out, &b[i..j]);
            i = j;
            continue;
        }
        // Raw string: r"..." / r#"..."# / br#"..."#, not preceded by an
        // identifier character (so `for`, `var` etc. don't trigger).
        if (c == b'r' || (c == b'b' && b.get(i + 1) == Some(&b'r'))) && !prev_is_ident(b, i) {
            let r_at = if c == b'b' { i + 1 } else { i };
            let mut hashes = 0;
            let mut j = r_at + 1;
            while b.get(j) == Some(&b'#') {
                hashes += 1;
                j += 1;
            }
            if b.get(j) == Some(&b'"') {
                // Find closing quote followed by `hashes` hashes.
                let mut k = j + 1;
                'outer: while k < b.len() {
                    if b[k] == b'"' {
                        let mut h = 0;
                        while h < hashes {
                            if b.get(k + 1 + h) != Some(&b'#') {
                                break;
                            }
                            h += 1;
                        }
                        if h == hashes {
                            k += 1 + hashes;
                            break 'outer;
                        }
                    }
                    k += 1;
                }
                blank(&mut out, &b[i..k]);
                i = k;
                continue;
            }
        }
        // Ordinary (or byte) string.
        if c == b'"' {
            let mut j = i + 1;
            while j < b.len() {
                match b[j] {
                    b'\\' => j += 2,
                    b'"' => {
                        j += 1;
                        break;
                    }
                    _ => j += 1,
                }
            }
            blank(&mut out, &b[i..j.min(b.len())]);
            i = j.min(b.len());
            continue;
        }
        // Char literal vs lifetime. After a `'`, it is a char literal when
        // the next char is an escape, or when the char after next is the
        // closing quote (`'a'`); otherwise it is a lifetime/label.
        if c == b'\'' {
            let is_char = match b.get(i + 1) {
                Some(b'\\') => true,
                Some(_) => b.get(i + 2) == Some(&b'\''),
                None => false,
            };
            if is_char {
                let mut j = i + 1;
                while j < b.len() {
                    match b[j] {
                        b'\\' => j += 2,
                        b'\'' => {
                            j += 1;
                            break;
                        }
                        _ => j += 1,
                    }
                }
                blank(&mut out, &b[i..j.min(b.len())]);
                i = j.min(b.len());
                continue;
            }
        }
        out.push(c);
        i += 1;
    }
    // Stripping only substitutes bytes, so this cannot produce invalid
    // UTF-8 from valid input (multi-byte chars only occur inside the
    // comments/strings being blanked, or pass through untouched).
    String::from_utf8_lossy(&out).into_owned()
}

fn memchr_newline(b: &[u8], from: usize) -> usize {
    let mut i = from;
    while i < b.len() && b[i] != b'\n' {
        i += 1;
    }
    i
}

fn prev_is_ident(b: &[u8], i: usize) -> bool {
    i > 0 && (b[i - 1].is_ascii_alphanumeric() || b[i - 1] == b'_')
}

/// 1-based line number of a byte offset.
pub fn line_of(text: &str, offset: usize) -> usize {
    text.as_bytes()
        .iter()
        .take(offset)
        .filter(|&&c| c == b'\n')
        .count()
        + 1
}

/// The source line (trimmed) containing `offset`, from the *original* text.
pub fn line_text(text: &str, offset: usize) -> &str {
    let start = text[..offset.min(text.len())]
        .rfind('\n')
        .map_or(0, |p| p + 1);
    let end = text[start..].find('\n').map_or(text.len(), |p| start + p);
    text[start..end].trim()
}

/// Given the offset of a `{`, returns the offset one past its matching
/// `}` (or `text.len()` if unbalanced). Call on *stripped* text only.
pub fn match_brace(stripped: &str, open: usize) -> usize {
    let b = stripped.as_bytes();
    debug_assert_eq!(b.get(open), Some(&b'{'));
    let mut depth = 0usize;
    let mut i = open;
    while i < b.len() {
        match b[i] {
            b'{' => depth += 1,
            b'}' => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    return i + 1;
                }
            }
            _ => {}
        }
        i += 1;
    }
    b.len()
}

/// True if the identifier-like token starting at `at` is a standalone word
/// (not part of a longer identifier).
fn is_word_at(b: &[u8], at: usize, word: &str) -> bool {
    let w = word.as_bytes();
    if at + w.len() > b.len() || &b[at..at + w.len()] != w {
        return false;
    }
    let before_ok = at == 0 || !(b[at - 1].is_ascii_alphanumeric() || b[at - 1] == b'_');
    let after = at + w.len();
    let after_ok = after >= b.len() || !(b[after].is_ascii_alphanumeric() || b[after] == b'_');
    before_ok && after_ok
}

/// All offsets where `word` appears as a standalone token in `stripped`.
pub fn word_offsets(stripped: &str, word: &str) -> Vec<usize> {
    let b = stripped.as_bytes();
    let mut found = Vec::new();
    let mut from = 0;
    while let Some(pos) = stripped[from..].find(word) {
        let at = from + pos;
        if is_word_at(b, at, word) {
            found.push(at);
        }
        from = at + 1;
    }
    found
}

/// Byte ranges of items gated behind `#[cfg(test)]` (test modules and test
/// helper items). The range covers the `{ ... }` body; items declared as
/// `mod name;` contribute nothing.
pub fn test_item_ranges(stripped: &str) -> Vec<std::ops::Range<usize>> {
    let b = stripped.as_bytes();
    let mut ranges = Vec::new();
    let needle = "#[cfg(test)]";
    let mut from = 0;
    while let Some(pos) = stripped[from..].find(needle) {
        let attr_at = from + pos;
        let mut j = attr_at + needle.len();
        // Skip whitespace and further attributes to the item itself.
        loop {
            while j < b.len() && b[j].is_ascii_whitespace() {
                j += 1;
            }
            if b.get(j) == Some(&b'#') && b.get(j + 1) == Some(&b'[') {
                // Skip a whole `#[...]` attribute (bracket matched).
                let mut depth = 0;
                while j < b.len() {
                    match b[j] {
                        b'[' => depth += 1,
                        b']' => {
                            depth -= 1;
                            if depth == 0 {
                                j += 1;
                                break;
                            }
                        }
                        _ => {}
                    }
                    j += 1;
                }
            } else {
                break;
            }
        }
        // Find the body brace, unless a `;` ends the item first.
        let mut k = j;
        while k < b.len() && b[k] != b'{' && b[k] != b';' {
            k += 1;
        }
        if b.get(k) == Some(&b'{') {
            let end = match_brace(stripped, k);
            ranges.push(attr_at..end);
            from = end;
        } else {
            from = k.min(b.len() - 1).max(attr_at + 1);
        }
        if from >= stripped.len() {
            break;
        }
    }
    ranges
}

/// Extracts the body range of `fn fn_name` inside `impl type_name { .. }`
/// (or anywhere in the file when `type_name` is `None`). Returns the byte
/// range of the body including its braces, against the stripped text.
pub fn fn_body(
    stripped: &str,
    type_name: Option<&str>,
    fn_name: &str,
) -> Option<std::ops::Range<usize>> {
    let search_range = match type_name {
        Some(ty) => impl_body(stripped, ty)?,
        None => 0..stripped.len(),
    };
    let region = &stripped[search_range.clone()];
    let b = region.as_bytes();
    for at in word_offsets(region, "fn") {
        // Token after `fn` must be the name.
        let mut j = at + 2;
        while j < b.len() && b[j].is_ascii_whitespace() {
            j += 1;
        }
        if !is_word_at(b, j, fn_name) {
            continue;
        }
        // Body starts at the first `{` after the signature.
        let mut k = j + fn_name.len();
        while k < b.len() && b[k] != b'{' && b[k] != b';' {
            k += 1;
        }
        if b.get(k) == Some(&b'{') {
            let end = match_brace(region, k);
            return Some(search_range.start + k..search_range.start + end);
        }
    }
    None
}

/// Body range (inside the braces) of `impl type_name { ... }`.
fn impl_body(stripped: &str, type_name: &str) -> Option<std::ops::Range<usize>> {
    let b = stripped.as_bytes();
    for at in word_offsets(stripped, "impl") {
        let mut j = at + 4;
        while j < b.len() && b[j].is_ascii_whitespace() {
            j += 1;
        }
        if !is_word_at(b, j, type_name) {
            continue;
        }
        let mut k = j + type_name.len();
        while k < b.len() && b[k] != b'{' {
            // A `for` before the brace means this is a trait impl
            // (`impl Display for Frame`) — still fine: we matched the
            // type name directly after `impl`, so only inherent impls of
            // `type_name` reach here.
            k += 1;
        }
        if b.get(k) == Some(&b'{') {
            let end = match_brace(stripped, k);
            return Some(k..end);
        }
    }
    None
}

/// Variant names of `pub enum name { ... }`.
pub fn enum_variants(stripped: &str, name: &str) -> Vec<String> {
    let b = stripped.as_bytes();
    let mut variants = Vec::new();
    for at in word_offsets(stripped, "enum") {
        let mut j = at + 4;
        while j < b.len() && b[j].is_ascii_whitespace() {
            j += 1;
        }
        if !is_word_at(b, j, name) {
            continue;
        }
        let mut k = j + name.len();
        while k < b.len() && b[k] != b'{' {
            k += 1;
        }
        if b.get(k) != Some(&b'{') {
            continue;
        }
        let end = match_brace(stripped, k);
        let body = &b[k + 1..end.saturating_sub(1)];
        // At nesting depth 0 of the enum body, each variant is an
        // identifier that starts an item (start of body or after a `,`).
        let mut depth = 0usize;
        let mut expect_ident = true;
        let mut m = 0;
        while m < body.len() {
            match body[m] {
                b'{' | b'(' | b'[' | b'<' => {
                    depth += 1;
                    m += 1;
                }
                b'}' | b')' | b']' | b'>' => {
                    depth = depth.saturating_sub(1);
                    m += 1;
                }
                b',' if depth == 0 => {
                    expect_ident = true;
                    m += 1;
                }
                b'=' if depth == 0 => {
                    // Discriminant (`Padding = 0x00`): skip to comma.
                    while m < body.len() && body[m] != b',' {
                        m += 1;
                    }
                }
                c if c.is_ascii_whitespace() => m += 1,
                b'#' if depth == 0 => {
                    // Attribute on a variant: skip `#[...]`.
                    while m < body.len() && body[m] != b']' {
                        m += 1;
                    }
                    m += 1;
                }
                c if (c.is_ascii_alphabetic() || c == b'_') && depth == 0 && expect_ident => {
                    let start = m;
                    while m < body.len() && (body[m].is_ascii_alphanumeric() || body[m] == b'_') {
                        m += 1;
                    }
                    variants.push(String::from_utf8_lossy(&body[start..m]).into_owned());
                    expect_ident = false;
                }
                _ => m += 1,
            }
        }
        return variants;
    }
    variants
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strip_removes_comments_and_strings() {
        let src = "let a = \"unwrap()\"; // .unwrap()\nlet b = 'x'; /* panic! */ f(a);";
        let s = strip(src);
        assert!(!s.contains("unwrap"));
        assert!(!s.contains("panic"));
        assert!(s.contains("let a ="));
        assert!(s.contains("f(a);"));
        assert_eq!(s.len(), src.len());
    }

    #[test]
    fn strip_handles_raw_strings_and_lifetimes() {
        let src = "fn f<'a>(x: &'a str) { let r = r#\"has \"quotes\" and unwrap()\"#; g(r); }";
        let s = strip(src);
        assert!(!s.contains("unwrap"));
        assert!(s.contains("fn f<'a>(x: &'a str)"));
        assert!(s.contains("g(r);"));
    }

    #[test]
    fn strip_handles_escaped_quotes() {
        let src = r#"let q = "a\"b.unwrap()"; h();"#;
        let s = strip(src);
        assert!(!s.contains("unwrap"));
        assert!(s.contains("h();"));
    }

    #[test]
    fn test_mod_ranges_cover_cfg_test() {
        let src = "fn real() {}\n#[cfg(test)]\nmod tests {\n fn t() { x.unwrap(); }\n}\n";
        let s = strip(src);
        let ranges = test_item_ranges(&s);
        assert_eq!(ranges.len(), 1);
        let covered = &s[ranges[0].clone()];
        assert!(covered.contains("unwrap"));
        assert!(!covered.contains("real"));
    }

    #[test]
    fn fn_body_extraction_scopes_to_impl() {
        let src = "impl FrameType { fn encode(&self) { a(); } }\n\
                   impl Frame { fn encode(&self) { b(); } fn other(&self) { c(); } }";
        let s = strip(src);
        let range = fn_body(&s, Some("Frame"), "encode").unwrap();
        let body = &s[range];
        assert!(body.contains("b()"));
        assert!(!body.contains("a()"));
        assert!(!body.contains("c()"));
    }

    #[test]
    fn enum_variant_listing() {
        let src = "pub enum Frame { Padding { len: usize }, Ping, Ack(AckFrame), \
                   WindowUpdate { a: u64, b: u64 }, Paths(Vec<PathInfo>), }";
        let s = strip(src);
        assert_eq!(
            enum_variants(&s, "Frame"),
            vec!["Padding", "Ping", "Ack", "WindowUpdate", "Paths"]
        );
    }

    #[test]
    fn enum_variants_skip_discriminants() {
        let src = "enum FrameType { Padding = 0x00, Ping = 0x01, Paths = 0x11 }";
        let s = strip(src);
        assert_eq!(
            enum_variants(&s, "FrameType"),
            vec!["Padding", "Ping", "Paths"]
        );
    }
}
