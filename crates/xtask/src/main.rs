//! `cargo xtask lint` — MPQUIC protocol-invariant static analysis.
//!
//! Dependency-free (no syn, no proc-macro stack): the lints in
//! [`lints`] operate on a comment/string-stripped view of the source
//! produced by [`scan`], which preserves byte offsets and line numbers.
//!
//! Exit status is non-zero when any violation survives the allowlist,
//! so CI can gate on it directly.

mod concurrency;
mod lints;
mod metrics;
mod qlog_check;
mod scan;

use lints::SourceFile;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Directories whose `.rs` files are scanned by the no-panic lint.
const NO_PANIC_SCOPE: &[&str] = &["crates/wire/src", "crates/io/src", "crates/telemetry/src"];
/// Individual extra files in no-panic scope.
const NO_PANIC_FILES: &[&str] = &["crates/util/src/varint.rs", "crates/core/src/buffer.rs"];
/// Directories scanned by the pn-discipline lint (xtask itself excluded —
/// its allowlist/test fixtures legitimately spell the forbidden tokens).
const PN_SCOPE: &[&str] = &[
    "crates/core/src",
    "crates/wire/src",
    "crates/io/src",
    "crates/util/src",
    "crates/cc/src",
    "crates/crypto/src",
    "crates/netsim/src",
];
/// Directory scanned by the channel-topology lint: the only crate with
/// cross-thread channels on a datapath.
const CHANNEL_SCOPE: &str = "crates/io/src";
/// Files exempt from the atomic-ordering lint: the model checker
/// deliberately executes modelled atomics at SeqCst (the scheduler, not
/// the hardware, supplies weak behaviours).
const ATOMIC_EXEMPT: &[&str] = &["crates/util/src/model.rs"];

fn workspace_root() -> PathBuf {
    // crates/xtask/ -> crates/ -> workspace root
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("xtask lives two levels below the workspace root")
        .to_path_buf()
}

/// Collects `.rs` files under `dir`, recursively, sorted for stable output.
fn rust_files(dir: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        let Ok(entries) = std::fs::read_dir(&d) else {
            continue;
        };
        for entry in entries.flatten() {
            let p = entry.path();
            if p.is_dir() {
                stack.push(p);
            } else if p.extension().is_some_and(|e| e == "rs") {
                out.push(p);
            }
        }
    }
    out.sort();
    out
}

fn load(root: &Path, path: &Path) -> Option<SourceFile> {
    let content = std::fs::read_to_string(path).ok()?;
    let rel = path
        .strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/");
    Some(SourceFile { path: rel, content })
}

fn run_lint(root: &Path, verbose: bool) -> ExitCode {
    let mut violations = Vec::new();
    let mut scanned = 0usize;

    // Lint 1: frame exhaustiveness.
    let frame_rs = root.join("crates/wire/src/frame.rs");
    match load(root, &frame_rs) {
        Some(frame_file) => {
            let variants = lints::frame_variants(&frame_file);
            if variants.is_empty() {
                eprintln!(
                    "xtask: error: could not read `enum Frame` variants from {}",
                    frame_file.path
                );
                return ExitCode::FAILURE;
            }
            if verbose {
                eprintln!(
                    "xtask: frame-exhaustiveness: {} variants x {} sites",
                    variants.len(),
                    lints::FRAME_SITES.len()
                );
            }
            for &(suffix, impl_ty, fn_name, role) in lints::FRAME_SITES {
                match load(root, &root.join(suffix)) {
                    Some(site) => {
                        violations.extend(lints::check_frame_site(
                            &site, impl_ty, fn_name, role, &variants,
                        ));
                        scanned += 1;
                    }
                    None => {
                        eprintln!("xtask: error: missing match-site file {suffix}");
                        return ExitCode::FAILURE;
                    }
                }
            }
        }
        None => {
            eprintln!("xtask: error: cannot read {}", frame_rs.display());
            return ExitCode::FAILURE;
        }
    }

    // Lint 2: no-panic protocol paths.
    let mut no_panic_targets: Vec<PathBuf> = NO_PANIC_SCOPE
        .iter()
        .flat_map(|d| rust_files(&root.join(d)))
        .collect();
    no_panic_targets.extend(NO_PANIC_FILES.iter().map(|f| root.join(f)));
    for path in &no_panic_targets {
        if let Some(file) = load(root, path) {
            violations.extend(lints::check_no_panic(&file));
            scanned += 1;
        }
    }

    // Lint 3: packet-number discipline.
    for path in PN_SCOPE.iter().flat_map(|d| rust_files(&root.join(d))) {
        if let Some(file) = load(root, &path) {
            violations.extend(lints::check_pn_discipline(&file));
            scanned += 1;
        }
    }

    // Lints 4–6: concurrency (DESIGN.md §14). Scope: every crate's src
    // tree except xtask itself (its fixtures spell the forbidden tokens).
    let concurrency_files: Vec<SourceFile> = rust_files(&root.join("crates"))
        .into_iter()
        .filter_map(|p| load(root, &p))
        .filter(|f| f.path.contains("/src/") && !f.path.starts_with("crates/xtask"))
        .collect();

    // Lint 4: atomic-ordering against the checked registry.
    let atomics_path = root.join("crates/xtask/atomics.toml");
    let atomics = match std::fs::read_to_string(&atomics_path)
        .map_err(|e| format!("cannot read {}: {e}", atomics_path.display()))
        .and_then(|t| concurrency::parse_atomics_registry(&t, "crates/xtask/atomics.toml"))
    {
        Ok(r) => r,
        Err(e) => {
            eprintln!("xtask: error: {e}");
            return ExitCode::FAILURE;
        }
    };
    if verbose {
        eprintln!(
            "xtask: atomic-ordering: {} registered atomics",
            atomics.len()
        );
        for a in &atomics {
            eprintln!(
                "xtask: atomics.toml: {} ({:?}): {}",
                a.name, a.role, a.justification
            );
        }
    }
    for file in &concurrency_files {
        if ATOMIC_EXEMPT.iter().any(|e| file.path.ends_with(e)) {
            continue;
        }
        violations.extend(concurrency::check_atomic_ordering(file, &atomics));
        scanned += 1;
    }
    violations.extend(concurrency::check_atomic_registry_live(
        &atomics,
        &concurrency_files,
    ));

    // Lint 5: unsafe-audit.
    for file in &concurrency_files {
        violations.extend(concurrency::check_unsafe_audit(file));
    }

    // Lint 6: channel-topology against the declared topology.
    let channels_path = root.join("crates/xtask/channels.toml");
    let (channels, sites) = match std::fs::read_to_string(&channels_path)
        .map_err(|e| format!("cannot read {}: {e}", channels_path.display()))
        .and_then(|t| concurrency::parse_channels_registry(&t, "crates/xtask/channels.toml"))
    {
        Ok(r) => r,
        Err(e) => {
            eprintln!("xtask: error: {e}");
            return ExitCode::FAILURE;
        }
    };
    if verbose {
        eprintln!(
            "xtask: channel-topology: {} channels, {} declared sites",
            channels.len(),
            sites.len()
        );
    }
    let mut seen = vec![false; sites.len()];
    for file in concurrency_files
        .iter()
        .filter(|f| f.path.starts_with(CHANNEL_SCOPE))
    {
        violations.extend(concurrency::check_channel_topology(
            file, &channels, &sites, &mut seen,
        ));
    }
    violations.extend(concurrency::finish_channel_topology(
        &channels,
        &sites,
        &seen,
        "crates/xtask/channels.toml",
    ));

    // Lint 7: metrics-registry against the exported scrape surface
    // (DESIGN.md §15). Scans the *raw* plane source — the family names
    // live inside string literals the stripped view erases.
    let metrics_path = root.join("crates/xtask/metrics.toml");
    let metrics_registry = match std::fs::read_to_string(&metrics_path)
        .map_err(|e| format!("cannot read {}: {e}", metrics_path.display()))
        .and_then(|t| metrics::parse_metrics_registry(&t, "crates/xtask/metrics.toml"))
    {
        Ok(r) => r,
        Err(e) => {
            eprintln!("xtask: error: {e}");
            return ExitCode::FAILURE;
        }
    };
    if verbose {
        eprintln!(
            "xtask: metrics-registry: {} registered families",
            metrics_registry.len()
        );
        for m in &metrics_registry {
            eprintln!("xtask: metrics.toml: {} ({:?}): {}", m.name, m.kind, m.help);
        }
    }
    match load(root, &root.join(metrics::PLANE_FILE)) {
        Some(plane_file) => {
            violations.extend(metrics::check_metrics_coverage(
                &metrics_registry,
                &plane_file,
            ));
            scanned += 1;
        }
        None => {
            eprintln!("xtask: error: cannot read {}", metrics::PLANE_FILE);
            return ExitCode::FAILURE;
        }
    }

    // Allowlist (no-panic only).
    let allow_path = root.join("crates/xtask/allowlist.txt");
    let allow = std::fs::read_to_string(&allow_path)
        .map(|t| lints::parse_allowlist(&t))
        .unwrap_or_default();
    if verbose {
        for a in &allow {
            eprintln!(
                "xtask: allowlist: {} :: {} ({})",
                a.path_suffix, a.pattern, a.reason
            );
        }
    }
    let before = violations.len();
    let violations = lints::apply_allowlist(violations, &allow);
    let suppressed = before - violations.len();

    if violations.is_empty() {
        println!("xtask lint: clean ({scanned} files scanned, {suppressed} allowlisted site(s))");
        ExitCode::SUCCESS
    } else {
        for v in &violations {
            eprintln!("error: {v}");
            if !v.line_text.is_empty() {
                eprintln!("    {}", v.line_text.trim());
            }
        }
        eprintln!(
            "xtask lint: {} violation(s) in {scanned} scanned files \
             ({suppressed} allowlisted)",
            violations.len()
        );
        ExitCode::FAILURE
    }
}

fn run_qlog_check(file: Option<&str>) -> ExitCode {
    let Some(file) = file else {
        eprintln!("usage: cargo xtask qlog-check FILE");
        return ExitCode::FAILURE;
    };
    let text = match std::fs::read_to_string(file) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("xtask qlog-check: cannot read {file}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match qlog_check::validate_lines(&text) {
        Ok(events) => {
            println!("xtask qlog-check: {file}: {events} event line(s), all valid JSON objects");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("xtask qlog-check: {file}: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "Tasks:\n  lint              run the MPQUIC protocol-invariant lints\n  qlog-check FILE   validate a streaming qlog trace (one JSON object per line)";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let verbose = args.iter().any(|a| a == "--verbose" || a == "-v");
    let mut positional = args.iter().filter(|a| !a.starts_with('-'));
    match positional.next().map(String::as_str) {
        Some("lint") => run_lint(&workspace_root(), verbose),
        Some("qlog-check") => run_qlog_check(positional.next().map(String::as_str)),
        Some(other) => {
            eprintln!("xtask: unknown task `{other}`\n\n{USAGE}");
            ExitCode::FAILURE
        }
        None => {
            eprintln!("usage: cargo xtask <task>\n\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod workspace_tests {
    use super::*;

    /// The real workspace must lint clean — this is the acceptance
    /// criterion wired into `cargo test` as well as CI's `cargo xtask lint`.
    #[test]
    fn workspace_is_clean() {
        let root = workspace_root();
        assert!(root.join("Cargo.toml").exists());
        assert_eq!(run_lint(&root, false), ExitCode::SUCCESS);
    }
}
