//! `cargo xtask qlog-check FILE` — validates a streaming qlog trace.
//!
//! The streaming writer (`mpquic_telemetry::StreamingQlog`) emits one
//! self-contained JSON object per line. This checker verifies exactly
//! that, with a dependency-free recursive-descent JSON parser: any
//! truncated, interleaved or malformed line fails the check, so CI can
//! gate on trace integrity after running the loopback example.

/// Validates every non-empty line of `text` as a standalone JSON object.
/// Returns the number of event lines, or the first failure with its
/// 1-based line number. An entirely empty trace is an error: the writer
/// always records at least the first packet.
pub fn validate_lines(text: &str) -> Result<usize, String> {
    let mut events = 0usize;
    for (index, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        validate_object(line).map_err(|e| format!("line {}: {e}", index + 1))?;
        events += 1;
    }
    if events == 0 {
        return Err("trace contains no event lines".to_string());
    }
    Ok(events)
}

/// Validates one line as a single JSON object with nothing after it.
fn validate_object(line: &str) -> Result<(), String> {
    let mut p = Parser {
        bytes: line.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    if p.peek() != Some(b'{') {
        return Err("does not start with a JSON object".to_string());
    }
    p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing bytes at column {}", p.pos + 1));
    }
    Ok(())
}

/// Minimal JSON syntax parser (validation only, nothing is built).
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek();
        if b.is_some() {
            self.pos += 1;
        }
        b
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), String> {
        if self.bump() == Some(byte) {
            Ok(())
        } else {
            Err(format!(
                "expected {:?} at column {}",
                byte as char, self.pos
            ))
        }
    }

    fn value(&mut self) -> Result<(), String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string(),
            Some(b't') => self.literal("true"),
            Some(b'f') => self.literal("false"),
            Some(b'n') => self.literal("null"),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(format!(
                "unexpected {:?} at column {}",
                other as char,
                self.pos + 1
            )),
            None => Err("unexpected end of line".to_string()),
        }
    }

    fn object(&mut self) -> Result<(), String> {
        self.expect(b'{')?;
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.value()?;
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(()),
                _ => return Err(format!("expected ',' or '}}' at column {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<(), String> {
        self.expect(b'[')?;
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            self.value()?;
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(()),
                _ => return Err(format!("expected ',' or ']' at column {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<(), String> {
        self.expect(b'"')?;
        loop {
            match self.bump() {
                Some(b'"') => return Ok(()),
                Some(b'\\') => match self.bump() {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => {}
                    Some(b'u') => {
                        for _ in 0..4 {
                            if !self.bump().is_some_and(|b| b.is_ascii_hexdigit()) {
                                return Err(format!("bad \\u escape at column {}", self.pos));
                            }
                        }
                    }
                    _ => return Err(format!("bad escape at column {}", self.pos)),
                },
                Some(b) if b < 0x20 => {
                    return Err(format!("raw control byte in string at column {}", self.pos))
                }
                Some(_) => {}
                None => return Err("unterminated string".to_string()),
            }
        }
    }

    fn number(&mut self) -> Result<(), String> {
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digits_start = self.pos;
        while self.peek().is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.pos == digits_start {
            return Err(format!("expected digits at column {}", self.pos + 1));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            let frac_start = self.pos;
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
            if self.pos == frac_start {
                return Err(format!(
                    "expected fraction digits at column {}",
                    self.pos + 1
                ));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            let exp_start = self.pos;
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
            if self.pos == exp_start {
                return Err(format!(
                    "expected exponent digits at column {}",
                    self.pos + 1
                ));
            }
        }
        Ok(())
    }

    fn literal(&mut self, word: &str) -> Result<(), String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(())
        } else {
            Err(format!("bad literal at column {}", self.pos + 1))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_a_real_trace_shape() {
        let trace = concat!(
            r#"{"name":"packet_sent","data":{"time":0.001,"path":0,"packet_number":0,"size":66,"ack_eliciting":true}}"#,
            "\n",
            r#"{"name":"scheduler_decision","data":{"chosen_path":1,"candidates":[0,1],"duplicate_on":[],"reason":"lowest_rtt"}}"#,
            "\n\n",
            r#"{"name":"metrics_updated","data":{"path":1,"srtt_us":1402,"rttvar_us":-3,"cwnd":1.5e4}}"#,
            "\n",
        );
        assert_eq!(validate_lines(trace), Ok(3));
    }

    #[test]
    fn rejects_truncation_and_trailing_garbage() {
        assert!(validate_lines(r#"{"name":"rto","data":{"path":0"#).is_err());
        assert!(validate_lines("{\"a\":1}}\n").is_err());
        assert!(
            validate_lines("[1,2,3]\n").is_err(),
            "arrays are not events"
        );
        assert!(validate_lines("\n  \n").is_err(), "empty trace");
    }

    #[test]
    fn validates_strings_numbers_and_escapes() {
        assert_eq!(
            validate_lines("{\"s\":\"a\\n\\u00e9\",\"n\":-0.5e-2}\n"),
            Ok(1)
        );
        assert!(validate_lines("{\"s\":\"bad\\x\"}\n").is_err());
        assert!(validate_lines("{\"n\":1.}\n").is_err());
        assert!(validate_lines("{\"n\":+1}\n").is_err());
    }
}
