//! The MPQUIC lint catalogue.
//!
//! Three lints, each guarding a protocol invariant from the paper that the
//! compiler cannot check (see DESIGN.md §9 for the full table):
//!
//! 1. **frame-exhaustiveness** — every `Frame` variant must appear in each
//!    of the four lifecycle match sites (encode, decode, on-ack, on-loss),
//!    and none of those sites may contain a wildcard `_ =>` arm. A new
//!    frame type therefore cannot be added without deciding its encode,
//!    decode, acked and lost behaviour explicitly.
//! 2. **no-panic** — `unwrap`/`expect`/`panic!`-family macros and
//!    slice/array indexing are denied in the wire codec and the real-socket
//!    io driver. A malformed datagram must surface as a `DecodeError`, not
//!    a remote crash. Justified sites go in `allowlist.txt` next to this
//!    crate, one `path-suffix :: line-pattern :: reason` per line.
//! 3. **pn-discipline** — the per-path packet-number counter (`next_pn`)
//!    may only be touched inside its owning module (`core/src/recovery.rs`),
//!    and the allocator `next_packet_number()` may only be called from the
//!    owning module and the one sanctioned packetizer site
//!    (`Connection::finalize`). Monotonic, never-reused packet numbers are
//!    what make MPQUIC's RTT samples unambiguous (paper §3).

use crate::scan;
use std::fmt;
use std::ops::Range;

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// Which lint fired.
    pub lint: &'static str,
    /// Human-readable explanation.
    pub message: String,
    /// The offending source line (trimmed), used for allowlist matching.
    pub line_text: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.lint, self.message
        )
    }
}

/// A loaded source file (tests construct these in memory).
pub struct SourceFile {
    /// Workspace-relative path.
    pub path: String,
    /// Raw contents.
    pub content: String,
}

impl SourceFile {
    /// Stripped view plus the ranges to ignore (`#[cfg(test)]` items).
    fn prepared(&self) -> (String, Vec<Range<usize>>) {
        let stripped = scan::strip(&self.content);
        let tests = scan::test_item_ranges(&stripped);
        (stripped, tests)
    }
}

fn in_ranges(ranges: &[Range<usize>], at: usize) -> bool {
    ranges.iter().any(|r| r.contains(&at))
}

// ---------------------------------------------------------------------
// Lint 1: frame exhaustiveness
// ---------------------------------------------------------------------

/// The four lifecycle match sites every `Frame` variant must appear in.
/// `(file suffix, impl type, fn name, role)`.
pub const FRAME_SITES: &[(&str, &str, &str, &str)] = &[
    ("crates/wire/src/frame.rs", "Frame", "encode", "encode"),
    ("crates/wire/src/frame.rs", "Frame", "decode", "decode"),
    ("crates/wire/src/frame.rs", "Frame", "wire_size", "sizing"),
    ("crates/wire/src/frame.rs", "Frame", "frame_type", "typing"),
    (
        "crates/core/src/connection.rs",
        "Connection",
        "on_frame_acked",
        "on-ack",
    ),
    (
        "crates/core/src/connection.rs",
        "Connection",
        "requeue_lost_frames",
        "on-loss",
    ),
    (
        "crates/core/src/connection.rs",
        "Connection",
        "handle_frame",
        "dispatch",
    ),
];

/// Reads the `Frame` variant list out of the wire crate's source.
pub fn frame_variants(frame_rs: &SourceFile) -> Vec<String> {
    let stripped = scan::strip(&frame_rs.content);
    scan::enum_variants(&stripped, "Frame")
}

/// Checks one match site: every variant must be named (`Frame::V`), and no
/// wildcard `_ =>` arm may appear.
pub fn check_frame_site(
    file: &SourceFile,
    impl_ty: &str,
    fn_name: &str,
    role: &str,
    variants: &[String],
) -> Vec<Violation> {
    let mut out = Vec::new();
    let stripped = scan::strip(&file.content);
    let Some(body_range) = scan::fn_body(&stripped, Some(impl_ty), fn_name) else {
        out.push(Violation {
            file: file.path.clone(),
            line: 1,
            lint: "frame-exhaustiveness",
            message: format!("match site `{impl_ty}::{fn_name}` ({role}) not found"),
            line_text: String::new(),
        });
        return out;
    };
    let body = &stripped[body_range.clone()];
    for v in variants {
        let pattern = format!("Frame::{v}");
        let present = scan::word_offsets(body, "Frame").iter().any(|&at| {
            body[at..]
                .strip_prefix("Frame")
                .map(|rest| {
                    let rest = rest.trim_start();
                    rest.strip_prefix("::")
                        .map(|r| {
                            let r = r.trim_start();
                            r.starts_with(v.as_str())
                                && !r[v.len()..]
                                    .starts_with(|c: char| c.is_alphanumeric() || c == '_')
                        })
                        .unwrap_or(false)
                })
                .unwrap_or(false)
        });
        if !present {
            out.push(Violation {
                file: file.path.clone(),
                line: scan::line_of(&stripped, body_range.start),
                lint: "frame-exhaustiveness",
                message: format!(
                    "variant `{pattern}` missing from {role} site `{impl_ty}::{fn_name}`"
                ),
                line_text: String::new(),
            });
        }
    }
    // Wildcard arms: a standalone `_` whose next token is `=>`.
    let bytes = body.as_bytes();
    for at in scan::word_offsets(body, "_") {
        let mut j = at + 1;
        while j < bytes.len() && bytes[j].is_ascii_whitespace() {
            j += 1;
        }
        if bytes.get(j) == Some(&b'=') && bytes.get(j + 1) == Some(&b'>') {
            let abs = body_range.start + at;
            out.push(Violation {
                file: file.path.clone(),
                line: scan::line_of(&stripped, abs),
                lint: "frame-exhaustiveness",
                message: format!(
                    "wildcard `_ =>` arm in {role} site `{impl_ty}::{fn_name}` \
                     would silently swallow new Frame variants"
                ),
                line_text: scan::line_text(&file.content, abs).to_string(),
            });
        }
    }
    out
}

// ---------------------------------------------------------------------
// Lint 2: no-panic protocol paths
// ---------------------------------------------------------------------

/// Panicking constructs denied on protocol paths: method calls and macros.
const PANIC_METHODS: &[&str] = &["unwrap", "expect"];
const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// Keywords that legitimately precede `[` without it being an index
/// expression (`&mut [u8]`, `return [a, b]`, ...).
const NON_INDEX_KEYWORDS: &[&str] = &[
    "mut", "in", "return", "else", "as", "dyn", "impl", "ref", "box", "move", "where", "use",
    "pub", "let", "static", "const", "break", "continue", "match", "if",
];

/// Scans one file for panicking constructs outside `#[cfg(test)]` items.
pub fn check_no_panic(file: &SourceFile) -> Vec<Violation> {
    let (stripped, tests) = file.prepared();
    let b = stripped.as_bytes();
    let mut out = Vec::new();
    let mut push = |at: usize, what: String, stripped: &str| {
        out.push(Violation {
            file: file.path.clone(),
            line: scan::line_of(stripped, at),
            lint: "no-panic",
            message: what,
            line_text: scan::line_text(&file.content, at).to_string(),
        });
    };

    for method in PANIC_METHODS {
        for at in scan::word_offsets(&stripped, method) {
            if in_ranges(&tests, at) {
                continue;
            }
            // Must be a method call: preceded by `.`, followed by `(`.
            let preceded = at > 0 && b[at - 1] == b'.';
            let mut j = at + method.len();
            while j < b.len() && b[j].is_ascii_whitespace() {
                j += 1;
            }
            if preceded && b.get(j) == Some(&b'(') {
                push(at, format!(".{method}() on a protocol path"), &stripped);
            }
        }
    }
    for mac in PANIC_MACROS {
        for at in scan::word_offsets(&stripped, mac) {
            if in_ranges(&tests, at) {
                continue;
            }
            if b.get(at + mac.len()) == Some(&b'!') {
                push(at, format!("{mac}! on a protocol path"), &stripped);
            }
        }
    }
    // Slice/array indexing: `expr[...]` panics out-of-bounds. An opening
    // `[` is an index when the previous non-space char ends an expression
    // (identifier, `)`, `]`, `?`) and the preceding word is not a keyword.
    let mut i = 0;
    while i < b.len() {
        if b[i] == b'[' && !in_ranges(&tests, i) {
            let mut p = i;
            while p > 0 && b[p - 1].is_ascii_whitespace() && b[p - 1] != b'\n' {
                p -= 1;
            }
            if p > 0 {
                let prev = b[p - 1];
                let expr_end = prev.is_ascii_alphanumeric()
                    || prev == b'_'
                    || prev == b')'
                    || prev == b']'
                    || prev == b'?';
                if expr_end {
                    // Extract the preceding word (if identifier-like).
                    let mut w = p;
                    while w > 0 && (b[w - 1].is_ascii_alphanumeric() || b[w - 1] == b'_') {
                        w -= 1;
                    }
                    let word = &stripped[w..p];
                    if !NON_INDEX_KEYWORDS.contains(&word) {
                        push(
                            i,
                            format!(
                                "slice/array indexing `{}[..]` on a protocol path \
                                 (use .get()/.first() and return DecodeError)",
                                if word.is_empty() { "expr" } else { word }
                            ),
                            &stripped,
                        );
                    }
                }
            }
        }
        i += 1;
    }
    out
}

// ---------------------------------------------------------------------
// Lint 3: packet-number discipline
// ---------------------------------------------------------------------

/// The module that owns per-path packet-number state.
pub const PN_OWNER: &str = "crates/core/src/recovery.rs";
/// The one sanctioned allocation site outside the owner.
pub const PN_PACKETIZER: (&str, &str, &str) =
    ("crates/core/src/connection.rs", "Connection", "finalize");

/// Checks one file for packet-number discipline: no `next_pn` access and
/// no `next_packet_number()` call outside the owner/packetizer.
pub fn check_pn_discipline(file: &SourceFile) -> Vec<Violation> {
    if file.path.ends_with(PN_OWNER) {
        return Vec::new();
    }
    let (stripped, tests) = file.prepared();
    let mut out = Vec::new();
    for at in scan::word_offsets(&stripped, "next_pn") {
        if in_ranges(&tests, at) {
            continue;
        }
        out.push(Violation {
            file: file.path.clone(),
            line: scan::line_of(&stripped, at),
            lint: "pn-discipline",
            message: "direct access to per-path packet-number counter `next_pn` \
                      outside its owning module (core/src/recovery.rs)"
                .to_string(),
            line_text: scan::line_text(&file.content, at).to_string(),
        });
    }
    let packetizer_body = if file.path.ends_with(PN_PACKETIZER.0) {
        scan::fn_body(&stripped, Some(PN_PACKETIZER.1), PN_PACKETIZER.2)
    } else {
        None
    };
    for at in scan::word_offsets(&stripped, "next_packet_number") {
        if in_ranges(&tests, at) {
            continue;
        }
        if packetizer_body.as_ref().is_some_and(|r| r.contains(&at)) {
            continue;
        }
        out.push(Violation {
            file: file.path.clone(),
            line: scan::line_of(&stripped, at),
            lint: "pn-discipline",
            message: format!(
                "packet-number allocation outside the owning module and the \
                 sanctioned packetizer site `{}::{}`",
                PN_PACKETIZER.1, PN_PACKETIZER.2
            ),
            line_text: scan::line_text(&file.content, at).to_string(),
        });
    }
    out
}

// ---------------------------------------------------------------------
// Allowlist
// ---------------------------------------------------------------------

/// One allowlist entry: `path-suffix :: line-pattern :: reason`.
pub struct AllowEntry {
    /// Suffix of the workspace-relative path the entry applies to.
    pub path_suffix: String,
    /// Substring that must appear on the offending line.
    pub pattern: String,
    /// Why the site is justified (shown in `xtask lint --verbose`).
    pub reason: String,
}

/// Parses `allowlist.txt`: `#` comments and blank lines ignored.
pub fn parse_allowlist(text: &str) -> Vec<AllowEntry> {
    text.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .filter_map(|l| {
            let mut parts = l.splitn(3, "::").map(str::trim);
            Some(AllowEntry {
                path_suffix: parts.next()?.to_string(),
                pattern: parts.next()?.to_string(),
                reason: parts.next().unwrap_or("").to_string(),
            })
        })
        .collect()
}

/// Filters no-panic violations through the allowlist. Exhaustiveness and
/// pn-discipline findings are never allowlistable: those invariants have
/// no justified exceptions.
pub fn apply_allowlist(violations: Vec<Violation>, allow: &[AllowEntry]) -> Vec<Violation> {
    violations
        .into_iter()
        .filter(|v| {
            v.lint != "no-panic"
                || !allow
                    .iter()
                    .any(|a| v.file.ends_with(&a.path_suffix) && v.line_text.contains(&a.pattern))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(path: &str, content: &str) -> SourceFile {
        SourceFile {
            path: path.to_string(),
            content: content.to_string(),
        }
    }

    const FRAME_ENUM: &str =
        "pub enum Frame { Padding { len: usize }, Ping, Ack(AckFrame), Stream(StreamFrame) }";

    #[test]
    fn complete_site_is_clean() {
        let variants = frame_variants(&file("frame.rs", FRAME_ENUM));
        assert_eq!(variants, vec!["Padding", "Ping", "Ack", "Stream"]);
        let site = file(
            "crates/wire/src/frame.rs",
            "impl Frame { fn encode(&self) { match self { \
             Frame::Padding { .. } => a(), Frame::Ping => b(), \
             Frame::Ack(x) => c(x), Frame::Stream(s) => d(s), } } }",
        );
        let v = check_frame_site(&site, "Frame", "encode", "encode", &variants);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn removed_variant_is_flagged() {
        // The acceptance-criterion demonstration: drop `Frame::Stream`
        // from the match and the lint must fail.
        let variants = frame_variants(&file("frame.rs", FRAME_ENUM));
        let site = file(
            "crates/wire/src/frame.rs",
            "impl Frame { fn encode(&self) { match self { \
             Frame::Padding { .. } => a(), Frame::Ping => b(), \
             Frame::Ack(x) => c(x), } } }",
        );
        let v = check_frame_site(&site, "Frame", "encode", "encode", &variants);
        assert_eq!(v.len(), 1);
        assert!(v[0].message.contains("Frame::Stream"));
    }

    #[test]
    fn wildcard_arm_is_flagged() {
        let variants = frame_variants(&file("frame.rs", FRAME_ENUM));
        let site = file(
            "crates/wire/src/frame.rs",
            "impl Frame { fn encode(&self) { match self { \
             Frame::Padding { .. } => a(), Frame::Ping => b(), \
             Frame::Ack(x) => c(x), Frame::Stream(s) => d(s), _ => e(), } } }",
        );
        let v = check_frame_site(&site, "Frame", "encode", "encode", &variants);
        assert_eq!(v.len(), 1);
        assert!(v[0].message.contains("wildcard"));
    }

    #[test]
    fn tuple_wildcards_are_not_wildcard_arms() {
        let variants = vec!["Ping".to_string()];
        let site = file(
            "f.rs",
            "impl Frame { fn encode(&self) { match self { Frame::Ping => b(), \
             Frame::Ack(_) => c(), Frame::Stream(_s) => d(), } } }",
        );
        let v = check_frame_site(&site, "Frame", "encode", "encode", &variants);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn unwrap_in_decode_path_is_flagged() {
        // The other acceptance-criterion demonstration: add an `unwrap()`
        // to a wire decode path and the lint must fail.
        let src = file(
            "crates/wire/src/frame.rs",
            "fn decode(buf: &mut B) -> Result<Frame, DecodeError> {\n\
             let first = buf.chunk().first().unwrap();\n Ok(x) }",
        );
        let v = check_no_panic(&src);
        assert_eq!(v.len(), 1);
        assert!(v[0].message.contains("unwrap"));
        assert_eq!(v[0].line, 2);
    }

    #[test]
    fn panics_inside_test_mod_are_exempt() {
        let src = file(
            "crates/wire/src/frame.rs",
            "fn ok() -> u8 { 0 }\n#[cfg(test)]\nmod tests {\n\
             #[test] fn t() { decode().unwrap(); assert!(x[0] == 1); panic!(); }\n}",
        );
        assert!(check_no_panic(&src).is_empty());
    }

    #[test]
    fn indexing_is_flagged_but_types_are_not() {
        let src = file(
            "f.rs",
            "fn f(buf: &mut [u8], arr: [u8; 4]) -> u8 {\n\
             let x: [u8; 2] = [0, 1];\n\
             let v = vec![1, 2];\n\
             buf[0]\n}",
        );
        let v = check_no_panic(&src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].line, 4);
        assert!(v[0].message.contains("indexing"));
    }

    #[test]
    fn slicing_is_flagged() {
        let src = file("f.rs", "fn f(b: &[u8], n: usize) -> &[u8] { &b[..n] }");
        let v = check_no_panic(&src);
        assert_eq!(v.len(), 1, "{v:?}");
    }

    #[test]
    fn comments_and_strings_do_not_trigger() {
        let src = file(
            "f.rs",
            "/// calls .unwrap() — see panic! docs\n\
             fn f() { g(\"x.unwrap() panic! a[0]\"); }",
        );
        assert!(check_no_panic(&src).is_empty());
    }

    #[test]
    fn pn_mutation_outside_owner_is_flagged() {
        let src = file(
            "crates/core/src/scheduler.rs",
            "fn cheat(r: &mut Recovery) { r.next_pn += 1; }",
        );
        let v = check_pn_discipline(&src);
        assert_eq!(v.len(), 1);
        assert!(v[0].message.contains("next_pn"));
    }

    #[test]
    fn pn_allocation_allowed_only_in_finalize() {
        let in_finalize = file(
            "crates/core/src/connection.rs",
            "impl Connection { fn finalize(&mut self) { \
             let pn = path.recovery.next_packet_number(); } }",
        );
        assert!(check_pn_discipline(&in_finalize).is_empty());
        let elsewhere = file(
            "crates/core/src/connection.rs",
            "impl Connection { fn emit_data(&mut self) { \
             let pn = path.recovery.next_packet_number(); } }",
        );
        assert_eq!(check_pn_discipline(&elsewhere).len(), 1);
    }

    #[test]
    fn owner_module_is_exempt() {
        let src = file(
            "crates/core/src/recovery.rs",
            "impl Recovery { pub fn next_packet_number(&mut self) -> u64 { \
             let pn = self.next_pn; self.next_pn += 1; pn } }",
        );
        assert!(check_pn_discipline(&src).is_empty());
    }

    #[test]
    fn allowlist_suppresses_matching_no_panic_only() {
        let allow = parse_allowlist(
            "# justified sites\n\
             driver.rs :: &self.buf[..len] :: len bounded by poll_recv contract\n",
        );
        let v = vec![
            Violation {
                file: "crates/io/src/driver.rs".into(),
                line: 10,
                lint: "no-panic",
                message: "indexing".into(),
                line_text: ".handle_datagram(now, local, remote, &self.buf[..len]);".into(),
            },
            Violation {
                file: "crates/io/src/driver.rs".into(),
                line: 20,
                lint: "pn-discipline",
                message: "next_pn".into(),
                line_text: "&self.buf[..len]".into(),
            },
        ];
        let kept = apply_allowlist(v, &allow);
        assert_eq!(kept.len(), 1);
        assert_eq!(kept[0].lint, "pn-discipline");
    }
}
