//! Switchable concurrency primitives: `std` normally, the in-tree
//! model checker under `--cfg loom`.
//!
//! Code that participates in a cross-thread protocol (the demux→shard
//! ingress channel, the buffer-return control channel, stats counters,
//! the idle-backoff ladder) imports its primitives from here instead
//! of `std::sync`/`std::thread`/`std::hint`. A normal build re-exports
//! the `std` types — zero overhead, identical semantics. A build with
//! `RUSTFLAGS="--cfg loom"` swaps in the [`crate::model`] types, whose
//! operations are scheduling points for the exhaustive interleaving
//! explorer, so the same production code paths can be model-checked
//! unmodified (the flag is named for the `loom` crate whose role the
//! in-tree explorer plays).
//!
//! Two deliberate asymmetries under the model:
//!
//! - [`thread::sleep`] yields instead of sleeping (model time does not
//!   advance), so backoff ladders stay schedulable.
//! - [`hint::spin_loop`] yields, because a pause instruction cannot
//!   make another model thread run.
//!
//! OS-facing thread management (`std::thread::spawn` for the demux and
//! shard workers, socket I/O) intentionally stays on `std`: model
//! tests drive the extracted cores directly rather than binding
//! sockets.

/// Shared-ownership pointer; the model does not instrument `Arc`
/// itself, so both builds use [`std::sync::Arc`].
pub use std::sync::Arc;

#[cfg(not(loom))]
pub mod atomic {
    //! Atomic types (std build).
    pub use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
}

#[cfg(loom)]
pub mod atomic {
    //! Atomic types (model build).
    pub use crate::model::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize};
    pub use std::sync::atomic::Ordering;
}

#[cfg(not(loom))]
pub mod mpsc {
    //! Channels (std build).
    pub use std::sync::mpsc::{
        channel, sync_channel, Receiver, RecvError, SendError, Sender, SyncSender, TryRecvError,
        TrySendError,
    };
}

#[cfg(loom)]
pub mod mpsc {
    //! Channels (model build).
    pub use crate::model::sync::mpsc::{
        channel, sync_channel, Receiver, RecvError, SendError, Sender, SyncSender, TryRecvError,
        TrySendError,
    };
}

#[cfg(not(loom))]
pub mod thread {
    //! Scheduling-relevant thread operations (std build).
    pub use std::thread::{sleep, yield_now};
}

#[cfg(loom)]
pub mod thread {
    //! Scheduling-relevant thread operations (model build).
    pub use crate::model::thread::{sleep, yield_now};
}

#[cfg(not(loom))]
pub mod hint {
    //! Spin hints (std build).
    pub use std::hint::spin_loop;
}

#[cfg(loom)]
pub mod hint {
    //! Spin hints (model build).
    pub use crate::model::hint::spin_loop;
}
