//! Statistics used by the paper's evaluation figures.
//!
//! The paper reports three kinds of summaries:
//!
//! * CDFs of per-scenario download-time ratios (Figs. 3, 5, 8, 9),
//! * box plots of the experimental aggregation benefit (Figs. 4, 6, 7, 10),
//! * the median of three repeated runs for every (scenario, protocol) pair.

use serde::{Deserialize, Serialize};

/// Arithmetic mean; `None` for an empty slice.
pub fn mean(values: &[f64]) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    Some(values.iter().sum::<f64>() / values.len() as f64)
}

/// Median of a slice (interpolated for even lengths); `None` when empty.
pub fn median(values: &[f64]) -> Option<f64> {
    percentile(values, 50.0)
}

/// Linearly interpolated percentile, `p` in `[0, 100]`; `None` when empty.
pub fn percentile(values: &[f64], p: f64) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    let mut sorted: Vec<f64> = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in percentile input"));
    Some(percentile_of_sorted(&sorted, p))
}

/// Percentile of an already-sorted slice (no allocation).
pub fn percentile_of_sorted(sorted: &[f64], p: f64) -> f64 {
    assert!(!sorted.is_empty());
    assert!((0.0..=100.0).contains(&p), "percentile out of range: {p}");
    if sorted.len() == 1 {
        return sorted[0];
    }
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = rank - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Box-plot five-number summary (min, first quartile, median, third
/// quartile, max), plus the mean — everything Figs. 4/6/7/10 display.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FiveNumber {
    /// Smallest observation.
    pub min: f64,
    /// 25th percentile.
    pub q1: f64,
    /// 50th percentile.
    pub median: f64,
    /// 75th percentile.
    pub q3: f64,
    /// Largest observation.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Number of observations.
    pub count: usize,
}

impl FiveNumber {
    /// Computes the summary; `None` for an empty slice.
    pub fn from(values: &[f64]) -> Option<FiveNumber> {
        if values.is_empty() {
            return None;
        }
        let mut sorted = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in summary input"));
        Some(FiveNumber {
            min: sorted[0],
            q1: percentile_of_sorted(&sorted, 25.0),
            median: percentile_of_sorted(&sorted, 50.0),
            q3: percentile_of_sorted(&sorted, 75.0),
            max: *sorted.last().unwrap(),
            mean: mean(values).unwrap(),
            count: values.len(),
        })
    }
}

/// An empirical CDF: sorted sample values with their cumulative
/// probabilities, as plotted in the paper's ratio figures.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Cdf {
    /// Sample values, sorted ascending.
    pub values: Vec<f64>,
}

impl Cdf {
    /// Builds a CDF from raw samples (NaNs are rejected by panic — they
    /// indicate a harness bug upstream).
    pub fn from_samples(samples: &[f64]) -> Cdf {
        let mut values = samples.to_vec();
        values.sort_by(|a, b| a.partial_cmp(b).expect("NaN in CDF input"));
        Cdf { values }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True if there are no samples.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Empirical `P(X <= x)`.
    pub fn probability_at(&self, x: f64) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        let count = self.values.partition_point(|&v| v <= x);
        count as f64 / self.values.len() as f64
    }

    /// Fraction of samples strictly greater than `x`. The paper's headline
    /// "MPQUIC outperforms MPTCP in 89% of scenarios" is
    /// `fraction_above(1.0)` of the MPTCP/MPQUIC time-ratio CDF.
    pub fn fraction_above(&self, x: f64) -> f64 {
        1.0 - self.probability_at(x)
    }

    /// Inverse CDF (quantile function) by linear interpolation.
    pub fn quantile(&self, p: f64) -> Option<f64> {
        if self.values.is_empty() {
            None
        } else {
            Some(percentile_of_sorted(&self.values, p * 100.0))
        }
    }

    /// `(value, cumulative probability)` points suitable for plotting or
    /// printing as the figure's series.
    pub fn points(&self) -> Vec<(f64, f64)> {
        let n = self.values.len();
        self.values
            .iter()
            .enumerate()
            .map(|(i, &v)| (v, (i + 1) as f64 / n as f64))
            .collect()
    }

    /// Downsamples the CDF to at most `max_points` evenly spaced quantile
    /// points, for compact text output of large experiment sweeps.
    pub fn sampled_points(&self, max_points: usize) -> Vec<(f64, f64)> {
        let pts = self.points();
        if pts.len() <= max_points || max_points == 0 {
            return pts;
        }
        let step = (pts.len() - 1) as f64 / (max_points - 1) as f64;
        (0..max_points)
            .map(|i| pts[(i as f64 * step).round() as usize])
            .collect()
    }
}

/// Picks the run whose value is the median of the repeats, returning its
/// index. With an even number of runs, the lower-middle one is used (a
/// concrete run must be chosen since the paper "analyzes the median run").
pub fn median_run_index(values: &[f64]) -> Option<usize> {
    if values.is_empty() {
        return None;
    }
    let mut idx: Vec<usize> = (0..values.len()).collect();
    idx.sort_by(|&a, &b| values[a].partial_cmp(&values[b]).expect("NaN in runs"));
    Some(idx[(values.len() - 1) / 2])
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn mean_median_basic() {
        assert_eq!(mean(&[]), None);
        assert_eq!(mean(&[2.0, 4.0]), Some(3.0));
        assert_eq!(median(&[1.0, 3.0, 2.0]), Some(2.0));
        assert_eq!(median(&[1.0, 2.0, 3.0, 4.0]), Some(2.5));
    }

    #[test]
    fn percentile_interpolates() {
        let v = [10.0, 20.0, 30.0, 40.0];
        assert_eq!(percentile(&v, 0.0), Some(10.0));
        assert_eq!(percentile(&v, 100.0), Some(40.0));
        assert_eq!(percentile(&v, 50.0), Some(25.0));
    }

    #[test]
    fn five_number_summary() {
        let v: Vec<f64> = (1..=5).map(|x| x as f64).collect();
        let s = FiveNumber::from(&v).unwrap();
        assert_eq!(s.min, 1.0);
        assert_eq!(s.q1, 2.0);
        assert_eq!(s.median, 3.0);
        assert_eq!(s.q3, 4.0);
        assert_eq!(s.max, 5.0);
        assert_eq!(s.mean, 3.0);
        assert_eq!(s.count, 5);
        assert!(FiveNumber::from(&[]).is_none());
    }

    #[test]
    fn cdf_probabilities() {
        let cdf = Cdf::from_samples(&[1.0, 2.0, 2.0, 4.0]);
        assert_eq!(cdf.probability_at(0.5), 0.0);
        assert_eq!(cdf.probability_at(1.0), 0.25);
        assert_eq!(cdf.probability_at(2.0), 0.75);
        assert_eq!(cdf.probability_at(5.0), 1.0);
        assert!((cdf.fraction_above(1.0) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn cdf_points_monotonic() {
        let cdf = Cdf::from_samples(&[3.0, 1.0, 2.0]);
        let pts = cdf.points();
        assert_eq!(pts.len(), 3);
        assert!(pts.windows(2).all(|w| w[0].0 <= w[1].0 && w[0].1 < w[1].1));
        assert_eq!(pts.last().unwrap().1, 1.0);
    }

    #[test]
    fn cdf_downsampling_preserves_endpoints() {
        let samples: Vec<f64> = (0..1000).map(|i| i as f64).collect();
        let cdf = Cdf::from_samples(&samples);
        let pts = cdf.sampled_points(11);
        assert_eq!(pts.len(), 11);
        assert_eq!(pts[0].0, 0.0);
        assert_eq!(pts[10].0, 999.0);
    }

    #[test]
    fn median_run_selection() {
        assert_eq!(median_run_index(&[]), None);
        assert_eq!(median_run_index(&[5.0]), Some(0));
        // runs: 9, 1, 5 -> median value 5 at index 2
        assert_eq!(median_run_index(&[9.0, 1.0, 5.0]), Some(2));
        // even count: lower middle of sorted [1,2,3,4] is 2 at index 0
        assert_eq!(median_run_index(&[2.0, 4.0, 1.0, 3.0]), Some(0));
    }

    proptest! {
        #[test]
        fn prop_quantile_within_range(samples in proptest::collection::vec(-1e6f64..1e6, 1..100), p in 0.0f64..=1.0) {
            let cdf = Cdf::from_samples(&samples);
            let q = cdf.quantile(p).unwrap();
            let lo = cdf.values.first().unwrap();
            let hi = cdf.values.last().unwrap();
            prop_assert!(q >= *lo - 1e-9 && q <= *hi + 1e-9);
        }

        #[test]
        fn prop_probability_monotone(samples in proptest::collection::vec(-100f64..100.0, 1..50), a in -110f64..110.0, b in -110f64..110.0) {
            let cdf = Cdf::from_samples(&samples);
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            prop_assert!(cdf.probability_at(lo) <= cdf.probability_at(hi));
        }

        #[test]
        fn prop_median_run_is_median_value(values in proptest::collection::vec(0f64..100.0, 1..20)) {
            let idx = median_run_index(&values).unwrap();
            let below = values.iter().filter(|&&v| v < values[idx]).count();
            let above = values.iter().filter(|&&v| v > values[idx]).count();
            // The chosen run has at most half the runs strictly on each side.
            prop_assert!(below <= values.len() / 2);
            prop_assert!(above <= values.len() / 2);
        }
    }
}
