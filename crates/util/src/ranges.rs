//! A compact, ordered set of `u64` values stored as disjoint inclusive
//! ranges.
//!
//! Used for two protocol jobs:
//!
//! * tracking received packet numbers per path so ACK frames can report up
//!   to 256 ranges (the mechanism the paper credits for QUIC's loss
//!   resilience versus TCP's 2–3 SACK blocks), and
//! * tracking which byte ranges of a stream have been received.

use std::fmt;
use std::ops::RangeInclusive;

/// An ordered set of `u64`s stored as disjoint, non-adjacent inclusive
/// ranges, kept sorted ascending.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct RangeSet {
    /// Sorted, disjoint, non-adjacent `(start, end)` inclusive pairs.
    ranges: Vec<(u64, u64)>,
}

impl RangeSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        RangeSet { ranges: Vec::new() }
    }

    /// True if the set contains no values.
    pub fn is_empty(&self) -> bool {
        self.ranges.is_empty()
    }

    /// Number of disjoint ranges (not elements).
    pub fn range_count(&self) -> usize {
        self.ranges.len()
    }

    /// Total number of elements across all ranges.
    pub fn element_count(&self) -> u64 {
        self.ranges.iter().map(|&(s, e)| e - s + 1).sum()
    }

    /// Smallest contained value, if any.
    pub fn min(&self) -> Option<u64> {
        self.ranges.first().map(|&(s, _)| s)
    }

    /// Largest contained value, if any.
    pub fn max(&self) -> Option<u64> {
        self.ranges.last().map(|&(_, e)| e)
    }

    /// True if `value` is in the set.
    pub fn contains(&self, value: u64) -> bool {
        self.ranges
            .binary_search_by(|&(s, e)| {
                if value < s {
                    std::cmp::Ordering::Greater
                } else if value > e {
                    std::cmp::Ordering::Less
                } else {
                    std::cmp::Ordering::Equal
                }
            })
            .is_ok()
    }

    /// Inserts a single value. Returns true if it was not already present.
    pub fn insert(&mut self, value: u64) -> bool {
        self.insert_range(value, value)
    }

    /// Inserts the inclusive range `[start, end]`. Returns true if any new
    /// value was added.
    pub fn insert_range(&mut self, start: u64, end: u64) -> bool {
        assert!(start <= end, "insert_range requires start <= end");
        // Find the insertion window: all existing ranges that overlap or are
        // adjacent to [start, end] get merged.
        let lo = self
            .ranges
            .partition_point(|&(_, e)| e.checked_add(1).is_some_and(|e1| e1 < start));
        let hi = self
            .ranges
            .partition_point(|&(s, _)| s <= end.saturating_add(1));
        if lo >= hi {
            // No overlap: plain insertion.
            self.ranges.insert(lo, (start, end));
            return true;
        }
        let merged_start = self.ranges[lo].0.min(start);
        let merged_end = self.ranges[hi - 1].1.max(end);
        let covered: u64 = self.ranges[lo..hi].iter().map(|&(s, e)| e - s + 1).sum();
        self.ranges.drain(lo..hi);
        self.ranges.insert(lo, (merged_start, merged_end));
        // New values were added unless the merged span already covered
        // exactly [start, end] plus what it had.
        merged_end - merged_start + 1 > covered
    }

    /// Removes all values strictly below `bound`.
    ///
    /// Used to forget acknowledged packet-number ranges that the peer has
    /// confirmed it no longer needs reported.
    pub fn remove_below(&mut self, bound: u64) {
        self.ranges.retain_mut(|range| {
            if range.1 < bound {
                false
            } else {
                if range.0 < bound {
                    range.0 = bound;
                }
                true
            }
        });
    }

    /// Removes the inclusive range `[start, end]` from the set.
    pub fn remove_range(&mut self, start: u64, end: u64) {
        assert!(start <= end);
        let mut result = Vec::with_capacity(self.ranges.len() + 1);
        for &(s, e) in &self.ranges {
            if e < start || s > end {
                result.push((s, e));
                continue;
            }
            if s < start {
                result.push((s, start - 1));
            }
            if e > end {
                result.push((end + 1, e));
            }
        }
        self.ranges = result;
    }

    /// Iterates over the disjoint ranges in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = RangeInclusive<u64>> + '_ {
        self.ranges.iter().map(|&(s, e)| s..=e)
    }

    /// Iterates over the disjoint ranges in descending order (the order ACK
    /// frames are encoded in: largest acknowledged first).
    pub fn iter_descending(&self) -> impl Iterator<Item = RangeInclusive<u64>> + '_ {
        self.ranges.iter().rev().map(|&(s, e)| s..=e)
    }

    /// Keeps only the `n` ranges with the largest values, dropping the
    /// smallest ranges. Models the cap on ACK blocks (256 for QUIC, 2–3 for
    /// TCP SACK).
    pub fn truncate_to_newest(&mut self, n: usize) {
        if self.ranges.len() > n {
            let excess = self.ranges.len() - n;
            self.ranges.drain(..excess);
        }
    }

    /// Iterates over every element (use only in tests / small sets).
    pub fn elements(&self) -> impl Iterator<Item = u64> + '_ {
        self.ranges.iter().flat_map(|&(s, e)| s..=e)
    }
}

impl fmt::Debug for RangeSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut list = f.debug_list();
        for &(s, e) in &self.ranges {
            if s == e {
                list.entry(&s);
            } else {
                list.entry(&format_args!("{s}..={e}"));
            }
        }
        list.finish()
    }
}

impl FromIterator<u64> for RangeSet {
    fn from_iter<T: IntoIterator<Item = u64>>(iter: T) -> Self {
        let mut set = RangeSet::new();
        for v in iter {
            set.insert(v);
        }
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::BTreeSet;

    #[test]
    fn insert_merges_adjacent() {
        let mut s = RangeSet::new();
        assert!(s.insert(5));
        assert!(s.insert(7));
        assert_eq!(s.range_count(), 2);
        assert!(s.insert(6));
        assert_eq!(s.range_count(), 1);
        assert_eq!(s.min(), Some(5));
        assert_eq!(s.max(), Some(7));
    }

    #[test]
    fn duplicate_insert_returns_false() {
        let mut s = RangeSet::new();
        assert!(s.insert(3));
        assert!(!s.insert(3));
        assert!(s.insert_range(1, 5));
        assert!(!s.insert_range(2, 4));
    }

    #[test]
    fn insert_range_spanning_multiple() {
        let mut s = RangeSet::new();
        s.insert_range(0, 2);
        s.insert_range(10, 12);
        s.insert_range(20, 22);
        assert!(s.insert_range(1, 21));
        assert_eq!(s.range_count(), 1);
        assert_eq!((s.min(), s.max()), (Some(0), Some(22)));
        assert_eq!(s.element_count(), 23);
    }

    #[test]
    fn contains_checks_boundaries() {
        let mut s = RangeSet::new();
        s.insert_range(10, 20);
        assert!(!s.contains(9));
        assert!(s.contains(10));
        assert!(s.contains(20));
        assert!(!s.contains(21));
    }

    #[test]
    fn remove_below_trims_and_drops() {
        let mut s = RangeSet::new();
        s.insert_range(0, 5);
        s.insert_range(10, 15);
        s.remove_below(12);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![12..=15]);
    }

    #[test]
    fn remove_range_splits() {
        let mut s = RangeSet::new();
        s.insert_range(0, 10);
        s.remove_range(3, 6);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0..=2, 7..=10]);
    }

    #[test]
    fn truncate_keeps_newest() {
        let mut s = RangeSet::new();
        for i in 0..10 {
            s.insert(i * 10);
        }
        s.truncate_to_newest(3);
        assert_eq!(s.range_count(), 3);
        assert_eq!(s.min(), Some(70));
        assert_eq!(s.max(), Some(90));
    }

    #[test]
    fn descending_iteration_order() {
        let mut s = RangeSet::new();
        s.insert_range(1, 2);
        s.insert_range(9, 9);
        s.insert_range(4, 6);
        let desc: Vec<_> = s.iter_descending().collect();
        assert_eq!(desc, vec![9..=9, 4..=6, 1..=2]);
    }

    proptest! {
        #[test]
        fn prop_matches_btreeset(ops in proptest::collection::vec((0u64..200, 0u64..20, any::<bool>()), 1..200)) {
            let mut set = RangeSet::new();
            let mut model: BTreeSet<u64> = BTreeSet::new();
            for (start, span, remove) in ops {
                let end = start + span;
                if remove {
                    set.remove_range(start, end);
                    for v in start..=end { model.remove(&v); }
                } else {
                    set.insert_range(start, end);
                    for v in start..=end { model.insert(v); }
                }
                // Invariants: sorted, disjoint, non-adjacent.
                let ranges: Vec<_> = set.iter().collect();
                for w in ranges.windows(2) {
                    prop_assert!(*w[0].end() + 1 < *w[1].start());
                }
                prop_assert_eq!(set.element_count(), model.len() as u64);
            }
            let elems: Vec<u64> = set.elements().collect();
            let model_elems: Vec<u64> = model.iter().copied().collect();
            prop_assert_eq!(elems, model_elems);
        }

        #[test]
        fn prop_insert_returns_whether_new(values in proptest::collection::vec(0u64..100, 1..100)) {
            let mut set = RangeSet::new();
            let mut model = BTreeSet::new();
            for v in values {
                prop_assert_eq!(set.insert(v), model.insert(v));
            }
        }
    }
}
