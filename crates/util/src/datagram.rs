//! The UDP datagram exchanged between a transport state machine and
//! whatever carries its packets.
//!
//! Both network substrates in this workspace speak this type: the
//! discrete-event simulator (`mpquic-netsim`) routes them over modelled
//! links, and the real-socket runtime (`mpquic-io`) writes them to the
//! operating system's UDP stack. Keeping the type here — in the
//! dependency-free utility crate — lets the `Transport` abstraction in
//! `mpquic-harness` stay agnostic about which substrate is underneath.

use std::net::SocketAddr;

/// A UDP datagram (or an encapsulated TCP segment) handed to the network.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Datagram {
    /// Source address; selects the outgoing interface/link.
    pub local: SocketAddr,
    /// Destination address.
    pub remote: SocketAddr,
    /// Payload bytes (what a link bills for, plus any fixed overhead the
    /// substrate accounts separately).
    pub payload: Vec<u8>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_equality() {
        let a = Datagram {
            local: "10.0.0.1:1000".parse().unwrap(),
            remote: "10.0.1.1:2000".parse().unwrap(),
            payload: vec![1, 2, 3],
        };
        let b = a.clone();
        assert_eq!(a, b);
        assert_eq!(a.payload.len(), 3);
    }
}
