//! Simulated time.
//!
//! The whole workspace is driven by a discrete-event simulator, so protocol
//! code never consults a wall clock. [`SimTime`] is an absolute instant on
//! the simulated time line (nanoseconds since simulation start) and
//! `std::time::Duration` is used for spans, mirroring the
//! `Instant`/`Duration` idiom of real-time Rust networking code.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};
use std::time::Duration;

/// An absolute instant of simulated time, in nanoseconds since the start of
/// the simulation.
///
/// `SimTime` is `Copy`, totally ordered and cheap to compare, like
/// `std::time::Instant`, but it can also be formatted and serialized since
/// simulations must be reproducible and debuggable.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimTime(u64);

impl SimTime {
    /// The simulation origin (t = 0).
    pub const ZERO: SimTime = SimTime(0);

    /// A time later than any time a simulation will reach; used as the
    /// "no timeout armed" sentinel in `min()` reductions.
    pub const FAR_FUTURE: SimTime = SimTime(u64::MAX);

    /// Creates a time from raw nanoseconds since the simulation origin.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimTime(nanos)
    }

    /// Creates a time from microseconds since the simulation origin.
    pub const fn from_micros(micros: u64) -> Self {
        SimTime(micros * 1_000)
    }

    /// Creates a time from milliseconds since the simulation origin.
    pub const fn from_millis(millis: u64) -> Self {
        SimTime(millis * 1_000_000)
    }

    /// Creates a time from whole seconds since the simulation origin.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * 1_000_000_000)
    }

    /// Nanoseconds since the simulation origin.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Microseconds since the simulation origin (truncating).
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Milliseconds since the simulation origin (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Seconds since the simulation origin, as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Time elapsed since `earlier`, saturating to zero if `earlier` is
    /// actually later (which can happen when comparing events scheduled
    /// at the same instant).
    pub fn saturating_duration_since(self, earlier: SimTime) -> Duration {
        Duration::from_nanos(self.0.saturating_sub(earlier.0))
    }

    /// `self + d`, saturating at [`SimTime::FAR_FUTURE`].
    pub fn saturating_add(self, d: Duration) -> SimTime {
        SimTime(self.0.saturating_add(duration_to_nanos(d)))
    }

    /// Returns the earlier of two instants.
    pub fn min(self, other: SimTime) -> SimTime {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// Returns the later of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        if self >= other {
            self
        } else {
            other
        }
    }
}

/// Converts a `Duration` to nanoseconds, saturating at `u64::MAX` (a span of
/// ~584 years, far beyond any simulation horizon).
fn duration_to_nanos(d: Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

impl Add<Duration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: Duration) -> SimTime {
        self.saturating_add(rhs)
    }
}

impl AddAssign<Duration> for SimTime {
    fn add_assign(&mut self, rhs: Duration) {
        *self = *self + rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = Duration;
    fn sub(self, rhs: SimTime) -> Duration {
        self.saturating_duration_since(rhs)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if *self == SimTime::FAR_FUTURE {
            return write!(f, "t=∞");
        }
        write!(f, "t={:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_round_trips() {
        assert_eq!(SimTime::from_millis(1500).as_micros(), 1_500_000);
        assert_eq!(SimTime::from_secs(2).as_millis(), 2000);
        assert_eq!(SimTime::from_micros(7).as_nanos(), 7_000);
    }

    #[test]
    fn ordering_and_minmax() {
        let a = SimTime::from_millis(10);
        let b = SimTime::from_millis(20);
        assert!(a < b);
        assert_eq!(a.min(b), a);
        assert_eq!(a.max(b), b);
        assert_eq!(SimTime::FAR_FUTURE.min(b), b);
    }

    #[test]
    fn arithmetic() {
        let a = SimTime::from_millis(10);
        let b = a + Duration::from_millis(5);
        assert_eq!(b.as_millis(), 15);
        assert_eq!(b - a, Duration::from_millis(5));
        // Saturating subtraction: earlier - later == 0.
        assert_eq!(a - b, Duration::ZERO);
    }

    #[test]
    fn far_future_saturates() {
        let t = SimTime::FAR_FUTURE + Duration::from_secs(1);
        assert_eq!(t, SimTime::FAR_FUTURE);
    }

    #[test]
    fn debug_format() {
        assert_eq!(format!("{:?}", SimTime::from_millis(1500)), "t=1.500000s");
        assert_eq!(format!("{:?}", SimTime::FAR_FUTURE), "t=∞");
    }
}
