//! Deterministic random number generation.
//!
//! Every simulation in this workspace derives *all* of its randomness —
//! random link losses, experiment-design sampling, payload generation —
//! from a single seed, so experiments are reproducible bit-for-bit. The
//! generator is xoshiro256** (public domain, Blackman & Vigna), seeded via
//! SplitMix64 so that small or correlated seeds still produce well-mixed
//! state. We implement it here rather than pulling a crate so the exact
//! stream is pinned forever, independent of dependency upgrades.

/// A small, fast, deterministic RNG (xoshiro256**).
#[derive(Debug, Clone)]
pub struct DetRng {
    s: [u64; 4],
}

/// SplitMix64 step, used for seeding.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

impl DetRng {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        DetRng { s }
    }

    /// Derives an independent child generator for a named sub-stream.
    ///
    /// Used to give each simulated link / host / scenario its own stream so
    /// that adding randomness consumers in one component does not perturb
    /// the stream seen by another.
    pub fn fork(&mut self, stream: u64) -> DetRng {
        let mixed = self.next_u64() ^ stream.wrapping_mul(0x9E3779B97F4A7C15);
        DetRng::new(mixed)
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `u64` in `[0, bound)`. Uses Lemire's multiply-shift method
    /// with rejection to avoid modulo bias.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "next_below bound must be positive");
        // Lemire's method: widen-multiply and reject the biased low zone.
        let mut x = self.next_u64();
        let mut m = (x as u128) * (bound as u128);
        let mut l = m as u64;
        if l < bound {
            let t = bound.wrapping_neg() % bound;
            while l < t {
                x = self.next_u64();
                m = (x as u128) * (bound as u128);
                l = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform `u64` in `[lo, hi]` (inclusive).
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "range_u64 requires lo <= hi");
        if lo == 0 && hi == u64::MAX {
            return self.next_u64();
        }
        lo + self.next_below(hi - lo + 1)
    }

    /// Uniform `usize` in `[0, bound)`.
    pub fn index(&mut self, bound: usize) -> usize {
        self.next_below(bound as u64) as usize
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in `[lo, hi)`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.f64()
    }

    /// Bernoulli trial with probability `p` (clamped to `[0, 1]`).
    pub fn bool(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.f64() < p
        }
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.index(i + 1);
            slice.swap(i, j);
        }
    }

    /// Fills a byte buffer with pseudo-random data (for payload generation).
    pub fn fill_bytes(&mut self, buf: &mut [u8]) {
        let mut chunks = buf.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let last = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&last[..rem.len()]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = DetRng::new(42);
        let mut b = DetRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = DetRng::new(1);
        let mut b = DetRng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn forked_streams_are_independent_of_parent_consumption() {
        // Forking uses one parent draw; the child stream is then fixed.
        let mut parent1 = DetRng::new(7);
        let mut child1 = parent1.fork(3);
        let mut parent2 = DetRng::new(7);
        let mut child2 = parent2.fork(3);
        for _ in 0..16 {
            assert_eq!(child1.next_u64(), child2.next_u64());
        }
    }

    #[test]
    fn next_below_respects_bound() {
        let mut rng = DetRng::new(9);
        for bound in [1u64, 2, 3, 7, 100, 1 << 40] {
            for _ in 0..200 {
                assert!(rng.next_below(bound) < bound);
            }
        }
    }

    #[test]
    fn range_u64_inclusive() {
        let mut rng = DetRng::new(11);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..2000 {
            let v = rng.range_u64(5, 8);
            assert!((5..=8).contains(&v));
            seen_lo |= v == 5;
            seen_hi |= v == 8;
        }
        assert!(seen_lo && seen_hi, "endpoints should both be reachable");
    }

    #[test]
    fn f64_in_unit_interval_and_roughly_uniform() {
        let mut rng = DetRng::new(13);
        let n = 10_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let v = rng.f64();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} too far from 0.5");
    }

    #[test]
    fn bool_probability_estimate() {
        let mut rng = DetRng::new(17);
        let n = 20_000;
        let hits = (0..n).filter(|_| rng.bool(0.25)).count();
        let rate = hits as f64 / n as f64;
        assert!((rate - 0.25).abs() < 0.02, "rate {rate} too far from 0.25");
        assert!(!rng.bool(0.0));
        assert!(rng.bool(1.0));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = DetRng::new(19);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffling 50 elements should move something");
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = DetRng::new(23);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
