//! QUIC variable-length integer encoding (RFC 9000 §16).
//!
//! The two most significant bits of the first byte select the length of the
//! encoding (1, 2, 4 or 8 bytes); the remaining bits carry the value in
//! network byte order. The largest representable value is `2^62 - 1`.

use bytes::{Buf, BufMut};

/// Largest value representable as a QUIC varint (`2^62 - 1`).
pub const MAX_VARINT: u64 = (1 << 62) - 1;

/// Error returned when decoding fails.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VarintError {
    /// The buffer ended before the full encoding was available.
    UnexpectedEnd,
    /// A value too large to encode was passed to [`encode_varint`].
    ValueTooLarge,
}

impl std::fmt::Display for VarintError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VarintError::UnexpectedEnd => write!(f, "buffer ended inside a varint"),
            VarintError::ValueTooLarge => write!(f, "value exceeds 2^62 - 1"),
        }
    }
}

impl std::error::Error for VarintError {}

/// Number of bytes the varint encoding of `value` occupies (1, 2, 4 or 8).
///
/// Values above [`MAX_VARINT`] are not encodable; this function reports the
/// 8-byte size they would clamp to (debug builds assert instead), matching
/// [`encode_varint`]'s caller contract that values are range-checked before
/// sizing. Protocol paths must never panic on attacker-influenced input.
pub fn varint_size(value: u64) -> usize {
    debug_assert!(value <= MAX_VARINT, "varint value out of range: {value}");
    if value < (1 << 6) {
        1
    } else if value < (1 << 14) {
        2
    } else if value < (1 << 30) {
        4
    } else {
        8
    }
}

/// Encodes `value` into `buf` using the minimal-length encoding.
pub fn encode_varint<B: BufMut>(buf: &mut B, value: u64) -> Result<(), VarintError> {
    if value < (1 << 6) {
        buf.put_u8(value as u8);
    } else if value < (1 << 14) {
        buf.put_u16(0b01 << 14 | value as u16);
    } else if value < (1 << 30) {
        buf.put_u32(0b10 << 30 | value as u32);
    } else if value <= MAX_VARINT {
        buf.put_u64(0b11 << 62 | value);
    } else {
        return Err(VarintError::ValueTooLarge);
    }
    Ok(())
}

/// Decodes a varint from the front of `buf`, advancing it.
pub fn decode_varint<B: Buf>(buf: &mut B) -> Result<u64, VarintError> {
    let Some(&first) = buf.chunk().first() else {
        return Err(VarintError::UnexpectedEnd);
    };
    let tag = first >> 6;
    let len = 1usize << tag;
    if buf.remaining() < len {
        return Err(VarintError::UnexpectedEnd);
    }
    Ok(match tag {
        0 => u64::from(buf.get_u8()),
        1 => u64::from(buf.get_u16() & 0x3FFF),
        2 => u64::from(buf.get_u32() & 0x3FFF_FFFF),
        _ => buf.get_u64() & 0x3FFF_FFFF_FFFF_FFFF,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::BytesMut;
    use proptest::prelude::*;

    fn round_trip(value: u64) -> (u64, usize) {
        let mut buf = BytesMut::new();
        encode_varint(&mut buf, value).unwrap();
        let written = buf.len();
        let mut read = buf.freeze();
        let decoded = decode_varint(&mut read).unwrap();
        assert_eq!(read.remaining(), 0);
        (decoded, written)
    }

    #[test]
    fn rfc9000_appendix_a_examples() {
        // Examples from RFC 9000 Appendix A.1.
        let cases: &[(&[u8], u64)] = &[
            (
                &[0xc2, 0x19, 0x7c, 0x5e, 0xff, 0x14, 0xe8, 0x8c],
                151_288_809_941_952_652,
            ),
            (&[0x9d, 0x7f, 0x3e, 0x7d], 494_878_333),
            (&[0x7b, 0xbd], 15_293),
            (&[0x25], 37),
        ];
        for (bytes, expected) in cases {
            let mut buf = *bytes;
            assert_eq!(decode_varint(&mut buf).unwrap(), *expected);
        }
    }

    #[test]
    fn boundary_sizes() {
        assert_eq!(round_trip(0), (0, 1));
        assert_eq!(round_trip(63), (63, 1));
        assert_eq!(round_trip(64), (64, 2));
        assert_eq!(round_trip(16_383), (16_383, 2));
        assert_eq!(round_trip(16_384), (16_384, 4));
        assert_eq!(round_trip((1 << 30) - 1), ((1 << 30) - 1, 4));
        assert_eq!(round_trip(1 << 30), (1 << 30, 8));
        assert_eq!(round_trip(MAX_VARINT), (MAX_VARINT, 8));
    }

    #[test]
    fn too_large_rejected() {
        let mut buf = BytesMut::new();
        assert_eq!(
            encode_varint(&mut buf, MAX_VARINT + 1),
            Err(VarintError::ValueTooLarge)
        );
    }

    #[test]
    fn truncated_input_rejected() {
        // 4-byte encoding with only 2 bytes present.
        let mut buf: &[u8] = &[0x9d, 0x7f];
        assert_eq!(decode_varint(&mut buf), Err(VarintError::UnexpectedEnd));
        let mut empty: &[u8] = &[];
        assert_eq!(decode_varint(&mut empty), Err(VarintError::UnexpectedEnd));
    }

    #[test]
    fn size_matches_encoding() {
        for v in [
            0,
            1,
            63,
            64,
            1000,
            16_383,
            16_384,
            1 << 29,
            1 << 30,
            MAX_VARINT,
        ] {
            let mut buf = BytesMut::new();
            encode_varint(&mut buf, v).unwrap();
            assert_eq!(buf.len(), varint_size(v), "value {v}");
        }
    }

    proptest! {
        #[test]
        fn prop_round_trip(value in 0u64..=MAX_VARINT) {
            let (decoded, _) = round_trip(value);
            prop_assert_eq!(decoded, value);
        }

        #[test]
        fn prop_decoding_consumes_exactly_declared_length(value in 0u64..=MAX_VARINT, trailer in proptest::collection::vec(any::<u8>(), 0..8)) {
            let mut buf = BytesMut::new();
            encode_varint(&mut buf, value).unwrap();
            let encoded_len = buf.len();
            buf.extend_from_slice(&trailer);
            let mut read = buf.freeze();
            let before = read.remaining();
            let decoded = decode_varint(&mut read).unwrap();
            prop_assert_eq!(decoded, value);
            prop_assert_eq!(before - read.remaining(), encoded_len);
        }
    }
}
