//! Shared utilities for the mpquic workspace.
//!
//! This crate hosts the small, dependency-free building blocks that every
//! other crate in the workspace relies on:
//!
//! * [`datagram`] — the UDP datagram type ([`datagram::Datagram`]) shared
//!   by every network substrate (the discrete-event simulator and the
//!   real-socket runtime alike).
//! * [`time`] — a simulated clock ([`time::SimTime`]) with nanosecond
//!   resolution. All protocol state machines in this workspace are sans-IO
//!   and never read a wall clock; time is always passed in.
//! * [`rng`] — a deterministic, seedable random number generator
//!   ([`rng::DetRng`], xoshiro256**). Every experiment derives all its
//!   randomness from one seed, making simulations bit-for-bit reproducible.
//! * [`varint`] — QUIC-style variable-length integer encoding used by the
//!   wire format.
//! * [`ranges`] — a compact set of `u64` ranges, used for ACK ranges and
//!   stream reassembly bookkeeping.
//! * [`stats`] — the statistics the paper's figures report: CDFs, medians,
//!   percentiles and box-plot five-number summaries.
//! * [`alloc_count`] — a counting global allocator so tests and benches
//!   can assert the batched datapath's zero-allocation steady state.
//! * [`model`] — an in-tree exhaustive interleaving explorer (a small
//!   `loom`) for model-checking cross-thread protocols.
//! * [`sync`] — switchable concurrency primitives: `std` types
//!   normally, [`model`] types under `--cfg loom`, so the endpoint's
//!   channels and atomics can be model-checked unmodified.

// `deny`, not `forbid`: the counting allocator needs one scoped
// `#[allow(unsafe_code)]` for its `GlobalAlloc` impl (which only
// forwards to `std::alloc::System`). Everything else stays safe.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod alloc_count;
pub mod datagram;
pub mod model;
pub mod ranges;
pub mod rng;
pub mod stats;
pub mod sync;
pub mod time;
pub mod varint;

pub use datagram::Datagram;
pub use ranges::RangeSet;
pub use rng::DetRng;
pub use time::SimTime;
