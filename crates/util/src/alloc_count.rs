//! A counting global allocator for zero-allocation assertions.
//!
//! The batched datapath (DESIGN.md §11) claims a steady state with no
//! heap allocation per datagram. That claim is only worth having if it
//! is *checked*, so tests and the `mpquic-bench` datapath benchmark
//! install [`CountingAlloc`] as the global allocator and read the
//! per-thread counters around the hot loop:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: mpquic_util::alloc_count::CountingAlloc =
//!     mpquic_util::alloc_count::CountingAlloc;
//!
//! alloc_count::reset_thread_counts();
//! hot_loop();
//! assert_eq!(alloc_count::thread_counts().allocs, 0);
//! ```
//!
//! Counters are thread-local: an allocation is charged to the thread
//! that performed it, so a measurement on the datapath thread is not
//! polluted by other test threads. The allocator itself just forwards
//! to [`std::alloc::System`]; it adds two `Cell` bumps per allocation
//! and nothing on the free path.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

std::thread_local! {
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
    static BYTES: Cell<u64> = const { Cell::new(0) };
}

/// Allocation counters for the current thread since the last reset.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AllocCounts {
    /// Number of allocation calls (`alloc`, `alloc_zeroed`, and the
    /// allocating half of `realloc`).
    pub allocs: u64,
    /// Total bytes requested by those calls.
    pub bytes: u64,
}

/// Reads the current thread's counters.
pub fn thread_counts() -> AllocCounts {
    AllocCounts {
        allocs: ALLOCS.with(Cell::get),
        bytes: BYTES.with(Cell::get),
    }
}

/// Resets the current thread's counters to zero.
pub fn reset_thread_counts() {
    ALLOCS.with(|c| c.set(0));
    BYTES.with(|c| c.set(0));
}

/// A [`GlobalAlloc`] that counts allocations per thread and forwards to
/// the system allocator.
#[derive(Debug, Clone, Copy, Default)]
pub struct CountingAlloc;

impl CountingAlloc {
    fn charge(layout: Layout) {
        // `try_with` instead of `with`: the allocator can be called
        // during thread teardown after the thread-locals are gone, and
        // must not panic there.
        let _ = ALLOCS.try_with(|c| c.set(c.get().wrapping_add(1)));
        let _ = BYTES.try_with(|c| c.set(c.get().wrapping_add(layout.size() as u64)));
    }
}

// SAFETY: defers entirely to `System`; the counter updates have no
// effect on the returned memory.
#[allow(unsafe_code)]
unsafe impl GlobalAlloc for CountingAlloc {
    // SAFETY: caller upholds GlobalAlloc's contract (`layout` has
    // non-zero size); the same `layout` is forwarded to `System`
    // unchanged, and counting does not touch the returned memory.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        Self::charge(layout);
        System.alloc(layout)
    }

    // SAFETY: as `alloc` — the contract is forwarded verbatim.
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        Self::charge(layout);
        System.alloc_zeroed(layout)
    }

    // SAFETY: caller guarantees `ptr` came from this allocator with
    // this `layout`; since every allocation path forwards to `System`,
    // handing the pair back to `System` is exactly its contract.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    // SAFETY: as `dealloc` for the (`ptr`, `layout`) pair; `new_size`
    // passes through to `System`, which checks its own layout math.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // A grow/shrink is one allocator round-trip; charge the new size.
        if let Ok(new_layout) = Layout::from_size_align(new_size, layout.align()) {
            Self::charge(new_layout);
        }
        System.realloc(ptr, layout, new_size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[allow(unsafe_code)]
    fn counts_and_resets_per_thread() {
        reset_thread_counts();
        assert_eq!(thread_counts(), AllocCounts::default());

        let layout = Layout::from_size_align(64, 8).unwrap();
        let a = CountingAlloc;
        unsafe {
            let p = a.alloc(layout);
            assert!(!p.is_null());
            a.dealloc(p, layout);
        }
        let counts = thread_counts();
        assert_eq!(counts.allocs, 1);
        assert_eq!(counts.bytes, 64);

        // Another thread starts from zero.
        let other = std::thread::spawn(|| thread_counts().allocs)
            .join()
            .unwrap();
        assert_eq!(other, 0);

        reset_thread_counts();
        assert_eq!(thread_counts().allocs, 0);
    }
}
