//! In-tree exhaustive interleaving explorer for concurrent protocols.
//!
//! The sharded endpoint's correctness claims — no buffer leaked across
//! the demux/shard recycling loop, `accepted == closed` on every
//! schedule, no lost wakeup in the idle ladder — are statements about
//! *all* interleavings, but `cargo test` observes exactly one. This
//! module is a small model checker in the spirit of `loom`: the types
//! in [`thread`], [`sync`], and [`hint`] mirror their `std`
//! counterparts, and [`run`] executes a closure under **every**
//! distinguishable thread schedule, panicking with the offending
//! schedule when any execution fails an assertion, deadlocks, or
//! exceeds the step budget.
//!
//! # How it works
//!
//! Model threads are real OS threads, but a cooperative scheduler
//! (mutex + condvar) ensures **exactly one runs at a time**. Each
//! potentially-racy operation — a channel send/recv, a non-`Relaxed`
//! atomic access, a yield or spin hint — is a *scheduling point* where
//! the running thread parks and the scheduler picks the next runnable
//! thread. The first execution records, at every pick, which other
//! threads were runnable; subsequent executions replay a prefix of
//! those choices and flip the last un-exhausted one, performing a
//! depth-first search over the schedule tree until no unexplored
//! branch remains.
//!
//! # Fidelity and reductions
//!
//! Exploration is sound for the protocols this repo models but
//! deliberately coarser than a full memory-model checker:
//!
//! - All atomics execute sequentially consistently; orderings passed
//!   by the caller select whether the access is a scheduling point.
//!   `Relaxed` accesses do **not** branch the schedule — the registry
//!   in `crates/xtask/atomics.toml` restricts `Relaxed` to commutative
//!   counters, for which interleaving order is observationally
//!   irrelevant. `Acquire`/`Release`/`AcqRel`/`SeqCst` accesses do
//!   branch. This prunes the state space where it provably does not
//!   matter and explores it where it does. Weak-memory reorderings are
//!   *not* modeled; the TSan CI job covers that axis dynamically.
//! - A thread that called [`thread::yield_now`] (or [`hint::spin_loop`],
//!   which the model treats identically) is not eligible to run again
//!   until every non-yielded thread has parked, finished, or blocked.
//!   This is the same reduction `loom` applies to spin loops: it keeps
//!   busy-wait ladders from generating unbounded futile re-check
//!   schedules while still exploring every order of *productive* steps.
//!
//! Deadlocks (all live threads blocked), livelocks (per-execution step
//! budget), replay divergence (nondeterministic user code), and panics
//! inside model threads are all reported as failures together with the
//! schedule that produced them.

use std::any::Any;
use std::cell::RefCell;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

/// Hard cap on scheduling points within a single execution; exceeding
/// it is reported as a livelock.
const MAX_STEPS: usize = 50_000;
/// Hard cap on executions explored by one [`run`] call. Models in this
/// repo complete in well under this; hitting it means the model is too
/// big to check exhaustively and should be shrunk.
const MAX_EXECUTIONS: u64 = 1_000_000;
/// Hard cap on concurrently registered model threads.
const MAX_THREADS: usize = 16;

/// Sentinel panic payload used to unwind model threads during teardown
/// after a failure has already been recorded; never reported itself.
struct ModelExit;

/// Lifecycle of one model thread, as seen by the scheduler.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum TState {
    /// Runnable and eligible for scheduling.
    Ready,
    /// Voluntarily yielded; runs again only once no `Ready` thread
    /// remains (spin-loop reduction).
    Yielded,
    /// Waiting on a channel or join; made `Ready` by a wakeup.
    Blocked,
    /// Returned or unwound; never scheduled again.
    Finished,
}

/// One recorded scheduling decision: the thread chosen and the
/// runnable alternatives not yet explored at this point.
#[derive(Clone, Debug)]
struct Branch {
    chosen: usize,
    rest: Vec<usize>,
}

struct ExecState {
    threads: Vec<TState>,
    /// Thread currently allowed to run; `None` between picks.
    active: Option<usize>,
    /// Threads not yet `Finished`.
    live: usize,
    /// Schedule: replayed prefix plus decisions recorded this run.
    schedule: Vec<Branch>,
    /// Next index of `schedule` to consume (replay) or append (record).
    pos: usize,
    steps: usize,
    failure: Option<String>,
}

/// Shared scheduler for one execution: serializes model threads and
/// records/replays scheduling decisions.
struct Execution {
    state: Mutex<ExecState>,
    cv: Condvar,
    handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

thread_local! {
    static CONTEXT: RefCell<Option<Ctx>> = const { RefCell::new(None) };
}

/// Per-thread handle into the active execution, stored thread-locally
/// so `std`-shaped APIs (no explicit scheduler argument) can reach it.
#[derive(Clone)]
struct Ctx {
    exec: Arc<Execution>,
    id: usize,
}

fn current() -> Option<Ctx> {
    CONTEXT.with(|c| c.borrow().clone())
}

fn payload_str(p: &(dyn Any + Send)) -> &str {
    p.downcast_ref::<&'static str>()
        .copied()
        .or_else(|| p.downcast_ref::<String>().map(|s| s.as_str()))
        .unwrap_or("non-string panic payload")
}

impl Execution {
    fn new(prefix: Vec<Branch>) -> Execution {
        Execution {
            state: Mutex::new(ExecState {
                threads: Vec::new(),
                active: None,
                live: 0,
                schedule: prefix,
                pos: 0,
                steps: 0,
                failure: None,
            }),
            cv: Condvar::new(),
            handles: Mutex::new(Vec::new()),
        }
    }

    /// Locks the scheduler state, shrugging off poisoning: a model
    /// thread that panicked mid-operation must not wedge teardown.
    fn lock(&self) -> MutexGuard<'_, ExecState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn register(&self) -> usize {
        let mut st = self.lock();
        assert!(
            st.threads.len() < MAX_THREADS,
            "model: more than {MAX_THREADS} threads"
        );
        st.threads.push(TState::Ready);
        st.live += 1;
        st.threads.len() - 1
    }

    /// Records a failure (first one wins) and wakes everything so all
    /// threads can unwind and the controller can observe completion.
    fn fail(&self, msg: String) {
        let mut st = self.lock();
        if st.failure.is_none() {
            st.failure = Some(msg);
        }
        st.active = None;
        for t in st.threads.iter_mut() {
            if *t == TState::Blocked || *t == TState::Yielded {
                *t = TState::Ready;
            }
        }
        self.cv.notify_all();
    }

    /// Wakes every blocked thread (they re-check their condition when
    /// next scheduled). Called after any channel state change and when
    /// a thread finishes (for joiners). Spurious wakeups are fine.
    fn wake_blocked(st: &mut ExecState) {
        for t in st.threads.iter_mut() {
            if *t == TState::Blocked {
                *t = TState::Ready;
            }
        }
    }

    /// Chooses the next thread to run, replaying the recorded schedule
    /// while it lasts and recording a new branch point beyond it.
    fn pick_next(&self, st: &mut ExecState) {
        st.active = None;
        if st.failure.is_some() || st.live == 0 {
            self.cv.notify_all();
            return;
        }
        let mut eligible: Vec<usize> = (0..st.threads.len())
            .filter(|&i| st.threads[i] == TState::Ready)
            .collect();
        if eligible.is_empty() {
            let yielded: Vec<usize> = (0..st.threads.len())
                .filter(|&i| st.threads[i] == TState::Yielded)
                .collect();
            if yielded.is_empty() {
                self.fail_inline(st, "deadlock: every live thread is blocked".into());
                return;
            }
            // Every runnable thread has yielded: promote them all and
            // branch among them as usual.
            for &id in &yielded {
                st.threads[id] = TState::Ready;
            }
            eligible = yielded;
        }
        st.steps += 1;
        if st.steps > MAX_STEPS {
            self.fail_inline(
                st,
                format!("livelock: execution exceeded {MAX_STEPS} scheduling points"),
            );
            return;
        }
        let chosen = if st.pos < st.schedule.len() {
            let c = st.schedule[st.pos].chosen;
            if !eligible.contains(&c) {
                self.fail_inline(
                    st,
                    format!(
                        "replay diverged at step {}: thread {c} not runnable \
                         (model code must be deterministic)",
                        st.pos
                    ),
                );
                return;
            }
            c
        } else {
            let mut rest = eligible;
            let chosen = rest.remove(0);
            st.schedule.push(Branch { chosen, rest });
            chosen
        };
        st.pos += 1;
        st.active = Some(chosen);
        self.cv.notify_all();
    }

    /// `fail` while already holding the state lock.
    fn fail_inline(&self, st: &mut ExecState, msg: String) {
        if st.failure.is_none() {
            st.failure = Some(msg);
        }
        st.active = None;
        for t in st.threads.iter_mut() {
            if *t == TState::Blocked || *t == TState::Yielded {
                *t = TState::Ready;
            }
        }
        self.cv.notify_all();
    }

    /// Parks the calling thread in `park` state, lets the scheduler
    /// pick the next thread, and returns once this thread is scheduled
    /// again. Unwinds with [`ModelExit`] if a failure is flagged.
    fn switch(&self, me: usize, park: TState) {
        let mut st = self.lock();
        if st.failure.is_some() {
            drop(st);
            std::panic::panic_any(ModelExit);
        }
        st.threads[me] = park;
        self.pick_next(&mut st);
        loop {
            if st.failure.is_some() {
                drop(st);
                std::panic::panic_any(ModelExit);
            }
            if st.active == Some(me) {
                break;
            }
            st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
        st.threads[me] = TState::Ready;
    }

    /// First wait of a freshly spawned thread: runs the body only once
    /// scheduled. Returns `false` when the execution already failed.
    fn wait_initial(&self, me: usize) -> bool {
        let mut st = self.lock();
        loop {
            if st.failure.is_some() {
                return false;
            }
            if st.active == Some(me) {
                st.threads[me] = TState::Ready;
                return true;
            }
            st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }

    fn finish(&self, me: usize) {
        let mut st = self.lock();
        st.threads[me] = TState::Finished;
        st.live -= 1;
        // Joiners block on this thread's completion.
        Self::wake_blocked(&mut st);
        self.pick_next(&mut st);
    }

    fn is_finished(&self, id: usize) -> bool {
        self.lock().threads[id] == TState::Finished
    }

    /// Blocks until every model thread has finished (normally or by
    /// teardown unwind).
    fn wait_done(&self) {
        let mut st = self.lock();
        while st.live > 0 {
            st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }
}

/// A scheduling point: park runnable, let any other thread run.
fn sched_point() {
    if let Some(ctx) = current() {
        ctx.exec.switch(ctx.id, TState::Ready);
    }
}

/// Parks the calling thread until a wakeup; outside a model run, falls
/// back to an OS yield (callers loop on their condition).
fn block_point() {
    if let Some(ctx) = current() {
        ctx.exec.switch(ctx.id, TState::Blocked);
    } else {
        std::thread::yield_now();
    }
}

/// Wakes model threads blocked on a channel or join condition.
fn wake_point() {
    if let Some(ctx) = current() {
        let mut st = ctx.exec.lock();
        Execution::wake_blocked(&mut st);
    }
}

fn spawn_model_thread<T, F>(
    exec: &Arc<Execution>,
    id: usize,
    f: F,
) -> Arc<Mutex<Option<std::thread::Result<T>>>>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    let slot: Arc<Mutex<Option<std::thread::Result<T>>>> = Arc::new(Mutex::new(None));
    let slot2 = Arc::clone(&slot);
    let exec2 = Arc::clone(exec);
    let real = std::thread::Builder::new()
        .name(format!("model-{id}"))
        .spawn(move || {
            CONTEXT.with(|c| {
                *c.borrow_mut() = Some(Ctx {
                    exec: Arc::clone(&exec2),
                    id,
                });
            });
            if exec2.wait_initial(id) {
                let r = catch_unwind(AssertUnwindSafe(f));
                if let Err(p) = &r {
                    if !p.is::<ModelExit>() {
                        exec2.fail(format!(
                            "model thread {id} panicked: {}",
                            payload_str(p.as_ref())
                        ));
                    }
                }
                *slot2.lock().unwrap_or_else(|e| e.into_inner()) = Some(r);
            }
            CONTEXT.with(|c| c.borrow_mut().take());
            exec2.finish(id);
        })
        .expect("model: failed to spawn OS thread");
    exec.handles
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .push(real);
    slot
}

/// Runs `f` under every distinguishable thread interleaving.
///
/// `f` is executed repeatedly, once per schedule discovered by the
/// depth-first exploration; it must be deterministic apart from the
/// scheduling the model itself controls. Panics — with the offending
/// schedule — if any execution panics, deadlocks, livelocks past the
/// step budget, or diverges from its replay.
pub fn run<F>(f: F)
where
    F: Fn() + Send + Sync + 'static,
{
    assert!(
        current().is_none(),
        "model::run may not be nested inside a model thread"
    );
    let f = Arc::new(f);
    let mut prefix: Vec<Branch> = Vec::new();
    let mut executions: u64 = 0;
    loop {
        executions += 1;
        let exec = Arc::new(Execution::new(std::mem::take(&mut prefix)));
        let root = exec.register();
        let body = Arc::clone(&f);
        let _slot = spawn_model_thread(&exec, root, move || body());
        {
            let mut st = exec.lock();
            exec.pick_next(&mut st);
        }
        exec.wait_done();
        for h in exec
            .handles
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .drain(..)
        {
            let _ = h.join();
        }
        let st = exec.lock();
        if let Some(msg) = &st.failure {
            let trace: Vec<usize> = st.schedule[..st.pos.min(st.schedule.len())]
                .iter()
                .map(|b| b.chosen)
                .collect();
            panic!(
                "model failure in execution {executions}: {msg}\n\
                 schedule (thread ids, in order): {trace:?}"
            );
        }
        let mut sched = st.schedule.clone();
        drop(st);
        // Depth-first backtrack: flip the deepest decision that still
        // has an unexplored alternative; done when none remains.
        loop {
            match sched.pop() {
                None => return,
                Some(mut b) => {
                    if let Some(next) = b.rest.pop() {
                        sched.push(Branch {
                            chosen: next,
                            rest: b.rest,
                        });
                        prefix = sched;
                        break;
                    }
                }
            }
        }
        assert!(
            executions < MAX_EXECUTIONS,
            "model: exceeded {MAX_EXECUTIONS} executions; shrink the model"
        );
    }
}

pub mod thread {
    //! Model-scheduled stand-ins for [`std::thread`] primitives.

    use super::*;

    /// Handle to a model thread; mirrors [`std::thread::JoinHandle`].
    pub struct JoinHandle<T> {
        id: usize,
        exec: Arc<Execution>,
        slot: Arc<Mutex<Option<std::thread::Result<T>>>>,
    }

    impl<T> fmt::Debug for JoinHandle<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.debug_struct("JoinHandle").field("id", &self.id).finish()
        }
    }

    impl<T> JoinHandle<T> {
        /// Waits for the thread to finish and returns its result, as
        /// [`std::thread::JoinHandle::join`] does.
        pub fn join(self) -> std::thread::Result<T> {
            while !self.exec.is_finished(self.id) {
                block_point();
            }
            self.slot
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .take()
                .expect("model: joined thread left no result")
        }
    }

    /// Spawns a model thread. Must be called from inside [`super::run`].
    pub fn spawn<F, T>(f: F) -> JoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        let ctx = current().expect("model::thread::spawn outside model::run");
        let exec = Arc::clone(&ctx.exec);
        let id = exec.register();
        let slot = spawn_model_thread(&exec, id, f);
        // Spawning is a scheduling point: the child may run first.
        ctx.exec.switch(ctx.id, TState::Ready);
        JoinHandle { id, exec, slot }
    }

    /// Yields to the scheduler. Under the model this additionally
    /// marks the thread low-priority until every non-yielded thread
    /// has parked (spin-loop reduction, see the module docs).
    pub fn yield_now() {
        if let Some(ctx) = current() {
            ctx.exec.switch(ctx.id, TState::Yielded);
        } else {
            std::thread::yield_now();
        }
    }

    /// Model time does not advance: sleeping is modeled as a yield.
    pub fn sleep(_dur: std::time::Duration) {
        yield_now();
    }
}

pub mod hint {
    //! Model-scheduled stand-in for [`std::hint`].

    /// Spin-wait hint; a yield under the model (a spinning thread can
    /// only observe progress made by another thread).
    pub fn spin_loop() {
        if super::current().is_some() {
            super::thread::yield_now();
        } else {
            std::hint::spin_loop();
        }
    }
}

pub mod sync {
    //! Model-scheduled stand-ins for [`std::sync`] primitives.

    pub mod atomic {
        //! Atomics whose non-`Relaxed` accesses are scheduling points.
        //!
        //! Values execute sequentially consistently (the model runs
        //! one thread at a time); the ordering argument decides only
        //! whether the access branches the schedule. See the crate
        //! module docs for why `Relaxed` accesses do not.

        use std::fmt;
        use std::sync::atomic::Ordering;

        fn point(order: Ordering) {
            if order != Ordering::Relaxed {
                super::super::sched_point();
            }
        }

        /// Both orderings of a compare-exchange participate.
        fn point2(success: Ordering, failure: Ordering) {
            if success != Ordering::Relaxed || failure != Ordering::Relaxed {
                super::super::sched_point();
            }
        }

        macro_rules! model_int_atomic {
            ($(#[$meta:meta])* $name:ident, $std:ty, $prim:ty) => {
                $(#[$meta])*
                pub struct $name {
                    v: $std,
                }

                impl $name {
                    /// Creates a new atomic with the given value.
                    pub const fn new(v: $prim) -> Self {
                        Self { v: <$std>::new(v) }
                    }

                    /// Loads the value; a scheduling point unless `Relaxed`.
                    pub fn load(&self, order: Ordering) -> $prim {
                        point(order);
                        self.v.load(Ordering::SeqCst)
                    }

                    /// Stores a value; a scheduling point unless `Relaxed`.
                    pub fn store(&self, val: $prim, order: Ordering) {
                        point(order);
                        self.v.store(val, Ordering::SeqCst)
                    }

                    /// Adds, returning the previous value.
                    pub fn fetch_add(&self, val: $prim, order: Ordering) -> $prim {
                        point(order);
                        self.v.fetch_add(val, Ordering::SeqCst)
                    }

                    /// Subtracts, returning the previous value.
                    pub fn fetch_sub(&self, val: $prim, order: Ordering) -> $prim {
                        point(order);
                        self.v.fetch_sub(val, Ordering::SeqCst)
                    }

                    /// Swaps the value, returning the previous one.
                    pub fn swap(&self, val: $prim, order: Ordering) -> $prim {
                        point(order);
                        self.v.swap(val, Ordering::SeqCst)
                    }

                    /// Compare-and-exchange with `std` semantics.
                    pub fn compare_exchange(
                        &self,
                        current: $prim,
                        new: $prim,
                        success: Ordering,
                        failure: Ordering,
                    ) -> Result<$prim, $prim> {
                        point2(success, failure);
                        self.v
                            .compare_exchange(current, new, Ordering::SeqCst, Ordering::SeqCst)
                    }

                    /// Consumes the atomic, returning the inner value.
                    pub fn into_inner(self) -> $prim {
                        self.v.into_inner()
                    }
                }

                impl Default for $name {
                    fn default() -> Self {
                        Self::new(0)
                    }
                }

                impl fmt::Debug for $name {
                    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                        fmt::Debug::fmt(&self.v.load(Ordering::SeqCst), f)
                    }
                }
            };
        }

        model_int_atomic!(
            /// Model counterpart of [`std::sync::atomic::AtomicU64`].
            AtomicU64,
            std::sync::atomic::AtomicU64,
            u64
        );
        model_int_atomic!(
            /// Model counterpart of [`std::sync::atomic::AtomicUsize`].
            AtomicUsize,
            std::sync::atomic::AtomicUsize,
            usize
        );

        /// Model counterpart of [`std::sync::atomic::AtomicBool`].
        pub struct AtomicBool {
            v: std::sync::atomic::AtomicBool,
        }

        impl AtomicBool {
            /// Creates a new atomic with the given value.
            pub const fn new(v: bool) -> Self {
                Self {
                    v: std::sync::atomic::AtomicBool::new(v),
                }
            }

            /// Loads the value; a scheduling point unless `Relaxed`.
            pub fn load(&self, order: Ordering) -> bool {
                point(order);
                self.v.load(Ordering::SeqCst)
            }

            /// Stores a value; a scheduling point unless `Relaxed`.
            pub fn store(&self, val: bool, order: Ordering) {
                point(order);
                self.v.store(val, Ordering::SeqCst)
            }

            /// Swaps the value, returning the previous one.
            pub fn swap(&self, val: bool, order: Ordering) -> bool {
                point(order);
                self.v.swap(val, Ordering::SeqCst)
            }

            /// Compare-and-exchange with `std` semantics.
            pub fn compare_exchange(
                &self,
                current: bool,
                new: bool,
                success: Ordering,
                failure: Ordering,
            ) -> Result<bool, bool> {
                point2(success, failure);
                self.v
                    .compare_exchange(current, new, Ordering::SeqCst, Ordering::SeqCst)
            }

            /// Consumes the atomic, returning the inner value.
            pub fn into_inner(self) -> bool {
                self.v.into_inner()
            }
        }

        impl Default for AtomicBool {
            fn default() -> Self {
                Self::new(false)
            }
        }

        impl fmt::Debug for AtomicBool {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                fmt::Debug::fmt(&self.v.load(Ordering::SeqCst), f)
            }
        }
    }

    pub mod mpsc {
        //! Model-scheduled channels mirroring [`std::sync::mpsc`].
        //!
        //! Error types are re-exported from `std` so call sites match
        //! identically under both builds. Rendezvous channels
        //! (`sync_channel(0)`) are not modeled.

        use std::collections::VecDeque;
        use std::sync::{Arc, Mutex, MutexGuard};

        pub use std::sync::mpsc::{RecvError, SendError, TryRecvError, TrySendError};

        struct ChanState<T> {
            queue: VecDeque<T>,
            cap: Option<usize>,
            senders: usize,
            rx_alive: bool,
        }

        struct Chan<T> {
            st: Mutex<ChanState<T>>,
        }

        impl<T> Chan<T> {
            fn lock(&self) -> MutexGuard<'_, ChanState<T>> {
                self.st.lock().unwrap_or_else(|e| e.into_inner())
            }
        }

        fn new_chan<T>(cap: Option<usize>) -> Arc<Chan<T>> {
            Arc::new(Chan {
                st: Mutex::new(ChanState {
                    queue: VecDeque::new(),
                    cap,
                    senders: 1,
                    rx_alive: true,
                }),
            })
        }

        /// Creates an unbounded model channel, as [`std::sync::mpsc::channel`].
        pub fn channel<T>() -> (Sender<T>, Receiver<T>) {
            let c = new_chan(None);
            (Sender(Arc::clone(&c)), Receiver(c))
        }

        /// Creates a bounded model channel, as [`std::sync::mpsc::sync_channel`].
        ///
        /// # Panics
        ///
        /// If `cap == 0`: rendezvous hand-off is not modeled.
        pub fn sync_channel<T>(cap: usize) -> (SyncSender<T>, Receiver<T>) {
            assert!(
                cap > 0,
                "model: rendezvous (capacity 0) channels unsupported"
            );
            let c = new_chan(Some(cap));
            (SyncSender(Arc::clone(&c)), Receiver(c))
        }

        /// Sending half of an unbounded model channel.
        pub struct Sender<T>(Arc<Chan<T>>);

        impl<T> Sender<T> {
            /// Queues a message; never blocks. Errors if the receiver
            /// is gone.
            pub fn send(&self, v: T) -> Result<(), SendError<T>> {
                super::super::sched_point();
                let mut st = self.0.lock();
                if !st.rx_alive {
                    return Err(SendError(v));
                }
                st.queue.push_back(v);
                drop(st);
                super::super::wake_point();
                Ok(())
            }
        }

        /// Sending half of a bounded model channel.
        pub struct SyncSender<T>(Arc<Chan<T>>);

        impl<T> SyncSender<T> {
            /// Non-blocking send with [`std::sync::mpsc::SyncSender::try_send`]
            /// semantics.
            pub fn try_send(&self, v: T) -> Result<(), TrySendError<T>> {
                super::super::sched_point();
                let mut st = self.0.lock();
                if !st.rx_alive {
                    return Err(TrySendError::Disconnected(v));
                }
                if st.queue.len() >= st.cap.expect("bounded channel has a cap") {
                    return Err(TrySendError::Full(v));
                }
                st.queue.push_back(v);
                drop(st);
                super::super::wake_point();
                Ok(())
            }

            /// Blocking send: parks until capacity frees or the
            /// receiver is dropped.
            pub fn send(&self, v: T) -> Result<(), SendError<T>> {
                super::super::sched_point();
                let mut v = Some(v);
                loop {
                    {
                        let mut st = self.0.lock();
                        if !st.rx_alive {
                            return Err(SendError(v.take().expect("send value present")));
                        }
                        if st.queue.len() < st.cap.expect("bounded channel has a cap") {
                            st.queue.push_back(v.take().expect("send value present"));
                            drop(st);
                            super::super::wake_point();
                            return Ok(());
                        }
                    }
                    super::super::block_point();
                }
            }
        }

        /// Receiving half of a model channel.
        pub struct Receiver<T>(Arc<Chan<T>>);

        impl<T> Receiver<T> {
            /// Non-blocking receive with [`std::sync::mpsc::Receiver::try_recv`]
            /// semantics.
            pub fn try_recv(&self) -> Result<T, TryRecvError> {
                super::super::sched_point();
                let mut st = self.0.lock();
                match st.queue.pop_front() {
                    Some(v) => {
                        drop(st);
                        super::super::wake_point();
                        Ok(v)
                    }
                    None if st.senders == 0 => Err(TryRecvError::Disconnected),
                    None => Err(TryRecvError::Empty),
                }
            }

            /// Blocking receive: parks until a message arrives or all
            /// senders are dropped.
            pub fn recv(&self) -> Result<T, RecvError> {
                super::super::sched_point();
                loop {
                    {
                        let mut st = self.0.lock();
                        if let Some(v) = st.queue.pop_front() {
                            drop(st);
                            super::super::wake_point();
                            return Ok(v);
                        }
                        if st.senders == 0 {
                            return Err(RecvError);
                        }
                    }
                    super::super::block_point();
                }
            }
        }

        impl<T> Clone for Sender<T> {
            fn clone(&self) -> Self {
                self.0.lock().senders += 1;
                Sender(Arc::clone(&self.0))
            }
        }

        impl<T> Clone for SyncSender<T> {
            fn clone(&self) -> Self {
                self.0.lock().senders += 1;
                SyncSender(Arc::clone(&self.0))
            }
        }

        impl<T> Drop for Sender<T> {
            fn drop(&mut self) {
                let last = {
                    let mut st = self.0.lock();
                    st.senders -= 1;
                    st.senders == 0
                };
                if last {
                    // A blocked receiver must observe the disconnect.
                    super::super::wake_point();
                }
            }
        }

        impl<T> Drop for SyncSender<T> {
            fn drop(&mut self) {
                let last = {
                    let mut st = self.0.lock();
                    st.senders -= 1;
                    st.senders == 0
                };
                if last {
                    super::super::wake_point();
                }
            }
        }

        impl<T> Drop for Receiver<T> {
            fn drop(&mut self) {
                self.0.lock().rx_alive = false;
                // Blocked senders must observe the disconnect.
                super::super::wake_point();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::sync::atomic::{AtomicBool, AtomicU64};
    use super::sync::mpsc;
    use std::collections::BTreeSet;
    use std::sync::atomic::Ordering;
    use std::sync::{Arc, Mutex};

    /// The canonical lost-update race: two threads doing a non-atomic
    /// read-modify-write. An exhaustive explorer must observe both the
    /// interleaved outcome (1) and the serialized one (2).
    #[test]
    fn explores_the_lost_update_interleaving() {
        let outcomes: Arc<Mutex<BTreeSet<u64>>> = Arc::new(Mutex::new(BTreeSet::new()));
        let sink = Arc::clone(&outcomes);
        super::run(move || {
            let n = Arc::new(AtomicU64::new(0));
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    let n = Arc::clone(&n);
                    super::thread::spawn(move || {
                        let v = n.load(Ordering::Acquire);
                        n.store(v + 1, Ordering::Release);
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            sink.lock()
                .unwrap()
                .insert(Arc::try_unwrap(n).unwrap().into_inner());
        });
        let seen = outcomes.lock().unwrap().clone();
        assert_eq!(
            seen.into_iter().collect::<Vec<_>>(),
            vec![1, 2],
            "exploration must reach both the racy and serialized outcomes"
        );
    }

    /// `Relaxed` accesses are commutative counters by policy and do
    /// not branch the schedule: a two-thread relaxed fetch_add model
    /// explores exactly the schedules spawn/join force — and the
    /// count still always comes out right under SC execution.
    #[test]
    fn relaxed_counters_do_not_explode_the_schedule() {
        super::run(|| {
            let n = Arc::new(AtomicU64::new(0));
            let hs: Vec<_> = (0..2)
                .map(|_| {
                    let n = Arc::clone(&n);
                    super::thread::spawn(move || {
                        n.fetch_add(1, Ordering::Relaxed);
                    })
                })
                .collect();
            for h in hs {
                h.join().unwrap();
            }
            assert_eq!(n.load(Ordering::Relaxed), 2);
        });
    }

    /// try_recv racing a send must observe both Empty and Ok across
    /// the exploration.
    #[test]
    fn explores_both_sides_of_a_try_recv_race() {
        let outcomes: Arc<Mutex<BTreeSet<&'static str>>> = Arc::new(Mutex::new(BTreeSet::new()));
        let sink = Arc::clone(&outcomes);
        super::run(move || {
            let (tx, rx) = mpsc::channel::<u32>();
            let t = super::thread::spawn(move || {
                tx.send(7).unwrap();
            });
            let first = match rx.try_recv() {
                Ok(7) => "ok",
                Ok(_) => "wrong-value",
                Err(mpsc::TryRecvError::Empty) => "empty",
                Err(mpsc::TryRecvError::Disconnected) => "disconnected",
            };
            t.join().unwrap();
            sink.lock().unwrap().insert(first);
        });
        let seen = outcomes.lock().unwrap().clone();
        assert!(
            seen.contains("ok") && seen.contains("empty"),
            "saw {seen:?}"
        );
    }

    /// A bounded channel's blocking send parks until the receiver
    /// drains; every schedule delivers all messages in order.
    #[test]
    fn bounded_blocking_send_unblocks_on_recv() {
        super::run(|| {
            let (tx, rx) = mpsc::sync_channel::<u32>(1);
            let t = super::thread::spawn(move || {
                for i in 0..3 {
                    tx.send(i).unwrap();
                }
            });
            let mut got = Vec::new();
            for _ in 0..3 {
                got.push(rx.recv().unwrap());
            }
            t.join().unwrap();
            assert_eq!(got, vec![0, 1, 2]);
        });
    }

    /// Dropping the last sender wakes a blocked receiver with a
    /// disconnect, never a deadlock.
    #[test]
    fn receiver_sees_disconnect_when_senders_drop() {
        super::run(|| {
            let (tx, rx) = mpsc::channel::<u32>();
            let t = super::thread::spawn(move || {
                tx.send(1).unwrap();
                // tx dropped here.
            });
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Err(mpsc::RecvError));
            t.join().unwrap();
        });
    }

    /// A genuine deadlock (receiver blocks forever, sender kept alive)
    /// is detected and reported, not hung.
    #[test]
    fn detects_deadlock() {
        let r = std::panic::catch_unwind(|| {
            super::run(|| {
                let (tx, rx) = mpsc::channel::<u32>();
                let _keep_alive = tx;
                let _ = rx.recv();
            });
        });
        let msg = *r
            .expect_err("deadlocked model must fail")
            .downcast::<String>()
            .expect("failure message is a String");
        assert!(msg.contains("deadlock"), "unexpected failure: {msg}");
    }

    /// An assertion that only fires on one specific interleaving is
    /// still found: a flag-then-data publication where the data store
    /// can be reordered behind the reader's check.
    #[test]
    fn finds_a_one_in_n_schedule_bug() {
        let r = std::panic::catch_unwind(|| {
            super::run(|| {
                let flag = Arc::new(AtomicBool::new(false));
                let data = Arc::new(AtomicU64::new(0));
                let (f2, d2) = (Arc::clone(&flag), Arc::clone(&data));
                let t = super::thread::spawn(move || {
                    // Bug under exploration: flag raised before data.
                    f2.store(true, Ordering::Release);
                    d2.store(42, Ordering::Release);
                });
                if flag.load(Ordering::Acquire) {
                    assert_eq!(data.load(Ordering::Acquire), 42, "flag up, data missing");
                }
                t.join().unwrap();
            });
        });
        let msg = *r
            .expect_err("the buggy publication order must be caught")
            .downcast::<String>()
            .expect("failure message is a String");
        assert!(msg.contains("flag up, data missing"), "got: {msg}");
    }

    /// A spin-loop consumer (yield ladder) cannot livelock the
    /// explorer, and sees the message on every schedule.
    #[test]
    fn spin_wait_terminates_under_yield_reduction() {
        super::run(|| {
            let (tx, rx) = mpsc::channel::<u32>();
            let t = super::thread::spawn(move || {
                tx.send(9).unwrap();
            });
            let v = loop {
                match rx.try_recv() {
                    Ok(v) => break v,
                    Err(_) => super::thread::yield_now(),
                }
            };
            assert_eq!(v, 9);
            t.join().unwrap();
        });
    }
}
