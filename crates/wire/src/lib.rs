//! Multipath QUIC wire format.
//!
//! This crate implements the byte-level encoding of Multipath QUIC packets
//! as designed in *Multipath QUIC: Design and Evaluation* (CoNEXT 2017):
//!
//! * a small unencrypted **public header** carrying the flags, Connection
//!   ID, the explicit **Path ID** (the paper's key header addition) and the
//!   **per-path packet number**;
//! * an encrypted payload made of **frames**. Frames are independent of the
//!   packets that carry them — the property the paper exploits to let the
//!   scheduler place (re)transmissions and control frames on any path.
//!
//! The frame set contains the gQUIC-era frames the paper builds on
//! ([`Frame::Stream`], [`Frame::Ack`], [`Frame::WindowUpdate`], ...) plus
//! the two frames the paper introduces: [`Frame::AddAddress`] and
//! [`Frame::Paths`].
//!
//! The layout is a varint-based simplification of the 2017 gQUIC bit
//! layout (see DESIGN.md §8) but preserves every field the paper's
//! mechanisms rely on.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod frame;
pub mod header;
pub mod packet;

pub use frame::{AckFrame, AddressInfo, Frame, FrameType, PathInfo, PathStatus, StreamFrame};
pub use header::{PacketType, PathId, PublicHeader};
pub use packet::{Packet, PacketBuilder};

/// Errors produced while decoding wire data.
///
/// Every decode path in this crate is total: malformed or truncated input
/// yields a `DecodeError`, never a panic. The `cargo xtask lint` no-panic
/// pass enforces this at the source level.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// Buffer ended before a complete field was read.
    UnexpectedEnd,
    /// Unknown frame type byte.
    UnknownFrame(u64),
    /// Unknown packet type in the public header flags.
    UnknownPacketType(u8),
    /// A length or count field exceeded a protocol limit.
    LimitExceeded(&'static str),
    /// A field had a semantically invalid value.
    Invalid(&'static str),
}

/// Former name of [`DecodeError`], kept for downstream compatibility.
pub type WireError = DecodeError;

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::UnexpectedEnd => write!(f, "unexpected end of buffer"),
            DecodeError::UnknownFrame(t) => write!(f, "unknown frame type {t:#x}"),
            DecodeError::UnknownPacketType(t) => write!(f, "unknown packet type {t:#x}"),
            DecodeError::LimitExceeded(what) => write!(f, "limit exceeded: {what}"),
            DecodeError::Invalid(what) => write!(f, "invalid field: {what}"),
        }
    }
}

impl std::error::Error for DecodeError {}

impl From<mpquic_util::varint::VarintError> for DecodeError {
    fn from(e: mpquic_util::varint::VarintError) -> Self {
        match e {
            mpquic_util::varint::VarintError::UnexpectedEnd => DecodeError::UnexpectedEnd,
            mpquic_util::varint::VarintError::ValueTooLarge => {
                DecodeError::LimitExceeded("varint value")
            }
        }
    }
}

/// Writes `value` as a varint, assuming the caller has respected the
/// `MAX_VARINT` range contract (all protocol fields — packet numbers,
/// offsets, lengths — are bounded well below `2^62`). Debug builds assert
/// the contract; release builds clamp rather than panic, because encode
/// paths run in the packetizer hot loop of a long-lived process.
pub(crate) fn put_varint<B: bytes::BufMut>(buf: &mut B, value: u64) {
    use mpquic_util::varint::{encode_varint, MAX_VARINT};
    debug_assert!(value <= MAX_VARINT, "varint out of range: {value}");
    let clamped = value.min(MAX_VARINT);
    // Infallible after clamping; the Err arm is unreachable by construction.
    let _ = encode_varint(buf, clamped);
}

/// Maximum UDP datagram payload we produce (conservative Internet-safe MTU
/// minus IP/UDP headers, matching quic-go's default of the era).
pub const MAX_DATAGRAM_SIZE: usize = 1350;

/// Maximum number of ACK ranges a single ACK frame may carry.
///
/// The paper: "the ACK frame ... can acknowledge up to 256 packet number
/// ranges. This is much larger than the 2-3 blocks than can be acknowledged
/// with the SACK TCP option".
pub const MAX_ACK_RANGES: usize = 256;

/// Size in bytes of the AEAD authentication tag appended to every encrypted
/// payload (see `mpquic-crypto`).
pub const AEAD_TAG_SIZE: usize = 8;
