//! The unencrypted public header.
//!
//! Every MPQUIC packet starts with a public header that middleboxes can
//! observe: flags, the Connection ID, the explicit Path ID and the per-path
//! packet number. The paper's design makes the Path ID *explicit* here
//! (rather than inferring paths from packet-number ranges) so that
//! middleboxes that drop "old" packet numbers cannot break the slower path,
//! and so that per-path state survives NAT rebinding.

use bytes::{Buf, BufMut};
use mpquic_util::varint::{decode_varint, varint_size};

use crate::{put_varint, DecodeError};

/// Identifier of one path within a connection.
///
/// Path 0 is the initial path (where the cryptographic handshake runs).
/// Client-initiated paths are odd, server-initiated paths are even, so the
/// two hosts can open paths without colliding (paper §3, *Path
/// Management*).
#[derive(
    Debug,
    Clone,
    Copy,
    PartialEq,
    Eq,
    PartialOrd,
    Ord,
    Hash,
    Default,
    serde::Serialize,
    serde::Deserialize,
)]
pub struct PathId(pub u32);

impl PathId {
    /// The initial path, created implicitly by the handshake.
    pub const INITIAL: PathId = PathId(0);

    /// True if this path may be initiated by the client (odd IDs and 0).
    pub fn client_initiated(self) -> bool {
        self == PathId::INITIAL || self.0 % 2 == 1
    }

    /// True if this path may be initiated by the server (even IDs except 0).
    pub fn server_initiated(self) -> bool {
        self != PathId::INITIAL && self.0.is_multiple_of(2)
    }
}

impl std::fmt::Display for PathId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "path#{}", self.0)
    }
}

/// Coarse packet type carried in the flags byte.
///
/// gQUIC ran the handshake over a dedicated crypto stream in regular-looking
/// packets; we distinguish handshake from application packets with a flag so
/// the receiving endpoint knows which keys to try, mirroring how real QUIC
/// separates Initial/Handshake/1-RTT spaces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PacketType {
    /// Carries handshake (crypto) frames; protected with initial keys.
    Handshake,
    /// Carries application data; protected with the 1-RTT keys.
    OneRtt,
}

/// Flag bit: packet type (0 = Handshake, 1 = OneRtt).
const FLAG_ONE_RTT: u8 = 0b0000_0001;
/// Flag bit: a non-zero Path ID field follows the CID (multipath packet).
const FLAG_HAS_PATH_ID: u8 = 0b0000_0010;
/// Fixed bit that must always be set (detects garbage early).
const FLAG_FIXED: u8 = 0b0100_0000;
/// Mask of bits that must be zero.
const FLAG_RESERVED_MASK: u8 = 0b1011_1100;

/// The unencrypted public header of an MPQUIC packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PublicHeader {
    /// Connection ID: identifies the connection regardless of 4-tuple, so
    /// paths can be added or rebound without losing connection state.
    pub connection_id: u64,
    /// The path this packet was sent on.
    pub path_id: PathId,
    /// Per-path monotonically increasing packet number.
    pub packet_number: u64,
    /// Handshake or application packet.
    pub packet_type: PacketType,
}

impl PublicHeader {
    /// Encodes the header into `buf`.
    pub fn encode<B: BufMut>(&self, buf: &mut B) {
        let mut flags = FLAG_FIXED;
        if self.packet_type == PacketType::OneRtt {
            flags |= FLAG_ONE_RTT;
        }
        if self.path_id != PathId::INITIAL {
            flags |= FLAG_HAS_PATH_ID;
        }
        buf.put_u8(flags);
        buf.put_u64(self.connection_id);
        if self.path_id != PathId::INITIAL {
            put_varint(buf, u64::from(self.path_id.0));
        }
        put_varint(buf, self.packet_number);
    }

    /// Decodes a header from the front of `buf`.
    pub fn decode<B: Buf>(buf: &mut B) -> Result<PublicHeader, DecodeError> {
        if buf.remaining() < 1 {
            return Err(DecodeError::UnexpectedEnd);
        }
        let flags = buf.get_u8();
        if flags & FLAG_FIXED == 0 || flags & FLAG_RESERVED_MASK != 0 {
            return Err(DecodeError::UnknownPacketType(flags));
        }
        if buf.remaining() < 8 {
            return Err(DecodeError::UnexpectedEnd);
        }
        let connection_id = buf.get_u64();
        let path_id = if flags & FLAG_HAS_PATH_ID != 0 {
            let raw = decode_varint(buf)?;
            let id = u32::try_from(raw).map_err(|_| DecodeError::LimitExceeded("path id"))?;
            if id == 0 {
                return Err(DecodeError::Invalid("explicit path id 0"));
            }
            PathId(id)
        } else {
            PathId::INITIAL
        };
        let packet_number = decode_varint(buf)?;
        let packet_type = if flags & FLAG_ONE_RTT != 0 {
            PacketType::OneRtt
        } else {
            PacketType::Handshake
        };
        Ok(PublicHeader {
            connection_id,
            path_id,
            packet_number,
            packet_type,
        })
    }

    /// Extracts the Connection ID from the front of a datagram without
    /// decoding the rest of the header — the endpoint demux fast path.
    ///
    /// Validates only what routing needs: the fixed bit set, the
    /// reserved bits clear, and enough bytes for the CID field. Returns
    /// `None` for garbage, which the demux drops without ever touching a
    /// connection. The full [`PublicHeader::decode`] (and packet
    /// authentication) still runs inside the owning connection, so this
    /// shortcut routes but never *trusts* a datagram.
    pub fn connection_id_of(datagram: &[u8]) -> Option<u64> {
        let &flags = datagram.first()?;
        if flags & FLAG_FIXED == 0 || flags & FLAG_RESERVED_MASK != 0 {
            return None;
        }
        let cid = datagram.get(1..9)?;
        let mut bytes = [0u8; 8];
        for (dst, src) in bytes.iter_mut().zip(cid) {
            *dst = *src;
        }
        Some(u64::from_be_bytes(bytes))
    }

    /// Number of bytes [`PublicHeader::encode`] will write.
    pub fn wire_size(&self) -> usize {
        let mut size = 1 + 8 + varint_size(self.packet_number);
        if self.path_id != PathId::INITIAL {
            size += varint_size(u64::from(self.path_id.0));
        }
        size
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::BytesMut;
    use proptest::prelude::*;

    fn round_trip(h: PublicHeader) -> PublicHeader {
        let mut buf = BytesMut::new();
        h.encode(&mut buf);
        assert_eq!(buf.len(), h.wire_size());
        let mut read = buf.freeze();
        let decoded = PublicHeader::decode(&mut read).unwrap();
        assert_eq!(read.remaining(), 0);
        decoded
    }

    #[test]
    fn initial_path_omits_path_id() {
        let h = PublicHeader {
            connection_id: 0xDEAD_BEEF,
            path_id: PathId::INITIAL,
            packet_number: 1,
            packet_type: PacketType::Handshake,
        };
        assert_eq!(round_trip(h), h);
        // 1 flag + 8 cid + 1 pn
        assert_eq!(h.wire_size(), 10);
    }

    #[test]
    fn non_initial_path_includes_path_id() {
        let h = PublicHeader {
            connection_id: 7,
            path_id: PathId(3),
            packet_number: 100_000,
            packet_type: PacketType::OneRtt,
        };
        assert_eq!(round_trip(h), h);
        assert!(h.wire_size() > 10);
    }

    #[test]
    fn odd_even_path_id_convention() {
        assert!(PathId::INITIAL.client_initiated());
        assert!(!PathId::INITIAL.server_initiated());
        assert!(PathId(1).client_initiated());
        assert!(PathId(3).client_initiated());
        assert!(PathId(2).server_initiated());
        assert!(!PathId(2).client_initiated());
    }

    #[test]
    fn garbage_flags_rejected() {
        // Missing fixed bit.
        let mut buf: &[u8] = &[0x00, 0, 0, 0, 0, 0, 0, 0, 0, 0];
        assert!(matches!(
            PublicHeader::decode(&mut buf),
            Err(DecodeError::UnknownPacketType(_))
        ));
        // Reserved bit set.
        let mut buf2: &[u8] = &[0xC0, 0, 0, 0, 0, 0, 0, 0, 0, 0];
        assert!(matches!(
            PublicHeader::decode(&mut buf2),
            Err(DecodeError::UnknownPacketType(_))
        ));
    }

    #[test]
    fn explicit_zero_path_id_rejected() {
        // Manually craft flags with HAS_PATH_ID and a zero varint path id.
        let mut buf = BytesMut::new();
        buf.put_u8(FLAG_FIXED | FLAG_HAS_PATH_ID | FLAG_ONE_RTT);
        buf.put_u64(1);
        buf.put_u8(0); // path id 0
        buf.put_u8(5); // pn
        let mut read = buf.freeze();
        assert_eq!(
            PublicHeader::decode(&mut read),
            Err(DecodeError::Invalid("explicit path id 0"))
        );
    }

    #[test]
    fn truncated_header_rejected() {
        let h = PublicHeader {
            connection_id: 42,
            path_id: PathId(5),
            packet_number: 77,
            packet_type: PacketType::OneRtt,
        };
        let mut buf = BytesMut::new();
        h.encode(&mut buf);
        for cut in 0..buf.len() {
            let mut partial = &buf[..cut];
            assert!(PublicHeader::decode(&mut partial).is_err(), "cut={cut}");
        }
    }

    #[test]
    fn connection_id_fast_path_matches_full_decode() {
        let h = PublicHeader {
            connection_id: 0x1122_3344_5566_7788,
            path_id: PathId(3),
            packet_number: 99,
            packet_type: PacketType::OneRtt,
        };
        let mut buf = BytesMut::new();
        h.encode(&mut buf);
        assert_eq!(
            PublicHeader::connection_id_of(&buf),
            Some(h.connection_id),
            "fast path agrees with the encoder"
        );
        // Garbage flags are rejected without reading the CID.
        assert_eq!(PublicHeader::connection_id_of(&[0x00; 16]), None);
        assert_eq!(PublicHeader::connection_id_of(&[0xC0; 16]), None);
        // Too short for a CID.
        assert_eq!(PublicHeader::connection_id_of(&buf[..8]), None);
        assert_eq!(PublicHeader::connection_id_of(&[]), None);
    }

    proptest! {
        #[test]
        fn prop_header_decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
            let mut read = &bytes[..];
            let _ = PublicHeader::decode(&mut read);
        }

        #[test]
        fn prop_cid_fast_path_agrees_with_decode(bytes in proptest::collection::vec(any::<u8>(), 0..32)) {
            // Whenever the full decoder accepts a header, the fast path
            // must extract the same CID; when the fast path rejects, the
            // decoder must reject too.
            let mut read = &bytes[..];
            let decoded = PublicHeader::decode(&mut read);
            let fast = PublicHeader::connection_id_of(&bytes);
            match (decoded, fast) {
                (Ok(h), got) => prop_assert_eq!(got, Some(h.connection_id)),
                (Err(_), None) => {}
                // Fast path may accept datagrams the full decoder rejects
                // (e.g. truncated after the CID) — routing is best-effort.
                (Err(_), Some(_)) => {}
            }
        }

        #[test]
        fn prop_round_trip(
            cid in any::<u64>(),
            path in 0u32..10_000,
            pn in 0u64..(1 << 62),
            one_rtt in any::<bool>(),
        ) {
            let h = PublicHeader {
                connection_id: cid,
                path_id: PathId(path),
                packet_number: pn,
                packet_type: if one_rtt { PacketType::OneRtt } else { PacketType::Handshake },
            };
            prop_assert_eq!(round_trip(h), h);
        }
    }
}
