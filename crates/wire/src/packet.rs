//! Packet assembly: packing frames into bounded datagrams.
//!
//! A packet is a [`PublicHeader`] plus a sequence of frames that will be
//! sealed by the crypto layer. [`PacketBuilder`] enforces the datagram size
//! budget (`MAX_DATAGRAM_SIZE` minus header and AEAD tag) while the
//! connection's packetizer decides *what* goes in.

use bytes::BytesMut;

use crate::frame::Frame;
use crate::header::PublicHeader;
use crate::{DecodeError, AEAD_TAG_SIZE, MAX_DATAGRAM_SIZE};

/// A fully assembled (but not yet encrypted) packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Packet {
    /// The unencrypted public header.
    pub header: PublicHeader,
    /// Frames carried in the (to-be-encrypted) payload.
    pub frames: Vec<Frame>,
}

impl Packet {
    /// Encodes the header and the plaintext payload separately; the crypto
    /// layer seals the payload using the header bytes as associated data.
    pub fn encode_parts(&self) -> (Vec<u8>, Vec<u8>) {
        let mut header = BytesMut::with_capacity(self.header.wire_size());
        let payload_size: usize = self.frames.iter().map(Frame::wire_size).sum();
        let mut payload = BytesMut::with_capacity(payload_size);
        self.encode_parts_into(&mut header, &mut payload);
        (header.to_vec(), payload.to_vec())
    }

    /// Like [`Packet::encode_parts`], but writes into caller-provided
    /// buffers (cleared first). The batched egress path reuses two scratch
    /// buffers across packets so encoding allocates nothing once warm.
    pub fn encode_parts_into(&self, header: &mut BytesMut, payload: &mut BytesMut) {
        header.clear();
        self.header.encode(header);
        payload.clear();
        for frame in &self.frames {
            frame.encode(payload);
        }
    }

    /// Parses a plaintext payload back into frames, given its decoded header.
    pub fn from_parts(header: PublicHeader, payload: &[u8]) -> Result<Packet, DecodeError> {
        Ok(Packet {
            header,
            frames: Frame::decode_all(payload)?,
        })
    }

    /// Total on-the-wire size once sealed (header + payload + AEAD tag).
    pub fn wire_size(&self) -> usize {
        self.header.wire_size()
            + self.frames.iter().map(Frame::wire_size).sum::<usize>()
            + AEAD_TAG_SIZE
    }

    /// True if the packet contains at least one retransmittable frame and
    /// therefore must be tracked by loss recovery.
    pub fn is_ack_eliciting(&self) -> bool {
        self.frames.iter().any(Frame::is_retransmittable)
    }
}

/// Incrementally packs frames into a packet without exceeding the datagram
/// budget.
#[derive(Debug)]
pub struct PacketBuilder {
    header: PublicHeader,
    frames: Vec<Frame>,
    /// Payload bytes still available.
    remaining: usize,
}

impl PacketBuilder {
    /// Starts a packet with the standard budget
    /// (`MAX_DATAGRAM_SIZE - header - tag`).
    pub fn new(header: PublicHeader) -> PacketBuilder {
        Self::with_datagram_size(header, MAX_DATAGRAM_SIZE)
    }

    /// Starts a packet bounded by a custom datagram size (for tests and
    /// MTU experiments).
    pub fn with_datagram_size(header: PublicHeader, datagram_size: usize) -> PacketBuilder {
        let overhead = header.wire_size() + AEAD_TAG_SIZE;
        PacketBuilder {
            header,
            frames: Vec::new(),
            remaining: datagram_size.saturating_sub(overhead),
        }
    }

    /// Remaining payload budget in bytes.
    pub fn remaining(&self) -> usize {
        self.remaining
    }

    /// Attempts to add a frame; returns false (leaving the builder
    /// unchanged) if it does not fit.
    pub fn try_push(&mut self, frame: Frame) -> bool {
        let size = frame.wire_size();
        if size > self.remaining {
            return false;
        }
        self.remaining -= size;
        self.frames.push(frame);
        true
    }

    /// True if no frames have been added yet.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// True if any added frame is retransmittable.
    pub fn has_retransmittable(&self) -> bool {
        self.frames.iter().any(Frame::is_retransmittable)
    }

    /// Finishes the packet. Returns `None` if no frames were added.
    pub fn finish(self) -> Option<Packet> {
        if self.frames.is_empty() {
            None
        } else {
            Some(Packet {
                header: self.header,
                frames: self.frames,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::StreamFrame;
    use crate::header::{PacketType, PathId};
    use bytes::Bytes;

    fn header() -> PublicHeader {
        PublicHeader {
            connection_id: 0xABCD,
            path_id: PathId(1),
            packet_number: 42,
            packet_type: PacketType::OneRtt,
        }
    }

    #[test]
    fn encode_decode_round_trip() {
        let packet = Packet {
            header: header(),
            frames: vec![
                Frame::Ping,
                Frame::Stream(StreamFrame {
                    stream_id: 3,
                    offset: 0,
                    data: Bytes::from_static(b"payload"),
                    fin: false,
                }),
            ],
        };
        let (hdr_bytes, payload) = packet.encode_parts();
        let mut hdr_read = &hdr_bytes[..];
        let decoded_header = PublicHeader::decode(&mut hdr_read).unwrap();
        let decoded = Packet::from_parts(decoded_header, &payload).unwrap();
        assert_eq!(decoded, packet);
        assert_eq!(
            packet.wire_size(),
            hdr_bytes.len() + payload.len() + AEAD_TAG_SIZE
        );
    }

    #[test]
    fn builder_respects_budget() {
        let mut builder = PacketBuilder::with_datagram_size(header(), 100);
        let budget = builder.remaining();
        assert!(budget < 100);
        // A stream frame sized exactly to the budget fits...
        let overhead = StreamFrame::overhead(1, 0, budget);
        let fits = Frame::Stream(StreamFrame {
            stream_id: 1,
            offset: 0,
            data: Bytes::from(vec![0u8; budget - overhead]),
            fin: false,
        });
        assert!(builder.try_push(fits));
        // ...and then nothing else does.
        assert!(!builder.try_push(Frame::Ping));
        let packet = builder.finish().unwrap();
        assert!(packet.wire_size() <= 100);
    }

    #[test]
    fn builder_rejects_oversized_frame_without_mutation() {
        let mut builder = PacketBuilder::with_datagram_size(header(), 50);
        let before = builder.remaining();
        let huge = Frame::Stream(StreamFrame {
            stream_id: 1,
            offset: 0,
            data: Bytes::from(vec![0u8; 1000]),
            fin: false,
        });
        assert!(!builder.try_push(huge));
        assert_eq!(builder.remaining(), before);
        assert!(builder.is_empty());
        assert!(builder.finish().is_none());
    }

    #[test]
    fn ack_eliciting_detection() {
        let acks_only = Packet {
            header: header(),
            frames: vec![Frame::Padding { len: 3 }],
        };
        assert!(!acks_only.is_ack_eliciting());
        let with_ping = Packet {
            header: header(),
            frames: vec![Frame::Padding { len: 3 }, Frame::Ping],
        };
        assert!(with_ping.is_ack_eliciting());
    }

    #[test]
    fn default_budget_leaves_room_for_tag() {
        let builder = PacketBuilder::new(header());
        assert_eq!(
            builder.remaining(),
            MAX_DATAGRAM_SIZE - header().wire_size() - AEAD_TAG_SIZE
        );
    }
}
