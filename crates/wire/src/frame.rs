//! Frames: the units of control and data carried inside encrypted packet
//! payloads.
//!
//! A core property the paper builds on: *"frames are independent of the
//! packets containing them, they are not constrained to a particular
//! path"*. A frame lost in a packet on one path can be retransmitted inside
//! a new packet on any other path. This module therefore keeps frames fully
//! self-describing.
//!
//! Besides the gQUIC-era frames, two frames are introduced by the paper:
//!
//! * [`Frame::AddAddress`] — advertises an address owned by the sending
//!   host (e.g. a dual-stack server's IPv6 address over an IPv4-initiated
//!   connection). Encrypted, so it avoids the security concerns of MPTCP's
//!   cleartext `ADD_ADDR` option.
//! * [`Frame::Paths`] — shares the sender's view of its active paths and
//!   their performance (estimated RTT, liveness) so the peer can detect
//!   underperforming or broken paths; used to accelerate handover (§4.3).

use bytes::{Buf, BufMut, Bytes};
use mpquic_util::varint::{decode_varint, varint_size};
use mpquic_util::RangeSet;
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr, SocketAddr};

use crate::header::PathId;
use crate::{put_varint, DecodeError, MAX_ACK_RANGES};

/// Frame type identifiers on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u64)]
pub enum FrameType {
    /// Single padding byte.
    Padding = 0x00,
    /// Liveness probe; elicits an ACK.
    Ping = 0x01,
    /// Per-path acknowledgement.
    Ack = 0x02,
    /// Flow-control credit for a stream (or the connection when stream 0).
    WindowUpdate = 0x03,
    /// Sender is blocked by flow control.
    Blocked = 0x04,
    /// Abrupt stream termination.
    RstStream = 0x05,
    /// Connection termination.
    ConnectionClose = 0x06,
    /// Handshake bytes (the gQUIC crypto stream, as its own frame).
    Crypto = 0x07,
    /// Stream data without FIN.
    Stream = 0x08,
    /// Stream data with FIN (final frame of the stream).
    StreamFin = 0x09,
    /// Advertise an owned address (paper §3, Path Management).
    AddAddress = 0x10,
    /// Share active-path statistics (paper §3 / §4.3 handover).
    Paths = 0x11,
    /// Probe a (possibly rebound) path with an unguessable token.
    PathChallenge = 0x12,
    /// Echo a PATH_CHALLENGE token, proving the address can receive.
    PathResponse = 0x13,
    /// Issue a fresh connection ID the peer may switch to.
    NewConnectionId = 0x14,
    /// Retire a previously issued connection ID.
    RetireConnectionId = 0x15,
}

impl FrameType {
    fn from_u64(v: u64) -> Option<FrameType> {
        Some(match v {
            0x00 => FrameType::Padding,
            0x01 => FrameType::Ping,
            0x02 => FrameType::Ack,
            0x03 => FrameType::WindowUpdate,
            0x04 => FrameType::Blocked,
            0x05 => FrameType::RstStream,
            0x06 => FrameType::ConnectionClose,
            0x07 => FrameType::Crypto,
            0x08 => FrameType::Stream,
            0x09 => FrameType::StreamFin,
            0x10 => FrameType::AddAddress,
            0x11 => FrameType::Paths,
            0x12 => FrameType::PathChallenge,
            0x13 => FrameType::PathResponse,
            0x14 => FrameType::NewConnectionId,
            0x15 => FrameType::RetireConnectionId,
            _ => return None,
        })
    }

    /// The frame kind's wire-format name (telemetry's
    /// `frame_retransmitted.kind` field and log output).
    pub fn name(self) -> &'static str {
        match self {
            FrameType::Padding => "PADDING",
            FrameType::Ping => "PING",
            FrameType::Ack => "ACK",
            FrameType::WindowUpdate => "WINDOW_UPDATE",
            FrameType::Blocked => "BLOCKED",
            FrameType::RstStream => "RST_STREAM",
            FrameType::ConnectionClose => "CONNECTION_CLOSE",
            FrameType::Crypto => "CRYPTO",
            FrameType::Stream => "STREAM",
            FrameType::StreamFin => "STREAM_FIN",
            FrameType::AddAddress => "ADD_ADDRESS",
            FrameType::Paths => "PATHS",
            FrameType::PathChallenge => "PATH_CHALLENGE",
            FrameType::PathResponse => "PATH_RESPONSE",
            FrameType::NewConnectionId => "NEW_CONNECTION_ID",
            FrameType::RetireConnectionId => "RETIRE_CONNECTION_ID",
        }
    }
}

/// Stream data frame: `(stream id, offset, data, fin)` — everything a
/// receiver needs to reorder data arriving over different paths.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamFrame {
    /// Stream identifier.
    pub stream_id: u64,
    /// Byte offset of `data` within the stream.
    pub offset: u64,
    /// Payload bytes.
    pub data: Bytes,
    /// True if this frame ends the stream.
    pub fin: bool,
}

impl StreamFrame {
    /// Encoded size including the type byte.
    pub fn wire_size(&self) -> usize {
        1 + varint_size(self.stream_id)
            + varint_size(self.offset)
            + varint_size(self.data.len() as u64)
            + self.data.len()
    }

    /// Overhead of a stream frame before any payload byte, for packetizers
    /// deciding how much data fits.
    pub fn overhead(stream_id: u64, offset: u64, max_len: usize) -> usize {
        1 + varint_size(stream_id) + varint_size(offset) + varint_size(max_len as u64)
    }
}

/// Per-path acknowledgement frame.
///
/// Carries the Path ID of the packet-number space being acknowledged, so an
/// ACK for path 2's packets may travel on any path. Up to
/// [`MAX_ACK_RANGES`] disjoint ranges are reported — the mechanism that
/// makes QUIC loss recovery so much more informed than TCP SACK's 2–3
/// blocks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AckFrame {
    /// Which path's packet-number space is acknowledged.
    pub path_id: PathId,
    /// Largest packet number received on that path.
    pub largest_acked: u64,
    /// Time between receiving `largest_acked` and sending this ACK, in
    /// microseconds; lets the peer subtract host delay from RTT samples.
    pub ack_delay_micros: u64,
    /// Acknowledged ranges, descending, inclusive `(start, end)` pairs.
    /// `ranges[0].1 == largest_acked`.
    pub ranges: Vec<(u64, u64)>,
}

impl AckFrame {
    /// Builds an ACK frame from a receiver's [`RangeSet`], keeping only the
    /// newest [`MAX_ACK_RANGES`] ranges.
    ///
    /// Returns `None` if the set is empty.
    pub fn from_range_set(
        path_id: PathId,
        received: &RangeSet,
        ack_delay_micros: u64,
    ) -> Option<AckFrame> {
        Self::from_range_set_capped(path_id, received, ack_delay_micros, MAX_ACK_RANGES)
    }

    /// [`AckFrame::from_range_set`] with an explicit range cap — used by
    /// the `ablate_ack_ranges` experiment to give QUIC TCP-SACK-like
    /// 3-block acking and measure what the 256-range frame buys.
    pub fn from_range_set_capped(
        path_id: PathId,
        received: &RangeSet,
        ack_delay_micros: u64,
        cap: usize,
    ) -> Option<AckFrame> {
        if received.is_empty() {
            return None;
        }
        let mut ranges: Vec<(u64, u64)> = received
            .iter_descending()
            .take(cap.clamp(1, MAX_ACK_RANGES))
            .map(|r| (*r.start(), *r.end()))
            .collect();
        ranges.shrink_to_fit();
        let largest_acked = ranges.first()?.1;
        Some(AckFrame {
            path_id,
            largest_acked,
            ack_delay_micros,
            ranges,
        })
    }

    /// Iterates acknowledged packet numbers as ascending ranges.
    pub fn iter_ranges_ascending(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.ranges.iter().rev().copied()
    }

    /// Smallest acknowledged packet number.
    pub fn smallest_acked(&self) -> u64 {
        self.ranges
            .last()
            .map(|&(s, _)| s)
            .unwrap_or(self.largest_acked)
    }

    /// Encoded size including the type byte.
    ///
    /// A structurally empty ACK (no ranges — unreachable through
    /// [`AckFrame::from_range_set`]) has size 0, matching the zero bytes
    /// [`AckFrame::encode`] emits for it.
    pub fn wire_size(&self) -> usize {
        let Some(&(first_start, first_end)) = self.ranges.first() else {
            return 0;
        };
        let mut size = 1
            + varint_size(u64::from(self.path_id.0))
            + varint_size(self.largest_acked)
            + varint_size(self.ack_delay_micros)
            + varint_size(self.ranges.len() as u64 - 1)
            + varint_size(first_end - first_start);
        let mut prev_start = first_start;
        for &(start, end) in self.ranges.iter().skip(1) {
            size += varint_size(prev_start - end - 2) + varint_size(end - start);
            prev_start = start;
        }
        size
    }

    fn encode<B: BufMut>(&self, buf: &mut B) {
        let Some(&(first_start, first_end)) = self.ranges.first() else {
            debug_assert!(false, "encoding an ACK frame with no ranges");
            return;
        };
        debug_assert_eq!(first_end, self.largest_acked);
        buf.put_u8(FrameType::Ack as u8);
        put_varint(buf, u64::from(self.path_id.0));
        put_varint(buf, self.largest_acked);
        put_varint(buf, self.ack_delay_micros);
        put_varint(buf, self.ranges.len() as u64 - 1);
        // First range length.
        put_varint(buf, first_end - first_start);
        let mut prev_start = first_start;
        for &(start, end) in self.ranges.iter().skip(1) {
            debug_assert!(
                end < prev_start.saturating_sub(1),
                "ranges must be disjoint, descending"
            );
            // Gap: unacked packets between ranges, minus one (RFC 9000 style).
            put_varint(buf, prev_start - end - 2);
            put_varint(buf, end - start);
            prev_start = start;
        }
    }

    fn decode<B: Buf>(buf: &mut B) -> Result<AckFrame, DecodeError> {
        let raw_path = decode_varint(buf)?;
        let path_id =
            PathId(u32::try_from(raw_path).map_err(|_| DecodeError::LimitExceeded("ack path id"))?);
        let largest_acked = decode_varint(buf)?;
        let ack_delay_micros = decode_varint(buf)?;
        let extra_ranges = decode_varint(buf)?;
        if extra_ranges as usize >= MAX_ACK_RANGES {
            return Err(DecodeError::LimitExceeded("ack range count"));
        }
        let first_len = decode_varint(buf)?;
        if first_len > largest_acked {
            return Err(DecodeError::Invalid("ack first range underflow"));
        }
        let mut ranges = Vec::with_capacity(extra_ranges as usize + 1);
        ranges.push((largest_acked - first_len, largest_acked));
        let mut prev_start = largest_acked - first_len;
        for _ in 0..extra_ranges {
            let gap = decode_varint(buf)?;
            let len = decode_varint(buf)?;
            let end = prev_start
                .checked_sub(gap + 2)
                .ok_or(DecodeError::Invalid("ack gap underflow"))?;
            let start = end
                .checked_sub(len)
                .ok_or(DecodeError::Invalid("ack range underflow"))?;
            ranges.push((start, end));
            prev_start = start;
        }
        Ok(AckFrame {
            path_id,
            largest_acked,
            ack_delay_micros,
            ranges,
        })
    }
}

/// Liveness / performance status of a path as reported in a PATHS frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PathStatus {
    /// Path is believed usable.
    Active = 0,
    /// Path experienced an RTO with no activity since — the sender will
    /// avoid it until traffic is acknowledged on it again (paper §4.3).
    PotentiallyFailed = 1,
    /// Path has been abandoned.
    Closed = 2,
}

impl PathStatus {
    fn from_u8(v: u8) -> Option<PathStatus> {
        Some(match v {
            0 => PathStatus::Active,
            1 => PathStatus::PotentiallyFailed,
            2 => PathStatus::Closed,
            _ => return None,
        })
    }
}

/// One path's entry inside a [`Frame::Paths`] frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PathInfo {
    /// The path being described.
    pub path_id: PathId,
    /// Sender's view of the path's liveness.
    pub status: PathStatus,
    /// Sender's smoothed RTT estimate for the path, microseconds
    /// (`u64::MAX` = unknown).
    pub srtt_micros: u64,
}

/// Maximum number of entries in a PATHS frame.
pub const MAX_PATHS_ENTRIES: usize = 64;

/// Sentinel `srtt_micros` value meaning "RTT not yet measured" (the
/// largest encodable varint).
pub const SRTT_UNKNOWN: u64 = mpquic_util::varint::MAX_VARINT;

/// An address advertisement inside a [`Frame::AddAddress`] frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AddressInfo {
    /// Sender-chosen identifier for the address (stable across readvertisement).
    pub address_id: u64,
    /// The advertised socket address.
    pub addr: SocketAddr,
}

/// Maximum CONNECTION_CLOSE reason length we accept.
const MAX_REASON_LEN: usize = 512;

/// A decoded (or to-be-encoded) frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Frame {
    /// `len` padding bytes (consecutive padding bytes decode as one frame).
    Padding {
        /// Number of padding bytes.
        len: usize,
    },
    /// Liveness probe.
    Ping,
    /// Per-path acknowledgement.
    Ack(AckFrame),
    /// Stream data.
    Stream(StreamFrame),
    /// Flow-control window advertisement. `stream_id == 0` advertises the
    /// connection-level window (gQUIC convention); the paper's scheduler
    /// duplicates these on **all** paths to avoid receive-buffer stalls.
    WindowUpdate {
        /// Stream the credit applies to; 0 for the connection window.
        stream_id: u64,
        /// New absolute flow-control limit in bytes.
        max_data: u64,
    },
    /// The sender has data but is blocked by flow control.
    Blocked {
        /// Blocked stream; 0 for the connection window.
        stream_id: u64,
    },
    /// Abrupt stream reset.
    RstStream {
        /// Stream being reset.
        stream_id: u64,
        /// Application error code.
        error_code: u64,
        /// Final length of the stream in bytes (for flow-control accounting).
        final_offset: u64,
    },
    /// Connection termination with a reason.
    ConnectionClose {
        /// Transport or application error code.
        error_code: u64,
        /// Human-readable reason.
        reason: String,
    },
    /// Handshake bytes at an offset within the crypto stream.
    Crypto {
        /// Offset within the handshake byte stream.
        offset: u64,
        /// Handshake payload.
        data: Bytes,
    },
    /// Advertise an owned address (paper's new frame).
    AddAddress(AddressInfo),
    /// Share per-path statistics (paper's new frame).
    Paths(
        /// Entries, one per path the sender considers part of the connection.
        Vec<PathInfo>,
    ),
    /// Probe a rebound path: the receiver must echo `token` in a
    /// PATH_RESPONSE before the sender resumes data on that address.
    PathChallenge {
        /// Unguessable 64-bit token (fixed 8 bytes on the wire).
        token: u64,
    },
    /// Echo of a PATH_CHALLENGE token. May ride any path; what it
    /// validates is the address the challenge was sent to.
    PathResponse {
        /// The token being echoed.
        token: u64,
    },
    /// Issue a fresh connection ID the peer should migrate to (CID
    /// rotation after a validated migration).
    NewConnectionId {
        /// Monotonic issue sequence number.
        sequence: u64,
        /// The new connection ID (fixed 8 bytes on the wire).
        cid: u64,
    },
    /// Tell the issuer a connection ID is no longer in use.
    RetireConnectionId {
        /// The issue sequence number being retired.
        sequence: u64,
    },
}

impl Frame {
    /// The frame's wire type.
    pub fn frame_type(&self) -> FrameType {
        match self {
            Frame::Padding { .. } => FrameType::Padding,
            Frame::Ping => FrameType::Ping,
            Frame::Ack(_) => FrameType::Ack,
            Frame::Stream(s) if s.fin => FrameType::StreamFin,
            Frame::Stream(_) => FrameType::Stream,
            Frame::WindowUpdate { .. } => FrameType::WindowUpdate,
            Frame::Blocked { .. } => FrameType::Blocked,
            Frame::RstStream { .. } => FrameType::RstStream,
            Frame::ConnectionClose { .. } => FrameType::ConnectionClose,
            Frame::Crypto { .. } => FrameType::Crypto,
            Frame::AddAddress(_) => FrameType::AddAddress,
            Frame::Paths(_) => FrameType::Paths,
            Frame::PathChallenge { .. } => FrameType::PathChallenge,
            Frame::PathResponse { .. } => FrameType::PathResponse,
            Frame::NewConnectionId { .. } => FrameType::NewConnectionId,
            Frame::RetireConnectionId { .. } => FrameType::RetireConnectionId,
        }
    }

    /// True for frames that must be delivered reliably (retransmitted if
    /// the carrying packet is lost). ACKs and padding are not
    /// retransmittable; everything else is.
    pub fn is_retransmittable(&self) -> bool {
        !matches!(self, Frame::Padding { .. } | Frame::Ack(_))
    }

    /// Encoded size in bytes, including the type byte.
    pub fn wire_size(&self) -> usize {
        match self {
            Frame::Padding { len } => *len,
            Frame::Ping => 1,
            Frame::Ack(ack) => ack.wire_size(),
            Frame::Stream(s) => s.wire_size(),
            Frame::WindowUpdate {
                stream_id,
                max_data,
            } => 1 + varint_size(*stream_id) + varint_size(*max_data),
            Frame::Blocked { stream_id } => 1 + varint_size(*stream_id),
            Frame::RstStream {
                stream_id,
                error_code,
                final_offset,
            } => {
                1 + varint_size(*stream_id) + varint_size(*error_code) + varint_size(*final_offset)
            }
            Frame::ConnectionClose { error_code, reason } => {
                1 + varint_size(*error_code) + varint_size(reason.len() as u64) + reason.len()
            }
            Frame::Crypto { offset, data } => {
                1 + varint_size(*offset) + varint_size(data.len() as u64) + data.len()
            }
            Frame::AddAddress(info) => {
                let ip_len = match info.addr.ip() {
                    IpAddr::V4(_) => 4,
                    IpAddr::V6(_) => 16,
                };
                1 + varint_size(info.address_id) + 1 + ip_len + 2
            }
            Frame::Paths(paths) => {
                1 + varint_size(paths.len() as u64)
                    + paths
                        .iter()
                        .map(|p| {
                            varint_size(u64::from(p.path_id.0)) + 1 + varint_size(p.srtt_micros)
                        })
                        .sum::<usize>()
            }
            Frame::PathChallenge { .. } | Frame::PathResponse { .. } => 1 + 8,
            Frame::NewConnectionId { sequence, .. } => 1 + varint_size(*sequence) + 8,
            Frame::RetireConnectionId { sequence } => 1 + varint_size(*sequence),
        }
    }

    /// Encodes the frame into `buf`.
    pub fn encode<B: BufMut>(&self, buf: &mut B) {
        match self {
            Frame::Padding { len } => {
                for _ in 0..*len {
                    buf.put_u8(FrameType::Padding as u8);
                }
            }
            Frame::Ping => buf.put_u8(FrameType::Ping as u8),
            Frame::Ack(ack) => ack.encode(buf),
            Frame::Stream(s) => {
                buf.put_u8(if s.fin {
                    FrameType::StreamFin as u8
                } else {
                    FrameType::Stream as u8
                });
                put_varint(buf, s.stream_id);
                put_varint(buf, s.offset);
                put_varint(buf, s.data.len() as u64);
                buf.put_slice(&s.data);
            }
            Frame::WindowUpdate {
                stream_id,
                max_data,
            } => {
                buf.put_u8(FrameType::WindowUpdate as u8);
                put_varint(buf, *stream_id);
                put_varint(buf, *max_data);
            }
            Frame::Blocked { stream_id } => {
                buf.put_u8(FrameType::Blocked as u8);
                put_varint(buf, *stream_id);
            }
            Frame::RstStream {
                stream_id,
                error_code,
                final_offset,
            } => {
                buf.put_u8(FrameType::RstStream as u8);
                put_varint(buf, *stream_id);
                put_varint(buf, *error_code);
                put_varint(buf, *final_offset);
            }
            Frame::ConnectionClose { error_code, reason } => {
                buf.put_u8(FrameType::ConnectionClose as u8);
                put_varint(buf, *error_code);
                put_varint(buf, reason.len() as u64);
                buf.put_slice(reason.as_bytes());
            }
            Frame::Crypto { offset, data } => {
                buf.put_u8(FrameType::Crypto as u8);
                put_varint(buf, *offset);
                put_varint(buf, data.len() as u64);
                buf.put_slice(data);
            }
            Frame::AddAddress(info) => {
                buf.put_u8(FrameType::AddAddress as u8);
                put_varint(buf, info.address_id);
                match info.addr.ip() {
                    IpAddr::V4(ip) => {
                        buf.put_u8(4);
                        buf.put_slice(&ip.octets());
                    }
                    IpAddr::V6(ip) => {
                        buf.put_u8(6);
                        buf.put_slice(&ip.octets());
                    }
                }
                buf.put_u16(info.addr.port());
            }
            Frame::Paths(paths) => {
                debug_assert!(paths.len() <= MAX_PATHS_ENTRIES);
                buf.put_u8(FrameType::Paths as u8);
                put_varint(buf, paths.len() as u64);
                for p in paths {
                    put_varint(buf, u64::from(p.path_id.0));
                    buf.put_u8(p.status as u8);
                    put_varint(buf, p.srtt_micros);
                }
            }
            Frame::PathChallenge { token } => {
                buf.put_u8(FrameType::PathChallenge as u8);
                buf.put_u64(*token);
            }
            Frame::PathResponse { token } => {
                buf.put_u8(FrameType::PathResponse as u8);
                buf.put_u64(*token);
            }
            Frame::NewConnectionId { sequence, cid } => {
                buf.put_u8(FrameType::NewConnectionId as u8);
                put_varint(buf, *sequence);
                buf.put_u64(*cid);
            }
            Frame::RetireConnectionId { sequence } => {
                buf.put_u8(FrameType::RetireConnectionId as u8);
                put_varint(buf, *sequence);
            }
        }
    }

    /// Decodes one frame from the front of `buf` (consecutive padding bytes
    /// collapse into a single `Padding` frame).
    pub fn decode<B: Buf>(buf: &mut B) -> Result<Frame, DecodeError> {
        let Some(&first) = buf.chunk().first() else {
            return Err(DecodeError::UnexpectedEnd);
        };
        let type_byte = u64::from(first);
        let frame_type =
            FrameType::from_u64(type_byte).ok_or(DecodeError::UnknownFrame(type_byte))?;
        buf.advance(1);
        Ok(match frame_type {
            FrameType::Padding => {
                let mut len = 1;
                while buf.chunk().first() == Some(&(FrameType::Padding as u8)) {
                    buf.advance(1);
                    len += 1;
                }
                Frame::Padding { len }
            }
            FrameType::Ping => Frame::Ping,
            FrameType::Ack => Frame::Ack(AckFrame::decode(buf)?),
            FrameType::Stream | FrameType::StreamFin => {
                let stream_id = decode_varint(buf)?;
                let offset = decode_varint(buf)?;
                let len = decode_varint(buf)? as usize;
                if buf.remaining() < len {
                    return Err(DecodeError::UnexpectedEnd);
                }
                let data = buf.copy_to_bytes(len);
                Frame::Stream(StreamFrame {
                    stream_id,
                    offset,
                    data,
                    fin: frame_type == FrameType::StreamFin,
                })
            }
            FrameType::WindowUpdate => Frame::WindowUpdate {
                stream_id: decode_varint(buf)?,
                max_data: decode_varint(buf)?,
            },
            FrameType::Blocked => Frame::Blocked {
                stream_id: decode_varint(buf)?,
            },
            FrameType::RstStream => Frame::RstStream {
                stream_id: decode_varint(buf)?,
                error_code: decode_varint(buf)?,
                final_offset: decode_varint(buf)?,
            },
            FrameType::ConnectionClose => {
                let error_code = decode_varint(buf)?;
                let len = decode_varint(buf)? as usize;
                if len > MAX_REASON_LEN {
                    return Err(DecodeError::LimitExceeded("close reason length"));
                }
                if buf.remaining() < len {
                    return Err(DecodeError::UnexpectedEnd);
                }
                let bytes = buf.copy_to_bytes(len);
                let reason = String::from_utf8(bytes.to_vec())
                    .map_err(|_| DecodeError::Invalid("close reason utf-8"))?;
                Frame::ConnectionClose { error_code, reason }
            }
            FrameType::Crypto => {
                let offset = decode_varint(buf)?;
                let len = decode_varint(buf)? as usize;
                if buf.remaining() < len {
                    return Err(DecodeError::UnexpectedEnd);
                }
                Frame::Crypto {
                    offset,
                    data: buf.copy_to_bytes(len),
                }
            }
            FrameType::AddAddress => {
                let address_id = decode_varint(buf)?;
                if buf.remaining() < 1 {
                    return Err(DecodeError::UnexpectedEnd);
                }
                let version = buf.get_u8();
                let ip: IpAddr = if version == 4 {
                    if buf.remaining() < 4 {
                        return Err(DecodeError::UnexpectedEnd);
                    }
                    let mut octets = [0u8; 4];
                    buf.copy_to_slice(&mut octets);
                    IpAddr::V4(Ipv4Addr::from(octets))
                } else if version == 6 {
                    if buf.remaining() < 16 {
                        return Err(DecodeError::UnexpectedEnd);
                    }
                    let mut octets = [0u8; 16];
                    buf.copy_to_slice(&mut octets);
                    IpAddr::V6(Ipv6Addr::from(octets))
                } else {
                    return Err(DecodeError::Invalid("address version"));
                };
                if buf.remaining() < 2 {
                    return Err(DecodeError::UnexpectedEnd);
                }
                let port = buf.get_u16();
                Frame::AddAddress(AddressInfo {
                    address_id,
                    addr: SocketAddr::new(ip, port),
                })
            }
            FrameType::Paths => {
                let count = decode_varint(buf)? as usize;
                if count > MAX_PATHS_ENTRIES {
                    return Err(DecodeError::LimitExceeded("paths entry count"));
                }
                let mut paths = Vec::with_capacity(count);
                for _ in 0..count {
                    let raw_id = decode_varint(buf)?;
                    let path_id = PathId(
                        u32::try_from(raw_id).map_err(|_| DecodeError::LimitExceeded("path id"))?,
                    );
                    if buf.remaining() < 1 {
                        return Err(DecodeError::UnexpectedEnd);
                    }
                    let status = PathStatus::from_u8(buf.get_u8())
                        .ok_or(DecodeError::Invalid("path status"))?;
                    let srtt_micros = decode_varint(buf)?;
                    paths.push(PathInfo {
                        path_id,
                        status,
                        srtt_micros,
                    });
                }
                Frame::Paths(paths)
            }
            FrameType::PathChallenge => {
                if buf.remaining() < 8 {
                    return Err(DecodeError::UnexpectedEnd);
                }
                Frame::PathChallenge {
                    token: buf.get_u64(),
                }
            }
            FrameType::PathResponse => {
                if buf.remaining() < 8 {
                    return Err(DecodeError::UnexpectedEnd);
                }
                Frame::PathResponse {
                    token: buf.get_u64(),
                }
            }
            FrameType::NewConnectionId => {
                let sequence = decode_varint(buf)?;
                if buf.remaining() < 8 {
                    return Err(DecodeError::UnexpectedEnd);
                }
                Frame::NewConnectionId {
                    sequence,
                    cid: buf.get_u64(),
                }
            }
            FrameType::RetireConnectionId => Frame::RetireConnectionId {
                sequence: decode_varint(buf)?,
            },
        })
    }

    /// Decodes all frames in a payload buffer.
    pub fn decode_all(mut payload: &[u8]) -> Result<Vec<Frame>, DecodeError> {
        let mut frames = Vec::new();
        while payload.remaining() > 0 {
            frames.push(Frame::decode(&mut payload)?);
        }
        Ok(frames)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::BytesMut;
    use proptest::prelude::*;

    fn round_trip(frame: &Frame) -> Frame {
        let mut buf = BytesMut::new();
        frame.encode(&mut buf);
        assert_eq!(
            buf.len(),
            frame.wire_size(),
            "wire_size mismatch for {frame:?}"
        );
        let mut read = buf.freeze();
        let decoded = Frame::decode(&mut read).unwrap();
        assert_eq!(read.remaining(), 0, "leftover bytes for {frame:?}");
        decoded
    }

    #[test]
    fn ping_and_padding() {
        assert_eq!(round_trip(&Frame::Ping), Frame::Ping);
        assert_eq!(
            round_trip(&Frame::Padding { len: 5 }),
            Frame::Padding { len: 5 }
        );
    }

    #[test]
    fn stream_frame_round_trip() {
        for fin in [false, true] {
            let frame = Frame::Stream(StreamFrame {
                stream_id: 3,
                offset: 70_000,
                data: Bytes::from_static(b"hello multipath"),
                fin,
            });
            assert_eq!(round_trip(&frame), frame);
        }
    }

    #[test]
    fn ack_single_range() {
        let frame = Frame::Ack(AckFrame {
            path_id: PathId(2),
            largest_acked: 10,
            ack_delay_micros: 250,
            ranges: vec![(5, 10)],
        });
        assert_eq!(round_trip(&frame), frame);
    }

    #[test]
    fn ack_multiple_ranges() {
        // Acked: 20-25, 10-14, 3, 0-1 (descending).
        let frame = Frame::Ack(AckFrame {
            path_id: PathId::INITIAL,
            largest_acked: 25,
            ack_delay_micros: 0,
            ranges: vec![(20, 25), (10, 14), (3, 3), (0, 1)],
        });
        assert_eq!(round_trip(&frame), frame);
    }

    #[test]
    fn ack_from_range_set_caps_ranges() {
        let mut set = RangeSet::new();
        for i in 0..300u64 {
            set.insert(i * 3); // 300 disjoint singleton ranges
        }
        let ack = AckFrame::from_range_set(PathId(1), &set, 7).unwrap();
        assert_eq!(ack.ranges.len(), MAX_ACK_RANGES);
        assert_eq!(ack.largest_acked, 299 * 3);
        // The *newest* (largest) ranges are kept.
        assert_eq!(ack.smallest_acked(), (300 - 256) as u64 * 3);
        assert_eq!(ack.ack_delay_micros, 7);
    }

    #[test]
    fn ack_from_empty_set_is_none() {
        assert!(AckFrame::from_range_set(PathId(1), &RangeSet::new(), 0).is_none());
    }

    #[test]
    fn window_update_and_blocked() {
        let wu = Frame::WindowUpdate {
            stream_id: 0,
            max_data: 16 << 20,
        };
        assert_eq!(round_trip(&wu), wu);
        let b = Frame::Blocked { stream_id: 9 };
        assert_eq!(round_trip(&b), b);
    }

    #[test]
    fn rst_and_close() {
        let rst = Frame::RstStream {
            stream_id: 5,
            error_code: 404,
            final_offset: 1_000_000,
        };
        assert_eq!(round_trip(&rst), rst);
        let close = Frame::ConnectionClose {
            error_code: 1,
            reason: "going away".into(),
        };
        assert_eq!(round_trip(&close), close);
    }

    #[test]
    fn crypto_frame() {
        let frame = Frame::Crypto {
            offset: 42,
            data: Bytes::from_static(b"CHLO..."),
        };
        assert_eq!(round_trip(&frame), frame);
    }

    #[test]
    fn add_address_v4_and_v6() {
        let v4 = Frame::AddAddress(AddressInfo {
            address_id: 1,
            addr: "192.0.2.10:443".parse().unwrap(),
        });
        assert_eq!(round_trip(&v4), v4);
        let v6 = Frame::AddAddress(AddressInfo {
            address_id: 2,
            addr: "[2001:db8::1]:8443".parse().unwrap(),
        });
        assert_eq!(round_trip(&v6), v6);
    }

    #[test]
    fn paths_frame() {
        let frame = Frame::Paths(vec![
            PathInfo {
                path_id: PathId::INITIAL,
                status: PathStatus::PotentiallyFailed,
                srtt_micros: 15_000,
            },
            PathInfo {
                path_id: PathId(1),
                status: PathStatus::Active,
                srtt_micros: 25_000,
            },
        ]);
        assert_eq!(round_trip(&frame), frame);
    }

    #[test]
    fn path_challenge_and_response() {
        let ch = Frame::PathChallenge {
            token: 0xDEAD_BEEF_CAFE_F00D,
        };
        assert_eq!(round_trip(&ch), ch);
        let resp = Frame::PathResponse { token: u64::MAX };
        assert_eq!(round_trip(&resp), resp);
        assert!(ch.is_retransmittable());
        assert!(resp.is_retransmittable());
    }

    #[test]
    fn cid_rotation_frames() {
        let issue = Frame::NewConnectionId {
            sequence: 3,
            cid: 0x1234_5678_9ABC_DEF0,
        };
        assert_eq!(round_trip(&issue), issue);
        let retire = Frame::RetireConnectionId { sequence: 3 };
        assert_eq!(round_trip(&retire), retire);
        assert!(issue.is_retransmittable());
        assert!(retire.is_retransmittable());
    }

    #[test]
    fn retransmittability() {
        assert!(!Frame::Padding { len: 1 }.is_retransmittable());
        assert!(!Frame::Ack(AckFrame {
            path_id: PathId(0),
            largest_acked: 0,
            ack_delay_micros: 0,
            ranges: vec![(0, 0)],
        })
        .is_retransmittable());
        assert!(Frame::Ping.is_retransmittable());
        assert!(Frame::WindowUpdate {
            stream_id: 0,
            max_data: 1
        }
        .is_retransmittable());
    }

    #[test]
    fn unknown_frame_type_rejected() {
        let mut buf: &[u8] = &[0xFF];
        assert_eq!(
            Frame::decode(&mut buf),
            Err(DecodeError::UnknownFrame(0xFF))
        );
    }

    #[test]
    fn decode_all_sequence() {
        let mut buf = BytesMut::new();
        Frame::Ping.encode(&mut buf);
        Frame::Padding { len: 3 }.encode(&mut buf);
        Frame::Blocked { stream_id: 1 }.encode(&mut buf);
        let frames = Frame::decode_all(&buf).unwrap();
        assert_eq!(
            frames,
            vec![
                Frame::Ping,
                Frame::Padding { len: 3 },
                Frame::Blocked { stream_id: 1 }
            ]
        );
    }

    #[test]
    fn truncated_frames_rejected() {
        let samples = vec![
            Frame::Stream(StreamFrame {
                stream_id: 1,
                offset: 100,
                data: Bytes::from_static(b"abcdef"),
                fin: true,
            }),
            Frame::Ack(AckFrame {
                path_id: PathId(3),
                largest_acked: 50,
                ack_delay_micros: 10,
                ranges: vec![(40, 50), (10, 20)],
            }),
            Frame::AddAddress(AddressInfo {
                address_id: 9,
                addr: "[2001:db8::2]:1234".parse().unwrap(),
            }),
            Frame::Paths(vec![PathInfo {
                path_id: PathId(1),
                status: PathStatus::Active,
                srtt_micros: 1000,
            }]),
            Frame::PathChallenge {
                token: 0x0123_4567_89AB_CDEF,
            },
            Frame::PathResponse {
                token: 0xFEDC_BA98_7654_3210,
            },
            Frame::NewConnectionId {
                sequence: 300,
                cid: 0xAAAA_BBBB_CCCC_DDDD,
            },
            Frame::RetireConnectionId { sequence: 300 },
        ];
        for frame in samples {
            let mut buf = BytesMut::new();
            frame.encode(&mut buf);
            for cut in 1..buf.len() {
                let mut partial = &buf[..cut];
                assert!(
                    Frame::decode(&mut partial).is_err(),
                    "frame {frame:?} cut at {cut} should fail"
                );
            }
        }
    }

    fn arb_frame() -> impl Strategy<Value = Frame> {
        let stream = (
            any::<u64>(),
            0u64..(1 << 40),
            proptest::collection::vec(any::<u8>(), 0..100),
            any::<bool>(),
        )
            .prop_map(|(id, offset, data, fin)| {
                Frame::Stream(StreamFrame {
                    stream_id: id & 0x3FFF_FFFF,
                    offset,
                    data: Bytes::from(data),
                    fin,
                })
            });
        let ack = (
            0u32..1000,
            proptest::collection::btree_set(0u64..10_000, 1..64),
            0u64..1_000_000,
        )
            .prop_map(|(path, acked, delay)| {
                let set: RangeSet = acked.into_iter().collect();
                Frame::Ack(AckFrame::from_range_set(PathId(path), &set, delay).unwrap())
            });
        let wu = (0u64..100, 0u64..(1 << 50)).prop_map(|(s, m)| Frame::WindowUpdate {
            stream_id: s,
            max_data: m,
        });
        let paths =
            proptest::collection::vec((0u32..100, 0u8..3, 0u64..(1 << 40)), 0..MAX_PATHS_ENTRIES)
                .prop_map(|entries| {
                    Frame::Paths(
                        entries
                            .into_iter()
                            .map(|(id, st, srtt)| PathInfo {
                                path_id: PathId(id),
                                status: PathStatus::from_u8(st).unwrap(),
                                srtt_micros: srtt,
                            })
                            .collect(),
                    )
                });
        let challenge = any::<u64>().prop_map(|token| Frame::PathChallenge { token });
        let response = any::<u64>().prop_map(|token| Frame::PathResponse { token });
        let new_cid = (any::<u64>(), any::<u64>()).prop_map(|(seq, cid)| Frame::NewConnectionId {
            sequence: seq & 0x3FFF_FFFF,
            cid,
        });
        let retire_cid = any::<u64>().prop_map(|seq| Frame::RetireConnectionId {
            sequence: seq & 0x3FFF_FFFF,
        });
        prop_oneof![
            Just(Frame::Ping),
            stream,
            ack,
            wu,
            paths,
            challenge,
            response,
            new_cid,
            retire_cid,
        ]
    }

    proptest! {
        #[test]
        fn prop_frame_round_trip(frame in arb_frame()) {
            prop_assert_eq!(round_trip(&frame), frame);
        }

        #[test]
        fn prop_frame_sequences_round_trip(frames in proptest::collection::vec(arb_frame(), 0..10)) {
            let mut buf = BytesMut::new();
            for f in &frames {
                f.encode(&mut buf);
            }
            let decoded = Frame::decode_all(&buf).unwrap();
            prop_assert_eq!(decoded, frames);
        }

        #[test]
        fn prop_decode_arbitrary_bytes_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..600)) {
            // Malformed input must yield Err, never a panic or a hang.
            let mut read = &bytes[..];
            let _ = Frame::decode(&mut read);
            let _ = Frame::decode_all(&bytes);
        }

        #[test]
        fn prop_ack_round_trip_from_arbitrary_sets(
            acked in proptest::collection::btree_set(0u64..100_000, 1..300),
            path in 0u32..50,
        ) {
            let set: RangeSet = acked.iter().copied().collect();
            let ack = AckFrame::from_range_set(PathId(path), &set, 123).unwrap();
            let frame = Frame::Ack(ack.clone());
            let decoded = round_trip(&frame);
            prop_assert_eq!(decoded, frame);
            // Every reported range must be a subset of what was received.
            for (start, end) in ack.iter_ranges_ascending() {
                for pn in start..=end {
                    prop_assert!(set.contains(pn));
                }
            }
        }
    }
}
