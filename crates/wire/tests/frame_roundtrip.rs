//! Exhaustive frame round-trip properties.
//!
//! The in-module proptests in `frame.rs` grew organically and cover the
//! high-traffic frames; this suite is the systematic one: **every** `Frame`
//! variant has a generator, the suite is pinned to the enum (a new variant
//! without a generator breaks the exhaustive `variant_name` match at
//! compile time), and arbitrary bytes must never panic any decoder in the
//! crate — frames, public headers, or whole packets.

use bytes::{Buf, Bytes, BytesMut};
use mpquic_util::RangeSet;
use mpquic_wire::frame::{MAX_PATHS_ENTRIES, SRTT_UNKNOWN};
use mpquic_wire::{
    AckFrame, AddressInfo, Frame, Packet, PathId, PathInfo, PathStatus, PublicHeader, StreamFrame,
};
use proptest::prelude::*;
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr, SocketAddr};

fn round_trip(frame: &Frame) -> Frame {
    let mut buf = BytesMut::new();
    frame.encode(&mut buf);
    assert_eq!(
        buf.len(),
        frame.wire_size(),
        "wire_size disagrees with encode for {frame:?}"
    );
    let mut read = buf.freeze();
    let decoded = Frame::decode(&mut read).expect("round trip decode");
    assert_eq!(read.remaining(), 0, "decode left trailing bytes");
    decoded
}

// --- per-variant strategies ------------------------------------------

fn arb_padding() -> impl Strategy<Value = Frame> {
    // Consecutive padding bytes decode as ONE frame, so any len >= 1
    // round-trips exactly.
    (1usize..64).prop_map(|len| Frame::Padding { len })
}

fn arb_ping() -> impl Strategy<Value = Frame> {
    Just(Frame::Ping)
}

fn arb_ack() -> impl Strategy<Value = Frame> {
    (
        0u32..1000,
        proptest::collection::btree_set(0u64..50_000, 1..128),
        0u64..10_000_000,
    )
        .prop_map(|(path, acked, delay)| {
            let set: RangeSet = acked.into_iter().collect();
            Frame::Ack(
                AckFrame::from_range_set(PathId(path), &set, delay)
                    .expect("non-empty set yields an ACK"),
            )
        })
}

fn arb_stream() -> impl Strategy<Value = Frame> {
    (
        0u64..(1 << 30),
        0u64..(1 << 50),
        proptest::collection::vec(proptest::prelude::any::<u8>(), 0..200),
        proptest::prelude::any::<bool>(),
    )
        .prop_map(|(stream_id, offset, data, fin)| {
            Frame::Stream(StreamFrame {
                stream_id,
                offset,
                data: Bytes::from(data),
                fin,
            })
        })
}

fn arb_window_update() -> impl Strategy<Value = Frame> {
    (0u64..(1 << 30), 0u64..(1 << 60)).prop_map(|(stream_id, max_data)| Frame::WindowUpdate {
        stream_id,
        max_data,
    })
}

fn arb_blocked() -> impl Strategy<Value = Frame> {
    (0u64..(1 << 30)).prop_map(|stream_id| Frame::Blocked { stream_id })
}

fn arb_rst_stream() -> impl Strategy<Value = Frame> {
    (0u64..(1 << 30), 0u64..(1 << 30), 0u64..(1 << 50)).prop_map(
        |(stream_id, error_code, final_offset)| Frame::RstStream {
            stream_id,
            error_code,
            final_offset,
        },
    )
}

fn arb_connection_close() -> impl Strategy<Value = Frame> {
    (
        0u64..(1 << 30),
        proptest::collection::vec(proptest::prelude::any::<u8>(), 0..200),
    )
        .prop_map(|(error_code, raw)| Frame::ConnectionClose {
            error_code,
            reason: String::from_utf8_lossy(&raw).into_owned(),
        })
}

fn arb_crypto() -> impl Strategy<Value = Frame> {
    (
        0u64..(1 << 40),
        proptest::collection::vec(proptest::prelude::any::<u8>(), 0..200),
    )
        .prop_map(|(offset, data)| Frame::Crypto {
            offset,
            data: Bytes::from(data),
        })
}

fn arb_socket_addr() -> impl Strategy<Value = SocketAddr> {
    (
        proptest::prelude::any::<bool>(),
        proptest::prelude::any::<[u8; 16]>(),
        proptest::prelude::any::<u16>(),
    )
        .prop_map(|(v6, octets, port)| {
            let ip = if v6 {
                IpAddr::V6(Ipv6Addr::from(octets))
            } else {
                IpAddr::V4(Ipv4Addr::new(octets[0], octets[1], octets[2], octets[3]))
            };
            SocketAddr::new(ip, port)
        })
}

fn arb_add_address() -> impl Strategy<Value = Frame> {
    (0u64..(1 << 20), arb_socket_addr())
        .prop_map(|(address_id, addr)| Frame::AddAddress(AddressInfo { address_id, addr }))
}

fn arb_paths() -> impl Strategy<Value = Frame> {
    proptest::collection::vec(
        (
            0u32..100,
            0u8..3,
            prop_oneof![0u64..(1 << 40), Just(SRTT_UNKNOWN)],
        ),
        0..MAX_PATHS_ENTRIES,
    )
    .prop_map(|entries| {
        Frame::Paths(
            entries
                .into_iter()
                .map(|(id, st, srtt)| PathInfo {
                    path_id: PathId(id),
                    status: match st {
                        0 => PathStatus::Active,
                        1 => PathStatus::PotentiallyFailed,
                        _ => PathStatus::Closed,
                    },
                    srtt_micros: srtt,
                })
                .collect(),
        )
    })
}

fn arb_path_challenge() -> impl Strategy<Value = Frame> {
    proptest::prelude::any::<u64>().prop_map(|token| Frame::PathChallenge { token })
}

fn arb_path_response() -> impl Strategy<Value = Frame> {
    proptest::prelude::any::<u64>().prop_map(|token| Frame::PathResponse { token })
}

fn arb_new_connection_id() -> impl Strategy<Value = Frame> {
    (0u64..(1 << 40), proptest::prelude::any::<u64>())
        .prop_map(|(sequence, cid)| Frame::NewConnectionId { sequence, cid })
}

fn arb_retire_connection_id() -> impl Strategy<Value = Frame> {
    (0u64..(1 << 40)).prop_map(|sequence| Frame::RetireConnectionId { sequence })
}

/// Names the variant of a frame. The match is deliberately exhaustive and
/// wildcard-free: adding a variant to `Frame` without updating this suite
/// (and thus `arb_any_frame`) is a compile error here.
fn variant_name(frame: &Frame) -> &'static str {
    match frame {
        Frame::Padding { .. } => "Padding",
        Frame::Ping => "Ping",
        Frame::Ack(_) => "Ack",
        Frame::Stream(_) => "Stream",
        Frame::WindowUpdate { .. } => "WindowUpdate",
        Frame::Blocked { .. } => "Blocked",
        Frame::RstStream { .. } => "RstStream",
        Frame::ConnectionClose { .. } => "ConnectionClose",
        Frame::Crypto { .. } => "Crypto",
        Frame::AddAddress(_) => "AddAddress",
        Frame::Paths(_) => "Paths",
        Frame::PathChallenge { .. } => "PathChallenge",
        Frame::PathResponse { .. } => "PathResponse",
        Frame::NewConnectionId { .. } => "NewConnectionId",
        Frame::RetireConnectionId { .. } => "RetireConnectionId",
    }
}

fn arb_any_frame() -> impl Strategy<Value = Frame> {
    prop_oneof![
        arb_padding(),
        arb_ping(),
        arb_ack(),
        arb_stream(),
        arb_window_update(),
        arb_blocked(),
        arb_rst_stream(),
        arb_connection_close(),
        arb_crypto(),
        arb_add_address(),
        arb_paths(),
        arb_path_challenge(),
        arb_path_response(),
        arb_new_connection_id(),
        arb_retire_connection_id(),
    ]
}

proptest! {
    // Generator-sync guards: each per-variant generator must actually
    // produce its variant (and round-trip it — so every variant is
    // exercised even if the union strategy rarely picks it).
    #[test]
    fn prop_gen_padding(f in arb_padding()) {
        prop_assert_eq!(variant_name(&f), "Padding");
        prop_assert_eq!(round_trip(&f), f);
    }
    #[test]
    fn prop_gen_ping(f in arb_ping()) {
        prop_assert_eq!(variant_name(&f), "Ping");
        prop_assert_eq!(round_trip(&f), f);
    }
    #[test]
    fn prop_gen_ack(f in arb_ack()) {
        prop_assert_eq!(variant_name(&f), "Ack");
        prop_assert_eq!(round_trip(&f), f);
    }
    #[test]
    fn prop_gen_stream(f in arb_stream()) {
        prop_assert_eq!(variant_name(&f), "Stream");
        prop_assert_eq!(round_trip(&f), f);
    }
    #[test]
    fn prop_gen_window_update(f in arb_window_update()) {
        prop_assert_eq!(variant_name(&f), "WindowUpdate");
        prop_assert_eq!(round_trip(&f), f);
    }
    #[test]
    fn prop_gen_blocked(f in arb_blocked()) {
        prop_assert_eq!(variant_name(&f), "Blocked");
        prop_assert_eq!(round_trip(&f), f);
    }
    #[test]
    fn prop_gen_rst_stream(f in arb_rst_stream()) {
        prop_assert_eq!(variant_name(&f), "RstStream");
        prop_assert_eq!(round_trip(&f), f);
    }
    #[test]
    fn prop_gen_connection_close(f in arb_connection_close()) {
        prop_assert_eq!(variant_name(&f), "ConnectionClose");
        prop_assert_eq!(round_trip(&f), f);
    }
    #[test]
    fn prop_gen_crypto(f in arb_crypto()) {
        prop_assert_eq!(variant_name(&f), "Crypto");
        prop_assert_eq!(round_trip(&f), f);
    }
    #[test]
    fn prop_gen_add_address(f in arb_add_address()) {
        prop_assert_eq!(variant_name(&f), "AddAddress");
        prop_assert_eq!(round_trip(&f), f);
    }
    #[test]
    fn prop_gen_paths(f in arb_paths()) {
        prop_assert_eq!(variant_name(&f), "Paths");
        prop_assert_eq!(round_trip(&f), f);
    }
    #[test]
    fn prop_gen_path_challenge(f in arb_path_challenge()) {
        prop_assert_eq!(variant_name(&f), "PathChallenge");
        prop_assert_eq!(round_trip(&f), f);
    }
    #[test]
    fn prop_gen_path_response(f in arb_path_response()) {
        prop_assert_eq!(variant_name(&f), "PathResponse");
        prop_assert_eq!(round_trip(&f), f);
    }
    #[test]
    fn prop_gen_new_connection_id(f in arb_new_connection_id()) {
        prop_assert_eq!(variant_name(&f), "NewConnectionId");
        prop_assert_eq!(round_trip(&f), f);
    }
    #[test]
    fn prop_gen_retire_connection_id(f in arb_retire_connection_id()) {
        prop_assert_eq!(variant_name(&f), "RetireConnectionId");
        prop_assert_eq!(round_trip(&f), f);
    }

    #[test]
    fn prop_every_variant_round_trips(frame in arb_any_frame()) {
        prop_assert_eq!(round_trip(&frame), frame);
    }

    #[test]
    fn prop_frame_sequences_round_trip(
        frames in proptest::collection::vec(arb_any_frame(), 0..8),
    ) {
        // Padding frames merge with adjacent padding on decode, so make
        // the comparison on a padding-merged view of the input.
        let mut buf = BytesMut::new();
        for f in &frames {
            f.encode(&mut buf);
        }
        let mut expect: Vec<Frame> = Vec::new();
        for f in frames {
            match (expect.last_mut(), &f) {
                (Some(Frame::Padding { len }), Frame::Padding { len: more }) => *len += more,
                _ => expect.push(f),
            }
        }
        // A trailing zero-size frame (empty ACK can't happen; padding
        // always has len>=1 here) — decode_all must reproduce the list.
        let decoded = Frame::decode_all(&buf).expect("sequence decodes");
        prop_assert_eq!(decoded, expect);
    }

    #[test]
    fn prop_frame_decoder_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..800)) {
        let mut read = &bytes[..];
        let _ = Frame::decode(&mut read);
        let _ = Frame::decode_all(&bytes);
    }

    #[test]
    fn prop_header_decoder_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
        let mut read = &bytes[..];
        let _ = PublicHeader::decode(&mut read);
    }

    #[test]
    fn prop_packet_parser_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..1400)) {
        // from_parts is the path a datagram takes before decryption;
        // it must be total too.
        let mut read = &bytes[..];
        if let Ok(header) = PublicHeader::decode(&mut read) {
            let _ = Packet::from_parts(header, read);
        }
    }

    #[test]
    fn prop_truncated_frames_never_panic(frame in arb_any_frame(), keep_num in 0u32..1000) {
        // Every strict prefix of a valid encoding must decode to Err (or,
        // for composite frames, a shorter valid frame) without panicking.
        let mut buf = BytesMut::new();
        frame.encode(&mut buf);
        // All generators produce at least one byte of encoding.
        prop_assert!(!buf.is_empty());
        let keep = keep_num as usize % buf.len();
        let mut partial = &buf[..keep];
        let _ = Frame::decode(&mut partial);
    }
}
