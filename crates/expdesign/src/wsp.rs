//! The WSP space-filling design algorithm.
//!
//! WSP (Santiago, Claeys-Bruno, Sergent — *Construction of space-filling
//! designs using WSP algorithm for high dimensional spaces*, Chemometrics
//! 2012) selects a well-spread subset of candidate points:
//!
//! 1. generate a large cloud of candidate points in the unit hypercube;
//! 2. pick a seed point; remove every candidate within distance `d_min`;
//! 3. move to the candidate closest to the current point, keep it, and
//!    repeat until no candidates remain;
//! 4. binary-search `d_min` until the kept set has the desired size.
//!
//! The result covers the factor space far more evenly than uniform
//! sampling — the property the paper relies on to compare protocols
//! across "a wide range of parameters" instead of a few chosen cases.

use mpquic_util::DetRng;

/// Euclidean distance in the unit hypercube.
fn dist2(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Runs one WSP pass with the given minimum distance, returning the
/// indices of the kept points.
fn wsp_pass(points: &[Vec<f64>], seed_index: usize, d_min: f64) -> Vec<usize> {
    let d_min2 = d_min * d_min;
    let mut alive: Vec<bool> = vec![true; points.len()];
    let mut kept = Vec::new();
    let mut current = seed_index;
    loop {
        kept.push(current);
        alive[current] = false;
        // Remove all candidates too close to the chosen point.
        for (i, flag) in alive.iter_mut().enumerate() {
            if *flag && dist2(&points[current], &points[i]) < d_min2 {
                *flag = false;
            }
        }
        // Step to the nearest remaining candidate.
        let next = alive
            .iter()
            .enumerate()
            .filter(|(_, &a)| a)
            .min_by(|(i, _), (j, _)| {
                dist2(&points[current], &points[*i])
                    .partial_cmp(&dist2(&points[current], &points[*j]))
                    .expect("distances are finite")
            })
            .map(|(i, _)| i);
        match next {
            Some(i) => current = i,
            None => break,
        }
    }
    kept
}

/// Selects `target` well-spread points from the unit hypercube of
/// dimension `dims`, deterministically from `seed`.
///
/// ```
/// let points = mpquic_expdesign::wsp_select(4, 50, 500, 7);
/// assert_eq!(points.len(), 50);
/// assert!(points.iter().all(|p| p.iter().all(|&x| (0.0..1.0).contains(&x))));
/// ```
///
/// Generates `candidates` uniform points, then binary-searches the WSP
/// minimum distance until exactly `target` points remain (the final pass
/// trims or tops up by at most a few points, preferring the most
/// isolated ones).
pub fn wsp_select(dims: usize, target: usize, candidates: usize, seed: u64) -> Vec<Vec<f64>> {
    assert!(dims >= 1);
    assert!(target >= 1);
    assert!(candidates >= target, "need at least `target` candidates");
    let mut rng = DetRng::new(seed);
    let points: Vec<Vec<f64>> = (0..candidates)
        .map(|_| (0..dims).map(|_| rng.f64()).collect())
        .collect();
    let seed_index = rng.index(candidates);

    // Binary search d_min: larger d_min -> fewer kept points.
    let mut lo = 0.0f64;
    let mut hi = (dims as f64).sqrt(); // hypercube diagonal
    let mut best: Vec<usize> = wsp_pass(&points, seed_index, lo);
    for _ in 0..40 {
        let mid = (lo + hi) / 2.0;
        let kept = wsp_pass(&points, seed_index, mid);
        if kept.len() >= target {
            lo = mid;
            best = kept;
            if best.len() == target {
                break;
            }
        } else {
            hi = mid;
        }
    }
    // Exact-size adjustment: drop the points closest to their nearest
    // kept neighbour (least isolated first).
    let mut kept = best;
    while kept.len() > target {
        let (worst_pos, _) = kept
            .iter()
            .enumerate()
            .map(|(pos, &i)| {
                let nearest = kept
                    .iter()
                    .filter(|&&j| j != i)
                    .map(|&j| dist2(&points[i], &points[j]))
                    .fold(f64::INFINITY, f64::min);
                (pos, nearest)
            })
            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
            .expect("nonempty");
        kept.remove(worst_pos);
    }
    kept.into_iter().map(|i| points[i].clone()).collect()
}

/// A crude discrepancy measure for tests: the largest nearest-neighbour
/// distance over a probe grid (lower = better coverage).
pub fn coverage_radius(points: &[Vec<f64>], probes: usize, seed: u64) -> f64 {
    let dims = points[0].len();
    let mut rng = DetRng::new(seed);
    let mut worst: f64 = 0.0;
    for _ in 0..probes {
        let probe: Vec<f64> = (0..dims).map(|_| rng.f64()).collect();
        let nearest = points
            .iter()
            .map(|p| dist2(&probe, p).sqrt())
            .fold(f64::INFINITY, f64::min);
        worst = worst.max(nearest);
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn returns_exactly_target_points() {
        for target in [10, 50, 253] {
            let pts = wsp_select(4, target, 1500, 42);
            assert_eq!(pts.len(), target);
        }
    }

    #[test]
    fn points_in_unit_cube() {
        let pts = wsp_select(6, 100, 1000, 7);
        for p in &pts {
            assert_eq!(p.len(), 6);
            assert!(p.iter().all(|&x| (0.0..1.0).contains(&x)));
        }
    }

    #[test]
    fn deterministic() {
        assert_eq!(wsp_select(3, 40, 500, 9), wsp_select(3, 40, 500, 9));
        assert_ne!(wsp_select(3, 40, 500, 9), wsp_select(3, 40, 500, 10));
    }

    #[test]
    fn points_are_spread_apart() {
        let pts = wsp_select(2, 50, 2000, 11);
        // Minimum pairwise distance should be well above what clumped
        // uniform sampling would give (~0, since duplicates are likely).
        let mut min_d = f64::INFINITY;
        for i in 0..pts.len() {
            for j in (i + 1)..pts.len() {
                min_d = min_d.min(dist2(&pts[i], &pts[j]).sqrt());
            }
        }
        assert!(min_d > 0.03, "min pairwise distance {min_d} too small");
    }

    #[test]
    fn better_coverage_than_uniform() {
        let wsp = wsp_select(2, 64, 3000, 13);
        // Uniform sample of the same size.
        let mut rng = mpquic_util::DetRng::new(13);
        let uniform: Vec<Vec<f64>> = (0..64).map(|_| vec![rng.f64(), rng.f64()]).collect();
        let wsp_cov = coverage_radius(&wsp, 2000, 99);
        let uni_cov = coverage_radius(&uniform, 2000, 99);
        assert!(
            wsp_cov <= uni_cov,
            "WSP coverage {wsp_cov} should beat uniform {uni_cov}"
        );
    }
}
