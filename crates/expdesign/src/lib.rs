//! # mpquic-expdesign — the paper's experimental design
//!
//! The evaluation does not cherry-pick network conditions: "we use an
//! experimental design approach similar to the one used for MPTCP [37]
//! and cover a wide range of parameters ... Our experimental design [37]
//! selects the values of these parameters using the WSP algorithm [45]
//! over the ranges listed on Tab. 1."
//!
//! * [`wsp`] — the WSP (Wootton, Sergent, Phan-Tan-Luu) space-filling
//!   point-selection algorithm;
//! * [`table1`] — the Table 1 factor ranges (low-BDP and high-BDP), the
//!   four experiment classes, and scenario enumeration: 253 two-path
//!   scenarios per class, each run with the connection starting on the
//!   best and on the worst path (506 simulations per figure).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod table1;
pub mod wsp;

pub use table1::{ExperimentClass, Scenario, StartMode, Table1Ranges, SCENARIOS_PER_CLASS};
pub use wsp::wsp_select;
