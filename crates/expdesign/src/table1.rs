//! Table 1 of the paper: the factor ranges and experiment classes.
//!
//! ```text
//!                         Low-BDP           High-BDP
//!   Factor              Min.    Max.      Min.    Max.
//!   Capacity [Mbps]      0.1     100       0.1     100
//!   Round-Trip-Time [ms]   0      50         0     400
//!   Queuing Delay [ms]     0     100         0    2000
//!   Random Loss [%]        0     2.5         0     2.5
//! ```
//!
//! "We group the simulations into four classes: (low-BDP-no-loss),
//! (low-BDP-losses), (high-BDP-no-loss) and (high-BDP-losses). For each
//! class, we consider 253 scenarios and vary the path used to start the
//! connection, leading to 506 simulations."

use mpquic_netsim::PathSpec;
use serde::{Deserialize, Serialize};
use std::time::Duration;

use crate::wsp::wsp_select;

/// Scenarios per experiment class (the paper's 253).
pub const SCENARIOS_PER_CLASS: usize = 253;

/// Candidate cloud size for the WSP selection.
const WSP_CANDIDATES: usize = 2048;

/// The four experiment classes of §4.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ExperimentClass {
    /// Low bandwidth-delay product, no random losses (Figs. 3, 4, 9, 10).
    LowBdpNoLoss,
    /// Low BDP with random losses (Figs. 5, 6).
    LowBdpLosses,
    /// High BDP, no random losses (Fig. 7).
    HighBdpNoLoss,
    /// High BDP with random losses (Fig. 8).
    HighBdpLosses,
}

impl ExperimentClass {
    /// All four classes.
    pub const ALL: [ExperimentClass; 4] = [
        ExperimentClass::LowBdpNoLoss,
        ExperimentClass::LowBdpLosses,
        ExperimentClass::HighBdpNoLoss,
        ExperimentClass::HighBdpLosses,
    ];

    /// The factor ranges for this class.
    pub fn ranges(self) -> Table1Ranges {
        match self {
            ExperimentClass::LowBdpNoLoss | ExperimentClass::LowBdpLosses => Table1Ranges {
                capacity_mbps: (0.1, 100.0),
                rtt_ms: (0.0, 50.0),
                queue_ms: (0.0, 100.0),
                loss_pct: (0.0, 2.5),
            },
            ExperimentClass::HighBdpNoLoss | ExperimentClass::HighBdpLosses => Table1Ranges {
                capacity_mbps: (0.1, 100.0),
                rtt_ms: (0.0, 400.0),
                queue_ms: (0.0, 2000.0),
                loss_pct: (0.0, 2.5),
            },
        }
    }

    /// True for the lossy classes.
    pub fn with_losses(self) -> bool {
        matches!(
            self,
            ExperimentClass::LowBdpLosses | ExperimentClass::HighBdpLosses
        )
    }

    /// Stable name for logs and output files.
    pub fn name(self) -> &'static str {
        match self {
            ExperimentClass::LowBdpNoLoss => "low-BDP-no-loss",
            ExperimentClass::LowBdpLosses => "low-BDP-losses",
            ExperimentClass::HighBdpNoLoss => "high-BDP-no-loss",
            ExperimentClass::HighBdpLosses => "high-BDP-losses",
        }
    }

    /// Deterministic design seed per class (so every figure regenerates
    /// the same scenarios).
    fn design_seed(self) -> u64 {
        match self {
            ExperimentClass::LowBdpNoLoss => 0x1001,
            ExperimentClass::LowBdpLosses => 0x1002,
            ExperimentClass::HighBdpNoLoss => 0x1003,
            ExperimentClass::HighBdpLosses => 0x1004,
        }
    }
}

/// The factor ranges of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Table1Ranges {
    /// Path capacity range, Mbps.
    pub capacity_mbps: (f64, f64),
    /// Path round-trip-time range, ms.
    pub rtt_ms: (f64, f64),
    /// Maximum queuing delay range, ms.
    pub queue_ms: (f64, f64),
    /// Random loss range, percent.
    pub loss_pct: (f64, f64),
}

/// Which path the connection starts on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum StartMode {
    /// Initial path = highest-capacity path.
    BestFirst,
    /// Initial path = lowest-capacity path.
    WorstFirst,
}

impl StartMode {
    /// Both start modes, in the order the figures report them.
    pub const BOTH: [StartMode; 2] = [StartMode::BestFirst, StartMode::WorstFirst];

    /// Stable name.
    pub fn name(self) -> &'static str {
        match self {
            StartMode::BestFirst => "best-first",
            StartMode::WorstFirst => "worst-first",
        }
    }
}

/// One evaluated network scenario: two disjoint paths plus the starting
/// path choice.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// The experiment class it belongs to.
    pub class: ExperimentClass,
    /// Index within the class design (0..253).
    pub index: usize,
    /// The two paths (Fig. 2 topology).
    pub paths: [ScenarioPath; 2],
    /// Which path the connection starts on.
    pub start: StartMode,
}

/// One path's parameters, in the paper's units.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScenarioPath {
    /// Capacity, Mbps.
    pub capacity_mbps: f64,
    /// Round-trip-time, ms.
    pub rtt_ms: f64,
    /// Maximum queuing delay, ms.
    pub queue_ms: f64,
    /// Random loss, percent.
    pub loss_pct: f64,
}

impl ScenarioPath {
    /// Converts to the simulator's path specification.
    pub fn to_spec(self) -> PathSpec {
        PathSpec {
            capacity_mbps: self.capacity_mbps,
            rtt: Duration::from_secs_f64(self.rtt_ms / 1e3),
            max_queue_delay: Duration::from_secs_f64(self.queue_ms / 1e3),
            loss_percent: self.loss_pct,
        }
    }
}

impl Scenario {
    /// Simulator path specs, ordered so that index 0 is the **initial**
    /// path per the scenario's start mode.
    pub fn path_specs(&self) -> [PathSpec; 2] {
        let (best, worst) = if self.paths[0].capacity_mbps >= self.paths[1].capacity_mbps {
            (self.paths[0], self.paths[1])
        } else {
            (self.paths[1], self.paths[0])
        };
        match self.start {
            StartMode::BestFirst => [best.to_spec(), worst.to_spec()],
            StartMode::WorstFirst => [worst.to_spec(), best.to_spec()],
        }
    }

    /// A deterministic per-scenario seed for the simulation RNG.
    pub fn seed(&self) -> u64 {
        let class = match self.class {
            ExperimentClass::LowBdpNoLoss => 1u64,
            ExperimentClass::LowBdpLosses => 2,
            ExperimentClass::HighBdpNoLoss => 3,
            ExperimentClass::HighBdpLosses => 4,
        };
        let start = match self.start {
            StartMode::BestFirst => 0u64,
            StartMode::WorstFirst => 1,
        };
        (class << 32) | ((self.index as u64) << 1) | start
    }
}

/// Maps a unit-interval coordinate onto a range, log-uniformly for
/// capacity (three decades, 0.1–100 Mbps) so the design does not drown
/// in high-bandwidth scenarios.
fn map_capacity(u: f64, (lo, hi): (f64, f64)) -> f64 {
    (lo.ln() + u * (hi.ln() - lo.ln())).exp()
}

fn map_linear(u: f64, (lo, hi): (f64, f64)) -> f64 {
    lo + u * (hi - lo)
}

/// Generates the `count` WSP-designed scenarios of a class (start mode
/// fixed to `BestFirst`; use [`all_scenarios`] for the 2×253 expansion).
pub fn design_scenarios(class: ExperimentClass, count: usize) -> Vec<Scenario> {
    let ranges = class.ranges();
    // 8 factors: (capacity, rtt, queue, loss) × 2 paths.
    let points = wsp_select(8, count, WSP_CANDIDATES.max(count * 4), class.design_seed());
    points
        .into_iter()
        .enumerate()
        .map(|(index, p)| {
            let path = |o: usize| ScenarioPath {
                capacity_mbps: map_capacity(p[o], ranges.capacity_mbps),
                rtt_ms: map_linear(p[o + 1], ranges.rtt_ms),
                queue_ms: map_linear(p[o + 2], ranges.queue_ms),
                loss_pct: if class.with_losses() {
                    map_linear(p[o + 3], ranges.loss_pct)
                } else {
                    0.0
                },
            };
            Scenario {
                class,
                index,
                paths: [path(0), path(4)],
                start: StartMode::BestFirst,
            }
        })
        .collect()
}

/// The full per-class simulation list: `count` scenarios × both start
/// modes (the paper's 506 simulations for 253 scenarios).
pub fn all_scenarios(class: ExperimentClass, count: usize) -> Vec<Scenario> {
    let base = design_scenarios(class, count);
    let mut all = Vec::with_capacity(base.len() * 2);
    for scenario in base {
        let mut worst = scenario.clone();
        worst.start = StartMode::WorstFirst;
        all.push(scenario);
        all.push(worst);
    }
    all
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_design_has_253_scenarios() {
        let s = design_scenarios(ExperimentClass::LowBdpNoLoss, SCENARIOS_PER_CLASS);
        assert_eq!(s.len(), SCENARIOS_PER_CLASS);
        let both = all_scenarios(ExperimentClass::LowBdpNoLoss, SCENARIOS_PER_CLASS);
        assert_eq!(both.len(), 506);
    }

    #[test]
    fn parameters_respect_table1_ranges() {
        for class in ExperimentClass::ALL {
            let ranges = class.ranges();
            for s in design_scenarios(class, 60) {
                for p in &s.paths {
                    assert!(p.capacity_mbps >= ranges.capacity_mbps.0 - 1e-9);
                    assert!(p.capacity_mbps <= ranges.capacity_mbps.1 + 1e-9);
                    assert!(p.rtt_ms >= 0.0 && p.rtt_ms <= ranges.rtt_ms.1 + 1e-9);
                    assert!(p.queue_ms >= 0.0 && p.queue_ms <= ranges.queue_ms.1 + 1e-9);
                    if class.with_losses() {
                        assert!(p.loss_pct <= 2.5 + 1e-9);
                    } else {
                        assert_eq!(p.loss_pct, 0.0);
                    }
                }
            }
        }
    }

    #[test]
    fn high_bdp_ranges_are_larger() {
        let low = ExperimentClass::LowBdpNoLoss.ranges();
        let high = ExperimentClass::HighBdpNoLoss.ranges();
        assert!(high.rtt_ms.1 > low.rtt_ms.1);
        assert!(high.queue_ms.1 > low.queue_ms.1);
    }

    #[test]
    fn designs_are_deterministic() {
        let a = design_scenarios(ExperimentClass::LowBdpLosses, 40);
        let b = design_scenarios(ExperimentClass::LowBdpLosses, 40);
        assert_eq!(a, b);
    }

    #[test]
    fn classes_have_distinct_designs() {
        let a = design_scenarios(ExperimentClass::LowBdpNoLoss, 20);
        let b = design_scenarios(ExperimentClass::LowBdpLosses, 20);
        // Same seed would give identical capacities; different designs.
        assert_ne!(a[0].paths[0].capacity_mbps, b[0].paths[0].capacity_mbps);
    }

    #[test]
    fn start_mode_orders_paths() {
        let s = design_scenarios(ExperimentClass::LowBdpNoLoss, 5);
        for scenario in &s {
            let best_first = scenario.path_specs();
            assert!(best_first[0].capacity_mbps >= best_first[1].capacity_mbps);
            let mut worst = scenario.clone();
            worst.start = StartMode::WorstFirst;
            let worst_first = worst.path_specs();
            assert!(worst_first[0].capacity_mbps <= worst_first[1].capacity_mbps);
        }
    }

    #[test]
    fn seeds_unique_across_runs() {
        let mut seeds = std::collections::HashSet::new();
        for class in ExperimentClass::ALL {
            for s in all_scenarios(class, 20) {
                assert!(seeds.insert(s.seed()), "duplicate seed for {s:?}");
            }
        }
    }

    #[test]
    fn capacity_is_log_spread() {
        // With log mapping, a decent fraction of scenarios should land
        // below 1 Mbps and a decent fraction above 10 Mbps.
        let s = design_scenarios(ExperimentClass::LowBdpNoLoss, SCENARIOS_PER_CLASS);
        let caps: Vec<f64> = s
            .iter()
            .flat_map(|x| x.paths.iter().map(|p| p.capacity_mbps))
            .collect();
        let low = caps.iter().filter(|&&c| c < 1.0).count();
        let high = caps.iter().filter(|&&c| c > 10.0).count();
        assert!(low > caps.len() / 6, "{low}/{} below 1 Mbps", caps.len());
        assert!(high > caps.len() / 6, "{high}/{} above 10 Mbps", caps.len());
    }
}
