//! Topology construction — the paper's Fig. 2 network.
//!
//! "We consider a multipath network with two multihomed hosts over
//! disjoint paths with different characteristics." A [`NetworkPlan`]
//! allocates one client and one server address per path and one pair of
//! directional links per path; datagrams route strictly by their
//! `(source, destination)` addresses, so traffic between interface `i`
//! endpoints can only use path `i` — the disjointness of Fig. 2.

use std::net::{Ipv4Addr, SocketAddr, SocketAddrV4};
use std::time::Duration;

use crate::link::LinkParams;

/// Characteristics of one path, in the paper's Table 1 factor space.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PathSpec {
    /// Link capacity in Mbps (Table 1: 0.1 – 100).
    pub capacity_mbps: f64,
    /// Path round-trip-time (split evenly across the two directions;
    /// Table 1: 0 – 50 ms low-BDP, 0 – 400 ms high-BDP).
    pub rtt: Duration,
    /// Maximum queuing delay — the bufferbloat knob (Table 1: 0 – 100 ms
    /// low-BDP, 0 – 2000 ms high-BDP).
    pub max_queue_delay: Duration,
    /// Random loss percentage, 0 – 2.5 (%), applied per direction.
    pub loss_percent: f64,
}

impl PathSpec {
    /// A clean, symmetric convenience spec.
    pub fn new(capacity_mbps: f64, rtt_ms: u64, queue_ms: u64, loss_percent: f64) -> PathSpec {
        PathSpec {
            capacity_mbps,
            rtt: Duration::from_millis(rtt_ms),
            max_queue_delay: Duration::from_millis(queue_ms),
            loss_percent,
        }
    }

    /// Link parameters for one direction of this path.
    pub fn link_params(&self) -> LinkParams {
        LinkParams {
            rate_bps: self.capacity_mbps * 1e6,
            one_way_delay: self.rtt / 2,
            max_queue_delay: self.max_queue_delay,
            loss: self.loss_percent / 100.0,
        }
    }

    /// Bandwidth-delay product in bytes (capacity × RTT).
    pub fn bdp_bytes(&self) -> f64 {
        self.capacity_mbps * 1e6 / 8.0 * self.rtt.as_secs_f64()
    }
}

/// A fully specified two-host network: addresses plus per-path links.
#[derive(Debug, Clone)]
pub struct NetworkPlan {
    /// One client address per path (host A).
    pub client_addrs: Vec<SocketAddr>,
    /// One server address per path (host B).
    pub server_addrs: Vec<SocketAddr>,
    /// The path specs, by index.
    pub paths: Vec<PathSpec>,
}

impl NetworkPlan {
    /// Builds the Fig. 2 topology: `specs.len()` disjoint paths between a
    /// multihomed client and server. Path `i` connects
    /// `client_addrs[i] ↔ server_addrs[i]`.
    ///
    /// ```
    /// use mpquic_netsim::{NetworkPlan, PathSpec};
    /// let plan = NetworkPlan::two_host(&[
    ///     PathSpec::new(20.0, 30, 100, 0.0), // WiFi-ish
    ///     PathSpec::new(8.0, 60, 100, 1.0),  // LTE-ish
    /// ]);
    /// assert_eq!(plan.path_count(), 2);
    /// assert_eq!(plan.route(plan.client_addrs[0], plan.server_addrs[0]), Some(0));
    /// assert_eq!(plan.route(plan.client_addrs[0], plan.server_addrs[1]), None);
    /// ```
    pub fn two_host(specs: &[PathSpec]) -> NetworkPlan {
        assert!(!specs.is_empty(), "at least one path required");
        assert!(specs.len() < 250, "address space allows at most 249 paths");
        let client_addrs = (0..specs.len())
            .map(|i| SocketAddr::V4(SocketAddrV4::new(Ipv4Addr::new(10, i as u8, 0, 1), 50_000)))
            .collect();
        let server_addrs = (0..specs.len())
            .map(|i| SocketAddr::V4(SocketAddrV4::new(Ipv4Addr::new(10, i as u8, 1, 1), 4433)))
            .collect();
        NetworkPlan {
            client_addrs,
            server_addrs,
            paths: specs.to_vec(),
        }
    }

    /// Number of paths.
    pub fn path_count(&self) -> usize {
        self.paths.len()
    }

    /// Maps a `(src, dst)` address pair to its path index, if routable.
    ///
    /// Only same-index interface pairs are connected (disjoint paths).
    pub fn route(&self, src: SocketAddr, dst: SocketAddr) -> Option<usize> {
        for i in 0..self.paths.len() {
            let c = self.client_addrs[i];
            let s = self.server_addrs[i];
            if (src == c && dst == s) || (src == s && dst == c) {
                return Some(i);
            }
        }
        None
    }

    /// Index of the path with the highest capacity (the "best" path by
    /// the experimental-design convention used for best/worst-first runs;
    /// ties break toward lower RTT).
    pub fn best_path_index(&self) -> usize {
        let mut best = 0;
        for i in 1..self.paths.len() {
            let a = &self.paths[i];
            let b = &self.paths[best];
            let better = a.capacity_mbps > b.capacity_mbps
                || (a.capacity_mbps == b.capacity_mbps && a.rtt < b.rtt);
            if better {
                best = i;
            }
        }
        best
    }

    /// Index of the worst path (see [`NetworkPlan::best_path_index`]).
    pub fn worst_path_index(&self) -> usize {
        let mut worst = 0;
        for i in 1..self.paths.len() {
            let a = &self.paths[i];
            let b = &self.paths[worst];
            let worse = a.capacity_mbps < b.capacity_mbps
                || (a.capacity_mbps == b.capacity_mbps && a.rtt > b.rtt);
            if worse {
                worst = i;
            }
        }
        worst
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_paths() -> NetworkPlan {
        NetworkPlan::two_host(&[
            PathSpec::new(10.0, 30, 50, 0.0),
            PathSpec::new(2.0, 80, 50, 1.0),
        ])
    }

    #[test]
    fn addresses_are_distinct() {
        let plan = two_paths();
        let mut all = plan.client_addrs.clone();
        all.extend(&plan.server_addrs);
        let before = all.len();
        all.sort();
        all.dedup();
        assert_eq!(all.len(), before);
    }

    #[test]
    fn routing_is_disjoint() {
        let plan = two_paths();
        let (c0, c1) = (plan.client_addrs[0], plan.client_addrs[1]);
        let (s0, s1) = (plan.server_addrs[0], plan.server_addrs[1]);
        assert_eq!(plan.route(c0, s0), Some(0));
        assert_eq!(plan.route(s0, c0), Some(0));
        assert_eq!(plan.route(c1, s1), Some(1));
        // Cross pairs are unroutable — paths are disjoint.
        assert_eq!(plan.route(c0, s1), None);
        assert_eq!(plan.route(c1, s0), None);
        assert_eq!(plan.route(c0, c1), None);
    }

    #[test]
    fn best_and_worst_path_selection() {
        let plan = two_paths();
        assert_eq!(plan.best_path_index(), 0);
        assert_eq!(plan.worst_path_index(), 1);
        // Tie on capacity: RTT decides.
        let tied = NetworkPlan::two_host(&[
            PathSpec::new(5.0, 100, 50, 0.0),
            PathSpec::new(5.0, 20, 50, 0.0),
        ]);
        assert_eq!(tied.best_path_index(), 1);
        assert_eq!(tied.worst_path_index(), 0);
    }

    #[test]
    fn bdp_computation() {
        let spec = PathSpec::new(8.0, 100, 0, 0.0);
        // 8 Mbps * 0.1 s = 100 kB.
        assert!((spec.bdp_bytes() - 100_000.0).abs() < 1.0);
    }

    #[test]
    fn link_params_split_rtt() {
        let spec = PathSpec::new(10.0, 40, 100, 2.0);
        let p = spec.link_params();
        assert_eq!(p.one_way_delay, Duration::from_millis(20));
        assert!((p.loss - 0.02).abs() < 1e-12);
        assert_eq!(p.rate_bps, 10e6);
    }
}
