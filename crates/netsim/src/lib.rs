//! # mpquic-netsim — the network substrate
//!
//! The paper evaluates (MP)QUIC against (MP)TCP "on the Mininet emulation
//! platform", varying per-path **capacity**, **round-trip-time**,
//! **queuing delay** (bufferbloat) and **random loss** (Table 1). This
//! crate is the substitution for that testbed (DESIGN.md §2): a
//! deterministic discrete-event simulator with exactly those link
//! semantics:
//!
//! * [`link::Link`] — a unidirectional link with a serialization rate,
//!   propagation delay, a droptail queue bounded by a maximum queuing
//!   delay, and Bernoulli random loss;
//! * [`topology`] — the Fig. 2 two-host network: a multihomed client and
//!   server joined by disjoint paths with independent characteristics;
//! * [`sim::Simulation`] — the event loop driving two sans-IO
//!   [`Endpoint`]s (QUIC, MPQUIC, TCP or MPTCP stacks wrapped by the
//!   harness) with datagram delivery and timer callbacks.
//!
//! Determinism: all loss randomness comes from one seeded
//! [`mpquic_util::DetRng`], so a `(scenario, seed)` pair always reproduces
//! the same packet trace.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod link;
pub mod multi;
pub mod sim;
pub mod topology;
pub mod trace;

pub use link::{Link, LinkParams};
pub use multi::{MultiSimulation, Route};
pub use sim::{Endpoint, NetStats, Simulation};
pub use topology::{NetworkPlan, PathSpec};
pub use trace::{PacketFate, PacketRecord, Trace};

use mpquic_util::SimTime;

// The datagram type lives in `mpquic-util` so transports that know nothing
// about the simulator (e.g. the real-socket runtime in `mpquic-io`) can
// speak it too; re-exported here so simulator users are unaffected.
pub use mpquic_util::Datagram;

/// Fixed per-packet overhead the links bill in addition to the payload
/// (IPv4 + UDP headers).
pub const WIRE_OVERHEAD: usize = 28;

/// The two sides of a point-to-point simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Side {
    /// Host A (conventionally the client).
    A,
    /// Host B (conventionally the server).
    B,
}

impl Side {
    /// The opposite side.
    pub fn other(self) -> Side {
        match self {
            Side::A => Side::B,
            Side::B => Side::A,
        }
    }
}

/// A scheduled change to a link's parameters mid-simulation (e.g. the
/// Fig. 11 handover scenario where the initial path becomes fully lossy
/// at t = 3 s).
#[derive(Debug, Clone, Copy)]
pub struct LinkChange {
    /// When the change takes effect.
    pub at: SimTime,
    /// Index of the path whose links change (both directions).
    pub path_index: usize,
    /// New random-loss probability, if changing.
    pub loss: Option<f64>,
    /// New one-way propagation delay, if changing.
    pub one_way_delay: Option<std::time::Duration>,
}
