//! The discrete-event simulation loop.
//!
//! [`Simulation`] owns two [`Endpoint`]s (host A = client side, host B =
//! server side), the per-path links of a [`NetworkPlan`], and a
//! time-ordered event queue. Each iteration:
//!
//! 1. drains `poll_transmit` from both endpoints, pushing datagrams onto
//!    their links (loss and droptail applied on entry);
//! 2. advances the clock to the next delivery or protocol timer;
//! 3. delivers due datagrams and fires due timers.
//!
//! The loop is fully deterministic for a given `(plan, seed)` pair.

use mpquic_util::{DetRng, SimTime};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::net::SocketAddr;

use crate::link::{Drop, Link};
use crate::topology::NetworkPlan;
use crate::trace::{PacketFate, PacketRecord, Trace};
use crate::{Datagram, LinkChange, Side, WIRE_OVERHEAD};

/// A sans-IO protocol endpoint driven by the simulator.
///
/// `mpquic-core`'s `Connection` and `mpquic-tcp`'s stacks are adapted to
/// this trait by the harness crate.
pub trait Endpoint {
    /// A datagram arrived addressed to `local` from `remote`.
    fn on_datagram(&mut self, now: SimTime, local: SocketAddr, remote: SocketAddr, payload: &[u8]);
    /// Produce the next outgoing datagram, if any. Called until `None`.
    fn poll_transmit(&mut self, now: SimTime) -> Option<Datagram>;
    /// Earliest time `on_timeout` must run.
    fn next_timeout(&self) -> Option<SimTime>;
    /// The clock reached a previously announced timeout.
    fn on_timeout(&mut self, now: SimTime);
}

/// Network-level statistics for one simulation run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Datagrams delivered end-to-end.
    pub delivered: u64,
    /// Datagrams lost to random loss.
    pub lost_random: u64,
    /// Datagrams lost to droptail queues.
    pub lost_queue: u64,
    /// Datagrams with no route (address pair not connected).
    pub unroutable: u64,
}

/// The simulation: two endpoints joined by the plan's paths.
pub struct Simulation<A: Endpoint, B: Endpoint> {
    /// Host A (client side; owns `plan.client_addrs`).
    pub a: A,
    /// Host B (server side; owns `plan.server_addrs`).
    pub b: B,
    plan: NetworkPlan,
    /// Links: `[path][direction]` with direction 0 = A→B, 1 = B→A.
    links: Vec<[Link; 2]>,
    in_flight: BinaryHeap<Reverse<(SimTime, u64, usize)>>,
    payloads: Vec<Option<(Side, Datagram)>>,
    pending_changes: Vec<LinkChange>,
    now: SimTime,
    seq: u64,
    rng: DetRng,
    stats: NetStats,
    trace: Option<Trace>,
}

impl<A: Endpoint, B: Endpoint> Simulation<A, B> {
    /// Creates a simulation over `plan` with all randomness derived from
    /// `seed`.
    pub fn new(a: A, b: B, plan: NetworkPlan, seed: u64) -> Simulation<A, B> {
        let links = plan
            .paths
            .iter()
            .map(|spec| {
                let params = spec.link_params();
                [Link::new(params), Link::new(params)]
            })
            .collect();
        Simulation {
            a,
            b,
            plan,
            links,
            in_flight: BinaryHeap::new(),
            payloads: Vec::new(),
            pending_changes: Vec::new(),
            now: SimTime::ZERO,
            seq: 0,
            rng: DetRng::new(seed),
            stats: NetStats::default(),
            trace: None,
        }
    }

    /// Turns on packet-level tracing (see [`Trace`]).
    pub fn enable_trace(&mut self) {
        if self.trace.is_none() {
            self.trace = Some(Trace::default());
        }
    }

    /// The packet trace, if tracing was enabled.
    pub fn trace(&self) -> Option<&Trace> {
        self.trace.as_ref()
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Network statistics so far.
    pub fn stats(&self) -> NetStats {
        self.stats
    }

    /// The network plan in use.
    pub fn plan(&self) -> &NetworkPlan {
        &self.plan
    }

    /// Per-path delivered/lost counters: `(delivered, lost_random,
    /// lost_queue)` summing both directions.
    pub fn path_counters(&self, path: usize) -> (u64, u64, u64) {
        let [ab, ba] = &self.links[path];
        (
            ab.delivered + ba.delivered,
            ab.lost_random + ba.lost_random,
            ab.lost_queue + ba.lost_queue,
        )
    }

    /// Schedules a mid-run link parameter change (e.g. a path failing).
    pub fn schedule_change(&mut self, change: LinkChange) {
        self.pending_changes.push(change);
        self.pending_changes.sort_by_key(|c| c.at);
    }

    fn which_side(&self, addr: SocketAddr) -> Option<Side> {
        if self.plan.client_addrs.contains(&addr) {
            Some(Side::A)
        } else if self.plan.server_addrs.contains(&addr) {
            Some(Side::B)
        } else {
            None
        }
    }

    fn dispatch(&mut self, from: Side, datagram: Datagram) {
        let Some(path) = self.plan.route(datagram.local, datagram.remote) else {
            self.stats.unroutable += 1;
            if let Some(trace) = &mut self.trace {
                trace.push(PacketRecord {
                    sent: self.now,
                    from,
                    path: usize::MAX,
                    size: datagram.payload.len() + WIRE_OVERHEAD,
                    fate: PacketFate::Unroutable,
                });
            }
            return;
        };
        let direction = match from {
            Side::A => 0,
            Side::B => 1,
        };
        let size = datagram.payload.len() + WIRE_OVERHEAD;
        let fate = match self.links[path][direction].offer(self.now, size, &mut self.rng) {
            Ok(arrival) => {
                let key = self.payloads.len();
                self.payloads.push(Some((from.other(), datagram)));
                self.in_flight.push(Reverse((arrival, self.seq, key)));
                self.seq += 1;
                PacketFate::Delivered { arrival }
            }
            Err(Drop::Random) => {
                self.stats.lost_random += 1;
                PacketFate::LostRandom
            }
            Err(Drop::QueueFull) => {
                self.stats.lost_queue += 1;
                PacketFate::LostQueue
            }
        };
        if let Some(trace) = &mut self.trace {
            trace.push(PacketRecord {
                sent: self.now,
                from,
                path,
                size,
                fate,
            });
        }
    }

    fn pump(&mut self) {
        loop {
            let mut any = false;
            while let Some(d) = self.a.poll_transmit(self.now) {
                debug_assert_eq!(self.which_side(d.local), Some(Side::A));
                self.dispatch(Side::A, d);
                any = true;
            }
            while let Some(d) = self.b.poll_transmit(self.now) {
                debug_assert_eq!(self.which_side(d.local), Some(Side::B));
                self.dispatch(Side::B, d);
                any = true;
            }
            if !any {
                break;
            }
        }
    }

    fn apply_due_changes(&mut self) {
        while let Some(change) = self.pending_changes.first().copied() {
            if change.at > self.now {
                break;
            }
            self.pending_changes.remove(0);
            if let Some(pair) = self.links.get_mut(change.path_index) {
                for link in pair.iter_mut() {
                    if let Some(loss) = change.loss {
                        link.params.loss = loss;
                    }
                    if let Some(delay) = change.one_way_delay {
                        link.params.one_way_delay = delay;
                    }
                }
            }
        }
    }

    /// Runs one event step. Returns `false` when nothing remains to do.
    pub fn step(&mut self) -> bool {
        self.apply_due_changes();
        self.pump();
        let next_delivery = self.in_flight.peek().map(|Reverse((t, ..))| *t);
        let next_timer = [self.a.next_timeout(), self.b.next_timeout()]
            .into_iter()
            .flatten()
            .min();
        let next_change = self.pending_changes.first().map(|c| c.at);
        let mut next = SimTime::FAR_FUTURE;
        for candidate in [next_delivery, next_timer, next_change]
            .into_iter()
            .flatten()
        {
            next = next.min(candidate);
        }
        if next == SimTime::FAR_FUTURE {
            return false;
        }
        // Endpoints may report timers that are already due (e.g. a loss
        // deadline computed for the past); never move the clock backwards.
        self.now = next.max(self.now);
        self.apply_due_changes();
        // Deliver everything due.
        while let Some(&Reverse((t, _, key))) = self.in_flight.peek() {
            if t > self.now {
                break;
            }
            self.in_flight.pop();
            let (to, datagram) = self.payloads[key].take().expect("delivered once");
            self.stats.delivered += 1;
            match to {
                Side::A => {
                    self.a
                        .on_datagram(self.now, datagram.remote, datagram.local, &datagram.payload)
                }
                Side::B => {
                    self.b
                        .on_datagram(self.now, datagram.remote, datagram.local, &datagram.payload)
                }
            }
        }
        // Fire due timers.
        if self.a.next_timeout().is_some_and(|t| t <= self.now) {
            self.a.on_timeout(self.now);
        }
        if self.b.next_timeout().is_some_and(|t| t <= self.now) {
            self.b.on_timeout(self.now);
        }
        true
    }

    /// Runs until `until` returns true or the deadline passes or the
    /// simulation runs dry. Returns true if the condition was met.
    pub fn run_until(
        &mut self,
        deadline: SimTime,
        mut until: impl FnMut(&mut A, &mut B, SimTime) -> bool,
    ) -> bool {
        loop {
            if until(&mut self.a, &mut self.b, self.now) {
                return true;
            }
            if self.now >= deadline || !self.step() {
                return until(&mut self.a, &mut self.b, self.now);
            }
        }
    }

    /// Runs to quiescence or the deadline, whichever comes first.
    pub fn run_to_quiescence(&mut self, deadline: SimTime) {
        self.run_until(deadline, |_, _, _| false);
    }
}

/// A trivial endpoint for tests: records what it receives and sends a
/// scripted list of datagrams at given times.
#[derive(Debug, Default)]
pub struct ScriptedEndpoint {
    /// `(send_at, datagram)` entries, consumed in order.
    pub script: Vec<(SimTime, Datagram)>,
    /// Everything received: `(when, from, payload_len)`.
    pub received: Vec<(SimTime, SocketAddr, usize)>,
    cursor: usize,
}

impl ScriptedEndpoint {
    /// An endpoint that sends nothing.
    pub fn silent() -> ScriptedEndpoint {
        ScriptedEndpoint::default()
    }

    /// An endpoint sending the given script.
    pub fn with_script(script: Vec<(SimTime, Datagram)>) -> ScriptedEndpoint {
        ScriptedEndpoint {
            script,
            ..Default::default()
        }
    }
}

impl Endpoint for ScriptedEndpoint {
    fn on_datagram(
        &mut self,
        now: SimTime,
        _local: SocketAddr,
        remote: SocketAddr,
        payload: &[u8],
    ) {
        self.received.push((now, remote, payload.len()));
    }

    fn poll_transmit(&mut self, now: SimTime) -> Option<Datagram> {
        let (at, _) = self.script.get(self.cursor)?;
        if *at <= now {
            let (_, d) = &self.script[self.cursor];
            self.cursor += 1;
            Some(d.clone())
        } else {
            None
        }
    }

    fn next_timeout(&self) -> Option<SimTime> {
        self.script.get(self.cursor).map(|(at, _)| *at)
    }

    fn on_timeout(&mut self, _now: SimTime) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::PathSpec;

    fn plan() -> NetworkPlan {
        NetworkPlan::two_host(&[
            PathSpec::new(10.0, 20, 100, 0.0),
            PathSpec::new(1.0, 100, 100, 0.0),
        ])
    }

    fn dgram(plan: &NetworkPlan, path: usize, from_client: bool, len: usize) -> Datagram {
        let (local, remote) = if from_client {
            (plan.client_addrs[path], plan.server_addrs[path])
        } else {
            (plan.server_addrs[path], plan.client_addrs[path])
        };
        Datagram {
            local,
            remote,
            payload: vec![0xAA; len],
        }
    }

    #[test]
    fn delivery_respects_path_delay() {
        let plan = plan();
        let d0 = dgram(&plan, 0, true, 100);
        let d1 = dgram(&plan, 1, true, 100);
        let a = ScriptedEndpoint::with_script(vec![(SimTime::ZERO, d0), (SimTime::ZERO, d1)]);
        let mut sim = Simulation::new(a, ScriptedEndpoint::silent(), plan, 1);
        sim.run_to_quiescence(SimTime::from_secs(10));
        assert_eq!(sim.b.received.len(), 2);
        // Path 0: ~10 ms one-way (+ serialization). Path 1: ~50 ms.
        let t0 = sim.b.received[0].0;
        let t1 = sim.b.received[1].0;
        assert!(
            t0 >= SimTime::from_millis(10) && t0 < SimTime::from_millis(12),
            "{t0:?}"
        );
        assert!(
            t1 >= SimTime::from_millis(50) && t1 < SimTime::from_millis(53),
            "{t1:?}"
        );
        assert_eq!(sim.stats().delivered, 2);
    }

    #[test]
    fn cross_path_addresses_unroutable() {
        let plan = plan();
        let bogus = Datagram {
            local: plan.client_addrs[0],
            remote: plan.server_addrs[1],
            payload: vec![0; 10],
        };
        let a = ScriptedEndpoint::with_script(vec![(SimTime::ZERO, bogus)]);
        let mut sim = Simulation::new(a, ScriptedEndpoint::silent(), plan, 1);
        sim.run_to_quiescence(SimTime::from_secs(1));
        assert_eq!(sim.b.received.len(), 0);
        assert_eq!(sim.stats().unroutable, 1);
    }

    #[test]
    fn both_directions_work() {
        let plan = plan();
        let to_server = dgram(&plan, 0, true, 10);
        let to_client = dgram(&plan, 0, false, 20);
        let a = ScriptedEndpoint::with_script(vec![(SimTime::ZERO, to_server)]);
        let b = ScriptedEndpoint::with_script(vec![(SimTime::ZERO, to_client)]);
        let mut sim = Simulation::new(a, b, plan, 1);
        sim.run_to_quiescence(SimTime::from_secs(1));
        assert_eq!(sim.b.received.len(), 1);
        assert_eq!(sim.a.received.len(), 1);
    }

    #[test]
    fn scheduled_loss_change_kills_path() {
        let plan = plan();
        let before = dgram(&plan, 0, true, 10);
        let after = dgram(&plan, 0, true, 10);
        let a = ScriptedEndpoint::with_script(vec![
            (SimTime::ZERO, before),
            (SimTime::from_secs(4), after),
        ]);
        let mut sim = Simulation::new(a, ScriptedEndpoint::silent(), plan, 1);
        sim.schedule_change(LinkChange {
            at: SimTime::from_secs(3),
            path_index: 0,
            loss: Some(1.0),
            one_way_delay: None,
        });
        sim.run_to_quiescence(SimTime::from_secs(10));
        assert_eq!(
            sim.b.received.len(),
            1,
            "only the pre-change datagram arrives"
        );
        assert_eq!(sim.stats().lost_random, 1);
    }

    #[test]
    fn rate_limiting_spaces_deliveries() {
        // 1 Mbps path: a 1250 B payload (+28 overhead) takes ~10.2 ms to
        // serialize; back-to-back sends arrive ~10.2 ms apart.
        let plan = NetworkPlan::two_host(&[PathSpec::new(1.0, 0, 1000, 0.0)]);
        let script = (0..5)
            .map(|_| (SimTime::ZERO, dgram(&plan, 0, true, 1250)))
            .collect();
        let a = ScriptedEndpoint::with_script(script);
        let mut sim = Simulation::new(a, ScriptedEndpoint::silent(), plan, 1);
        sim.run_to_quiescence(SimTime::from_secs(10));
        assert_eq!(sim.b.received.len(), 5);
        let times: Vec<u64> = sim.b.received.iter().map(|(t, ..)| t.as_micros()).collect();
        for w in times.windows(2) {
            let gap = w[1] - w[0];
            assert!((10_100..10_300).contains(&gap), "gap {gap} µs");
        }
    }

    #[test]
    fn delay_change_applies_mid_run() {
        let plan = NetworkPlan::two_host(&[PathSpec::new(10.0, 20, 100, 0.0)]);
        let early = dgram(&plan, 0, true, 100);
        let late = dgram(&plan, 0, true, 100);
        let a = ScriptedEndpoint::with_script(vec![
            (SimTime::ZERO, early),
            (SimTime::from_secs(2), late),
        ]);
        let mut sim = Simulation::new(a, ScriptedEndpoint::silent(), plan, 1);
        sim.schedule_change(LinkChange {
            at: SimTime::from_secs(1),
            path_index: 0,
            loss: None,
            one_way_delay: Some(std::time::Duration::from_millis(200)),
        });
        sim.run_to_quiescence(SimTime::from_secs(10));
        assert_eq!(sim.b.received.len(), 2);
        let first = sim.b.received[0].0;
        let second = sim.b.received[1].0;
        assert!(first < SimTime::from_millis(15), "{first:?}");
        assert!(
            second >= SimTime::from_millis(2200),
            "late datagram should see the 200 ms delay: {second:?}"
        );
    }

    #[test]
    fn path_counters_track_per_path_activity() {
        let plan = plan();
        let script = vec![
            (SimTime::ZERO, dgram(&plan, 0, true, 100)),
            (SimTime::ZERO, dgram(&plan, 0, true, 100)),
            (SimTime::ZERO, dgram(&plan, 1, true, 100)),
        ];
        let a = ScriptedEndpoint::with_script(script);
        let mut sim = Simulation::new(a, ScriptedEndpoint::silent(), plan, 1);
        sim.run_to_quiescence(SimTime::from_secs(2));
        assert_eq!(sim.path_counters(0), (2, 0, 0));
        assert_eq!(sim.path_counters(1), (1, 0, 0));
    }

    #[test]
    fn wire_overhead_billed_on_links() {
        // A 1 Mbps link: 972 B payload + 28 B overhead = 1000 B = 8 ms.
        let plan = NetworkPlan::two_host(&[PathSpec::new(1.0, 0, 1000, 0.0)]);
        let a = ScriptedEndpoint::with_script(vec![(SimTime::ZERO, dgram(&plan, 0, true, 972))]);
        let mut sim = Simulation::new(a, ScriptedEndpoint::silent(), plan, 1);
        sim.run_to_quiescence(SimTime::from_secs(1));
        assert_eq!(sim.b.received[0].0, SimTime::from_millis(8));
    }

    #[test]
    fn determinism_across_runs() {
        let run = |seed: u64| {
            let plan = NetworkPlan::two_host(&[PathSpec::new(5.0, 20, 50, 20.0)]);
            let script = (0..50)
                .map(|i| (SimTime::from_millis(i * 5), dgram(&plan, 0, true, 500)))
                .collect();
            let a = ScriptedEndpoint::with_script(script);
            let mut sim = Simulation::new(a, ScriptedEndpoint::silent(), plan, seed);
            sim.run_to_quiescence(SimTime::from_secs(10));
            (sim.b.received.len(), sim.stats())
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5).0, run(999).0);
    }
}
