//! Multi-endpoint, multi-hop simulation — shared-bottleneck topologies.
//!
//! The two-host [`crate::Simulation`] covers the paper's Fig. 2
//! (disjoint paths). The *fairness* argument behind the paper's choice of
//! OLIA ("Using CUBIC in a multipath protocol would cause unfairness
//! [48]", §3) needs more: several connections competing on a **shared
//! bottleneck**. [`MultiSimulation`] drives any number of endpoints over
//! routes that may traverse multiple links, with hop-by-hop queueing.

use mpquic_util::{DetRng, SimTime};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::net::SocketAddr;

use crate::link::{Drop, Link, LinkParams};
use crate::sim::Endpoint;
use crate::{Datagram, NetStats, WIRE_OVERHEAD};

/// A route: the sequence of link indices a datagram traverses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Route {
    /// Link indices, in traversal order.
    pub links: Vec<usize>,
}

/// A network of endpoints, links and routes.
pub struct MultiSimulation {
    endpoints: Vec<Box<dyn Endpoint>>,
    /// Which endpoint owns each address.
    owners: HashMap<SocketAddr, usize>,
    links: Vec<Link>,
    /// Route per (src, dst) address pair.
    routes: HashMap<(SocketAddr, SocketAddr), Route>,
    /// Heap of `(time, seq, event)`.
    queue: BinaryHeap<Reverse<(SimTime, u64, usize)>>,
    /// Parked hop events: `(remaining hops, datagram)`.
    parked: Vec<Option<(Vec<usize>, Datagram)>>,
    now: SimTime,
    seq: u64,
    rng: DetRng,
    stats: NetStats,
}

impl MultiSimulation {
    /// Creates an empty network.
    pub fn new(seed: u64) -> MultiSimulation {
        MultiSimulation {
            endpoints: Vec::new(),
            owners: HashMap::new(),
            links: Vec::new(),
            routes: HashMap::new(),
            queue: BinaryHeap::new(),
            parked: Vec::new(),
            now: SimTime::ZERO,
            seq: 0,
            rng: DetRng::new(seed),
            stats: NetStats::default(),
        }
    }

    /// Adds an endpoint owning `addrs`; returns its index.
    pub fn add_endpoint(
        &mut self,
        endpoint: Box<dyn Endpoint>,
        addrs: impl IntoIterator<Item = SocketAddr>,
    ) -> usize {
        let idx = self.endpoints.len();
        self.endpoints.push(endpoint);
        for addr in addrs {
            let prev = self.owners.insert(addr, idx);
            assert!(prev.is_none(), "address {addr} already owned");
        }
        idx
    }

    /// Adds a unidirectional link; returns its index.
    pub fn add_link(&mut self, params: LinkParams) -> usize {
        self.links.push(Link::new(params));
        self.links.len() - 1
    }

    /// Adds a bidirectional link pair; returns `(forward, reverse)`.
    pub fn add_duplex(&mut self, params: LinkParams) -> (usize, usize) {
        (self.add_link(params), self.add_link(params))
    }

    /// Declares the route for datagrams from `src` to `dst`.
    pub fn add_route(&mut self, src: SocketAddr, dst: SocketAddr, links: Vec<usize>) {
        assert!(!links.is_empty());
        self.routes.insert((src, dst), Route { links });
    }

    /// Mutable access to an endpoint (for application driving).
    pub fn endpoint_mut(&mut self, idx: usize) -> &mut dyn Endpoint {
        self.endpoints[idx].as_mut()
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Network counters.
    pub fn stats(&self) -> NetStats {
        self.stats
    }

    /// A link's counters: `(delivered, lost_random, lost_queue)`.
    pub fn link_counters(&self, idx: usize) -> (u64, u64, u64) {
        let l = &self.links[idx];
        (l.delivered, l.lost_random, l.lost_queue)
    }

    fn schedule_hop(&mut self, at: SimTime, remaining: Vec<usize>, datagram: Datagram) {
        let key = self.parked.len();
        self.parked.push(Some((remaining, datagram)));
        self.queue.push(Reverse((at, self.seq, key)));
        self.seq += 1;
    }

    /// Offers `datagram` to the first link of `remaining` at `now`,
    /// scheduling the next hop (or final delivery) on success.
    fn traverse(&mut self, now: SimTime, mut remaining: Vec<usize>, datagram: Datagram) {
        let link_idx = remaining.remove(0);
        let size = datagram.payload.len() + WIRE_OVERHEAD;
        match self.links[link_idx].offer(now, size, &mut self.rng) {
            Ok(arrival) => self.schedule_hop(arrival, remaining, datagram),
            Err(Drop::Random) => self.stats.lost_random += 1,
            Err(Drop::QueueFull) => self.stats.lost_queue += 1,
        }
    }

    fn dispatch(&mut self, datagram: Datagram) {
        let Some(route) = self.routes.get(&(datagram.local, datagram.remote)) else {
            self.stats.unroutable += 1;
            return;
        };
        let links = route.links.clone();
        self.traverse(self.now, links, datagram);
    }

    fn pump(&mut self) {
        loop {
            let mut any = false;
            let mut outgoing = Vec::new();
            for endpoint in &mut self.endpoints {
                while let Some(d) = endpoint.poll_transmit(self.now) {
                    outgoing.push(d);
                    any = true;
                }
            }
            for d in outgoing {
                self.dispatch(d);
            }
            if !any {
                break;
            }
        }
    }

    /// Runs one event step; `false` when the network is quiescent.
    pub fn step(&mut self) -> bool {
        self.pump();
        let next_event = self.queue.peek().map(|Reverse((t, ..))| *t);
        let next_timer = self.endpoints.iter().filter_map(|e| e.next_timeout()).min();
        let next = match (next_event, next_timer) {
            (Some(a), Some(b)) => a.min(b),
            (Some(a), None) => a,
            (None, Some(b)) => b,
            (None, None) => return false,
        };
        self.now = next.max(self.now);
        // Hop arrivals due now.
        while let Some(&Reverse((t, _, key))) = self.queue.peek() {
            if t > self.now {
                break;
            }
            self.queue.pop();
            let (remaining, datagram) = self.parked[key].take().expect("hop delivered once");
            if remaining.is_empty() {
                // Final delivery.
                match self.owners.get(&datagram.remote).copied() {
                    Some(idx) => {
                        self.stats.delivered += 1;
                        self.endpoints[idx].on_datagram(
                            self.now,
                            datagram.remote,
                            datagram.local,
                            &datagram.payload,
                        );
                    }
                    None => self.stats.unroutable += 1,
                }
            } else {
                self.traverse(self.now, remaining, datagram);
            }
        }
        // Timers due now.
        for endpoint in &mut self.endpoints {
            if endpoint.next_timeout().is_some_and(|t| t <= self.now) {
                endpoint.on_timeout(self.now);
            }
        }
        true
    }

    /// Runs until `until` returns true, the deadline passes, or the
    /// network goes quiescent.
    pub fn run_until(
        &mut self,
        deadline: SimTime,
        mut until: impl FnMut(&mut MultiSimulation) -> bool,
    ) -> bool {
        loop {
            if until(self) {
                return true;
            }
            if self.now >= deadline || !self.step() {
                return until(self);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::ScriptedEndpoint;
    use std::time::Duration;

    fn addr(s: &str) -> SocketAddr {
        s.parse().unwrap()
    }

    fn params(mbps: f64, delay_ms: f64) -> LinkParams {
        LinkParams::from_paper_units(mbps, delay_ms, 1000.0, 0.0)
    }

    #[test]
    fn two_hop_route_accumulates_delay() {
        let mut sim = MultiSimulation::new(1);
        let a = addr("10.0.0.1:1000");
        let b = addr("10.0.9.1:2000");
        let sender = ScriptedEndpoint::with_script(vec![(
            SimTime::ZERO,
            Datagram {
                local: a,
                remote: b,
                payload: vec![0; 972], // +28 = 1000 B
            },
        )]);
        let s = sim.add_endpoint(Box::new(sender), [a]);
        assert_eq!(s, 0);
        let receiver = sim.add_endpoint(Box::new(ScriptedEndpoint::silent()), [b]);
        // 8 Mbps (1 ms serialization for 1000 B) + 10 ms, twice.
        let l1 = sim.add_link(params(8.0, 10.0));
        let l2 = sim.add_link(params(8.0, 10.0));
        sim.add_route(a, b, vec![l1, l2]);
        sim.run_until(SimTime::from_secs(5), |_| false);
        {
            let e = sim.endpoint_mut(receiver);
            // Downcast through the scripted endpoint's record: we can't
            // downcast dyn Endpoint, so check link counters instead.
            let _ = e;
        };
        assert_eq!(sim.stats().delivered, 1);
        assert_eq!(sim.link_counters(l1).0, 1);
        assert_eq!(sim.link_counters(l2).0, 1);
        // Total one-way: 1 + 10 + 1 + 10 = 22 ms; the sim clock stops at
        // the final delivery.
        assert_eq!(sim.now(), SimTime::from_millis(22));
    }

    #[test]
    fn bottleneck_serializes_competing_senders() {
        let mut sim = MultiSimulation::new(2);
        let a1 = addr("10.0.0.1:1000");
        let a2 = addr("10.0.1.1:1000");
        let b = addr("10.0.9.1:2000");
        let mk = |from: SocketAddr, n: usize| {
            ScriptedEndpoint::with_script(
                (0..n)
                    .map(|_| {
                        (
                            SimTime::ZERO,
                            Datagram {
                                local: from,
                                remote: b,
                                payload: vec![0; 972],
                            },
                        )
                    })
                    .collect(),
            )
        };
        sim.add_endpoint(Box::new(mk(a1, 5)), [a1]);
        sim.add_endpoint(Box::new(mk(a2, 5)), [a2]);
        sim.add_endpoint(Box::new(ScriptedEndpoint::silent()), [b]);
        // Fast access links, slow shared bottleneck.
        let acc1 = sim.add_link(params(100.0, 1.0));
        let acc2 = sim.add_link(params(100.0, 1.0));
        let shared = sim.add_link(params(8.0, 1.0)); // 1 ms per packet
        sim.add_route(a1, b, vec![acc1, shared]);
        sim.add_route(a2, b, vec![acc2, shared]);
        sim.run_until(SimTime::from_secs(5), |_| false);
        assert_eq!(sim.stats().delivered, 10);
        // All ten packets crossed the one bottleneck; with 1 ms
        // serialization each, the last arrives ≥ 10 ms in.
        assert_eq!(sim.link_counters(shared).0, 10);
        assert!(sim.now() >= SimTime::from_millis(10));
    }

    #[test]
    fn unroutable_pairs_counted() {
        let mut sim = MultiSimulation::new(3);
        let a = addr("10.0.0.1:1000");
        let b = addr("10.0.9.1:2000");
        let sender = ScriptedEndpoint::with_script(vec![(
            SimTime::ZERO,
            Datagram {
                local: a,
                remote: b,
                payload: vec![0; 10],
            },
        )]);
        sim.add_endpoint(Box::new(sender), [a]);
        sim.add_endpoint(Box::new(ScriptedEndpoint::silent()), [b]);
        // No route declared.
        sim.run_until(SimTime::from_secs(1), |_| false);
        assert_eq!(sim.stats().unroutable, 1);
        let _ = Duration::ZERO;
    }
}
