//! The link model: serialization rate, propagation delay, droptail queue,
//! random loss.
//!
//! A [`Link`] is unidirectional; a path consists of one link per
//! direction sharing the same parameters. The queue is modelled in *time*
//! units, matching the paper's Table 1 "Queuing Delay" factor directly: a
//! packet is dropped (droptail) if accepting it would make it wait longer
//! than the maximum queuing delay. This is how bufferbloat is dialed in —
//! a 2 s × 100 Mbps queue is a 25 MB buffer.

use mpquic_util::{DetRng, SimTime};
use std::time::Duration;

/// Static parameters of one link direction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkParams {
    /// Serialization rate in bits per second.
    pub rate_bps: f64,
    /// One-way propagation delay.
    pub one_way_delay: Duration,
    /// Maximum time a packet may sit in the queue before droptail kicks
    /// in. (A floor of two full-size packets is always granted so a 0 ms
    /// setting still permits back-to-back transmission.)
    pub max_queue_delay: Duration,
    /// Bernoulli random-loss probability in `[0, 1]`, applied on entry
    /// (models lossy wireless links, not congestion).
    pub loss: f64,
}

impl LinkParams {
    /// Convenience constructor from the paper's units (Mbps, ms, ms, %).
    pub fn from_paper_units(
        capacity_mbps: f64,
        one_way_delay_ms: f64,
        max_queue_delay_ms: f64,
        loss_percent: f64,
    ) -> LinkParams {
        LinkParams {
            rate_bps: capacity_mbps * 1e6,
            one_way_delay: Duration::from_secs_f64(one_way_delay_ms / 1e3),
            max_queue_delay: Duration::from_secs_f64(max_queue_delay_ms / 1e3),
            loss: loss_percent / 100.0,
        }
    }

    /// Serialization time of `bytes` on this link.
    pub fn tx_time(&self, bytes: usize) -> Duration {
        Duration::from_secs_f64((bytes as f64) * 8.0 / self.rate_bps)
    }
}

/// Why a packet was not delivered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Drop {
    /// Bernoulli random loss.
    Random,
    /// Droptail queue overflow.
    QueueFull,
}

/// One direction of a network path.
#[derive(Debug, Clone)]
pub struct Link {
    /// Current parameters (mutable for mid-simulation link changes).
    pub params: LinkParams,
    /// Time the transmitter finishes the packet currently serializing
    /// (and everything queued behind it).
    busy_until: SimTime,
    /// Delivered packet counter.
    pub delivered: u64,
    /// Packets lost to random loss.
    pub lost_random: u64,
    /// Packets lost to queue overflow.
    pub lost_queue: u64,
}

impl Link {
    /// Creates an idle link.
    pub fn new(params: LinkParams) -> Link {
        Link {
            params,
            busy_until: SimTime::ZERO,
            delivered: 0,
            lost_random: 0,
            lost_queue: 0,
        }
    }

    /// Offers a packet of `bytes` to the link at time `now`.
    ///
    /// Returns the arrival time at the far end, or the drop reason.
    pub fn offer(&mut self, now: SimTime, bytes: usize, rng: &mut DetRng) -> Result<SimTime, Drop> {
        if rng.bool(self.params.loss) {
            self.lost_random += 1;
            return Err(Drop::Random);
        }
        let tx = self.params.tx_time(bytes);
        // Current queueing delay if we join now.
        let wait = self.busy_until.saturating_duration_since(now);
        // Grant at least two full-size packets of buffer so a zero
        // configured queue still allows minimal bursts.
        let floor = self.params.tx_time(2 * 1500);
        let cap = self.params.max_queue_delay.max(floor);
        if wait > cap {
            self.lost_queue += 1;
            return Err(Drop::QueueFull);
        }
        let start = self.busy_until.max(now);
        self.busy_until = start + tx;
        self.delivered += 1;
        Ok(self.busy_until + self.params.one_way_delay)
    }

    /// Queue occupancy (as waiting time) at `now`.
    pub fn queue_delay(&self, now: SimTime) -> Duration {
        self.busy_until.saturating_duration_since(now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params(mbps: f64, delay_ms: f64, queue_ms: f64, loss_pct: f64) -> LinkParams {
        LinkParams::from_paper_units(mbps, delay_ms, queue_ms, loss_pct)
    }

    #[test]
    fn tx_time_matches_rate() {
        let p = params(8.0, 0.0, 100.0, 0.0); // 8 Mbps = 1 byte/µs
        assert_eq!(p.tx_time(1000), Duration::from_millis(1));
    }

    #[test]
    fn lossless_link_delivers_with_delay() {
        let mut link = Link::new(params(8.0, 10.0, 100.0, 0.0));
        let mut rng = DetRng::new(1);
        let arrival = link.offer(SimTime::ZERO, 1000, &mut rng).unwrap();
        // 1 ms serialization + 10 ms propagation.
        assert_eq!(arrival, SimTime::from_millis(11));
    }

    #[test]
    fn serialization_queues_back_to_back_packets() {
        let mut link = Link::new(params(8.0, 0.0, 1000.0, 0.0));
        let mut rng = DetRng::new(1);
        let a = link.offer(SimTime::ZERO, 1000, &mut rng).unwrap();
        let b = link.offer(SimTime::ZERO, 1000, &mut rng).unwrap();
        assert_eq!(a, SimTime::from_millis(1));
        assert_eq!(b, SimTime::from_millis(2));
        assert_eq!(link.queue_delay(SimTime::ZERO), Duration::from_millis(2));
    }

    #[test]
    fn droptail_when_queue_exceeds_cap() {
        // 8 Mbps, 5 ms max queue -> 5 packets of 1000 B fill it.
        let mut link = Link::new(params(8.0, 0.0, 5.0, 0.0));
        let mut rng = DetRng::new(1);
        let mut delivered = 0;
        let mut dropped = 0;
        for _ in 0..20 {
            match link.offer(SimTime::ZERO, 1000, &mut rng) {
                Ok(_) => delivered += 1,
                Err(Drop::QueueFull) => dropped += 1,
                Err(other) => panic!("unexpected {other:?}"),
            }
        }
        assert!((5..=7).contains(&delivered), "delivered {delivered}");
        assert_eq!(delivered + dropped, 20);
        assert_eq!(link.lost_queue, dropped as u64);
    }

    #[test]
    fn queue_drains_over_time() {
        let mut link = Link::new(params(8.0, 0.0, 5.0, 0.0));
        let mut rng = DetRng::new(1);
        while link.offer(SimTime::ZERO, 1000, &mut rng).is_ok() {}
        // After the queue has drained, offers succeed again.
        assert!(link
            .offer(SimTime::from_millis(100), 1000, &mut rng)
            .is_ok());
    }

    #[test]
    fn random_loss_statistics() {
        let mut link = Link::new(params(1000.0, 0.0, 10_000.0, 10.0));
        let mut rng = DetRng::new(7);
        let n = 20_000;
        let mut lost = 0;
        for i in 0..n {
            // Offer spaced out so the queue never fills.
            let t = SimTime::from_micros(i * 100);
            if link.offer(t, 100, &mut rng).is_err() {
                lost += 1;
            }
        }
        let rate = lost as f64 / n as f64;
        assert!((rate - 0.10).abs() < 0.01, "loss rate {rate}");
        assert_eq!(link.lost_random, lost as u64);
    }

    #[test]
    fn zero_queue_still_allows_two_packets() {
        let mut link = Link::new(params(8.0, 0.0, 0.0, 0.0));
        let mut rng = DetRng::new(1);
        assert!(link.offer(SimTime::ZERO, 1500, &mut rng).is_ok());
        assert!(link.offer(SimTime::ZERO, 1500, &mut rng).is_ok());
    }

    #[test]
    fn deterministic_for_same_seed() {
        let run = |seed: u64| -> Vec<bool> {
            let mut link = Link::new(params(10.0, 5.0, 20.0, 5.0));
            let mut rng = DetRng::new(seed);
            (0..100)
                .map(|i| link.offer(SimTime::from_millis(i), 1200, &mut rng).is_ok())
                .collect()
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43));
    }
}
