//! Packet-level tracing.
//!
//! When enabled on a [`crate::Simulation`], every datagram's fate is
//! recorded: when it was offered, on which path and direction, its size,
//! and whether it was delivered or dropped (and why). The paper's
//! analyses (per-path utilization, who sent what during a handover) come
//! down to queries over exactly this record.

use mpquic_util::SimTime;
use std::time::Duration;

use crate::Side;

/// What happened to one datagram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PacketFate {
    /// Accepted by the link; will arrive at the recorded time.
    Delivered {
        /// Arrival time at the far end.
        arrival: SimTime,
    },
    /// Dropped by Bernoulli random loss.
    LostRandom,
    /// Dropped by the droptail queue.
    LostQueue,
    /// No route between the address pair.
    Unroutable,
}

/// One traced datagram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PacketRecord {
    /// When the sender offered it to the network.
    pub sent: SimTime,
    /// Sending side.
    pub from: Side,
    /// Path index (`usize::MAX` when unroutable).
    pub path: usize,
    /// Wire size including per-packet overhead.
    pub size: usize,
    /// Outcome.
    pub fate: PacketFate,
}

/// A recording of every datagram offered to the network.
#[derive(Debug, Default, Clone)]
pub struct Trace {
    records: Vec<PacketRecord>,
}

impl Trace {
    /// Appends a record (called by the simulation).
    pub(crate) fn push(&mut self, record: PacketRecord) {
        self.records.push(record);
    }

    /// All records, in send order.
    pub fn records(&self) -> &[PacketRecord] {
        &self.records
    }

    /// Number of traced datagrams.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Bytes offered on `path` by `side` within `[from, to)`.
    pub fn bytes_on_path(&self, path: usize, side: Side, from: SimTime, to: SimTime) -> u64 {
        self.records
            .iter()
            .filter(|r| r.path == path && r.from == side && r.sent >= from && r.sent < to)
            .map(|r| r.size as u64)
            .sum()
    }

    /// Fraction of offered datagrams dropped on `path` (any reason).
    pub fn drop_rate(&self, path: usize) -> f64 {
        let total = self.records.iter().filter(|r| r.path == path).count();
        if total == 0 {
            return 0.0;
        }
        let dropped = self
            .records
            .iter()
            .filter(|r| r.path == path && !matches!(r.fate, PacketFate::Delivered { .. }))
            .count();
        dropped as f64 / total as f64
    }

    /// Per-path utilization samples: bytes sent by `side` in consecutive
    /// buckets of `bucket` width, up to `horizon` — ready to plot.
    pub fn utilization(
        &self,
        path: usize,
        side: Side,
        bucket: Duration,
        horizon: SimTime,
    ) -> Vec<(f64, u64)> {
        let mut out = Vec::new();
        let mut t = SimTime::ZERO;
        while t < horizon {
            let end = t + bucket;
            out.push((t.as_secs_f64(), self.bytes_on_path(path, side, t, end)));
            t = end;
        }
        out
    }

    /// Delivered one-way latency samples `(sent, latency)` for a path.
    pub fn latencies(&self, path: usize) -> Vec<(SimTime, Duration)> {
        self.records
            .iter()
            .filter(|r| r.path == path)
            .filter_map(|r| match r.fate {
                PacketFate::Delivered { arrival } => {
                    Some((r.sent, arrival.saturating_duration_since(r.sent)))
                }
                _ => None,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(sent_ms: u64, path: usize, size: usize, delivered: bool) -> PacketRecord {
        PacketRecord {
            sent: SimTime::from_millis(sent_ms),
            from: Side::A,
            path,
            size,
            fate: if delivered {
                PacketFate::Delivered {
                    arrival: SimTime::from_millis(sent_ms + 10),
                }
            } else {
                PacketFate::LostQueue
            },
        }
    }

    fn sample() -> Trace {
        let mut t = Trace::default();
        t.push(record(0, 0, 1000, true));
        t.push(record(5, 0, 1000, false));
        t.push(record(10, 1, 500, true));
        t.push(record(1500, 0, 2000, true));
        t
    }

    #[test]
    fn bytes_on_path_windows() {
        let t = sample();
        assert_eq!(
            t.bytes_on_path(0, Side::A, SimTime::ZERO, SimTime::from_secs(1)),
            2000
        );
        assert_eq!(
            t.bytes_on_path(0, Side::A, SimTime::ZERO, SimTime::from_secs(2)),
            4000
        );
        assert_eq!(
            t.bytes_on_path(1, Side::A, SimTime::ZERO, SimTime::from_secs(1)),
            500
        );
        assert_eq!(
            t.bytes_on_path(0, Side::B, SimTime::ZERO, SimTime::from_secs(2)),
            0
        );
    }

    #[test]
    fn drop_rate_per_path() {
        let t = sample();
        assert!((t.drop_rate(0) - 1.0 / 3.0).abs() < 1e-9);
        assert_eq!(t.drop_rate(1), 0.0);
        assert_eq!(t.drop_rate(9), 0.0);
    }

    #[test]
    fn utilization_buckets() {
        let t = sample();
        let u = t.utilization(0, Side::A, Duration::from_secs(1), SimTime::from_secs(2));
        assert_eq!(u.len(), 2);
        assert_eq!(u[0], (0.0, 2000));
        assert_eq!(u[1], (1.0, 2000));
    }

    #[test]
    fn latencies_only_delivered() {
        let t = sample();
        let lat = t.latencies(0);
        assert_eq!(lat.len(), 2);
        assert!(lat.iter().all(|(_, d)| *d == Duration::from_millis(10)));
    }
}
