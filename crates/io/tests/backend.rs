//! Forced-backend loopback transfers: every datapath backend
//! (DESIGN.md §17) must carry a complete QUIC transfer over real UDP.
//!
//! The three arms — io_uring, sendmmsg, portable — run sequentially in
//! one test so the process-wide default backend choice is never raced.
//! A kernel without io_uring support skips that arm with a message
//! instead of failing; the mmsg and portable arms must always
//! construct on Linux.

use mpquic_core::Config;
use mpquic_io::backend::{self, BackendChoice};
use mpquic_io::{quic_client, quic_server, transfer, BackendKind, BlockingStream, SocketRegistry};
use std::io::Read;
use std::net::SocketAddr;
use std::sync::mpsc;
use std::time::Duration;

const SIZE: usize = 256 << 10;
const OP_TIMEOUT: Duration = Duration::from_secs(60);

fn loopback0() -> SocketAddr {
    "127.0.0.1:0".parse().unwrap()
}

/// One single-path client→server transfer with the current process
/// default backend. Returns the client's backend kind/stats plus the
/// server's, so the caller can assert both ends used the forced arm.
fn run_transfer(expected: BackendKind) {
    let (addr_tx, addr_rx) = mpsc::channel();
    let (server_tx, server_rx) = mpsc::channel();

    let server = std::thread::spawn(move || {
        let driver =
            quic_server(Config::single_path(), &[loopback0()], 0xBEEF).expect("bind server");
        addr_tx.send(driver.local_addrs()[0]).expect("report addr");
        let mut stream = BlockingStream::with_timeout(driver, OP_TIMEOUT);
        stream.wait_established().expect("server handshake");
        let (header, payload) = transfer::recv_request(&mut stream).expect("receive upload");
        transfer::send_response(&mut stream, true, header.checksum).expect("send verdict");
        stream.finish().expect("finish response");
        let driver = stream.driver_mut();
        let _ = driver.run_until(Duration::from_secs(5), |t| {
            t.conn.stream_fully_acked(1) || t.conn.is_closed()
        });
        server_tx
            .send((payload, driver.backend_kind(), driver.backend_stats()))
            .expect("report outcome");
    });

    let server_addr = addr_rx
        .recv_timeout(Duration::from_secs(10))
        .expect("server came up");
    let driver = quic_client(Config::single_path(), &[loopback0()], server_addr, 0xC0FFEE)
        .expect("bind client");
    let mut stream = BlockingStream::with_timeout(driver, OP_TIMEOUT);
    stream.wait_established().expect("client handshake");

    let data = transfer::pattern(SIZE);
    transfer::send_request(&mut stream, "backend.bin", &data).expect("send upload");
    stream.finish().expect("finish upload");
    let (verified, checksum) = transfer::recv_response(&mut stream).expect("read verdict");
    assert!(
        verified,
        "{expected:?}: server reported a checksum mismatch"
    );
    assert_eq!(checksum, transfer::fnv1a64(&data));

    let mut sink = Vec::new();
    stream.read_to_end(&mut sink).expect("drain to EOF");
    let mut driver = stream.into_driver();
    driver.connection_mut().close(0, "transfer complete");
    let _ = driver.run_for(Duration::from_millis(100));

    let (payload, server_kind, server_stats) = server_rx
        .recv_timeout(Duration::from_secs(30))
        .expect("server delivered payload");
    server.join().expect("server thread clean exit");

    assert_eq!(payload, data, "{expected:?}: payload reassembled exactly");
    assert_eq!(
        driver.backend_kind(),
        expected,
        "client kept the forced backend"
    );
    assert_eq!(server_kind, expected, "server kept the forced backend");
    let client_stats = driver.backend_stats();
    assert!(
        client_stats.submissions > 0 && client_stats.completions > 0,
        "{expected:?}: client backend saw no traffic: {client_stats:?}"
    );
    assert!(
        server_stats.submissions > 0 && server_stats.completions > 0,
        "{expected:?}: server backend saw no traffic: {server_stats:?}"
    );
    assert_eq!(
        client_stats.fallbacks, 0,
        "{expected:?}: a forced arm must not fall down the ladder mid-transfer"
    );
}

#[test]
fn every_backend_carries_a_loopback_transfer() {
    let arms = [
        (BackendChoice::Uring, BackendKind::Uring),
        (BackendChoice::Mmsg, BackendKind::Mmsg),
        (BackendChoice::Portable, BackendKind::Portable),
    ];
    for (choice, kind) in arms {
        // Probe with a throwaway registry first: a kernel without
        // io_uring skips that arm instead of failing the test.
        if let Err(e) = SocketRegistry::bind_with(&[loopback0()], choice) {
            #[cfg(target_os = "linux")]
            assert!(
                matches!(choice, BackendChoice::Uring),
                "{choice} must always construct on Linux: {e}"
            );
            eprintln!("skipping {choice} arm: this kernel lacks it ({e})");
            continue;
        }
        backend::set_default_choice(choice);
        run_transfer(kind);
    }
    backend::set_default_choice(BackendChoice::Auto);
}
