//! Model-checked protocol tests for the sharded endpoint's
//! cross-thread seams (build with `RUSTFLAGS="--cfg loom"`).
//!
//! Each test drives the **production** demux/shard protocol code —
//! [`DemuxCore::route`]/[`DemuxCore::drain_ctl`] on one side,
//! [`drain_shard_ingress`]/[`flush_shard_ingress`] on the other,
//! talking over the same `mpquic_util::sync` channels the endpoint
//! threads use — under `mpquic_util::model`'s exhaustive interleaving
//! explorer. The properties checked are the ones a single lucky
//! `cargo test` schedule cannot establish:
//!
//! * **buffer lifecycle** — every pool buffer loaned to a shard queue
//!   comes back exactly once, on every schedule, including shutdown
//!   and backpressure-drop paths (no leak, no double recycle);
//! * **close accounting** — `accepted == closed + active` survives
//!   every interleaving of accept, retire, and teardown;
//! * **no lost wakeup** — the yield-first idle ladder (`workers=1`
//!   regression, PR 6) always observes a racing ingress datagram.

#![cfg(loom)]

use mpquic_core::Config;
use mpquic_io::socket::RecvMeta;
use mpquic_io::{
    drain_shard_ingress, flush_shard_ingress, Backoff, ConnApp, DemuxCore, DemuxCtl, EndpointPlane,
    QuicTransport, ShardMsg, ShardSink, TransferApp,
};
use mpquic_util::model;
use mpquic_util::sync::atomic::{AtomicBool, Ordering};
use mpquic_util::sync::mpsc::{channel, sync_channel, Receiver, Sender};
use mpquic_util::sync::Arc;
use std::net::SocketAddr;

fn addr(port: u16) -> SocketAddr {
    SocketAddr::from(([127, 0, 0, 1], port))
}

/// A datagram `PublicHeader::connection_id_of` routes to `cid`: fixed
/// bit set, reserved bits clear, CID big-endian in bytes 1..9.
fn datagram(cid: u64) -> Vec<u8> {
    let mut d = vec![0u8; 16];
    d[0] = 0x40;
    d[1..9].copy_from_slice(&cid.to_be_bytes());
    d
}

fn meta_for(payload: &[u8]) -> RecvMeta {
    RecvMeta {
        local: addr(1000),
        remote: addr(2000),
        len: payload.len(),
    }
}

fn demux_core(
    shard_txs: Vec<mpquic_util::sync::mpsc::SyncSender<ShardMsg>>,
) -> (DemuxCore, Arc<EndpointPlane>) {
    let plane = Arc::new(EndpointPlane::new(shard_txs.len()));
    let config = Config::builder().single_path().build().expect("config");
    let core = DemuxCore::new(
        config,
        7,
        vec![addr(1000)],
        Box::new(|_cid| Box::new(TransferApp::new())),
        shard_txs,
        Arc::clone(&plane),
    );
    (core, plane)
}

/// Shard-side protocol double: records what arrived, drops the
/// transports (connection processing is covered by the std tests; the
/// model checks the channel protocol around it).
#[derive(Default)]
struct RecordingSink {
    accepted: Vec<u64>,
    delivered: usize,
}

impl ShardSink for RecordingSink {
    fn accept(&mut self, cid: u64, _t: Box<QuicTransport>, _a: Box<dyn ConnApp>) {
        self.accepted.push(cid);
    }

    fn deliver(&mut self, _cid: u64, _meta: &RecvMeta, _payload: &[u8]) {
        self.delivered += 1;
    }
}

/// The shard thread body the models run: the production ingress drain
/// in the production loop shape (drain → stop check → yield), then
/// the production shutdown path (retire owned connections, flush the
/// queue) on exit.
fn model_shard(
    rx: Receiver<ShardMsg>,
    ctl: Sender<DemuxCtl>,
    stop: Arc<AtomicBool>,
) -> RecordingSink {
    let mut sink = RecordingSink::default();
    loop {
        let drained = drain_shard_ingress(&rx, &ctl, &mut sink, 16);
        if drained.disconnected {
            break;
        }
        // As in `run_shard`: once the stop flag is observed the loop
        // exits; anything still queued (a datagram racing the flag) is
        // handed to the flush below, which recycles its buffer without
        // delivering it.
        if stop.load(Ordering::Acquire) && !drained.progressed {
            break;
        }
        if !drained.progressed {
            mpquic_util::sync::thread::yield_now();
        }
    }
    for &cid in &sink.accepted {
        let _ = ctl.send(DemuxCtl::Retire { cid });
    }
    flush_shard_ingress(&rx, &ctl);
    sink
}

/// Ingress-channel + buffer-return + close-accounting protocol: one
/// accepted connection, two routed datagrams, a clean retire. On every
/// interleaving every buffer is recycled exactly once and the counters
/// balance to `accepted == closed`, `active == 0`.
#[test]
fn ingress_accept_retire_accounting_holds_on_every_interleaving() {
    model::run(|| {
        let (tx, rx) = sync_channel::<ShardMsg>(4);
        let (ctl_tx, ctl_rx) = channel::<DemuxCtl>();
        let (mut core, plane) = demux_core(vec![tx]);
        let stop = Arc::new(AtomicBool::new(false));

        let shard = {
            let stop = Arc::clone(&stop);
            model::thread::spawn(move || model_shard(rx, ctl_tx, stop))
        };

        let cid = 0xAB;
        let d = datagram(cid);
        core.route(meta_for(&d), &d);
        core.route(meta_for(&d), &d);
        // Quiesce before stopping: block until every loaned buffer is
        // back (the shard returns each only after delivering it), so
        // this test asserts the delivery guarantee of a *running*
        // endpoint. The stop-races-ingress case — where an undelivered
        // message is legitimately flushed instead — is the shutdown
        // test's subject.
        while core.outstanding_buffers() > 0 {
            core.apply_ctl(ctl_rx.recv().expect("shard alive"));
        }
        stop.store(true, Ordering::Release);

        let sink = shard.join().expect("shard thread");
        // Shard exited: everything it sent is in the control queue.
        core.drain_ctl(&ctl_rx);

        assert_eq!(sink.accepted, vec![cid]);
        assert_eq!(sink.delivered, 2, "both datagrams reached the shard");
        let snap = plane.stats.snapshot();
        assert_eq!(snap.accepted, 1);
        assert_eq!(snap.closed, 1, "retire must reach the accounting");
        assert_eq!(snap.active, 0);
        assert_eq!(snap.backpressure_drops, 0, "queue depth 4 never fills");
        assert_eq!(
            core.outstanding_buffers(),
            0,
            "every loaned buffer recycled exactly once"
        );
        drop(core); // BufferPool's drop re-asserts the leak check.
    });
}

/// Backpressure path: a depth-1 queue forces schedule-dependent
/// `try_send` failures. Dropped or delivered, every datagram's buffer
/// is back in the pool at quiescence, and drops are counted exactly.
#[test]
fn backpressure_drops_recycle_buffers_on_every_interleaving() {
    model::run(|| {
        let (tx, rx) = sync_channel::<ShardMsg>(1);
        let (ctl_tx, ctl_rx) = channel::<DemuxCtl>();
        let (mut core, plane) = demux_core(vec![tx]);
        let stop = Arc::new(AtomicBool::new(false));

        let shard = {
            let stop = Arc::clone(&stop);
            model::thread::spawn(move || model_shard(rx, ctl_tx, stop))
        };

        let cid = 0xCD;
        let d = datagram(cid);
        // Accept fills the depth-1 queue; each datagram then either
        // squeezes in (shard drained in time) or drops.
        core.route(meta_for(&d), &d);
        core.route(meta_for(&d), &d);
        // Quiesce before stopping (see the ingress test): a queued
        // datagram's buffer stays outstanding until the shard returns
        // it, so after this loop each datagram is fully delivered or
        // was drop-counted at try_send time — the stop flag cannot
        // strand a third state.
        while core.outstanding_buffers() > 0 {
            core.apply_ctl(ctl_rx.recv().expect("shard alive"));
        }
        stop.store(true, Ordering::Release);

        let sink = shard.join().expect("shard thread");
        core.drain_ctl(&ctl_rx);

        let snap = plane.stats.snapshot();
        assert_eq!(snap.accepted, 1, "the queue is empty at accept time");
        assert_eq!(
            sink.delivered as u64 + snap.backpressure_drops,
            2,
            "each datagram was delivered or counted as dropped, never both"
        );
        assert_eq!(snap.closed, 1);
        assert_eq!(snap.active, 0);
        assert_eq!(core.outstanding_buffers(), 0, "drops recycle immediately");
        drop(core);
    });
}

/// Shutdown teardown protocol: the demux stops routing, raises the
/// stop flag, and drains the control channel to disconnect
/// ([`DemuxCore::finish`]) while the shard races its own stop check,
/// retire-and-flush. No interleaving leaks a buffer or strands the
/// accounting: `accepted == closed + active` at quiescence.
#[test]
fn shutdown_drain_leaks_nothing_on_every_interleaving() {
    model::run(|| {
        let (tx, rx) = sync_channel::<ShardMsg>(4);
        let (ctl_tx, ctl_rx) = channel::<DemuxCtl>();
        let (mut core, plane) = demux_core(vec![tx]);
        let stop = Arc::new(AtomicBool::new(false));

        let shard = {
            let stop = Arc::clone(&stop);
            model::thread::spawn(move || model_shard(rx, ctl_tx, stop))
        };

        let cid = 0xEF;
        let d = datagram(cid);
        core.route(meta_for(&d), &d);
        core.route(meta_for(&d), &d);
        // Shut down immediately: the shard may not have drained
        // anything yet — its flush and the demux's blocking
        // drain-to-disconnect must still account for every message.
        stop.store(true, Ordering::Release);
        core.finish(&ctl_rx); // asserts the pool drained internally

        shard.join().expect("shard thread");
        let snap = plane.stats.snapshot();
        assert_eq!(snap.accepted, 1);
        assert_eq!(
            snap.accepted,
            snap.closed + snap.active,
            "teardown stranded the close accounting: {snap:?}"
        );
        assert_eq!(snap.closed, 1, "shutdown retires queued or owned accepts");
    });
}

/// PR 6 `workers=1` regression: the unified loop's yield-first idle
/// ladder ([`Backoff::yielding`]) races an ingress burst and a stop
/// request. No interleaving may lose a wakeup — after the stop flag is
/// observed, one final drain sees every message sent before it.
#[test]
fn yield_first_idle_ladder_never_loses_a_wakeup() {
    model::run(|| {
        let (tx, rx) = channel::<u32>();
        let stop = Arc::new(AtomicBool::new(false));

        let producer = {
            let stop = Arc::clone(&stop);
            model::thread::spawn(move || {
                tx.send(1).expect("consumer alive");
                tx.send(2).expect("consumer alive");
                // Release pairs with the consumer's Acquire: both
                // sends happen-before the flag.
                stop.store(true, Ordering::Release);
            })
        };

        // The unified-loop shape: drain, stop check, graduated idle
        // wait. On a single core the ladder starts at the yield stage.
        let mut backoff = Backoff::yielding();
        let mut got = 0;
        loop {
            let mut progressed = false;
            while rx.try_recv().is_ok() {
                got += 1;
                progressed = true;
            }
            if stop.load(Ordering::Acquire) {
                break;
            }
            if progressed {
                backoff.reset();
            } else {
                backoff.wait();
            }
        }
        // Final drain after stop, as the teardown path does.
        while rx.try_recv().is_ok() {
            got += 1;
        }
        assert_eq!(got, 2, "a datagram racing the idle park was lost");
        producer.join().expect("producer");
    });
}
