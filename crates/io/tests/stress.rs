//! Accept/close churn stress for the sharded endpoint — the
//! sanitizer-facing companion to the model-checked protocol tests
//! (`tests/loom.rs`).
//!
//! Where the loom models explore every interleaving of a *small*
//! protocol instance, this test hammers the real thing: waves of
//! concurrent clients handshake, transfer, and close against one
//! `Endpoint`, exercising the accept handoff, the buffer-return path,
//! CID retirement/tombstoning, and the teardown drain under genuine
//! thread concurrency. On its own it is a smoke test; under
//! ThreadSanitizer (CI job `tsan`, see DESIGN.md §14) every data race
//! in the churned paths is a hard failure.
//!
//! `#[ignore]` by default: it opens dozens of real sockets and runs for
//! seconds. Run with `cargo test -p mpquic-io --test stress -- --ignored`.

use mpquic_core::Config;
use mpquic_io::{quic_client, transfer, BlockingStream, Endpoint, TransferApp};
use std::net::SocketAddr;
use std::time::{Duration, Instant};

const OP_TIMEOUT: Duration = Duration::from_secs(60);

fn loopback0() -> SocketAddr {
    "127.0.0.1:0".parse().unwrap()
}

/// Payload whose bytes depend on `tag`, so checksum collisions between
/// concurrent clients cannot mask cross-connection delivery bugs.
fn distinct_payload(tag: u64, size: usize) -> Vec<u8> {
    (0..size)
        .map(|i| {
            ((i as u64)
                .wrapping_mul(31)
                .wrapping_add(tag.wrapping_mul(17))) as u8
        })
        .collect()
}

/// One handshake → upload → verify → close cycle against the endpoint.
fn churn_client(server: SocketAddr, seed: u64, payload: &[u8]) {
    let config = Config::builder()
        .single_path()
        .build()
        .expect("client config");
    let driver = quic_client(config, &[loopback0()], server, seed).expect("client bind");
    let mut stream = BlockingStream::with_timeout(driver, OP_TIMEOUT);
    stream.wait_established().expect("handshake");

    let checksum = transfer::fnv1a64(payload);
    transfer::send_request(&mut stream, "churn.bin", payload).expect("send");
    stream.finish().expect("finish");
    let (ok, server_checksum) = transfer::recv_response(&mut stream).expect("verdict");
    assert!(ok, "server failed to verify the transfer (seed {seed})");
    assert_eq!(
        server_checksum, checksum,
        "cross-connection bytes (seed {seed})"
    );

    let driver = stream.driver_mut();
    driver.connection_mut().close(0, "churn done");
    let _ = driver.run_until(Duration::from_millis(50), |t| t.conn.is_closed());
}

/// Waves of concurrent connect/transfer/close churn. Each wave fully
/// drains before the next starts, so the same accept slots and pool
/// buffers are reused wave after wave — the recycling paths, not just
/// the steady state, carry the load.
#[test]
#[ignore = "sanitizer workload: seconds of real-socket churn; run with -- --ignored"]
fn accept_close_churn_is_race_free() {
    const WAVES: usize = 3;
    const CLIENTS_PER_WAVE: usize = 4;

    let config = Config::builder()
        .single_path()
        .max_incoming_connections(CLIENTS_PER_WAVE)
        .worker_shards(2)
        .build()
        .expect("server config");
    let endpoint = Endpoint::bind(
        &[loopback0()],
        config,
        0x57E55,
        Box::new(|_cid| Box::new(TransferApp::new())),
    )
    .expect("bind endpoint");
    let server = endpoint.local_addrs()[0];

    for wave in 0..WAVES {
        let clients: Vec<_> = (0..CLIENTS_PER_WAVE)
            .map(|i| {
                let tag = (wave * CLIENTS_PER_WAVE + i) as u64;
                std::thread::spawn(move || {
                    let payload = distinct_payload(tag, 8 * 1024 + (tag as usize) * 512);
                    churn_client(server, 0x5EED_0000 + tag, &payload);
                })
            })
            .collect();
        for client in clients {
            client.join().expect("client thread");
        }
        // Let the wave's closes retire server-side before reusing the
        // accept slots: the endpoint only frees a slot once the shard's
        // Retire reaches the demux accounting.
        let deadline = Instant::now() + OP_TIMEOUT;
        let target = ((wave + 1) * CLIENTS_PER_WAVE) as u64;
        while endpoint.stats().completed < target && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(
            endpoint.stats().completed,
            target,
            "wave {wave} did not fully complete server-side"
        );
    }

    let report = endpoint.shutdown();
    let total = (WAVES * CLIENTS_PER_WAVE) as u64;
    assert_eq!(
        report.totals.accepted, total,
        "every churned client accepted"
    );
    assert_eq!(report.totals.completed, total, "every transfer verified");
    assert_eq!(report.totals.failed, 0, "no transfer failed verification");
    assert_eq!(
        report.totals.accepted,
        report.totals.closed + report.totals.active,
        "close accounting balances after churn: {:?}",
        report.totals
    );
}
