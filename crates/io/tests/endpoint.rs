//! Multi-connection endpoint integration: demux correctness over real
//! sockets.
//!
//! These tests are the acceptance gate for the sharded endpoint
//! (DESIGN.md §12): several concurrent clients transfer *distinct*
//! payloads through one `Endpoint` and each gets exactly its own file
//! verified back (per-CID stream isolation); datagrams with unknown
//! connection IDs beyond `--max-conns` are dropped and counted; the
//! CID-hash shard assignment is stable and balanced over random CIDs;
//! and one `mpq-server` *process* completes eight concurrent
//! `mpq-client` transfers.

use mpquic_core::Config;
use mpquic_io::{quic_client, shard_for_cid, transfer, BlockingStream, Endpoint, TransferApp};
use mpquic_util::DetRng;
use std::io::{BufRead, BufReader};
use std::net::SocketAddr;
use std::time::{Duration, Instant};

const OP_TIMEOUT: Duration = Duration::from_secs(60);

fn loopback0() -> SocketAddr {
    "127.0.0.1:0".parse().unwrap()
}

/// A per-client payload no other client sends: content depends on `tag`,
/// so two clients' checksums never collide by construction.
fn distinct_payload(tag: u64, size: usize) -> Vec<u8> {
    (0..size)
        .map(|i| {
            ((i as u64)
                .wrapping_mul(31)
                .wrapping_add(tag.wrapping_mul(17))) as u8
        })
        .collect()
}

/// One complete client transfer against a running endpoint: handshake,
/// upload `payload`, and assert the server's verdict echoes *our*
/// checksum — the isolation proof. Closes cleanly so the server retires
/// the connection promptly.
fn run_client(server: SocketAddr, seed: u64, payload: &[u8]) {
    let config = Config::builder()
        .single_path()
        .build()
        .expect("client config");
    let driver = quic_client(config, &[loopback0()], server, seed).expect("client bind");
    let mut stream = BlockingStream::with_timeout(driver, OP_TIMEOUT);
    stream.wait_established().expect("handshake");

    let checksum = transfer::fnv1a64(payload);
    transfer::send_request(&mut stream, "mine.bin", payload).expect("send");
    stream.finish().expect("finish");
    let (ok, server_checksum) = transfer::recv_response(&mut stream).expect("verdict");
    assert!(ok, "server failed to verify the transfer");
    assert_eq!(
        server_checksum, checksum,
        "server verified someone else's bytes (seed {seed})"
    );

    let driver = stream.driver_mut();
    driver.connection_mut().close(0, "transfer complete");
    let _ = driver.run_until(Duration::from_millis(50), |t| t.conn.is_closed());
}

#[test]
fn concurrent_clients_get_their_own_files_back() {
    const CLIENTS: usize = 3;
    let config = Config::builder()
        .single_path()
        .max_incoming_connections(CLIENTS)
        .worker_shards(2)
        .build()
        .expect("server config");
    let endpoint = Endpoint::bind(
        &[loopback0()],
        config,
        0x15011,
        Box::new(|_cid| Box::new(TransferApp::new())),
    )
    .expect("bind endpoint");
    let server = endpoint.local_addrs()[0];

    let clients: Vec<_> = (0..CLIENTS)
        .map(|i| {
            std::thread::spawn(move || {
                // Distinct seed (→ distinct CID) and distinct payload
                // (→ distinct checksum) per client.
                let payload = distinct_payload(i as u64, 24 * 1024 + i * 8 * 1024);
                run_client(server, 0xC0DE + i as u64, &payload);
            })
        })
        .collect();
    for client in clients {
        client.join().expect("client thread");
    }

    // Every transfer completed server-side too, and the accept path saw
    // exactly one connection per client.
    let deadline = Instant::now() + OP_TIMEOUT;
    while (endpoint.stats().completed as usize) < CLIENTS && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    let report = endpoint.shutdown();
    assert_eq!(report.totals.accepted as usize, CLIENTS);
    assert_eq!(report.totals.completed as usize, CLIENTS);
    assert_eq!(report.totals.failed, 0, "no transfer failed verification");
    assert_eq!(report.totals.rejected, 0, "accept limit never hit");
    let served: u64 = report.shards.iter().map(|s| s.conns_served).sum();
    assert_eq!(served as usize, CLIENTS, "shards served every connection");
}

#[test]
fn clients_beyond_the_accept_limit_are_rejected_and_counted() {
    let config = Config::builder()
        .single_path()
        .max_incoming_connections(1)
        .worker_shards(1)
        .build()
        .expect("server config");
    let endpoint = Endpoint::bind(
        &[loopback0()],
        config,
        0x7E57,
        Box::new(|_cid| Box::new(TransferApp::new())),
    )
    .expect("bind endpoint");
    let server = endpoint.local_addrs()[0];

    // First client takes the only slot and holds it.
    let holder = quic_client(
        Config::builder().single_path().build().expect("config"),
        &[loopback0()],
        server,
        0xAAAA,
    )
    .expect("holder bind");
    let mut holder = BlockingStream::with_timeout(holder, OP_TIMEOUT);
    holder.wait_established().expect("holder handshake");
    assert_eq!(endpoint.stats().accepted, 1);

    // Second client's unknown CID arrives past the limit: every one of
    // its datagrams is dropped and counted, so its handshake times out.
    let rejected = quic_client(
        Config::builder().single_path().build().expect("config"),
        &[loopback0()],
        server,
        0xBBBB,
    )
    .expect("rejected bind");
    let mut rejected = BlockingStream::with_timeout(rejected, Duration::from_millis(700));
    assert!(
        rejected.wait_established().is_err(),
        "second connection must not get through a --max-conns 1 endpoint"
    );
    assert!(
        endpoint.stats().rejected >= 1,
        "rejected datagrams were counted: {:?}",
        endpoint.stats()
    );

    let driver = holder.driver_mut();
    driver.connection_mut().close(0, "done");
    let _ = driver.run_until(Duration::from_millis(50), |t| t.conn.is_closed());
    let report = endpoint.shutdown();
    assert_eq!(report.totals.accepted, 1, "only the holder was accepted");
    assert!(report.totals.rejected >= 1);
}

/// Property test over the repo's deterministic RNG: shard assignment is
/// a pure function of the CID (stable) and spreads uniformly random
/// CIDs evenly (balanced) — every shard receives at least half and at
/// most twice its fair share.
#[test]
fn shard_assignment_is_stable_and_balanced_over_random_cids() {
    const CIDS: u64 = 4_000;
    let mut rng = DetRng::new(0x51A4D);
    for shards in [1usize, 2, 3, 4, 8] {
        let mut counts = vec![0u64; shards];
        for _ in 0..CIDS {
            let cid = rng.next_u64();
            let shard = shard_for_cid(cid, shards);
            assert!(shard < shards, "assignment in range");
            assert_eq!(
                shard,
                shard_for_cid(cid, shards),
                "assignment is stable for cid {cid:#x}"
            );
            counts[shard] += 1;
        }
        let fair = CIDS / shards as u64;
        for (shard, &count) in counts.iter().enumerate() {
            assert!(
                count >= fair / 2 && count <= fair * 2,
                "shard {shard} of {shards} got {count} of {CIDS} \
                 (fair share {fair}): {counts:?}"
            );
        }
    }
}

/// The acceptance run: one `mpq-server` process serves eight concurrent
/// `mpq-client` processes, every transfer verifies, and the server
/// exits cleanly once all eight are done.
#[test]
fn one_server_process_completes_eight_concurrent_client_transfers() {
    const CLIENTS: usize = 8;
    let mut server = std::process::Command::new(env!("CARGO_BIN_EXE_mpq-server"))
        .args([
            "--listen",
            "127.0.0.1:0",
            "--single-path",
            "--max-conns",
            "8",
            "--workers",
            "4",
            "--timeout",
            "120",
        ])
        .stdout(std::process::Stdio::piped())
        .spawn()
        .expect("spawn mpq-server");

    // The server prints `listening on [127.0.0.1:PORT] (...)` once its
    // sockets are bound; the port is all the clients need.
    let stdout = server.stdout.take().expect("server stdout piped");
    let mut lines = BufReader::new(stdout).lines();
    let addr: SocketAddr = loop {
        let line = lines
            .next()
            .expect("server printed its listen line")
            .expect("read server stdout");
        if let Some(rest) = line.strip_prefix("listening on [") {
            let addr = rest.split(']').next().expect("closing bracket");
            break addr.parse().expect("listen address parses");
        }
    };
    // Keep draining stdout so the server never blocks on a full pipe.
    let drain = std::thread::spawn(move || {
        let mut tail = Vec::new();
        for line in lines.map_while(Result::ok) {
            tail.push(line);
        }
        tail
    });

    let clients: Vec<_> = (0..CLIENTS)
        .map(|i| {
            std::process::Command::new(env!("CARGO_BIN_EXE_mpq-client"))
                .args([
                    "--connect",
                    &addr.to_string(),
                    "--single-path",
                    "--size",
                    "64k",
                    "--seed",
                    &(0xD1A1 + i as u64).to_string(),
                    "--timeout",
                    "90",
                ])
                .stdout(std::process::Stdio::null())
                .spawn()
                .expect("spawn mpq-client")
        })
        .collect();

    for (i, mut client) in clients.into_iter().enumerate() {
        let status = client.wait().expect("wait for client");
        assert!(status.success(), "client {i} failed: {status}");
    }
    let status = server.wait().expect("wait for server");
    let tail = drain.join().expect("drain thread");
    assert!(
        status.success(),
        "server exited with {status}; report:\n{}",
        tail.join("\n")
    );
    let report = tail.join("\n");
    assert!(
        report.contains("8 completed"),
        "server report counts all eight transfers:\n{report}"
    );
}
