//! Steady-state zero-allocation checks for the batched datapath — both
//! directions.
//!
//! DESIGN.md §11 claims that after warm-up the send/receive cycle
//! performs no heap allocation: sendmmsg scratch arrays, the receive
//! batch buffers and the address-decoding scratch all reach their
//! high-water capacity and are reused. The first test installs the
//! counting global allocator from `mpquic_util::alloc_count`, runs a
//! registry-to-registry loopback exchange, resets the counters once the
//! path is warm, and asserts the remaining rounds allocate nothing.
//!
//! The second test covers the **ingress/ACK side**: loss recovery's ACK
//! processing (`Recovery::on_ack`) collects packet numbers and acked
//! frames into buffers reused across ACKs (returned via
//! `Recovery::reclaim`), so acknowledging a full flight allocates
//! nothing at steady state either.

use bytes::Bytes;
use mpquic_core::recovery::{Recovery, SentPacket};
use mpquic_core::rtt::RttEstimator;
use mpquic_io::{BackendChoice, BackendKind, RecvBatch, SocketRegistry};
use mpquic_util::alloc_count::{self, CountingAlloc};
use mpquic_util::SimTime;
use mpquic_wire::{Frame, StreamFrame};
use std::net::SocketAddr;
use std::time::Duration;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

const WARMUP_ROUNDS: usize = 10;
const MEASURED_ROUNDS: usize = 40;
const SEGMENT: usize = 1200;
const SEGMENTS_PER_TRAIN: usize = 8;

fn loopback0() -> SocketAddr {
    "127.0.0.1:0".parse().unwrap()
}

/// One round: A fans an 8-segment train out to B, then B drains its
/// socket with batched receives until the train has fully arrived.
fn round(
    a: &mut SocketRegistry,
    a_local: SocketAddr,
    b: &mut SocketRegistry,
    b_local: SocketAddr,
    payload: &[u8],
    batch: &mut RecvBatch,
) -> usize {
    let sent = a
        .send_train(a_local, b_local, payload, Some(SEGMENT))
        .expect("loopback send");
    let mut received = 0;
    let mut spins = 0;
    while received < sent {
        let got = b.poll_recv_batch(batch).expect("loopback recv");
        received += got;
        if got == 0 {
            spins += 1;
            assert!(spins < 10_000, "train never arrived on loopback");
            std::thread::yield_now();
        }
    }
    received
}

#[test]
fn steady_state_datapath_does_not_allocate() {
    let mut a = SocketRegistry::bind(&[loopback0()]).expect("bind a");
    let mut b = SocketRegistry::bind(&[loopback0()]).expect("bind b");
    let a_local = a.local_addrs()[0];
    let b_local = b.local_addrs()[0];

    let payload = vec![0x5au8; SEGMENT * SEGMENTS_PER_TRAIN];
    let mut batch = RecvBatch::new(64);

    for _ in 0..WARMUP_ROUNDS {
        round(&mut a, a_local, &mut b, b_local, &payload, &mut batch);
    }

    alloc_count::reset_thread_counts();
    let mut datagrams = 0;
    for _ in 0..MEASURED_ROUNDS {
        datagrams += round(&mut a, a_local, &mut b, b_local, &payload, &mut batch);
    }
    let counts = alloc_count::thread_counts();

    assert_eq!(datagrams, MEASURED_ROUNDS * SEGMENTS_PER_TRAIN);
    assert_eq!(
        counts.allocs, 0,
        "steady-state datapath allocated: {counts:?} over {MEASURED_ROUNDS} \
         rounds ({datagrams} datagrams)"
    );

    // On Linux the rounds above must actually have batched: one sendmmsg
    // per 8-segment train, and multi-datagram receives.
    #[cfg(target_os = "linux")]
    {
        let stats = a.batch_stats();
        assert!(
            stats.syscalls_saved > 0,
            "no syscalls saved on the send side: {stats:?}"
        );
        assert_eq!(stats.send_batch_size.max(), SEGMENTS_PER_TRAIN as u64);
        let recv = b.batch_stats();
        assert!(
            recv.recv_batch_size.max() >= 1,
            "receive side recorded no batches: {recv:?}"
        );
    }
}

/// The io_uring backend makes the same promise (DESIGN.md §17): after
/// warm-up its SQE staging arrays, registered-buffer slab and receive
/// slots are all at high-water capacity, so the send/receive cycle
/// allocates nothing. Skips (with a message) on kernels without
/// io_uring.
#[test]
fn steady_state_uring_datapath_does_not_allocate() {
    let uring = BackendChoice::Uring;
    let (mut a, mut b) = match (
        SocketRegistry::bind_with(&[loopback0()], uring),
        SocketRegistry::bind_with(&[loopback0()], uring),
    ) {
        (Ok(a), Ok(b)) => (a, b),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("skipping uring zero-alloc check: this kernel lacks io_uring ({e})");
            return;
        }
    };
    assert_eq!(a.backend_kind(), BackendKind::Uring);
    let a_local = a.local_addrs()[0];
    let b_local = b.local_addrs()[0];

    let payload = vec![0x5au8; SEGMENT * SEGMENTS_PER_TRAIN];
    let mut batch = RecvBatch::new(64);

    for _ in 0..WARMUP_ROUNDS {
        round(&mut a, a_local, &mut b, b_local, &payload, &mut batch);
    }

    alloc_count::reset_thread_counts();
    let mut datagrams = 0;
    for _ in 0..MEASURED_ROUNDS {
        datagrams += round(&mut a, a_local, &mut b, b_local, &payload, &mut batch);
    }
    let counts = alloc_count::thread_counts();

    assert_eq!(datagrams, MEASURED_ROUNDS * SEGMENTS_PER_TRAIN);
    assert_eq!(
        counts.allocs, 0,
        "steady-state uring datapath allocated: {counts:?} over {MEASURED_ROUNDS} \
         rounds ({datagrams} datagrams)"
    );
    // The rounds really went through the ring, and a forced arm never
    // fell down the ladder.
    let stats = a.backend_stats();
    assert!(
        stats.submissions > 0,
        "send side submitted no SQEs: {stats:?}"
    );
    assert_eq!(stats.fallbacks, 0, "forced uring arm fell back: {stats:?}");
    assert_eq!(a.backend_kind(), BackendKind::Uring);
    assert_eq!(b.backend_kind(), BackendKind::Uring);
}

const ACK_WARMUP_ROUNDS: usize = 10;
const ACK_MEASURED_ROUNDS: usize = 40;
const PACKETS_PER_FLIGHT: u64 = 8;

/// Steady-state ACK processing allocates nothing: the packet-number
/// scratch and the acked-frames buffer both reach their high-water
/// capacity during warm-up and are reused for every later ACK. Sending
/// (the unmeasured half of each round) still allocates — sent-map nodes
/// and per-packet frame vectors — which is exactly why the measurement
/// brackets only `on_ack` + `reclaim`.
#[test]
fn steady_state_ack_processing_does_not_allocate() {
    let mut recovery = Recovery::new();
    let mut rtt = RttEstimator::new(Duration::from_millis(50));
    let mut now = SimTime::ZERO;
    // One shared payload; per-frame clones are refcount bumps.
    let data = Bytes::from(vec![0x5au8; 1200]);

    for round in 0..(ACK_WARMUP_ROUNDS + ACK_MEASURED_ROUNDS) {
        // Unmeasured: put a flight of stream-bearing packets on the wire.
        let first = recovery.next_pn_peek();
        for _ in 0..PACKETS_PER_FLIGHT {
            let pn = recovery.next_packet_number();
            recovery.on_packet_sent(SentPacket {
                packet_number: pn,
                time_sent: now,
                size: 1250,
                ack_eliciting: true,
                frames: vec![Frame::Stream(StreamFrame {
                    stream_id: 1,
                    offset: pn * 1200,
                    data: data.clone(),
                    fin: false,
                })],
            });
        }
        now += Duration::from_millis(5);

        // Measured: the peer acknowledges the whole flight in one range.
        let last = first + PACKETS_PER_FLIGHT - 1;
        alloc_count::reset_thread_counts();
        let outcome = recovery.on_ack(
            now,
            std::iter::once((first, last)),
            Duration::ZERO,
            &mut rtt,
        );
        recovery.reclaim(outcome);
        let counts = alloc_count::thread_counts();

        assert_eq!(recovery.outstanding_packets(), 0, "flight fully acked");
        assert_eq!(recovery.bytes_in_flight(), 0);
        if round >= ACK_WARMUP_ROUNDS {
            assert_eq!(
                counts.allocs, 0,
                "ACK processing allocated in round {round}: {counts:?}"
            );
        }
    }
}
