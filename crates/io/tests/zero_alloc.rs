//! Steady-state zero-allocation check for the batched socket datapath.
//!
//! DESIGN.md §11 claims that after warm-up the send/receive cycle
//! performs no heap allocation: sendmmsg scratch arrays, the receive
//! batch buffers and the address-decoding scratch all reach their
//! high-water capacity and are reused. This test installs the counting
//! global allocator from `mpquic_util::alloc_count`, runs a
//! registry-to-registry loopback exchange, resets the counters once the
//! path is warm, and asserts the remaining rounds allocate nothing.

use mpquic_io::{RecvBatch, SocketRegistry};
use mpquic_util::alloc_count::{self, CountingAlloc};
use std::net::SocketAddr;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

const WARMUP_ROUNDS: usize = 10;
const MEASURED_ROUNDS: usize = 40;
const SEGMENT: usize = 1200;
const SEGMENTS_PER_TRAIN: usize = 8;

fn loopback0() -> SocketAddr {
    "127.0.0.1:0".parse().unwrap()
}

/// One round: A fans an 8-segment train out to B, then B drains its
/// socket with batched receives until the train has fully arrived.
fn round(
    a: &mut SocketRegistry,
    a_local: SocketAddr,
    b: &mut SocketRegistry,
    b_local: SocketAddr,
    payload: &[u8],
    batch: &mut RecvBatch,
) -> usize {
    let sent = a
        .send_train(a_local, b_local, payload, Some(SEGMENT))
        .expect("loopback send");
    let mut received = 0;
    let mut spins = 0;
    while received < sent {
        let got = b.poll_recv_batch(batch).expect("loopback recv");
        received += got;
        if got == 0 {
            spins += 1;
            assert!(spins < 10_000, "train never arrived on loopback");
            std::thread::yield_now();
        }
    }
    received
}

#[test]
fn steady_state_datapath_does_not_allocate() {
    let mut a = SocketRegistry::bind(&[loopback0()]).expect("bind a");
    let mut b = SocketRegistry::bind(&[loopback0()]).expect("bind b");
    let a_local = a.local_addrs()[0];
    let b_local = b.local_addrs()[0];

    let payload = vec![0x5au8; SEGMENT * SEGMENTS_PER_TRAIN];
    let mut batch = RecvBatch::new(64);

    for _ in 0..WARMUP_ROUNDS {
        round(&mut a, a_local, &mut b, b_local, &payload, &mut batch);
    }

    alloc_count::reset_thread_counts();
    let mut datagrams = 0;
    for _ in 0..MEASURED_ROUNDS {
        datagrams += round(&mut a, a_local, &mut b, b_local, &payload, &mut batch);
    }
    let counts = alloc_count::thread_counts();

    assert_eq!(datagrams, MEASURED_ROUNDS * SEGMENTS_PER_TRAIN);
    assert_eq!(
        counts.allocs, 0,
        "steady-state datapath allocated: {counts:?} over {MEASURED_ROUNDS} \
         rounds ({datagrams} datagrams)"
    );

    // On Linux the rounds above must actually have batched: one sendmmsg
    // per 8-segment train, and multi-datagram receives.
    #[cfg(target_os = "linux")]
    {
        let stats = a.batch_stats();
        assert!(
            stats.syscalls_saved > 0,
            "no syscalls saved on the send side: {stats:?}"
        );
        assert_eq!(stats.send_batch_size.max(), SEGMENTS_PER_TRAIN as u64);
        let recv = b.batch_stats();
        assert!(
            recv.recv_batch_size.max() >= 1,
            "receive side recorded no batches: {recv:?}"
        );
    }
}
