//! Loopback integration: real multipath transfers over the OS UDP stack.
//!
//! These tests are the acceptance gate for the real-socket runtime: a
//! client bound to **two real loopback sockets** transfers ≥ 1 MiB to a
//! server over actual UDP, the payload arrives in order and verified, and
//! the per-path statistics prove that *both* paths carried a meaningful
//! share — i.e. the lowest-RTT scheduler and the per-path packet-number
//! spaces work outside the simulator.

use mpquic_core::Config;
use mpquic_io::{quic_client, quic_server, transfer, BlockingStream, Driver, QuicTransport};
use std::io::Read;
use std::net::SocketAddr;
use std::sync::mpsc;
use std::time::Duration;

const MIB: usize = 1 << 20;
const OP_TIMEOUT: Duration = Duration::from_secs(60);

fn loopback0() -> SocketAddr {
    "127.0.0.1:0".parse().unwrap()
}

/// Runs one complete client→server transfer over real sockets: the server
/// in its own thread (as a separate process would be), the client on the
/// test thread. Returns the client driver (for stats/qlog inspection) and
/// the payload exactly as the server received it.
fn run_transfer(
    client_config: Config,
    server_config: Config,
    client_interfaces: usize,
    size: usize,
) -> (Driver<QuicTransport>, Vec<u8>) {
    run_transfer_with(
        client_config,
        server_config,
        client_interfaces,
        size,
        |_| {},
    )
}

/// [`run_transfer`] with a hook over the client connection before the
/// handshake — used to install telemetry subscribers.
fn run_transfer_with(
    client_config: Config,
    server_config: Config,
    client_interfaces: usize,
    size: usize,
    setup: impl FnOnce(&mut mpquic_core::Connection),
) -> (Driver<QuicTransport>, Vec<u8>) {
    let (addr_tx, addr_rx) = mpsc::channel();
    let (payload_tx, payload_rx) = mpsc::channel();

    let server = std::thread::spawn(move || {
        let driver = quic_server(server_config, &[loopback0()], 0xBEEF).expect("bind server");
        addr_tx.send(driver.local_addrs()[0]).expect("report addr");
        let mut stream = BlockingStream::with_timeout(driver, OP_TIMEOUT);
        stream.wait_established().expect("server handshake");
        let (header, payload) = transfer::recv_request(&mut stream).expect("receive upload");
        transfer::send_response(&mut stream, true, header.checksum).expect("send verdict");
        stream.finish().expect("finish response");
        // Linger until the client acknowledged the verdict or closed.
        let driver = stream.driver_mut();
        let _ = driver.run_until(Duration::from_secs(5), |t| {
            t.conn.stream_fully_acked(1) || t.conn.is_closed()
        });
        payload_tx.send(payload).expect("report payload");
    });

    let server_addr = addr_rx
        .recv_timeout(Duration::from_secs(10))
        .expect("server came up");
    let locals: Vec<SocketAddr> = (0..client_interfaces).map(|_| loopback0()).collect();
    let mut driver =
        quic_client(client_config, &locals, server_addr, 0xC0FFEE).expect("bind client");
    setup(driver.connection_mut());
    let mut stream = BlockingStream::with_timeout(driver, OP_TIMEOUT);
    stream.wait_established().expect("client handshake");

    let data = transfer::pattern(size);
    transfer::send_request(&mut stream, "loopback.bin", &data).expect("send upload");
    stream.finish().expect("finish upload");

    let (verified, server_checksum) = transfer::recv_response(&mut stream).expect("read verdict");
    assert!(verified, "server reported a checksum mismatch");
    assert_eq!(
        server_checksum,
        transfer::fnv1a64(&data),
        "server's checksum matches ours"
    );
    // Drain the server's end-of-stream, then close so the server's linger
    // loop ends promptly.
    let mut sink = Vec::new();
    stream.read_to_end(&mut sink).expect("drain to EOF");
    let mut driver = stream.into_driver();
    driver.connection_mut().close(0, "transfer complete");
    let _ = driver.run_for(Duration::from_millis(100));

    let payload = payload_rx
        .recv_timeout(Duration::from_secs(30))
        .expect("server delivered payload");
    server.join().expect("server thread clean exit");
    (driver, payload)
}

#[test]
fn multipath_loopback_transfer_uses_both_paths() {
    const SIZE: usize = 2 * MIB;
    let client_config = Config::builder()
        .multipath()
        .enable_qlog(true)
        .build()
        .expect("valid config");
    let server_config = Config::builder().multipath().build().expect("valid config");
    let (driver, payload) = run_transfer(client_config, server_config, 2, SIZE);

    // In-order, verified delivery of every byte over real sockets.
    assert_eq!(payload.len(), SIZE);
    assert_eq!(
        payload,
        transfer::pattern(SIZE),
        "payload reassembled exactly"
    );

    let conn = driver.connection();
    let ids = conn.path_ids();
    assert!(
        ids.len() >= 2,
        "the path manager opened the second path over real sockets (paths: {ids:?})"
    );

    // Both paths carried ≥ 10% of the bytes (ConnStats view ...)
    let stats = conn.stats();
    let per_path: Vec<(u32, u64)> = ids
        .iter()
        .map(|&id| (id.0, conn.path(id).unwrap().bytes_sent))
        .collect();
    let total: u64 = per_path.iter().map(|(_, bytes)| bytes).sum();
    assert_eq!(
        total, stats.bytes_sent,
        "per-path byte counters add up to the connection total"
    );
    assert!(total as usize >= SIZE, "wire bytes cover the payload");
    for &(id, bytes) in &per_path {
        assert!(
            bytes * 10 >= total,
            "path {id} carried only {bytes} of {total} wire bytes (< 10%): {per_path:?}"
        );
    }

    // The batched datapath actually batched: a bulk transfer must have
    // coalesced multiple datagrams into single syscalls somewhere, and
    // the telemetry histograms must show it.
    let io = driver.stats();
    assert!(io.datagrams_sent > 0);
    #[cfg(target_os = "linux")]
    {
        let batch = driver.batch_stats();
        assert!(
            batch.send_batch_size.max() >= 2,
            "no send syscall ever carried more than one datagram: {batch:?}"
        );
        assert!(
            io.syscalls_saved > 0,
            "batching saved no syscalls on a 2 MiB multipath transfer"
        );
    }

    // (... and the qlog view agrees.)
    let qlog = conn.qlog();
    assert!(!qlog.is_empty(), "qlog was recorded");
    for &id in &ids {
        assert_eq!(
            qlog.bytes_sent_on(id),
            conn.path(id).unwrap().bytes_sent,
            "qlog and path counters agree for path {}",
            id.0
        );
    }
}

#[test]
fn scheduler_decision_share_matches_bytes_on_wire() {
    const SIZE: usize = 2 * MIB;
    let (metrics, handle) = mpquic_core::telemetry::MetricsSubscriber::new();
    let (driver, payload) =
        run_transfer_with(Config::multipath(), Config::multipath(), 2, SIZE, |conn| {
            conn.set_subscriber(Box::new(metrics));
        });
    assert_eq!(payload.len(), SIZE);

    let conn = driver.connection();
    let ids = conn.path_ids();
    assert!(ids.len() >= 2, "second path opened (paths: {ids:?})");
    let snapshot = handle.snapshot();

    let total_bytes: u64 = ids
        .iter()
        .map(|&id| conn.path(id).unwrap().bytes_sent)
        .sum();
    for &id in &ids {
        let summary = snapshot
            .path(id)
            .unwrap_or_else(|| panic!("telemetry saw path {}", id.0));
        // scheduler_decision events were emitted for this path, and
        // metrics_updated filled in its RTT gauge.
        assert!(
            summary.sched_decisions > 0,
            "scheduler decisions recorded for path {}",
            id.0
        );
        assert!(
            summary.srtt_us > 0,
            "metrics_updated seen for path {}",
            id.0
        );

        // The scheduler-share statistic (fraction of scheduler picks)
        // tracks the fraction of wire bytes the path carried: data
        // packets dominate and are near-uniform in size, so the two
        // shares agree within a loose tolerance.
        let byte_share = conn.path(id).unwrap().bytes_sent as f64 / total_bytes.max(1) as f64;
        assert!(
            (summary.sched_share - byte_share).abs() < 0.15,
            "path {}: sched share {:.3} vs byte share {:.3}",
            id.0,
            summary.sched_share,
            byte_share
        );
    }
}

#[test]
fn timed_out_transfer_still_leaves_a_qlog_file() {
    // A "server" that never answers: the handshake times out and the
    // client exits through its error path. The streaming qlog writer
    // flushes on drop, so the trace must still be on disk afterwards.
    let black_hole = std::net::UdpSocket::bind("127.0.0.1:0").expect("bind black hole");
    let server_addr = black_hole.local_addr().expect("black hole addr");

    let qlog_path = std::env::temp_dir().join(format!("mpq-crash-{}.qlog", std::process::id()));
    let _ = std::fs::remove_file(&qlog_path);
    {
        let mut driver = quic_client(
            Config::multipath(),
            &[loopback0(), loopback0()],
            server_addr,
            7,
        )
        .expect("bind client");
        let qlog = mpquic_core::telemetry::StreamingQlog::create(&qlog_path).expect("create qlog");
        driver.connection_mut().set_subscriber(Box::new(qlog));
        let mut stream = BlockingStream::with_timeout(driver, Duration::from_millis(500));
        assert!(
            stream.wait_established().is_err(),
            "handshake against a black hole must time out"
        );
        // `stream` (and the connection holding the subscriber) drops here,
        // exactly like the binaries' error exit.
    }

    let trace = std::fs::read_to_string(&qlog_path).expect("qlog file exists");
    assert!(
        !trace.trim().is_empty(),
        "timed-out transfer left an empty qlog"
    );
    // At least the client's handshake packet was recorded.
    let lower = trace.to_ascii_lowercase();
    assert!(
        lower.contains("packet"),
        "trace records packet events: {}",
        &trace[..trace.len().min(200)]
    );
    let _ = std::fs::remove_file(&qlog_path);
}

#[test]
fn single_path_loopback_transfer_completes() {
    const SIZE: usize = MIB;
    let (driver, payload) = run_transfer(Config::single_path(), Config::single_path(), 1, SIZE);

    assert_eq!(payload.len(), SIZE);
    assert_eq!(
        payload,
        transfer::pattern(SIZE),
        "payload reassembled exactly"
    );

    let conn = driver.connection();
    assert_eq!(
        conn.path_ids().len(),
        1,
        "single-path mode opens no extra paths"
    );
    assert!(conn.stats().bytes_sent as usize >= SIZE);
}
