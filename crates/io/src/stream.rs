//! A blocking byte-stream facade over a driven transport.
//!
//! [`BlockingStream`] wraps a [`Driver`] and exposes the transport's
//! single bidirectional stream through `std::io::Read` and
//! `std::io::Write`, pumping the event loop inside each call. This is the
//! synchronous shell around the sans-IO core: ordinary blocking
//! application code (`read_exact`, `write_all`, `io::copy`) runs over
//! Multipath QUIC on real sockets without knowing anything about
//! datagrams or timers.
//!
//! The byte-stream surface mirrors the `Transport` trait shape used by
//! the simulator experiments (`write`/`finish`/`read_chunk`/
//! `recv_finished`), so applications written against either look alike.

use bytes::Bytes;
use mpquic_harness::Transport;
use std::io;
use std::time::{Duration, Instant};

use crate::backoff::Backoff;
use crate::driver::Driver;
use crate::error::{Error, Result};

/// Default per-operation timeout: generous enough for multi-megabyte
/// loopback transfers under RTO backoff, small enough that a dead peer
/// fails a test run rather than hanging it.
pub const DEFAULT_OP_TIMEOUT: Duration = Duration::from_secs(30);

/// A blocking bidirectional byte stream over a [`Driver`].
#[derive(Debug)]
pub struct BlockingStream<T: Transport> {
    driver: Driver<T>,
    timeout: Duration,
    /// Read-side staging: the last chunk pulled from the transport that
    /// the caller's buffer could not fully absorb.
    pending: Vec<u8>,
    cursor: usize,
}

impl<T: Transport> BlockingStream<T> {
    /// Wraps a driver with the [`DEFAULT_OP_TIMEOUT`].
    pub fn new(driver: Driver<T>) -> BlockingStream<T> {
        BlockingStream::with_timeout(driver, DEFAULT_OP_TIMEOUT)
    }

    /// Wraps a driver with a custom per-operation timeout.
    pub fn with_timeout(driver: Driver<T>, timeout: Duration) -> BlockingStream<T> {
        BlockingStream {
            driver,
            timeout,
            pending: Vec::new(),
            cursor: 0,
        }
    }

    /// The driver underneath (stats, addresses, clock).
    pub fn driver(&self) -> &Driver<T> {
        &self.driver
    }

    /// Mutable access to the driver underneath.
    pub fn driver_mut(&mut self) -> &mut Driver<T> {
        &mut self.driver
    }

    /// Unwraps back into the driver. Any staged read bytes are discarded.
    pub fn into_driver(self) -> Driver<T> {
        self.driver
    }

    /// Blocks until the secure handshake completes
    /// ([`Error::Timeout`] on expiry).
    pub fn wait_established(&mut self) -> Result<()> {
        let reached = self
            .driver
            .run_until(self.timeout, |t| t.is_established())?;
        if reached {
            Ok(())
        } else {
            Err(Error::Timeout { op: "handshake" })
        }
    }

    /// Ends the outgoing stream (the QUIC FIN travels with the last data)
    /// and flushes whatever the congestion window allows right now.
    pub fn finish(&mut self) -> Result<()> {
        self.driver.transport_mut().finish();
        self.pump()?;
        Ok(())
    }

    /// True once the peer's end-of-stream was received and all data read.
    pub fn recv_finished(&self) -> bool {
        self.pending.len() == self.cursor && self.driver.transport().recv_finished()
    }

    /// Runs the event loop until it goes idle (everything sendable now is
    /// on the wire, everything received is processed).
    fn pump(&mut self) -> Result<()> {
        while self.driver.step()? {}
        Ok(())
    }
}

impl<T: Transport> io::Write for BlockingStream<T> {
    /// Hands the whole buffer to the transport's send stream (the stream
    /// buffers internally; flow control applies on the wire, not here)
    /// and opportunistically pumps the event loop.
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.driver
            .transport_mut()
            .write(Bytes::copy_from_slice(buf));
        self.pump().map_err(io::Error::from)?;
        Ok(buf.len())
    }

    /// Pumps until the event loop is idle: all data the window permits is
    /// handed to the OS. (Data beyond the congestion window necessarily
    /// remains queued — `flush` cannot wait for ACKs.)
    fn flush(&mut self) -> io::Result<()> {
        self.pump().map_err(io::Error::from)
    }
}

impl<T: Transport> io::Read for BlockingStream<T> {
    /// Reads at least one byte (blocking up to the operation timeout),
    /// or returns `Ok(0)` once the peer finished the stream and every
    /// byte has been consumed.
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if buf.is_empty() {
            return Ok(0);
        }
        let deadline = Instant::now() + self.timeout;
        let mut backoff = Backoff::new();
        loop {
            // 1. Staged bytes from an earlier oversized chunk.
            if self.cursor < self.pending.len() {
                let src = self.pending.get(self.cursor..).unwrap_or(&[]);
                let n = src.len().min(buf.len());
                buf.iter_mut().zip(src).for_each(|(d, s)| *d = *s);
                self.cursor += n;
                if self.cursor == self.pending.len() {
                    self.pending.clear();
                    self.cursor = 0;
                }
                return Ok(n);
            }
            // 2. Fresh in-order data from the transport.
            if let Some(chunk) = self.driver.transport_mut().read_chunk() {
                if !chunk.is_empty() {
                    self.pending = chunk.to_vec();
                    self.cursor = 0;
                }
                continue;
            }
            // 3. Clean end of stream.
            if self.driver.transport().recv_finished() {
                return Ok(0);
            }
            // 4. Nothing yet: drive the loop, backing off only while it
            // stays idle (spin → yield → capped sleep) so a chunk that
            // arrives moments later is not stuck behind a fixed sleep.
            if Instant::now() >= deadline {
                return Err(Error::Timeout { op: "read" }.into());
            }
            if self.driver.step().map_err(io::Error::from)? {
                backoff.reset();
            } else {
                backoff.wait();
            }
        }
    }
}
