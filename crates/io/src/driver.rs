//! The connection driver: a deadline-driven event loop over real sockets.
//!
//! [`Driver`] owns the three things a sans-IO transport needs to touch the
//! real world — a [`SocketRegistry`] (one non-blocking UDP socket per
//! local interface), a [`Clock`], and a [`Timer`] — and pumps any
//! [`Transport`] implementation through the canonical sans-IO cycle:
//!
//! ```text
//! ingress:  socket.recv  ─→ transport.handle_datagram(now, ...)
//! timers:   next_timeout ─→ transport.on_timeout(now) when due
//! egress:   transport.poll_transmit(now) ─→ socket.send (by local addr)
//! ```
//!
//! The same cycle drives the discrete-event simulator
//! (`mpquic_netsim::Simulation`); this module is its real-network twin, so
//! every protocol feature exercised in the paper's experiments — the
//! lowest-RTT scheduler, per-path packet-number spaces, PATHS-frame
//! handover — runs unchanged over the OS network stack.

use mpquic_core::{Config, Connection};
use mpquic_harness::{QuicTransport, Transport};
use std::io;
use std::net::SocketAddr;
use std::time::{Duration, Instant};

use crate::clock::Clock;
use crate::socket::{RecvMeta, SocketRegistry, MAX_DATAGRAM};
use crate::timer::Timer;

/// Per-step caps so a flood on one side of the cycle cannot starve the
/// other (or the timers) indefinitely.
const MAX_RECV_PER_STEP: usize = 256;
const MAX_SEND_PER_STEP: usize = 256;

/// Counters describing what the event loop did (socket-level view; the
/// transport's own `ConnStats` counts the protocol-level view).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoStats {
    /// Datagrams handed to the OS.
    pub datagrams_sent: u64,
    /// Datagrams received from the OS and fed to the transport.
    pub datagrams_received: u64,
    /// UDP payload bytes sent.
    pub bytes_sent: u64,
    /// UDP payload bytes received.
    pub bytes_received: u64,
    /// Datagrams dropped locally because the socket buffer stayed full.
    pub send_drops: u64,
    /// Times a due protocol deadline was fired.
    pub timer_fires: u64,
}

/// Drives one sans-IO [`Transport`] over real UDP sockets.
#[derive(Debug)]
pub struct Driver<T: Transport> {
    transport: T,
    sockets: SocketRegistry,
    clock: Clock,
    timer: Timer,
    buf: Vec<u8>,
    stats: IoStats,
}

impl<T: Transport> Driver<T> {
    /// Builds a driver from an already-constructed transport and registry.
    /// The transport's local addresses must match the registry's bound
    /// addresses (the convenience constructors [`quic_client`] and
    /// [`quic_server`] guarantee this).
    pub fn new(transport: T, sockets: SocketRegistry) -> Driver<T> {
        Driver {
            transport,
            sockets,
            clock: Clock::new(),
            timer: Timer::new(),
            buf: vec![0u8; MAX_DATAGRAM],
            stats: IoStats::default(),
        }
    }

    /// The transport being driven.
    pub fn transport(&self) -> &T {
        &self.transport
    }

    /// Mutable access to the transport (write application data, read
    /// chunks, inspect the connection).
    pub fn transport_mut(&mut self) -> &mut T {
        &mut self.transport
    }

    /// Consumes the driver, returning the transport (sockets close).
    pub fn into_transport(self) -> T {
        self.transport
    }

    /// The bound local addresses, in bind order.
    pub fn local_addrs(&self) -> Vec<SocketAddr> {
        self.sockets.local_addrs()
    }

    /// The current instant on the transport's time line.
    pub fn now(&self) -> mpquic_util::SimTime {
        self.clock.now()
    }

    /// Socket-level counters.
    pub fn stats(&self) -> IoStats {
        let mut stats = self.stats;
        stats.send_drops = self.sockets.send_drops();
        stats
    }

    /// Runs one non-sleeping iteration of the event loop: fires due
    /// timers, drains ingress into the transport, drains the transport's
    /// egress to the sockets. Returns `true` if anything happened —
    /// callers sleep (see [`Timer::sleep_for`]) only when it returns
    /// `false`.
    pub fn step(&mut self) -> io::Result<bool> {
        let mut progressed = false;

        // 1. Protocol timers.
        let now = self.clock.now();
        if self.timer.is_due(now, self.transport.next_timeout()) {
            self.transport.on_timeout(now);
            self.stats.timer_fires += 1;
            progressed = true;
        }

        // 2. Ingress first: ACKs open congestion window that egress below
        //    can immediately use.
        for _ in 0..MAX_RECV_PER_STEP {
            let Some(RecvMeta { local, remote, len }) = self.sockets.poll_recv(&mut self.buf)?
            else {
                break;
            };
            let now = self.clock.now();
            self.transport
                .handle_datagram(now, local, remote, &self.buf[..len]);
            self.stats.datagrams_received += 1;
            self.stats.bytes_received += len as u64;
            progressed = true;
        }

        // 3. Egress: each datagram goes out the socket bound to the local
        //    address the scheduler chose — that *is* the path selection.
        for _ in 0..MAX_SEND_PER_STEP {
            let Some(datagram) = self.transport.poll_transmit(self.clock.now()) else {
                break;
            };
            let sent =
                self.sockets
                    .send_from(datagram.local, datagram.remote, &datagram.payload)?;
            if sent {
                self.stats.datagrams_sent += 1;
                self.stats.bytes_sent += datagram.payload.len() as u64;
            }
            progressed = true;
        }

        Ok(progressed)
    }

    /// Pumps the loop until `done(transport)` returns `true` or `timeout`
    /// of wall time elapses. Returns whether `done` was reached. Between
    /// idle iterations the loop sleeps until the transport's next
    /// deadline, clamped to the polling granularity.
    pub fn run_until(
        &mut self,
        timeout: Duration,
        mut done: impl FnMut(&mut T) -> bool,
    ) -> io::Result<bool> {
        let deadline = Instant::now() + timeout;
        loop {
            if done(&mut self.transport) {
                return Ok(true);
            }
            if Instant::now() >= deadline {
                return Ok(false);
            }
            if !self.step()? {
                let sleep = self
                    .timer
                    .sleep_for(self.clock.now(), self.transport.next_timeout());
                if !sleep.is_zero() {
                    std::thread::sleep(sleep);
                }
            }
        }
    }

    /// Pumps the loop for (at least) `duration` of wall time — useful to
    /// flush final packets (a CONNECTION_CLOSE, the last ACKs) before
    /// dropping the driver.
    pub fn run_for(&mut self, duration: Duration) -> io::Result<()> {
        self.run_until(duration, |_| false).map(|_| ())
    }
}

impl Driver<QuicTransport> {
    /// The underlying (MP)QUIC connection.
    pub fn connection(&self) -> &Connection {
        &self.transport().conn
    }

    /// Mutable access to the underlying connection.
    pub fn connection_mut(&mut self) -> &mut Connection {
        &mut self.transport_mut().conn
    }
}

/// Binds `local_addrs` (port 0 allowed) and dials `remote` from the first
/// of them: the real-socket equivalent of `Connection::client`. With
/// multipath enabled and several local addresses, the path manager opens
/// one additional path per extra address once the handshake completes,
/// exactly as in the simulator.
pub fn quic_client(
    config: Config,
    local_addrs: &[SocketAddr],
    remote: SocketAddr,
    seed: u64,
) -> io::Result<Driver<QuicTransport>> {
    let sockets = SocketRegistry::bind(local_addrs)?;
    let bound = sockets.local_addrs();
    let conn = Connection::client(config, bound, 0, remote, seed);
    Ok(Driver::new(QuicTransport::client(conn), sockets))
}

/// Binds `local_addrs` and waits for a client: the real-socket equivalent
/// of `Connection::server`. The first authenticated datagram creates the
/// initial path; with multipath enabled the server advertises every bound
/// address via ADD_ADDRESS so the client can open the additional paths.
pub fn quic_server(
    config: Config,
    local_addrs: &[SocketAddr],
    seed: u64,
) -> io::Result<Driver<QuicTransport>> {
    let sockets = SocketRegistry::bind(local_addrs)?;
    let bound = sockets.local_addrs();
    let conn = Connection::server(config, bound, seed);
    Ok(Driver::new(QuicTransport::server(conn), sockets))
}
