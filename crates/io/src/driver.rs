//! The connection driver: a deadline-driven event loop over real sockets.
//!
//! [`Driver`] owns the three things a sans-IO transport needs to touch the
//! real world — a [`SocketRegistry`] (one non-blocking UDP socket per
//! local interface), a [`Clock`], and a [`Timer`] — and pumps any
//! [`Transport`] implementation through the canonical sans-IO cycle:
//!
//! ```text
//! ingress:  recvmmsg batch ─→ transport.handle_datagram(now, ...) × n
//! timers:   next_timeout   ─→ transport.on_timeout(now) when due
//! egress:   transport.poll_transmit_batch(now, queue)
//!               ─→ sendmmsg per GSO train (by local addr)
//! ```
//!
//! Both halves of the datapath are *batched*: egress drains the
//! transport into a pool-backed [`TransmitQueue`] (coalescing same-path
//! packets into GSO-shaped trains) and fans each train out with one
//! syscall; ingress fills a [`RecvBatch`] with one syscall per socket.
//! After warm-up the cycle performs no per-datagram heap allocation —
//! buffers cycle through the queue's [`mpquic_core::BufferPool`] and
//! the syscall arrays are reused (see DESIGN.md §11).
//!
//! The same cycle drives the discrete-event simulator
//! (`mpquic_netsim::Simulation`); this module is its real-network twin, so
//! every protocol feature exercised in the paper's experiments — the
//! lowest-RTT scheduler, per-path packet-number spaces, PATHS-frame
//! handover — runs unchanged over the OS network stack.

use mpquic_core::{Config, Connection, TransmitQueue};
use mpquic_harness::{QuicTransport, Transport};
use std::net::SocketAddr;
use std::time::{Duration, Instant};

use crate::clock::Clock;
use crate::error::{Error, Result};
use crate::socket::{BatchStats, RecvBatch, SocketRegistry};
use crate::timer::Timer;

/// Per-step caps so a flood on one side of the cycle cannot starve the
/// other (or the timers) indefinitely.
const MAX_RECV_PER_STEP: usize = 256;
const MAX_SEND_PER_STEP: usize = 256;

/// Datagrams per transmit batch (the egress queue's segment capacity)
/// and per receive poll.
const BATCH_SEGMENTS: usize = 64;

/// Egress pool buffer pre-allocation: comfortably above any configured
/// MTU, so pool buffers never grow after the first use.
const SEND_BUF_CAPACITY: usize = 2048;

/// Counters describing what the event loop did (socket-level view; the
/// transport's own `ConnStats` counts the protocol-level view).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoStats {
    /// Datagrams handed to the OS.
    pub datagrams_sent: u64,
    /// Datagrams received from the OS and fed to the transport.
    pub datagrams_received: u64,
    /// UDP payload bytes sent.
    pub bytes_sent: u64,
    /// UDP payload bytes received.
    pub bytes_received: u64,
    /// Datagrams dropped locally because the socket buffer stayed full.
    pub send_drops: u64,
    /// Times a due protocol deadline was fired.
    pub timer_fires: u64,
    /// Batched send syscalls issued.
    pub send_syscalls: u64,
    /// Batched receive syscalls that returned data.
    pub recv_syscalls: u64,
    /// Syscalls avoided versus a one-datagram-per-syscall loop.
    pub syscalls_saved: u64,
}

impl IoStats {
    /// Sums another loop's counters into this one — used to fold the
    /// per-shard loops of an [`crate::Endpoint`] into one report.
    pub fn merge(&mut self, other: &IoStats) {
        self.datagrams_sent += other.datagrams_sent;
        self.datagrams_received += other.datagrams_received;
        self.bytes_sent += other.bytes_sent;
        self.bytes_received += other.bytes_received;
        self.send_drops += other.send_drops;
        self.timer_fires += other.timer_fires;
        self.send_syscalls += other.send_syscalls;
        self.recv_syscalls += other.recv_syscalls;
        self.syscalls_saved += other.syscalls_saved;
    }
}

/// Drives one sans-IO [`Transport`] over real UDP sockets.
#[derive(Debug)]
pub struct Driver<T: Transport> {
    transport: T,
    sockets: SocketRegistry,
    clock: Clock,
    timer: Timer,
    /// Pool-backed egress queue, filled by `poll_transmit_batch`.
    queue: TransmitQueue,
    /// Reusable ingress batch, filled by `poll_recv_batch`.
    recv: RecvBatch,
    stats: IoStats,
}

impl<T: Transport> Driver<T> {
    /// Builds a driver from an already-constructed transport and registry.
    /// The transport's local addresses must match the registry's bound
    /// addresses (the convenience constructors [`quic_client`] and
    /// [`quic_server`] guarantee this).
    pub fn new(transport: T, sockets: SocketRegistry) -> Driver<T> {
        Driver {
            transport,
            sockets,
            clock: Clock::new(),
            timer: Timer::new(),
            queue: TransmitQueue::new(BATCH_SEGMENTS, SEND_BUF_CAPACITY),
            recv: RecvBatch::new(BATCH_SEGMENTS),
            stats: IoStats::default(),
        }
    }

    /// The transport being driven.
    pub fn transport(&self) -> &T {
        &self.transport
    }

    /// Mutable access to the transport (write application data, read
    /// chunks, inspect the connection).
    pub fn transport_mut(&mut self) -> &mut T {
        &mut self.transport
    }

    /// Consumes the driver, returning the transport (sockets close).
    pub fn into_transport(self) -> T {
        self.transport
    }

    /// The bound local addresses, in bind order.
    pub fn local_addrs(&self) -> Vec<SocketAddr> {
        self.sockets.local_addrs()
    }

    /// The current instant on the transport's time line.
    pub fn now(&self) -> mpquic_util::SimTime {
        self.clock.now()
    }

    /// Socket-level counters.
    pub fn stats(&self) -> IoStats {
        let mut stats = self.stats;
        stats.send_drops = self.sockets.send_drops();
        let batch = self.sockets.batch_stats();
        stats.send_syscalls = batch.send_syscalls;
        stats.recv_syscalls = batch.recv_syscalls;
        stats.syscalls_saved = batch.syscalls_saved;
        stats
    }

    /// Datapath batching telemetry (datagrams-per-syscall histograms).
    pub fn batch_stats(&self) -> &BatchStats {
        self.sockets.batch_stats()
    }

    /// Which datapath backend the socket registry is running on.
    pub fn backend_kind(&self) -> crate::BackendKind {
        self.sockets.backend_kind()
    }

    /// Datapath backend telemetry (submissions, completions,
    /// batch-size histogram, fallbacks).
    pub fn backend_stats(&self) -> crate::BackendStats {
        self.sockets.backend_stats()
    }

    /// Send-buffer drops broken down by local socket, in bind order.
    pub fn socket_drops(&self) -> Vec<(SocketAddr, u64)> {
        self.sockets.send_drops_per_socket()
    }

    /// Runs one non-sleeping iteration of the event loop: fires due
    /// timers, drains ingress into the transport, drains the transport's
    /// egress to the sockets. Returns `true` if anything happened —
    /// callers sleep (see [`Timer::sleep_for`]) only when it returns
    /// `false`.
    pub fn step(&mut self) -> Result<bool> {
        let mut progressed = false;

        // 1. Protocol timers.
        let now = self.clock.now();
        if self.timer.is_due(now, self.transport.next_timeout()) {
            self.transport.on_timeout(now);
            self.stats.timer_fires += 1;
            progressed = true;
        }

        // 2. Ingress first: ACKs open congestion window that egress below
        //    can immediately use. One syscall brings in a whole batch.
        let mut received = 0;
        while received < MAX_RECV_PER_STEP {
            let got = self.sockets.poll_recv_batch(&mut self.recv)?;
            if got == 0 {
                break;
            }
            let now = self.clock.now();
            for (meta, payload) in self.recv.iter() {
                self.transport
                    .handle_datagram(now, meta.local, meta.remote, payload);
                self.stats.datagrams_received += 1;
                self.stats.bytes_received += meta.len as u64;
            }
            received += got;
            progressed = true;
        }

        // 3. Egress: fill the pool-backed queue (coalescing same-path
        //    packets into GSO trains), then fan each train out with one
        //    batched syscall on the socket bound to its local address —
        //    that *is* the path selection.
        let mut sent = 0;
        while sent < MAX_SEND_PER_STEP {
            let produced = self
                .transport
                .poll_transmit_batch(self.clock.now(), &mut self.queue);
            if self.queue.is_empty() {
                break;
            }
            while let Some(transmit) = self.queue.pop() {
                let result = self.sockets.send_train(
                    transmit.local,
                    transmit.remote,
                    &transmit.payload,
                    transmit.segment_size,
                );
                let accepted = match &result {
                    Ok(n) => *n,
                    Err(_) => 0,
                };
                let bytes: usize = transmit.segments().take(accepted).map(<[u8]>::len).sum();
                sent += transmit.segment_count();
                // Recycle before surfacing any error: pool buffers must
                // go back even on a failed send.
                self.queue.recycle(transmit.payload);
                result?;
                self.stats.datagrams_sent += accepted as u64;
                self.stats.bytes_sent += bytes as u64;
                progressed = true;
            }
            if produced == 0 {
                break;
            }
        }

        Ok(progressed)
    }

    /// Pumps the loop until `done(transport)` returns `true` or `timeout`
    /// of wall time elapses. Returns whether `done` was reached. Between
    /// idle iterations the loop sleeps until the transport's next
    /// deadline, clamped to the polling granularity.
    pub fn run_until(
        &mut self,
        timeout: Duration,
        mut done: impl FnMut(&mut T) -> bool,
    ) -> Result<bool> {
        let deadline = Instant::now() + timeout;
        loop {
            if done(&mut self.transport) {
                return Ok(true);
            }
            if Instant::now() >= deadline {
                return Ok(false);
            }
            if !self.step()? {
                let sleep = self
                    .timer
                    .sleep_for(self.clock.now(), self.transport.next_timeout());
                if !sleep.is_zero() {
                    std::thread::sleep(sleep);
                }
            }
        }
    }

    /// Pumps the loop for (at least) `duration` of wall time — useful to
    /// flush final packets (a CONNECTION_CLOSE, the last ACKs) before
    /// dropping the driver.
    pub fn run_for(&mut self, duration: Duration) -> Result<()> {
        self.run_until(duration, |_| false).map(|_| ())
    }
}

impl Driver<QuicTransport> {
    /// The underlying (MP)QUIC connection.
    pub fn connection(&self) -> &Connection {
        &self.transport().conn
    }

    /// Mutable access to the underlying connection.
    pub fn connection_mut(&mut self) -> &mut Connection {
        &mut self.transport_mut().conn
    }

    /// Rebinds the socket under path `id`'s local address onto a fresh
    /// ephemeral port and migrates the path onto it — a client-driven
    /// NAT rebinding. The very next packets leave from the new source
    /// port carrying the same CID; the server quarantines the rebound
    /// address behind a PATH_CHALLENGE and, once validation succeeds,
    /// rotates the connection ID (NEW_CONNECTION_ID /
    /// RETIRE_CONNECTION_ID ride this same connection). Returns the
    /// new local address.
    pub fn rebind_path(&mut self, id: mpquic_core::PathId) -> Result<SocketAddr> {
        let old = self
            .transport
            .conn
            .path(id)
            .map(|path| path.local)
            .ok_or_else(|| {
                Error::Io(std::io::Error::new(
                    std::io::ErrorKind::NotFound,
                    format!("no path {}", id.0),
                ))
            })?;
        let new_local = self.sockets.rebind(old).map_err(Error::Io)?;
        let now = self.clock.now();
        self.transport.conn.migrate_path(id, new_local, now);
        Ok(new_local)
    }
}

/// Binds `local_addrs` (port 0 allowed) and dials `remote` from the first
/// of them: the real-socket equivalent of `Connection::client`. With
/// multipath enabled and several local addresses, the path manager opens
/// one additional path per extra address once the handshake completes,
/// exactly as in the simulator.
pub fn quic_client(
    config: Config,
    local_addrs: &[SocketAddr],
    remote: SocketAddr,
    seed: u64,
) -> Result<Driver<QuicTransport>> {
    let sockets = SocketRegistry::bind(local_addrs).map_err(Error::Io)?;
    let bound = sockets.local_addrs();
    let conn = Connection::client(config, bound, 0, remote, seed);
    Ok(Driver::new(QuicTransport::client(conn), sockets))
}

/// Binds `local_addrs` and waits for a client: the real-socket equivalent
/// of `Connection::server`. The first authenticated datagram creates the
/// initial path; with multipath enabled the server advertises every bound
/// address via ADD_ADDRESS so the client can open the additional paths.
pub fn quic_server(
    config: Config,
    local_addrs: &[SocketAddr],
    seed: u64,
) -> Result<Driver<QuicTransport>> {
    let sockets = SocketRegistry::bind(local_addrs).map_err(Error::Io)?;
    let bound = sockets.local_addrs();
    let conn = Connection::server(config, bound, seed);
    Ok(Driver::new(QuicTransport::server(conn), sockets))
}
