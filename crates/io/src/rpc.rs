//! The `mpq-rpc` request/response application protocol.
//!
//! Where [`crate::transfer`] speaks one request per connection on one
//! stream, `mpq-rpc` multiplexes many request/response exchanges over
//! one connection — one exchange per client-opened bidirectional
//! stream, the shape every netbench-style load harness needs
//! (request/response and streaming workloads issue thousands of calls
//! per connection; connection churn issues one).
//!
//! ```text
//! client → server (per stream):
//!     "MPQR" · flags:u8 · resp_len:u32 · req_len:u32 · payload · FIN
//! server → client (same stream):
//!     "MPQS" · status:u8 · fnv64:u64 · resp_len:u32 · payload · FIN
//! ```
//!
//! All integers big-endian. `flags` bit 0 (`FLAG_FINAL`) marks the last
//! request on the connection: once its response is flushed the server
//! app reports success to its shard, so a clean client close is counted
//! [`crate::EndpointSnapshot::completed`], not `failed`. The FNV-1a
//! checksum of the request payload is echoed in the response as the
//! end-to-end integrity witness (same rationale as the transfer
//! protocol: packet protection authenticates packets, the checksum
//! proves multi-stream reassembly delivered every byte).

use bytes::Bytes;
use mpquic_core::{Connection, StreamId};
use mpquic_harness::QuicTransport;
use std::collections::{HashMap, HashSet};

use crate::endpoint::{AppStatus, ConnApp};
use crate::error::{Error, Result};
use crate::transfer::fnv1a64;

/// Request magic ("MPQ Rpc").
pub const REQ_MAGIC: &[u8; 4] = b"MPQR";
/// Response magic ("MPQ reSponse").
pub const RESP_MAGIC: &[u8; 4] = b"MPQS";

/// Request flag: last request on this connection; the client closes
/// after the response arrives.
pub const FLAG_FINAL: u8 = 0x01;

/// Response status: request parsed and payload intact.
pub const STATUS_OK: u8 = 0;
/// Response status: request malformed or truncated.
pub const STATUS_BAD_REQUEST: u8 = 1;

/// Upper bound on either direction's payload, guarding length fields.
pub const MAX_RPC_PAYLOAD: usize = 64 << 20;

/// Request header length on the wire.
const REQ_HEADER_LEN: usize = 4 + 1 + 4 + 4;
/// Response header length on the wire.
const RESP_HEADER_LEN: usize = 4 + 1 + 8 + 4;

/// [`Error::Protocol`] code: bad rpc magic.
pub const ERR_RPC_MAGIC: u64 = 0x10;
/// [`Error::Protocol`] code: length field exceeds [`MAX_RPC_PAYLOAD`].
pub const ERR_RPC_TOO_LARGE: u64 = 0x11;
/// [`Error::Protocol`] code: stream ended mid-message.
pub const ERR_RPC_TRUNCATED: u64 = 0x12;

/// A parsed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RpcRequest {
    /// Request flags ([`FLAG_FINAL`]).
    pub flags: u8,
    /// Response payload bytes the client asks for.
    pub resp_len: u32,
    /// Request payload.
    pub payload: Vec<u8>,
}

impl RpcRequest {
    /// True if this is the connection's announced last request.
    pub fn is_final(&self) -> bool {
        self.flags & FLAG_FINAL != 0
    }
}

/// A parsed response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RpcResponse {
    /// [`STATUS_OK`] or [`STATUS_BAD_REQUEST`].
    pub status: u8,
    /// FNV-1a checksum of the request payload, as the server saw it.
    pub checksum: u64,
    /// Response payload.
    pub payload: Vec<u8>,
}

/// Encodes a complete request message (the caller FINs the stream).
pub fn encode_request(flags: u8, resp_len: u32, payload: &[u8]) -> Vec<u8> {
    assert!(
        payload.len() <= MAX_RPC_PAYLOAD,
        "request payload too large"
    );
    assert!(resp_len as usize <= MAX_RPC_PAYLOAD, "response too large");
    let mut out = Vec::with_capacity(REQ_HEADER_LEN + payload.len());
    out.extend_from_slice(REQ_MAGIC);
    out.push(flags);
    out.extend_from_slice(&resp_len.to_be_bytes());
    out.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    out.extend_from_slice(payload);
    out
}

/// Decodes a complete request message (a finished stream's bytes).
pub fn decode_request(buf: &[u8]) -> Result<RpcRequest> {
    let (flags, a, b, rest) = split_header(buf, *REQ_MAGIC, ERR_RPC_MAGIC)?;
    let resp_len = a;
    let req_len = b as usize;
    if req_len > MAX_RPC_PAYLOAD || resp_len as usize > MAX_RPC_PAYLOAD {
        return Err(Error::Protocol {
            code: ERR_RPC_TOO_LARGE,
            reason: "rpc length exceeds limit".into(),
        });
    }
    if rest.len() != req_len {
        return Err(Error::Protocol {
            code: ERR_RPC_TRUNCATED,
            reason: "rpc request truncated".into(),
        });
    }
    Ok(RpcRequest {
        flags,
        resp_len,
        payload: rest.to_vec(),
    })
}

/// Encodes a complete response message (the caller FINs the stream).
pub fn encode_response(status: u8, checksum: u64, payload: &[u8]) -> Vec<u8> {
    assert!(
        payload.len() <= MAX_RPC_PAYLOAD,
        "response payload too large"
    );
    let mut out = Vec::with_capacity(RESP_HEADER_LEN + payload.len());
    out.extend_from_slice(RESP_MAGIC);
    out.push(status);
    out.extend_from_slice(&checksum.to_be_bytes());
    out.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    out.extend_from_slice(payload);
    out
}

/// Decodes a complete response message (a finished stream's bytes).
pub fn decode_response(buf: &[u8]) -> Result<RpcResponse> {
    if buf.len() < RESP_HEADER_LEN {
        return Err(Error::Protocol {
            code: ERR_RPC_TRUNCATED,
            reason: "rpc response truncated".into(),
        });
    }
    if buf.get(..4) != Some(RESP_MAGIC.as_slice()) {
        return Err(Error::Protocol {
            code: ERR_RPC_MAGIC,
            reason: "bad rpc response magic".into(),
        });
    }
    let status = buf.get(4).copied().unwrap_or(0);
    let checksum = be_u64(buf.get(5..13).unwrap_or(&[]));
    let resp_len = be_u32(buf.get(13..17).unwrap_or(&[])) as usize;
    if resp_len > MAX_RPC_PAYLOAD {
        return Err(Error::Protocol {
            code: ERR_RPC_TOO_LARGE,
            reason: "rpc length exceeds limit".into(),
        });
    }
    let rest = buf.get(RESP_HEADER_LEN..).unwrap_or(&[]);
    if rest.len() != resp_len {
        return Err(Error::Protocol {
            code: ERR_RPC_TRUNCATED,
            reason: "rpc response truncated".into(),
        });
    }
    Ok(RpcResponse {
        status,
        checksum,
        payload: rest.to_vec(),
    })
}

/// Shared request-header split: flags byte, two u32 fields, payload.
/// `magic` is by value so the one reference input (`buf`) elides the
/// output lifetime.
fn split_header(buf: &[u8], magic: [u8; 4], magic_err: u64) -> Result<(u8, u32, u32, &[u8])> {
    if buf.len() < REQ_HEADER_LEN {
        return Err(Error::Protocol {
            code: ERR_RPC_TRUNCATED,
            reason: "rpc message truncated".into(),
        });
    }
    if buf.get(..4) != Some(magic.as_slice()) {
        return Err(Error::Protocol {
            code: magic_err,
            reason: "bad rpc magic".into(),
        });
    }
    let flags = buf.get(4).copied().unwrap_or(0);
    let a = be_u32(buf.get(5..9).unwrap_or(&[]));
    let b = be_u32(buf.get(9..13).unwrap_or(&[]));
    Ok((flags, a, b, buf.get(REQ_HEADER_LEN..).unwrap_or(&[])))
}

/// Panic-free fixed-width reads: the callers' header-length guards
/// make short slices impossible, but these paths decode untrusted
/// bytes, so missing bytes read as zero rather than trusting that.
fn be_u32(bytes: &[u8]) -> u32 {
    let mut out = [0u8; 4];
    for (dst, src) in out.iter_mut().zip(bytes) {
        *dst = *src;
    }
    u32::from_be_bytes(out)
}

fn be_u64(bytes: &[u8]) -> u64 {
    let mut out = [0u8; 8];
    for (dst, src) in out.iter_mut().zip(bytes) {
        *dst = *src;
    }
    u64::from_be_bytes(out)
}

/// Deterministic response payload: same generator as
/// [`crate::transfer::pattern`], offset by the checksum so responses to
/// different requests differ.
pub fn response_pattern(len: usize, checksum: u64) -> Vec<u8> {
    (0..len)
        .map(|i| {
            let i = i as u64 ^ checksum;
            (i.wrapping_mul(31).wrapping_add(i >> 8) & 0xff) as u8
        })
        .collect()
}

/// Per-stream server state.
enum StreamState {
    /// Accumulating request bytes until the client's FIN.
    Receiving { buf: Vec<u8> },
    /// Response written; waiting for full acknowledgement.
    Flushing { final_req: bool },
}

/// The `mpq-rpc` server as a [`crate::ConnApp`]: serves every
/// client-opened stream as one request/response exchange, concurrently.
///
/// Reports [`AppStatus::Done`] once a [`FLAG_FINAL`] request's response
/// has been flushed and no other exchange is in flight — `ok` unless
/// some request on the connection was malformed.
#[derive(Default)]
pub struct RpcServerApp {
    streams: HashMap<StreamId, StreamState>,
    /// Every stream ever adopted (streams leave `streams` when served,
    /// but must not be re-adopted while the transport still lists them).
    tracked: HashSet<StreamId>,
    /// Exchanges fully served (response acknowledged).
    served: u64,
    any_bad: bool,
    final_flushed: bool,
    finished: bool,
}

impl RpcServerApp {
    /// A fresh server. The [`crate::AppFactory`] form is
    /// `Box::new(|_| Box::new(RpcServerApp::new()))`.
    pub fn new() -> RpcServerApp {
        RpcServerApp::default()
    }

    /// Exchanges fully served so far.
    pub fn served(&self) -> u64 {
        self.served
    }
}

impl ConnApp for RpcServerApp {
    fn poll(&mut self, transport: &mut QuicTransport) -> AppStatus {
        if self.finished {
            return AppStatus::Done { ok: !self.any_bad };
        }

        // Adopt newly appeared peer streams.
        let fresh: Vec<StreamId> = transport
            .conn
            .peer_stream_ids()
            .filter(|id| !self.tracked.contains(id))
            .collect();
        for id in fresh {
            self.tracked.insert(id);
            self.streams
                .insert(id, StreamState::Receiving { buf: Vec::new() });
        }

        // Advance every in-flight exchange.
        let active: Vec<StreamId> = self.streams.keys().copied().collect();
        for id in active {
            let Some(state) = self.streams.get_mut(&id) else {
                continue;
            };
            match state {
                StreamState::Receiving { buf } => {
                    while let Some(chunk) = transport.conn.stream_read(id, usize::MAX) {
                        buf.extend_from_slice(&chunk);
                    }
                    if !transport.conn.stream_is_finished(id) {
                        continue;
                    }
                    let (response, final_req) = match decode_request(buf) {
                        Ok(req) => {
                            let checksum = fnv1a64(&req.payload);
                            let payload = response_pattern(req.resp_len as usize, checksum);
                            (
                                encode_response(STATUS_OK, checksum, &payload),
                                req.is_final(),
                            )
                        }
                        Err(_) => {
                            self.any_bad = true;
                            (encode_response(STATUS_BAD_REQUEST, 0, &[]), false)
                        }
                    };
                    let _ = transport.conn.stream_write(id, Bytes::from(response));
                    transport.conn.stream_finish(id);
                    *state = StreamState::Flushing { final_req };
                }
                StreamState::Flushing { final_req } => {
                    if transport.conn.stream_fully_acked(id) || transport.conn.is_closed() {
                        let final_req = *final_req;
                        self.streams.remove(&id);
                        self.served += 1;
                        if final_req {
                            self.final_flushed = true;
                        }
                    }
                }
            }
        }

        if self.final_flushed && self.streams.is_empty() {
            self.finished = true;
            return AppStatus::Done { ok: !self.any_bad };
        }
        AppStatus::Pending
    }
}

/// One client-side in-flight call: open a stream, send the request,
/// accumulate the response until the server's FIN.
pub struct RpcCall {
    id: StreamId,
    expect_checksum: u64,
    expect_resp_len: usize,
    buf: Vec<u8>,
}

/// What a completed [`RpcCall`] verified.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RpcVerdict {
    /// Server status byte was [`STATUS_OK`].
    pub ok: bool,
    /// Echoed checksum matched and the payload had the requested
    /// length (implied false when `ok` is false).
    pub intact: bool,
}

impl RpcCall {
    /// Opens a new stream on `conn` and writes a complete request.
    pub fn start(conn: &mut Connection, payload: &[u8], resp_len: u32, last: bool) -> RpcCall {
        let id = conn.open_stream();
        let flags = if last { FLAG_FINAL } else { 0 };
        let message = encode_request(flags, resp_len, payload);
        let _ = conn.stream_write(id, Bytes::from(message));
        conn.stream_finish(id);
        RpcCall {
            id,
            expect_checksum: fnv1a64(payload),
            expect_resp_len: resp_len as usize,
            buf: Vec::new(),
        }
    }

    /// The call's stream ID.
    pub fn stream(&self) -> StreamId {
        self.id
    }

    /// Drains response bytes; `Some(verdict)` once the response is
    /// complete. Call on every loop iteration until it completes.
    pub fn poll(&mut self, conn: &mut Connection) -> Option<RpcVerdict> {
        while let Some(chunk) = conn.stream_read(self.id, usize::MAX) {
            self.buf.extend_from_slice(&chunk);
        }
        if !conn.stream_is_finished(self.id) {
            return None;
        }
        let verdict = match decode_response(&self.buf) {
            Ok(resp) => RpcVerdict {
                ok: resp.status == STATUS_OK,
                intact: resp.status == STATUS_OK
                    && resp.checksum == self.expect_checksum
                    && resp.payload.len() == self.expect_resp_len,
            },
            Err(_) => RpcVerdict {
                ok: false,
                intact: false,
            },
        };
        Some(verdict)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpquic_core::Config;
    use mpquic_util::SimTime;
    use std::net::SocketAddr;
    use std::time::Duration;

    fn addr(s: &str) -> SocketAddr {
        s.parse().unwrap()
    }

    #[test]
    fn request_round_trips() {
        let wire = encode_request(FLAG_FINAL, 512, b"hello rpc");
        let req = decode_request(&wire).unwrap();
        assert!(req.is_final());
        assert_eq!(req.resp_len, 512);
        assert_eq!(req.payload, b"hello rpc");
    }

    #[test]
    fn response_round_trips() {
        let wire = encode_response(STATUS_OK, 0xfeed_f00d, b"payload");
        let resp = decode_response(&wire).unwrap();
        assert_eq!(resp.status, STATUS_OK);
        assert_eq!(resp.checksum, 0xfeed_f00d);
        assert_eq!(resp.payload, b"payload");
    }

    #[test]
    fn truncated_and_bad_magic_are_rejected() {
        assert!(decode_request(b"MPQ").is_err());
        assert!(decode_request(&encode_request(0, 0, b"x")[..9]).is_err());
        let mut wire = encode_response(STATUS_OK, 1, b"y");
        wire[0] = b'X';
        assert!(decode_response(&wire).is_err());
    }

    /// Client connection and server app joined by a zero-delay
    /// in-memory wire.
    struct Pair {
        client: Connection,
        server: QuicTransport,
        app: RpcServerApp,
        now: SimTime,
    }

    impl Pair {
        fn new() -> Pair {
            let config = Config::default();
            let ca = addr("10.0.0.1:1111");
            let sa = addr("10.0.0.2:4433");
            let client = Connection::client(config.clone(), vec![ca], 0, sa, 7);
            let server = QuicTransport::server(Connection::server(config, vec![sa], 8));
            Pair {
                client,
                server,
                app: RpcServerApp::new(),
                now: SimTime::ZERO,
            }
        }

        /// One tick: shuttle datagrams both ways, poll the server app.
        /// Returns the app's status.
        fn tick(&mut self) -> AppStatus {
            use mpquic_harness::Transport;
            self.now += Duration::from_millis(5);
            while let Some(t) = self.client.poll_transmit(self.now) {
                self.server
                    .handle_datagram(self.now, t.remote, t.local, &t.payload);
            }
            let status = self.app.poll(&mut self.server);
            while let Some(t) = self.server.conn.poll_transmit(self.now) {
                self.client
                    .handle_datagram(self.now, t.remote, t.local, &t.payload);
            }
            while self.client.poll_event().is_some() {}
            status
        }
    }

    #[test]
    fn serves_concurrent_calls_and_finishes_on_final() {
        let mut pair = Pair::new();
        for _ in 0..50 {
            pair.tick();
            if pair.client.is_established() {
                break;
            }
        }
        assert!(pair.client.is_established(), "handshake stalled");

        let mut calls = vec![
            RpcCall::start(&mut pair.client, b"first", 64, false),
            RpcCall::start(&mut pair.client, b"second", 256, false),
        ];
        let mut verdicts = Vec::new();
        for _ in 0..200 {
            pair.tick();
            calls.retain_mut(|call| match call.poll(&mut pair.client) {
                Some(v) => {
                    verdicts.push(v);
                    false
                }
                None => true,
            });
            if verdicts.len() == 2 {
                break;
            }
        }
        assert_eq!(verdicts.len(), 2, "calls stalled");
        assert!(verdicts.iter().all(|v| v.ok && v.intact));

        // The final call drives the app to a success verdict.
        let mut last = RpcCall::start(&mut pair.client, b"bye", 16, true);
        let mut last_verdict = None;
        let mut app_done = false;
        for _ in 0..200 {
            let status = pair.tick();
            if last_verdict.is_none() {
                last_verdict = last.poll(&mut pair.client);
            }
            if status == (AppStatus::Done { ok: true }) {
                app_done = true;
            }
            if app_done && last_verdict.is_some() {
                break;
            }
        }
        assert_eq!(
            last_verdict,
            Some(RpcVerdict {
                ok: true,
                intact: true
            })
        );
        assert!(app_done, "server app never reported Done");
        assert_eq!(pair.app.served(), 3);
    }

    #[test]
    fn malformed_request_yields_bad_status() {
        let mut pair = Pair::new();
        for _ in 0..50 {
            pair.tick();
            if pair.client.is_established() {
                break;
            }
        }
        // Hand-rolled garbage on a fresh stream.
        let id = pair.client.open_stream();
        let _ = pair
            .client
            .stream_write(id, Bytes::from(b"not an rpc".to_vec()));
        pair.client.stream_finish(id);
        let mut ok = None;
        for _ in 0..200 {
            pair.tick();
            while let Some(_chunk) = pair.client.stream_read(id, usize::MAX) {}
            if pair.client.stream_is_finished(id) {
                ok = Some(true);
                break;
            }
        }
        assert_eq!(ok, Some(true), "no response to malformed request");
        assert!(pair.app.any_bad, "server accepted garbage");
    }
}
