//! Worker shards: per-core event loops over disjoint connection sets.
//!
//! An [`crate::Endpoint`] splits its accepted connections across N
//! worker threads by CID hash ([`shard_for_cid`]). Each shard owns a
//! `Driver`-style loop — its own clock, timer, pool-backed
//! [`TransmitQueue`] and a `dup`ed send handle over the shared listen
//! sockets ([`crate::SocketRegistry::try_clone`]) — so after accept
//! time no lock, channel or shared cache line sits on a connection's
//! packet path. The only cross-thread traffic is:
//!
//! * ingress: the demux thread hands each shard its datagrams through a
//!   bounded [`std::sync::mpsc::sync_channel`] ([`ShardMsg`]);
//! * feedback: shards return pool buffers and retire finished CIDs
//!   through one shared unbounded channel back to the demux
//!   ([`DemuxCtl`]).
//!
//! The loop body mirrors [`crate::Driver::step`] — timers, ingress,
//! application poll, batched egress — generalised over a map of
//! connections instead of exactly one. That body lives in
//! [`ShardCore`], shared between the channel-fed shard threads here
//! and the endpoint's single-worker fast path
//! (`Endpoint` with `worker_shards = 1` runs demux and shard in one
//! thread, feeding the core straight from the receive batch with no
//! channel round trip — see DESIGN.md §13 and ROADMAP item 1).

use mpquic_core::{PathOp, TransmitQueue};
use mpquic_harness::{QuicTransport, Transport};
use mpquic_util::sync::atomic::{AtomicBool, Ordering};
use mpquic_util::sync::mpsc::{Receiver, Sender, TryRecvError};
use mpquic_util::sync::Arc;
use std::collections::HashMap;
use std::net::SocketAddr;
use std::time::Instant;

use crate::backend::BackendStats;
use crate::backoff::Backoff;
use crate::clock::Clock;
use crate::driver::IoStats;
use crate::endpoint::{AppStatus, ConnApp, EndpointPlane, EndpointStats};
use crate::socket::{BatchStats, RecvMeta, SocketRegistry};
use crate::timer::Timer;

/// Messages per loop iteration drained from the demux channel, so a
/// connection flood cannot starve timers and egress.
const MAX_MSGS_PER_STEP: usize = 256;

/// Wire datagrams per connection per egress pass (matches the driver's
/// `MAX_SEND_PER_STEP` so one bulk sender cannot monopolise the shard).
const MAX_SEND_PER_CONN: usize = 256;

/// Egress queue shape — same as the single-connection driver: segments
/// per GSO train, and per-buffer pre-allocation comfortably above the
/// MTU.
const BATCH_SEGMENTS: usize = 64;
const SEND_BUF_CAPACITY: usize = 2048;

/// Application error code a shard closes with when the app layer
/// reports failure (checksum mismatch, protocol violation).
const APP_ERROR_CODE: u64 = 0x1;

/// What the demux thread sends a worker shard.
pub enum ShardMsg {
    /// A newly accepted connection, handed over exactly once; after
    /// this the CID's datagrams follow on the same (ordered) channel.
    Accept {
        /// The connection ID the demux routes on.
        cid: u64,
        /// The freshly created server-side transport (boxed: the
        /// transport dwarfs the per-datagram variant, and boxing keeps
        /// every queued message small).
        transport: Box<QuicTransport>,
        /// The application serving this connection.
        app: Box<dyn ConnApp>,
    },
    /// One received datagram for a connection this shard owns. The
    /// buffer comes from the demux thread's pool and must go back via
    /// [`DemuxCtl::Return`].
    Datagram {
        /// Routing key (also [`ShardMsg::Accept`]'s `cid`).
        cid: u64,
        /// Receive addressing; `meta.len` bytes of `buf` are payload.
        meta: RecvMeta,
        /// Pool buffer holding the datagram payload.
        buf: Vec<u8>,
    },
}

/// What a worker shard sends back to the demux thread.
pub enum DemuxCtl {
    /// A datagram buffer, done with, for the demux pool.
    Return(Vec<u8>),
    /// A connection fully closed: forget its CID so the slot frees up
    /// (a later datagram with this CID would be treated as new).
    Retire {
        /// The CID to drop from the demux table.
        cid: u64,
    },
    /// A connection issued a NEW_CONNECTION_ID: datagrams carrying
    /// `alias` belong to the connection the demux knows as `cid`. The
    /// alias routes to the *same shard* as the canonical CID — a
    /// connection's packets never cross shards, rotated or not.
    MapCid {
        /// The freshly issued connection ID appearing on the wire.
        alias: u64,
        /// The canonical CID the demux already routes on.
        cid: u64,
    },
    /// The peer acknowledged a rotation (RETIRE_CONNECTION_ID): the
    /// old CID is dead. The demux drops its route and tombstones it so
    /// stragglers are swallowed instead of spawning a ghost accept.
    UnmapCid {
        /// The retired connection ID.
        cid: u64,
    },
}

/// A CID-routing change surfaced by [`ShardCore::process`] while
/// draining connections' [`PathOp`] queues. The caller forwards these
/// to whatever owns the CID→connection route table: the demux thread
/// (sharded mode, via [`DemuxCtl`]) or the unified loop's tombstone
/// set (single-worker mode).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CidRouteOp {
    /// Route datagrams carrying `alias` to the connection keyed by
    /// `canonical`.
    Map {
        /// The new on-wire CID.
        alias: u64,
        /// The accept-time CID the connection stays keyed under.
        canonical: u64,
    },
    /// Stop routing the retired CID; tombstone it against re-accept.
    Unmap {
        /// The retired on-wire CID.
        cid: u64,
    },
}

/// End-of-run counters for one worker shard.
#[derive(Debug, Clone, Default)]
pub struct ShardReport {
    /// Which shard (0-based, stable for the endpoint's lifetime).
    pub shard: usize,
    /// Socket-level counters for this shard's loop.
    pub io: IoStats,
    /// Datapath batching telemetry for this shard's send handle.
    pub batch: BatchStats,
    /// Datapath backend telemetry (submissions/completions/fallbacks)
    /// for this shard's send handle.
    pub backend: BackendStats,
    /// Connections this shard ever owned.
    pub conns_served: u64,
}

/// Maps a connection ID to its owning shard.
///
/// Runs the CID through a [SplitMix64](https://prng.di.unimi.it/splitmix64.c)
/// finalizer before reducing modulo `shards`: client CIDs are
/// DetRng-random, but sequential or adversarial CIDs must not pile onto
/// one shard, and the avalanche makes every input bit flip about half
/// of the output bits. Deterministic — a CID's shard never changes, so
/// a connection's packets never cross shards.
pub fn shard_for_cid(cid: u64, shards: usize) -> usize {
    let mut z = cid.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z % shards.max(1) as u64) as usize
}

/// Where drained shard ingress lands.
///
/// Implemented by the production [`ShardCore`] (datagrams feed real
/// connections) and by the protocol doubles the model-checked tests in
/// `tests/loom.rs` use, so [`drain_shard_ingress`] — the exact code the
/// shard threads run against the demux channels — can be exercised
/// under exhaustive interleaving without binding sockets.
pub trait ShardSink {
    /// Takes ownership of a newly accepted connection.
    fn accept(&mut self, cid: u64, transport: Box<QuicTransport>, app: Box<dyn ConnApp>);

    /// Feeds one received datagram (already trimmed to its wire
    /// length) to the connection owning `cid`. A miss is an ordinary
    /// race with retirement and must be tolerated.
    fn deliver(&mut self, cid: u64, meta: &RecvMeta, payload: &[u8]);
}

/// Outcome of one [`drain_shard_ingress`] pass.
#[derive(Debug, Clone, Copy, Default)]
pub struct IngressDrain {
    /// At least one message was drained.
    pub progressed: bool,
    /// The demux hung up; the shard should flush and exit.
    pub disconnected: bool,
    /// How many messages were drained — the shard's side of the
    /// channel-occupancy accounting (`queue_received` in the metrics
    /// plane; the demux counts `queue_sent` at `try_send`).
    pub msgs: usize,
}

/// Drains up to `max_msgs` pre-routed messages from the demux channel
/// into `sink`, returning every datagram buffer to the demux pool via
/// `ctl`.
///
/// This is stage 1 of the shard loop, factored out so the loom tests
/// interleave the *production* drain code against the demux. The
/// buffer-recycling contract lives here: a [`ShardMsg::Datagram`]'s
/// buffer goes back through [`DemuxCtl::Return`] exactly once, whether
/// or not its connection still exists.
pub fn drain_shard_ingress(
    rx: &Receiver<ShardMsg>,
    ctl: &Sender<DemuxCtl>,
    sink: &mut impl ShardSink,
    max_msgs: usize,
) -> IngressDrain {
    let mut out = IngressDrain::default();
    for _ in 0..max_msgs {
        match rx.try_recv() {
            Ok(ShardMsg::Accept {
                cid,
                transport,
                app,
            }) => {
                sink.accept(cid, transport, app);
                out.progressed = true;
                out.msgs += 1;
            }
            Ok(ShardMsg::Datagram { cid, meta, buf }) => {
                let payload = buf.get(..meta.len).unwrap_or(&[]);
                // A miss is a race with retirement: the dropped
                // datagram is ordinary loss to the peer.
                sink.deliver(cid, &meta, payload);
                // Buffer back to the demux pool either way.
                let _ = ctl.send(DemuxCtl::Return(buf));
                out.progressed = true;
                out.msgs += 1;
            }
            Err(TryRecvError::Empty) => break,
            Err(TryRecvError::Disconnected) => {
                out.disconnected = true;
                break;
            }
        }
    }
    out
}

/// Final drain after the shard decides to exit: queued datagram
/// buffers go back to the demux pool and queued-but-never-owned
/// accepts are retired, so shutdown neither leaks pool buffers nor
/// strands the accept/close accounting (`accepted == closed + active`
/// stays an invariant through teardown). Returns how many messages
/// were flushed, so the caller can keep `queue_received` honest.
pub fn flush_shard_ingress(rx: &Receiver<ShardMsg>, ctl: &Sender<DemuxCtl>) -> usize {
    let mut flushed = 0;
    loop {
        match rx.try_recv() {
            Ok(ShardMsg::Accept { cid, .. }) => {
                let _ = ctl.send(DemuxCtl::Retire { cid });
                flushed += 1;
            }
            Ok(ShardMsg::Datagram { buf, .. }) => {
                let _ = ctl.send(DemuxCtl::Return(buf));
                flushed += 1;
            }
            Err(_) => break,
        }
    }
    flushed
}

/// One connection owned by a shard.
struct ConnEntry {
    transport: Box<QuicTransport>,
    app: Box<dyn ConnApp>,
    /// The app finished (its verdict is counted); the connection is
    /// only reaped once the CONNECTION_CLOSE has gone to the wire.
    done: bool,
}

/// The shard loop body, factored out of the thread shell so the
/// endpoint's single-worker fast path can run the *same* per-connection
/// machinery (timers → app poll → batched egress → reap) in the demux
/// thread itself, with ingress fed directly instead of through a
/// channel.
pub(crate) struct ShardCore {
    clock: Clock,
    timer: Timer,
    queue: TransmitQueue,
    io: IoStats,
    conns: HashMap<u64, ConnEntry>,
    /// Rotated on-wire CIDs → the accept-time CID a connection stays
    /// keyed under. Connections are never rekeyed: a rotation adds an
    /// alias here (and in the demux) so demux and shard keep agreeing
    /// on the owning entry while old and new CIDs overlap in flight.
    aliases: HashMap<u64, u64>,
    reap: Vec<u64>,
    /// Scratch for path ops drained mid-iteration (the connection map
    /// is mutably borrowed there, so alias updates are deferred).
    path_ops: Vec<(u64, PathOp)>,
    conns_served: u64,
}

impl ShardCore {
    pub(crate) fn new() -> ShardCore {
        ShardCore {
            clock: Clock::new(),
            timer: Timer::new(),
            queue: TransmitQueue::new(BATCH_SEGMENTS, SEND_BUF_CAPACITY),
            io: IoStats::default(),
            conns: HashMap::new(),
            aliases: HashMap::new(),
            reap: Vec::new(),
            path_ops: Vec::new(),
            conns_served: 0,
        }
    }

    /// Number of connections currently owned.
    pub(crate) fn len(&self) -> usize {
        self.conns.len()
    }

    /// True if `cid` is currently owned by this core, directly or as a
    /// rotation alias.
    pub(crate) fn owns(&self, cid: u64) -> bool {
        self.conns.contains_key(&cid) || self.aliases.contains_key(&cid)
    }

    /// Takes ownership of a freshly accepted connection.
    pub(crate) fn accept(
        &mut self,
        cid: u64,
        transport: Box<QuicTransport>,
        app: Box<dyn ConnApp>,
    ) {
        self.conns.insert(
            cid,
            ConnEntry {
                transport,
                app,
                done: false,
            },
        );
        self.conns_served += 1;
    }

    /// Feeds one received datagram to its connection. Returns `true` if
    /// the CID was owned (a miss is an ordinary race with retirement —
    /// to the peer it is indistinguishable from loss).
    pub(crate) fn deliver(
        &mut self,
        cid: u64,
        local: SocketAddr,
        remote: SocketAddr,
        payload: &[u8],
    ) -> bool {
        let key = self.aliases.get(&cid).copied().unwrap_or(cid);
        let Some(entry) = self.conns.get_mut(&key) else {
            return false;
        };
        entry
            .transport
            .handle_datagram(self.clock.now(), local, remote, payload);
        self.io.datagrams_received += 1;
        self.io.bytes_received += payload.len() as u64;
        true
    }

    /// One pass over every connection: fire due timers, poll the
    /// application, drain batched egress, and reap closed connections
    /// (reporting each retired CID through `on_retire`). Path ops the
    /// connections queued — CID rotations, validation outcomes — bump
    /// the endpoint counters here and surface routing changes through
    /// `on_route`. Returns `true` if anything happened.
    pub(crate) fn process(
        &mut self,
        sockets: &mut SocketRegistry,
        stats: &EndpointStats,
        mut on_retire: impl FnMut(u64),
        mut on_route: impl FnMut(CidRouteOp),
    ) -> bool {
        let mut progressed = false;

        for (&cid, entry) in self.conns.iter_mut() {
            let now = self.clock.now();
            if self.timer.is_due(now, entry.transport.next_timeout()) {
                entry.transport.on_timeout(now);
                self.io.timer_fires += 1;
                progressed = true;
            }

            // Path ops queue during ingress and timer handling; the
            // connection map is borrowed here, so alias-table updates
            // are deferred past the loop.
            while let Some(op) = entry.transport.conn.pop_path_op() {
                self.path_ops.push((cid, op));
                progressed = true;
            }

            if !entry.done {
                match entry.app.poll(&mut entry.transport) {
                    AppStatus::Pending => {}
                    AppStatus::Done { ok } => {
                        if ok {
                            stats.completed.add(1);
                            entry.transport.conn.close(0, "transfer complete");
                        } else {
                            stats.failed.add(1);
                            entry
                                .transport
                                .conn
                                .close(APP_ERROR_CODE, "transfer failed");
                        }
                        entry.done = true;
                        progressed = true;
                    }
                }
                // A peer-initiated (or error) close without an app
                // verdict counts as a failure.
                if !entry.done && entry.transport.conn.is_closed() {
                    stats.failed.add(1);
                    entry.done = true;
                }
            }

            // Egress, mirroring Driver::step: fill the pool-backed
            // queue (GSO coalescing), fan each train out in one
            // batched syscall on the socket bound to its local
            // address.
            let mut sent = 0;
            while sent < MAX_SEND_PER_CONN {
                let produced = entry
                    .transport
                    .poll_transmit_batch(self.clock.now(), &mut self.queue);
                if self.queue.is_empty() {
                    break;
                }
                while let Some(transmit) = self.queue.pop() {
                    let result = sockets.send_train(
                        transmit.local,
                        transmit.remote,
                        &transmit.payload,
                        transmit.segment_size,
                    );
                    let accepted = match &result {
                        Ok(n) => *n,
                        Err(_) => 0,
                    };
                    let bytes: usize = transmit.segments().take(accepted).map(<[u8]>::len).sum();
                    sent += transmit.segment_count();
                    // Recycle before acting on any error: pool
                    // buffers must go back even on a failed send.
                    self.queue.recycle(transmit.payload);
                    if result.is_err() {
                        // A socket-level refusal is fatal for this
                        // connection only — close it; the shard and
                        // its other connections keep running.
                        if !entry.done {
                            stats.failed.add(1);
                            entry.done = true;
                        }
                        entry.transport.conn.close(APP_ERROR_CODE, "socket error");
                    }
                    self.io.datagrams_sent += accepted as u64;
                    self.io.bytes_sent += bytes as u64;
                    progressed = true;
                }
                if produced == 0 {
                    break;
                }
            }

            // Reap once the close frame has hit the wire.
            if entry.done && entry.transport.conn.is_closed() {
                self.reap.push(cid);
            }
        }

        let mut ops = std::mem::take(&mut self.path_ops);
        for (canonical, op) in ops.drain(..) {
            match op {
                PathOp::MapCid(alias) => {
                    stats.cid_rotations_initiated.add(1);
                    self.aliases.insert(alias, canonical);
                    on_route(CidRouteOp::Map { alias, canonical });
                }
                PathOp::UnmapCid(old) => {
                    stats.cid_rotations_completed.add(1);
                    self.aliases.remove(&old);
                    on_route(CidRouteOp::Unmap { cid: old });
                }
                PathOp::ValidationStarted => stats.path_validations_started.add(1),
                PathOp::ValidationCompleted => stats.path_validations_validated.add(1),
                PathOp::ValidationAbandoned => stats.path_validations_abandoned.add(1),
            }
        }
        self.path_ops = ops;

        for cid in self.reap.drain(..) {
            self.conns.remove(&cid);
            // Any live aliases of the reaped connection die with it;
            // surface each as an unmap so the routing layer tombstones
            // them — a straggler carrying a rotated CID must be dropped,
            // not re-enter the accept path as a phantom connection.
            self.aliases.retain(|&alias, &mut canonical| {
                if canonical == cid {
                    on_route(CidRouteOp::Unmap { cid: alias });
                    false
                } else {
                    true
                }
            });
            on_retire(cid);
            progressed = true;
        }

        progressed
    }

    /// Consumes the core into its end-of-run report, folding in the
    /// socket handle's counters.
    pub(crate) fn into_report(self, shard: usize, sockets: &SocketRegistry) -> ShardReport {
        let mut io = self.io;
        io.send_drops = sockets.send_drops();
        let batch = sockets.batch_stats();
        io.send_syscalls = batch.send_syscalls;
        io.recv_syscalls = batch.recv_syscalls;
        io.syscalls_saved = batch.syscalls_saved;
        ShardReport {
            shard,
            io,
            batch: batch.clone(),
            backend: sockets.backend_stats(),
            conns_served: self.conns_served,
        }
    }
}

impl ShardSink for ShardCore {
    fn accept(&mut self, cid: u64, transport: Box<QuicTransport>, app: Box<dyn ConnApp>) {
        ShardCore::accept(self, cid, transport, app);
    }

    fn deliver(&mut self, cid: u64, meta: &RecvMeta, payload: &[u8]) {
        ShardCore::deliver(self, cid, meta.local, meta.remote, payload);
    }
}

/// The shard thread body: loops until `stop` (or the demux hangs up),
/// then reports its counters.
///
/// `sockets` must be a send handle (a [`SocketRegistry::try_clone`] of
/// the listen registry) — the shard never receives from it; ingress
/// arrives pre-routed on `rx`.
pub(crate) fn run_shard(
    shard: usize,
    rx: Receiver<ShardMsg>,
    ctl: Sender<DemuxCtl>,
    mut sockets: SocketRegistry,
    plane: Arc<EndpointPlane>,
    stop: Arc<AtomicBool>,
) -> ShardReport {
    let mut core = ShardCore::new();
    let mut backoff = Backoff::new();
    let mut disconnected = false;
    let shard_plane = plane.shard(shard);
    let mut was_idle = true;
    // Last-published backend counters: each busy iteration folds only
    // the delta into the shared plane (the copy is a fixed-size struct,
    // so the fold allocates nothing on the datapath).
    let mut prev_backend = BackendStats::default();

    loop {
        let iter_start = Instant::now();

        // 1. Ingress: drain pre-routed messages from the demux.
        let drained = drain_shard_ingress(&rx, &ctl, &mut core, MAX_MSGS_PER_STEP);
        let mut progressed = drained.progressed;
        disconnected |= drained.disconnected;
        if drained.msgs > 0 {
            shard_plane.queue_received.add(drained.msgs as u64);
        }

        // 2. Per connection: timers, application progress, egress.
        if core.process(
            &mut sockets,
            &plane.stats,
            |cid| {
                let _ = ctl.send(DemuxCtl::Retire { cid });
            },
            |route| {
                let _ = ctl.send(match route {
                    CidRouteOp::Map { alias, canonical } => DemuxCtl::MapCid {
                        alias,
                        cid: canonical,
                    },
                    CidRouteOp::Unmap { cid } => DemuxCtl::UnmapCid { cid },
                });
            },
        ) {
            progressed = true;
        }

        shard_plane.loop_iterations.add(1);
        if progressed {
            shard_plane.busy_iterations.add(1);
            if was_idle {
                shard_plane.wakeups.add(1);
            }
            shard_plane
                .loop_ns
                .record(iter_start.elapsed().as_nanos() as u64);
            shard_plane.conns_active.set(core.len() as u64);
            publish_backend_delta(&plane, &mut prev_backend, &sockets);
        }
        was_idle = !progressed;

        // Acquire pairs with the Release store in `Endpoint::shutdown`:
        // whatever the closer wrote before raising the flag is visible
        // to this final iteration.
        if stop.load(Ordering::Acquire) || disconnected {
            break;
        }
        if progressed {
            backoff.reset();
        } else {
            backoff.wait();
        }
    }

    // Nothing queued may outlive the shard: buffers go back to the
    // pool, undrained accepts are retired (see `flush_shard_ingress`).
    let flushed = flush_shard_ingress(&rx, &ctl);
    if flushed > 0 {
        shard_plane.queue_received.add(flushed as u64);
    }
    publish_backend_delta(&plane, &mut prev_backend, &sockets);
    core.into_report(shard, &sockets)
}

/// Folds the registry's backend counters since the last publish into
/// the shared plane's `mpq_backend_*` family. Delta-based so the loop
/// can call it every busy iteration without double counting, and
/// allocation-free (the stats copy is a fixed-size struct).
pub(crate) fn publish_backend_delta(
    plane: &EndpointPlane,
    prev: &mut BackendStats,
    sockets: &SocketRegistry,
) {
    let cur = sockets.backend_stats();
    plane
        .stats
        .backend_submissions
        .add(cur.submissions.saturating_sub(prev.submissions));
    plane
        .stats
        .backend_completions
        .add(cur.completions.saturating_sub(prev.completions));
    plane
        .stats
        .backend_fallbacks
        .add(cur.fallbacks.saturating_sub(prev.fallbacks));
    plane
        .backend_sqe_batch
        .merge_delta(&cur.sqe_batch, &prev.sqe_batch);
    *prev = cur;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_assignment_is_stable_and_in_range() {
        for shards in 1..=16 {
            for cid in [0u64, 1, 2, 0xABCD, u64::MAX] {
                let first = shard_for_cid(cid, shards);
                assert!(first < shards);
                assert_eq!(first, shard_for_cid(cid, shards), "stable");
            }
        }
    }

    #[test]
    fn zero_shards_does_not_divide_by_zero() {
        assert_eq!(shard_for_cid(42, 0), 0);
    }

    #[test]
    fn sequential_cids_spread_across_shards() {
        // The avalanche must break up worst-case sequential CIDs.
        let shards = 8;
        let mut counts = vec![0usize; shards];
        for cid in 0..800u64 {
            counts[shard_for_cid(cid, shards)] += 1;
        }
        for (shard, &n) in counts.iter().enumerate() {
            assert!(
                n > 50 && n < 150,
                "shard {shard} got {n}/800 sequential CIDs"
            );
        }
    }
}
