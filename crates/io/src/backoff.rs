//! Graduated waiting for transient socket conditions.
//!
//! The datapath meets two kinds of "not right now": a full send buffer
//! (`WouldBlock` on send) and a dry socket (nothing to receive). Both
//! clear on their own — usually within microseconds under load — so a
//! fixed `thread::sleep` either wastes latency (sleeping through the
//! moment the condition clears) or burns a core (spinning long after
//! it was worth it). [`Backoff`] graduates through the cheap options
//! first: a few busy spins with the CPU's pause hint, then scheduler
//! yields, then exponentially growing sleeps capped at the timer
//! granularity, so a stalled socket costs latency proportional to how
//! stalled it actually is.
//!
//! The ladder's primitives come from [`mpquic_util::sync`], so under
//! `--cfg loom` every wait is a scheduling point for the interleaving
//! explorer (sleeps become yields — model time does not advance) and
//! the no-lost-wakeup property of loops built on [`Backoff`] can be
//! checked exhaustively.

use mpquic_util::sync;
use std::time::Duration;

/// Busy-spin steps before the first yield.
const SPIN_STEPS: u32 = 4;
/// `yield_now` steps before the first sleep.
const YIELD_STEPS: u32 = 4;
/// First sleep length; doubles per step up to [`MAX_SLEEP`].
const FIRST_SLEEP: Duration = Duration::from_micros(10);
/// Sleep cap — matches the timer wheel's granularity
/// ([`crate::timer::Timer`]), past which a shard would rather run its
/// timers than wait longer.
const MAX_SLEEP: Duration = Duration::from_micros(500);

/// Spin → yield → capped-sleep waiter for transient `WouldBlock`s.
///
/// Call [`Backoff::wait`] each time the transient condition is observed
/// and [`Backoff::reset`] whenever progress is made; the next stall
/// then starts back at the cheap spinning end of the ladder.
#[derive(Debug, Clone, Default)]
pub struct Backoff {
    step: u32,
    /// Where [`Backoff::reset`] returns to: 0 for the full ladder,
    /// [`SPIN_STEPS`] for a [`Backoff::yielding`] waiter.
    floor: u32,
}

impl Backoff {
    /// A fresh waiter, starting at the spin stage.
    pub fn new() -> Backoff {
        Backoff::default()
    }

    /// A waiter whose ladder starts at the yield stage, and whose
    /// [`Backoff::reset`] returns there. On a machine where the loop
    /// shares its only core with the threads feeding it, pause-hinted
    /// spinning is provably wasted work: nothing can produce data
    /// until this thread gives up its quantum.
    pub fn yielding() -> Backoff {
        Backoff {
            step: SPIN_STEPS,
            floor: SPIN_STEPS,
        }
    }

    /// Forgets accumulated steps; the next [`Backoff::wait`] restarts
    /// the ladder at this waiter's cheapest stage (spinning, or
    /// yielding for a [`Backoff::yielding`] waiter).
    pub fn reset(&mut self) {
        self.step = self.floor;
    }

    /// Number of waits since the last reset.
    pub fn steps(&self) -> u32 {
        self.step
    }

    /// The sleep the next [`Backoff::wait`] would take: `None` during
    /// the spin/yield stages, `Some(duration)` once sleeping.
    pub fn next_sleep(&self) -> Option<Duration> {
        if self.step < SPIN_STEPS + YIELD_STEPS {
            return None;
        }
        let exp = (self.step - SPIN_STEPS - YIELD_STEPS).min(16);
        Some((FIRST_SLEEP * 2u32.saturating_pow(exp)).min(MAX_SLEEP))
    }

    /// Waits one step: spins with the CPU pause hint, yields the
    /// scheduler slot, or sleeps (doubling up to the cap), depending on
    /// how many waits have accumulated since the last reset.
    pub fn wait(&mut self) {
        if self.step < SPIN_STEPS {
            // A short burst of pause-hinted spins: cheapest, and wins
            // when the kernel drains the buffer within microseconds.
            for _ in 0..(1 << self.step.min(6)) {
                sync::hint::spin_loop();
            }
        } else if let Some(sleep) = self.next_sleep() {
            sync::thread::sleep(sleep);
        } else {
            sync::thread::yield_now();
        }
        self.step = self.step.saturating_add(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_spins_then_yields_then_sleeps() {
        let mut b = Backoff::new();
        // Spin and yield stages report no sleep.
        for _ in 0..(SPIN_STEPS + YIELD_STEPS) {
            assert_eq!(b.next_sleep(), None);
            b.wait();
        }
        // First sleep is the base, then doubles.
        assert_eq!(b.next_sleep(), Some(FIRST_SLEEP));
        b.wait();
        assert_eq!(b.next_sleep(), Some(FIRST_SLEEP * 2));
    }

    #[test]
    fn sleep_is_capped() {
        let b = Backoff { step: 64, floor: 0 };
        assert_eq!(b.next_sleep(), Some(MAX_SLEEP));
        // And the exponent is clamped so the doubling cannot overflow.
        let b = Backoff {
            step: u32::MAX,
            floor: 0,
        };
        assert_eq!(b.next_sleep(), Some(MAX_SLEEP));
    }

    #[test]
    fn reset_returns_to_spinning() {
        let mut b = Backoff { step: 32, floor: 0 };
        b.reset();
        assert_eq!(b.steps(), 0);
        assert_eq!(b.next_sleep(), None);
    }

    #[test]
    fn yielding_waiter_never_returns_to_the_spin_stage() {
        let mut b = Backoff::yielding();
        assert_eq!(b.steps(), SPIN_STEPS);
        assert_eq!(b.next_sleep(), None);
        for _ in 0..32 {
            b.wait();
        }
        b.reset();
        assert_eq!(b.steps(), SPIN_STEPS, "reset floors at the yield stage");
        assert_eq!(b.next_sleep(), None);
    }
}
