//! The `mpq` file-transfer application protocol.
//!
//! What the `mpq-client` / `mpq-server` binaries speak on top of the
//! (already AEAD-protected and handshake-authenticated) QUIC stream — a
//! deliberately small framing so the binaries demonstrate the transport,
//! not an application:
//!
//! ```text
//! client → server:  "MPQ1" · name_len:u16 · name · size:u64 · fnv64:u64 · payload
//! server → client:  status:u8 (1 = verified) · fnv64:u64 (as computed)
//! ```
//!
//! All integers are big-endian. The FNV-1a checksum is an *end-to-end
//! integrity witness* over the application payload: packet protection
//! already authenticates each packet, the checksum additionally proves the
//! multipath reassembly (two packet-number spaces, one stream) delivered
//! every byte in order.

use std::io::{Read, Write};

use crate::error::{Error, Result};

/// Protocol magic, version 1.
pub const MAGIC: &[u8; 4] = b"MPQ1";

/// [`Error::Protocol`] code: the stream did not start with [`MAGIC`].
pub const ERR_BAD_MAGIC: u64 = 0x1;
/// [`Error::Protocol`] code: announced file name exceeds [`MAX_NAME_LEN`].
pub const ERR_NAME_TOO_LONG: u64 = 0x2;
/// [`Error::Protocol`] code: file name is not valid UTF-8.
pub const ERR_NAME_NOT_UTF8: u64 = 0x3;
/// [`Error::Protocol`] code: announced payload size does not fit memory.
pub const ERR_SIZE_OVERFLOW: u64 = 0x4;

/// Server verdict: payload arrived intact.
pub const STATUS_OK: u8 = 1;

/// Server verdict: checksum mismatch.
pub const STATUS_CORRUPT: u8 = 0;

/// Longest accepted file name, bytes.
pub const MAX_NAME_LEN: usize = 1024;

/// FNV-1a 64-bit checksum (dependency-free; collision resistance is not a
/// goal — transport authenticity comes from packet protection).
pub fn fnv1a64(data: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &byte in data {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// The transfer request header.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TransferHeader {
    /// File name (metadata only; the server may ignore it).
    pub name: String,
    /// Payload size in bytes.
    pub size: u64,
    /// FNV-1a checksum of the payload.
    pub checksum: u64,
}

impl TransferHeader {
    /// Builds a header describing `data`.
    pub fn for_data(name: &str, data: &[u8]) -> TransferHeader {
        TransferHeader {
            name: name.to_string(),
            size: data.len() as u64,
            checksum: fnv1a64(data),
        }
    }

    /// Serializes the header.
    pub fn encode(&self) -> Vec<u8> {
        let name = self.name.as_bytes();
        assert!(name.len() <= MAX_NAME_LEN, "file name too long");
        let mut out = Vec::with_capacity(4 + 2 + name.len() + 8 + 8);
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&(name.len() as u16).to_be_bytes());
        out.extend_from_slice(name);
        out.extend_from_slice(&self.size.to_be_bytes());
        out.extend_from_slice(&self.checksum.to_be_bytes());
        out
    }

    /// Reads and parses a header from a blocking reader.
    pub fn decode<R: Read>(reader: &mut R) -> Result<TransferHeader> {
        let mut magic = [0u8; 4];
        reader.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(Error::Protocol {
                code: ERR_BAD_MAGIC,
                reason: "bad transfer magic".into(),
            });
        }
        let mut len = [0u8; 2];
        reader.read_exact(&mut len)?;
        let name_len = usize::from(u16::from_be_bytes(len));
        if name_len > MAX_NAME_LEN {
            return Err(Error::Protocol {
                code: ERR_NAME_TOO_LONG,
                reason: "file name too long".into(),
            });
        }
        let mut name = vec![0u8; name_len];
        reader.read_exact(&mut name)?;
        let name = String::from_utf8(name).map_err(|_| Error::Protocol {
            code: ERR_NAME_NOT_UTF8,
            reason: "file name not UTF-8".into(),
        })?;
        let mut size = [0u8; 8];
        reader.read_exact(&mut size)?;
        let mut checksum = [0u8; 8];
        reader.read_exact(&mut checksum)?;
        Ok(TransferHeader {
            name,
            size: u64::from_be_bytes(size),
            checksum: u64::from_be_bytes(checksum),
        })
    }
}

/// Writes a complete transfer request (header + payload) to `writer`.
/// The caller ends the stream afterwards (`BlockingStream::finish`).
pub fn send_request<W: Write>(writer: &mut W, name: &str, data: &[u8]) -> Result<()> {
    let header = TransferHeader::for_data(name, data);
    writer.write_all(&header.encode())?;
    writer.write_all(data)?;
    writer.flush()?;
    Ok(())
}

/// Reads a complete transfer request. Returns the header and payload;
/// fails with [`Error::Auth`] if the payload does not match the
/// announced checksum.
pub fn recv_request<R: Read>(reader: &mut R) -> Result<(TransferHeader, Vec<u8>)> {
    let header = TransferHeader::decode(reader)?;
    let size = usize::try_from(header.size).map_err(|_| Error::Protocol {
        code: ERR_SIZE_OVERFLOW,
        reason: "file too large".into(),
    })?;
    let mut payload = vec![0u8; size];
    reader.read_exact(&mut payload)?;
    if fnv1a64(&payload) != header.checksum {
        return Err(Error::Auth("payload checksum mismatch".into()));
    }
    Ok((header, payload))
}

/// Writes the server's verdict.
pub fn send_response<W: Write>(writer: &mut W, ok: bool, checksum: u64) -> Result<()> {
    let status = if ok { STATUS_OK } else { STATUS_CORRUPT };
    writer.write_all(&[status])?;
    writer.write_all(&checksum.to_be_bytes())?;
    writer.flush()?;
    Ok(())
}

/// Reads the server's verdict: `(verified, checksum as computed there)`.
pub fn recv_response<R: Read>(reader: &mut R) -> Result<(bool, u64)> {
    let mut status = [0u8; 1];
    reader.read_exact(&mut status)?;
    let mut checksum = [0u8; 8];
    reader.read_exact(&mut checksum)?;
    Ok((status == [STATUS_OK], u64::from_be_bytes(checksum)))
}

/// Deterministic synthetic payload for `--size`-mode transfers and tests:
/// a varying pattern so reassembly bugs cannot hide behind repetition.
pub fn pattern(len: usize) -> Vec<u8> {
    (0..len)
        .map(|i| {
            let i = i as u64;
            (i.wrapping_mul(31).wrapping_add(i >> 8) & 0xff) as u8
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_round_trips() {
        let header = TransferHeader::for_data("paper.pdf", b"multipath");
        let encoded = header.encode();
        let decoded = TransferHeader::decode(&mut &encoded[..]).unwrap();
        assert_eq!(decoded, header);
        assert_eq!(decoded.size, 9);
    }

    #[test]
    fn request_round_trips_and_verifies() {
        let data = pattern(10_000);
        let mut wire = Vec::new();
        send_request(&mut wire, "blob", &data).unwrap();
        let (header, payload) = recv_request(&mut &wire[..]).unwrap();
        assert_eq!(header.name, "blob");
        assert_eq!(payload, data);
    }

    #[test]
    fn corrupted_payload_is_rejected_as_auth_failure() {
        let data = pattern(1000);
        let mut wire = Vec::new();
        send_request(&mut wire, "blob", &data).unwrap();
        let last = wire.len() - 1;
        wire[last] ^= 0xff;
        let err = recv_request(&mut &wire[..]).unwrap_err();
        assert!(matches!(err, Error::Auth(_)), "got {err:?}");
    }

    #[test]
    fn response_round_trips() {
        let mut wire = Vec::new();
        send_response(&mut wire, true, 0xdead_beef).unwrap();
        let (ok, checksum) = recv_response(&mut &wire[..]).unwrap();
        assert!(ok);
        assert_eq!(checksum, 0xdead_beef);
    }

    #[test]
    fn bad_magic_is_rejected_as_protocol_error() {
        let wire = b"NOPE\x00\x00";
        let err = TransferHeader::decode(&mut &wire[..]).unwrap_err();
        assert!(
            matches!(
                err,
                Error::Protocol {
                    code: ERR_BAD_MAGIC,
                    ..
                }
            ),
            "got {err:?}"
        );
    }

    #[test]
    fn fnv_is_stable() {
        // Reference vector: FNV-1a 64 of empty input is the offset basis.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(fnv1a64(b"a"), fnv1a64(b"b"));
    }
}
